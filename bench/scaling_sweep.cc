// Thread-scaling sweep of the parallel execution runtime.
//
// Measures the wall-clock of the three parallelised hot layers - fleet
// synthesis (telemetry::GenerateFleet), fleet monitoring (core::RunFleet),
// and the paper's 4x4 experiment grid (eval::RunGrid) - at threads in
// {1, 2, 4, hardware_concurrency}, verifies that every thread count produces
// bit-identical results (the runtime's determinism invariant), and writes
// the measurements to BENCH_scaling.json for the repo's perf trajectory.
//
// Speedups are relative to threads=1 on the same machine; on a single-core
// host every configuration necessarily measures ~1x.
#include <cinttypes>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "util/timer.h"

namespace navarchos {
namespace {

/// Order-sensitive FNV-1a over the bytes of a double sequence.
class Fingerprint {
 public:
  void Add(double value) {
    unsigned char bytes[sizeof(double)];
    __builtin_memcpy(bytes, &value, sizeof(double));
    for (unsigned char byte : bytes) {
      hash_ ^= byte;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Add(std::int64_t value) { Add(static_cast<double>(value)); }
  void Add(std::size_t value) { Add(static_cast<double>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t FleetFingerprint(const telemetry::FleetDataset& fleet) {
  Fingerprint fp;
  for (const auto& vehicle : fleet.vehicles) {
    fp.Add(static_cast<std::int64_t>(vehicle.spec.id));
    fp.Add(vehicle.events.size());
    for (const auto& event : vehicle.events) fp.Add(event.timestamp);
    fp.Add(vehicle.records.size());
    for (const auto& record : vehicle.records) {
      fp.Add(record.timestamp);
      for (double pid : record.pids) fp.Add(pid);
    }
  }
  return fp.value();
}

std::uint64_t RunFingerprint(const core::FleetRunResult& run) {
  Fingerprint fp;
  fp.Add(run.alarms.size());
  for (const auto& alarm : run.alarms) {
    fp.Add(static_cast<std::int64_t>(alarm.vehicle_id));
    fp.Add(alarm.timestamp);
    fp.Add(alarm.score);
    fp.Add(alarm.threshold);
  }
  for (const auto& samples : run.scored_samples) {
    fp.Add(samples.size());
    for (const auto& sample : samples)
      for (double score : sample.scores) fp.Add(score);
  }
  for (const auto& quality : run.quality) fp.Add(quality.RecordsDropped());
  return fp.value();
}

std::uint64_t GridFingerprint(const std::vector<eval::CellResult>& cells) {
  Fingerprint fp;
  fp.Add(cells.size());
  for (const auto& cell : cells) {
    fp.Add(static_cast<std::int64_t>(cell.ph_days));
    fp.Add(cell.best_threshold);
    fp.Add(cell.metrics.f05);
    fp.Add(cell.metrics.precision);
    fp.Add(cell.metrics.recall);
    fp.Add(static_cast<std::int64_t>(cell.metrics.false_positive_episodes));
    // runtime_seconds deliberately excluded: wall-clock, not a result.
  }
  return fp.value();
}

struct Measurement {
  int threads = 0;
  double generate_seconds = 0.0;
  double run_fleet_seconds = 0.0;
  double run_grid_seconds = 0.0;
  std::uint64_t fleet_fingerprint = 0;
  std::uint64_t run_fingerprint = 0;
  std::uint64_t grid_fingerprint = 0;
};

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  // The grid runs 16 cells per thread count; default to a reduced fleet so
  // the whole sweep stays in bench territory. --days overrides as usual.
  if (!args.Has("days")) options.days = 60;
  bench::PrintHeader("Scaling sweep - runtime speedup at 1/2/4/N threads",
                     options);

  const int hardware = runtime::RuntimeConfig::AllCores().ResolveThreads();
  std::set<int> counts = {1, 2, 4, hardware};
  std::printf("hardware threads: %d\n\n", hardware);

  std::vector<Measurement> measurements;
  for (int threads : counts) {
    bench::BenchOptions at = options;
    at.threads = threads;
    Measurement m;
    m.threads = threads;

    util::Timer timer;
    const auto fleet = bench::MakeSetting40(at);
    m.generate_seconds = timer.ElapsedSeconds();
    m.fleet_fingerprint = FleetFingerprint(fleet);

    core::MonitorConfig base;
    timer.Reset();
    const auto run = core::RunFleet(fleet, base, at.Runtime());
    m.run_fleet_seconds = timer.ElapsedSeconds();
    m.run_fingerprint = RunFingerprint(run);

    eval::SweepConfig sweep;
    timer.Reset();
    const auto cells = eval::RunGrid(fleet, sweep, base, at.Runtime());
    m.run_grid_seconds = timer.ElapsedSeconds();
    m.grid_fingerprint = GridFingerprint(cells);

    std::printf("threads=%-3d generate %7.2fs   run_fleet %7.2fs   "
                "run_grid %8.2fs\n",
                threads, m.generate_seconds, m.run_fleet_seconds,
                m.run_grid_seconds);
    std::fflush(stdout);
    measurements.push_back(m);
  }

  // Determinism: every thread count must produce bit-identical outputs.
  bool identical = true;
  for (const auto& m : measurements) {
    identical = identical &&
                m.fleet_fingerprint == measurements[0].fleet_fingerprint &&
                m.run_fingerprint == measurements[0].run_fingerprint &&
                m.grid_fingerprint == measurements[0].grid_fingerprint;
  }
  std::printf("\ndeterminism across thread counts: %s\n",
              identical ? "IDENTICAL" : "MISMATCH");

  const Measurement& serial = measurements.front();
  std::FILE* json = std::fopen("BENCH_scaling.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scaling.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"scaling_sweep\",\n");
  bench::WriteBuildMetadata(json);
  std::fprintf(json, "  \"days\": %d,\n  \"seed\": %" PRIu64 ",\n",
               options.days, options.seed);
  std::fprintf(json, "  \"threads\": %d,\n", options.threads);
  std::fprintf(json, "  \"hardware_concurrency\": %d,\n", hardware);
  std::fprintf(json, "  \"deterministic_across_thread_counts\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"generate_seconds\": %.3f, "
                 "\"run_fleet_seconds\": %.3f, \"run_grid_seconds\": %.3f, "
                 "\"generate_speedup\": %.2f, \"run_fleet_speedup\": %.2f, "
                 "\"run_grid_speedup\": %.2f}%s\n",
                 m.threads, m.generate_seconds, m.run_fleet_seconds,
                 m.run_grid_seconds,
                 m.generate_seconds > 0 ? serial.generate_seconds / m.generate_seconds : 0.0,
                 m.run_fleet_seconds > 0 ? serial.run_fleet_seconds / m.run_fleet_seconds : 0.0,
                 m.run_grid_seconds > 0 ? serial.run_grid_seconds / m.run_grid_seconds : 0.0,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("measurements written to BENCH_scaling.json\n");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
