// Throughput and determinism of the sharded fleet group.
//
// Replays the interleaved setting40 feed through shard::ShardGroup at
// every shard count in {1, 2, 4} x worker threads in {1, 4}, measuring
// end-to-end frames/sec and the fleet checkpoint's cost (one full
// Checkpoint(dir) per combination: quiesce + per-shard snapshots + CRC'd
// manifest). Every combination must produce a bit-identical fleet-wide run
// result - the sharded extension of the replay-equals-live invariant - and
// the exit code asserts exactly that. Throughput across shard counts is
// reported for the perf trajectory; shards share one pool, so the win is
// lane-map contention spread, not extra cores.
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "service/fleet_service.h"
#include "shard/shard_group.h"
#include "telemetry/stream.h"
#include "util/timer.h"

namespace navarchos {
namespace {

/// Order-sensitive FNV-1a over the bytes of a double sequence.
class Fingerprint {
 public:
  void Add(double value) {
    unsigned char bytes[sizeof(double)];
    __builtin_memcpy(bytes, &value, sizeof(double));
    for (unsigned char byte : bytes) {
      hash_ ^= byte;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Add(std::int64_t value) { Add(static_cast<double>(value)); }
  void Add(std::size_t value) { Add(static_cast<double>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Fingerprints the fleet-wide ordered output: alarms, per-vehicle scores
/// and the history records' fleet sequence numbers.
std::uint64_t RunFingerprint(const core::FleetRunResult& run,
                             const std::vector<history::HistoryRecord>& records) {
  Fingerprint fp;
  fp.Add(run.alarms.size());
  for (const auto& alarm : run.alarms) {
    fp.Add(static_cast<std::int64_t>(alarm.vehicle_id));
    fp.Add(alarm.timestamp);
    fp.Add(alarm.score);
    fp.Add(alarm.threshold);
  }
  for (const auto& samples : run.scored_samples) {
    fp.Add(samples.size());
    for (const auto& sample : samples)
      for (double score : sample.scores) fp.Add(score);
  }
  fp.Add(records.size());
  for (const auto& record : records) {
    fp.Add(static_cast<std::int64_t>(record.vehicle_id));
    fp.Add(static_cast<std::int64_t>(record.global_seq));
    fp.Add(record.score);
    fp.Add(record.threshold);
  }
  return fp.value();
}

struct Measurement {
  int shards = 0;
  int threads = 0;
  double frames_per_sec = 0.0;
  double checkpoint_ms = 0.0;     ///< One fleet checkpoint, mid-stream.
  std::uintmax_t checkpoint_bytes = 0;  ///< Manifest + per-shard snapshots.
  std::uint64_t fingerprint = 0;
};

Measurement MeasureAt(int shards, int threads,
                      const std::vector<telemetry::SensorFrame>& stream,
                      const std::vector<std::int32_t>& ids) {
  Measurement m;
  m.shards = shards;
  m.threads = threads;
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() /
       ("navshard_bench_s" + std::to_string(shards) + "_t" +
        std::to_string(threads)))
          .string();
  std::filesystem::remove_all(ckpt_dir);

  shard::ShardGroupConfig config;
  config.service.runtime = runtime::RuntimeConfig{threads};
  config.shard_count = static_cast<std::uint32_t>(shards);
  shard::ShardGroup group(config);
  std::vector<history::HistoryRecord> records;
  group.set_history_callback([&records](const history::HistoryRecord& record) {
    records.push_back(record);
  });
  for (const std::int32_t id : ids) group.RegisterVehicle(id);

  const std::size_t half = stream.size() / 2;
  util::Timer timer;
  for (std::size_t i = 0; i < half; ++i) group.Submit(stream[i]);
  // One mid-stream fleet checkpoint, timed separately (it quiesces the
  // whole group, so it is excluded from the throughput window).
  const double before_ckpt = timer.ElapsedSeconds();
  {
    util::Timer ckpt_timer;
    const util::Status status = group.Checkpoint(ckpt_dir);
    if (!status.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", status.message().c_str());
      return m;
    }
    m.checkpoint_ms = ckpt_timer.ElapsedSeconds() * 1e3;
  }
  util::Timer tail_timer;
  for (std::size_t i = half; i < stream.size(); ++i) group.Submit(stream[i]);
  group.Drain();
  const double ingest_seconds = before_ckpt + tail_timer.ElapsedSeconds();
  m.frames_per_sec = ingest_seconds > 0
                         ? static_cast<double>(stream.size()) / ingest_seconds
                         : 0.0;

  for (const auto& entry : std::filesystem::directory_iterator(ckpt_dir))
    if (entry.is_regular_file()) m.checkpoint_bytes += entry.file_size();
  std::filesystem::remove_all(ckpt_dir);

  const auto result = group.TakeResult();
  m.fingerprint = RunFingerprint(result, records);
  return m;
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  // Six full service runs (3 shard counts x 2 thread counts): default to a
  // reduced horizon so the sweep stays in bench territory. --days overrides.
  if (!args.Has("days")) options.days = 60;
  bench::PrintHeader(
      "Shard sweep - throughput, checkpoint cost and fleet-wide determinism "
      "of the sharded group", options);

  const auto fleet = bench::MakeSetting40(options);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const int hardware = runtime::RuntimeConfig::AllCores().ResolveThreads();
  std::printf("frames: %zu   vehicles: %zu   hardware threads: %d\n\n",
              stream.size(), ids.size(), hardware);

  std::vector<Measurement> measurements;
  for (int shards : {1, 2, 4}) {
    for (int threads : {1, 4}) {
      const Measurement m = MeasureAt(shards, threads, stream, ids);
      std::printf(
          "shards=%d threads=%-3d %9.0f frames/s   checkpoint %7.2fms "
          "(%ju bytes)   fingerprint %016" PRIx64 "\n",
          m.shards, m.threads, m.frames_per_sec, m.checkpoint_ms,
          m.checkpoint_bytes, m.fingerprint);
      std::fflush(stdout);
      measurements.push_back(m);
    }
  }

  bool identical = !measurements.empty();
  for (const Measurement& m : measurements)
    identical = identical && m.fingerprint != 0 &&
                m.fingerprint == measurements.front().fingerprint;
  std::printf("\nfleet output across shard x thread counts: %s\n",
              identical ? "IDENTICAL" : "MISMATCH");

  std::FILE* json = std::fopen("BENCH_shard.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"shard_sweep\",\n");
  bench::WriteBuildMetadata(json);
  std::fprintf(json, "  \"days\": %d,\n  \"seed\": %" PRIu64 ",\n",
               options.days, options.seed);
  std::fprintf(json, "  \"threads\": %d,\n", options.threads);
  std::fprintf(json, "  \"hardware_concurrency\": %d,\n", hardware);
  std::fprintf(json, "  \"frames\": %zu,\n", stream.size());
  std::fprintf(json, "  \"deterministic_across_shard_counts\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"shards\": %d, \"threads\": %d, "
                 "\"frames_per_sec\": %.1f, \"checkpoint_ms\": %.3f, "
                 "\"checkpoint_bytes\": %ju, "
                 "\"fingerprint\": \"%016" PRIx64 "\"}%s\n",
                 m.shards, m.threads, m.frames_per_sec, m.checkpoint_ms,
                 m.checkpoint_bytes, m.fingerprint,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_shard.json\n");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
