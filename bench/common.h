// Shared infrastructure of the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper. The
// expensive part - the 4 transformations x 4 techniques grid over a full
// simulated fleet-year - is computed once per (setting, days, seed) and
// cached as CSV in ./navarchos_bench_cache/, so fig4/fig5 compute it and
// fig6/fig7/table1 reuse it. Delete the cache directory to force a rerun.
#ifndef NAVARCHOS_BENCH_COMMON_H_
#define NAVARCHOS_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "runtime/runtime_config.h"
#include "telemetry/fleet.h"
#include "util/args.h"

namespace navarchos::bench {

/// Common bench options parsed from argv.
struct BenchOptions {
  int days = 365;
  std::uint64_t seed = 42;
  std::string cache_dir = "navarchos_bench_cache";
  /// Worker threads (--threads): 0 = all hardware threads, 1 = serial.
  /// Results are bit-identical at any value; only wall-clock changes.
  int threads = 0;

  /// The execution runtime all bench work should run on.
  runtime::RuntimeConfig Runtime() const { return runtime::RuntimeConfig{threads}; }

  static BenchOptions FromArgs(const util::Args& args);
};

/// The simulated stand-in for the paper's setting40 fleet.
telemetry::FleetDataset MakeSetting40(const BenchOptions& options);

/// The paper's setting26: the reporting subset of setting40.
telemetry::FleetDataset MakeSetting26(const BenchOptions& options);

/// One cached grid cell (CellResult plus its setting label).
struct GridRecord {
  std::string setting;  ///< "setting40" or "setting26".
  eval::CellResult cell;
};

/// Loads the grid for `setting` from the cache, computing and persisting it
/// on a miss. `setting` must be "setting40" or "setting26".
std::vector<GridRecord> LoadOrComputeGrid(const std::string& setting,
                                          const BenchOptions& options);

/// Renders the paper's Fig. 4/5 bar groups for one setting as a text table
/// with ASCII bars (dark = PH15, light = PH30 in the paper; here two rows).
std::string RenderSettingFigure(const std::vector<GridRecord>& grid,
                                const std::string& setting);

/// Prints a standard bench header (binary purpose + fleet parameters).
void PrintHeader(const std::string& title, const BenchOptions& options);

/// Writes the build-metadata header block into an open BENCH_*.json file:
///   "build": {"compiler": ..., "compiler_version": ..., "build_type": ...,
///             "flags": ...},
/// (two-space indent, trailing comma + newline, ready to sit between other
/// top-level header fields). The values are baked in at compile time -
/// compiler id/version from predefined macros, build type and flags from
/// CMake - so a measurement can never be archived without the toolchain
/// context it was produced under. check_bench_json.py requires the block
/// in every artifact.
void WriteBuildMetadata(std::FILE* json);

/// Renders the Fig. 4/5 grouped bar chart (F0.5 at PH=30, grouped by
/// transformation, one bar per technique) and writes it next to the grid
/// cache as `<cache_dir>/<name>.svg`. Prints the output path.
void WriteSettingFigureSvg(const std::vector<GridRecord>& grid,
                           const std::string& setting, const std::string& name,
                           const BenchOptions& options);

}  // namespace navarchos::bench

#endif  // NAVARCHOS_BENCH_COMMON_H_
