// Chaos sweep: the ingest front end under scripted transport hostility.
//
// Streams the interleaved setting40 feed through the self-healing
// net::IngestClient -> loopback TCP -> hardened net::IngestServer ->
// service::FleetService while a seeded corpus of FaultScripts (resets at
// exact byte offsets, short-read/short-write regimes, EINTR storms,
// stalls) is executed against successive server-side connections. Worker
// thread counts {1, 4}. Two invariants gate the exit code:
//
//   1. exactly-once: every frame of the stream admitted exactly once
//      (no duplicates, no sheds, no NACKs) despite every fault;
//   2. bit-identical: the served run fingerprints equal the in-process
//      replay of the same stream, at both thread counts.
//
// The sweep reports wall time, healing reconnects and injected-fault
// counts per pass and writes BENCH_chaos.json; the top-level
// "fingerprint" field lets a soak harness diff repeated runs byte-free.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "net/fault_injection.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "service/fleet_service.h"
#include "telemetry/stream.h"
#include "util/timer.h"

namespace navarchos {
namespace {

/// Order-sensitive FNV-1a over the bytes of a double sequence.
class Fingerprint {
 public:
  void Add(double value) {
    unsigned char bytes[sizeof(double)];
    __builtin_memcpy(bytes, &value, sizeof(double));
    for (unsigned char byte : bytes) {
      hash_ ^= byte;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Add(std::int64_t value) { Add(static_cast<double>(value)); }
  void Add(std::size_t value) { Add(static_cast<double>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t RunFingerprint(const core::FleetRunResult& run) {
  Fingerprint fp;
  fp.Add(run.alarms.size());
  for (const auto& alarm : run.alarms) {
    fp.Add(static_cast<std::int64_t>(alarm.vehicle_id));
    fp.Add(alarm.timestamp);
    fp.Add(alarm.score);
    fp.Add(alarm.threshold);
  }
  for (const auto& samples : run.scored_samples) {
    fp.Add(samples.size());
    for (const auto& sample : samples)
      for (double score : sample.scores) fp.Add(score);
  }
  for (const auto& quality : run.quality) {
    fp.Add(quality.records_seen);
    fp.Add(quality.RecordsDropped());
  }
  return fp.value();
}

struct Measurement {
  int threads = 0;
  int schedule = 0;
  std::string script;
  double seconds = 0.0;
  double frames_per_sec = 0.0;
  int faults_injected = 0;
  int reconnects = 0;
  bool exactly_once = false;
  std::uint64_t fingerprint = 0;
};

service::ServiceConfig ServiceConfigWith(int threads,
                                         const core::MonitorConfig& monitor) {
  service::ServiceConfig config;
  config.monitor = monitor;
  config.runtime = runtime::RuntimeConfig{threads};
  return config;
}

/// One chaos pass: the full stream served through FaultySocket-wrapped
/// connections executing `scripts` (connection n runs script n; later
/// connections are clean, so the pass terminates). Any client-surfaced
/// error leaves the measurement with exactly_once == false.
Measurement MeasureAt(int threads, int schedule,
                      const std::vector<telemetry::SensorFrame>& stream,
                      const std::vector<std::int32_t>& ids,
                      const core::MonitorConfig& monitor,
                      const std::vector<net::FaultScript>& scripts) {
  Measurement m;
  m.threads = threads;
  m.schedule = schedule;
  m.script = scripts.empty() ? "clean" : scripts.front().Describe();

  service::FleetService svc(ServiceConfigWith(threads, monitor));
  net::FaultInjector injector(scripts);

  net::ServerConfig server_config;
  server_config.transport_factory = injector.Factory();
  // Reap half-open peers before the client's op deadline heals, so the
  // resume HELLO always finds its session unbound.
  server_config.idle_timeout_ms = 250;
  net::IngestServer server(&svc, server_config);
  if (!server.Start().ok()) return m;

  net::ClientConfig client_config;
  client_config.port = server.port();
  client_config.session_id = "chaos-sweep";
  client_config.batch_frames = 64;
  client_config.backoff_ms = 1;
  client_config.max_backoff_ms = 8;
  client_config.jitter_seed = 7;
  client_config.connect_timeout_ms = 5000;
  client_config.op_deadline_ms = 1000;
  client_config.connect_attempts = static_cast<int>(scripts.size()) + 8;
  client_config.max_reconnects = static_cast<int>(scripts.size()) + 8;

  net::IngestClient client(client_config);
  util::Timer timer;
  bool clean = client.Connect(ids).ok();
  for (std::size_t i = client.next_seq(); clean && i < stream.size(); ++i)
    clean = client.Send(stream[i]).ok();
  clean = clean && client.Finish().ok();
  clean = clean && server.WaitForFinishedSessions(1, 120000);
  server.Stop();
  svc.Drain();
  m.seconds = timer.ElapsedSeconds();
  m.frames_per_sec =
      m.seconds > 0 ? static_cast<double>(stream.size()) / m.seconds : 0.0;

  const net::ServerStats stats = server.stats();
  m.faults_injected = static_cast<int>(injector.manifest().Total());
  m.reconnects = static_cast<int>(client.stats().reconnects);
  m.exactly_once = clean && stats.frames_admitted == stream.size() &&
                   stats.duplicates_skipped == 0 && stats.frames_shed == 0 &&
                   client.nacks().empty();
  m.fingerprint = RunFingerprint(svc.TakeResult());
  return m;
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  // One full stop-and-wait pass per (thread count, schedule): default to a
  // reduced fleet slice so the sweep stays in bench territory. --days
  // overrides; --schedules sizes the fault corpus.
  if (!args.Has("days")) options.days = 10;
  const int schedules = static_cast<int>(args.GetInt("schedules", 12));
  bench::PrintHeader("Chaos sweep - exactly-once admission and bit-identical "
                     "results under scripted transport faults", options);

  const auto fleet = bench::MakeSetting40(options);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  core::MonitorConfig monitor;
  const int hardware = runtime::RuntimeConfig::AllCores().ResolveThreads();
  const auto scripts = net::SeededFaultScripts(options.seed, schedules);
  std::printf("frames: %zu   vehicles: %zu   fault schedules: %d   "
              "hardware threads: %d\n\n",
              stream.size(), ids.size(), schedules, hardware);

  // Every chaos pass must reproduce the in-process run bit-for-bit.
  const std::uint64_t reference = RunFingerprint(service::RunStream(
      stream, ids, ServiceConfigWith(1, monitor)));

  // One pass per (thread count, schedule): a schedule without a scripted
  // reset holds its connection until the stream ends, so batching the whole
  // corpus into one pass would leave every script after the first
  // unexercised. Sweeping them individually runs each hostile regime over
  // the full stream.
  std::vector<Measurement> measurements;
  for (int threads : {1, 4}) {
    for (int s = 0; s < schedules; ++s) {
      const Measurement m =
          MeasureAt(threads, s, stream, ids, monitor, {scripts[s]});
      std::printf("threads=%d schedule=%-2d %-28s %6.2fs   %8.0f frames/s   "
                  "faults %4d   reconnects %2d   exactly-once %s   %s\n",
                  m.threads, m.schedule, m.script.c_str(), m.seconds,
                  m.frames_per_sec, m.faults_injected, m.reconnects,
                  m.exactly_once ? "yes" : "NO",
                  m.fingerprint == reference ? "IDENTICAL" : "MISMATCH");
      std::fflush(stdout);
      measurements.push_back(m);
    }
  }

  bool identical = true;
  bool exactly_once = true;
  for (const auto& m : measurements) {
    identical = identical && m.fingerprint == reference;
    exactly_once = exactly_once && m.exactly_once;
  }
  std::printf("\nchaos vs in-process: %s   exactly-once admission: %s\n",
              identical ? "IDENTICAL" : "MISMATCH",
              exactly_once ? "HELD" : "VIOLATED");

  std::FILE* json = std::fopen("BENCH_chaos.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_chaos.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"chaos_sweep\",\n");
  bench::WriteBuildMetadata(json);
  std::fprintf(json, "  \"days\": %d,\n  \"seed\": %" PRIu64 ",\n",
               options.days, options.seed);
  std::fprintf(json, "  \"threads\": %d,\n", options.threads);
  std::fprintf(json, "  \"hardware_concurrency\": %d,\n", hardware);
  std::fprintf(json, "  \"frames\": %zu,\n", stream.size());
  std::fprintf(json, "  \"schedules\": %d,\n", schedules);
  std::fprintf(json, "  \"fingerprint\": \"%016" PRIx64 "\",\n", reference);
  std::fprintf(json, "  \"chaos_equals_in_process\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"exactly_once\": %s,\n",
               exactly_once ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"schedule\": %d, \"script\": \"%s\", "
                 "\"seconds\": %.3f, \"frames_per_sec\": %.1f, "
                 "\"faults_injected\": %d, \"reconnects\": %d}%s\n",
                 m.threads, m.schedule, m.script.c_str(), m.seconds,
                 m.frames_per_sec, m.faults_injected, m.reconnects,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("measurements written to BENCH_chaos.json\n");
  return identical && exactly_once ? 0 : 1;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
