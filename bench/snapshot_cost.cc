// Cost of the checkpoint/restore subsystem, per detector.
//
// For every detector kind (plus the raw GBT regressor that backs the
// XGBoost technique) this bench fits the model on a synthetic reference,
// advances its streaming state with a few scored samples, then measures
//   * bytes     - encoded SaveState size,
//   * save_ms   - time to serialise the state,
//   * restore_ms- time to rebuild a fresh instance from the bytes,
// and verifies that the restored instance scores a held-out probe slice
// bit-identically to the original (the restore-equals-uninterrupted
// contract at the detector level). Results land in BENCH_snapshot.json.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "detect/factory.h"
#include "persist/codec.h"
#include "util/rng.h"
#include "util/timer.h"

namespace navarchos {
namespace {

constexpr std::size_t kRefRows = 256;
constexpr std::size_t kProbeRows = 16;
constexpr std::size_t kDims = 6;
constexpr int kReps = 5;

struct Measurement {
  std::string detector;
  std::size_t bytes = 0;
  double save_ms = 0.0;
  double restore_ms = 0.0;
  bool restored_identical = false;
};

/// Correlated synthetic rows (shared latent factor + per-dim noise), the
/// same shape the transform stage would emit.
std::vector<std::vector<double>> MakeRows(std::size_t rows, util::Rng* rng) {
  std::vector<std::vector<double>> out(rows, std::vector<double>(kDims));
  for (auto& row : out) {
    const double latent = rng->Gaussian();
    for (std::size_t d = 0; d < kDims; ++d)
      row[d] = 0.7 * latent + 0.3 * rng->Gaussian();
  }
  return out;
}

detect::DetectorOptions Options(std::uint64_t seed) {
  detect::DetectorOptions options;
  options.gbt.seed = seed;
  for (std::size_t d = 0; d < kDims; ++d)
    options.feature_names.push_back("f" + std::to_string(d));
  return options;
}

Measurement MeasureDetector(detect::DetectorKind kind, std::uint64_t seed) {
  Measurement m;
  m.detector = detect::DetectorKindName(kind);
  util::Rng rng(seed);
  const auto ref = MakeRows(kRefRows, &rng);
  const auto warm = MakeRows(kProbeRows, &rng);
  const auto probe = MakeRows(kProbeRows, &rng);

  auto original = detect::MakeDetector(kind, Options(seed));
  original->Fit(ref);
  for (const auto& row : warm) original->Score(row);  // advance stream state

  // Save: the snapshot the checkpoint would embed for this detector.
  std::vector<std::uint8_t> bytes;
  util::Timer save_timer;
  for (int rep = 0; rep < kReps; ++rep) {
    persist::Encoder encoder;
    original->SaveState(encoder);
    bytes = std::move(encoder).TakeBytes();
  }
  m.save_ms = save_timer.ElapsedSeconds() * 1e3 / kReps;
  m.bytes = bytes.size();

  // Restore into fresh, never-fitted instances.
  std::unique_ptr<detect::Detector> restored;
  util::Timer restore_timer;
  for (int rep = 0; rep < kReps; ++rep) {
    restored = detect::MakeDetector(kind, Options(seed));
    persist::Decoder decoder(bytes.data(), bytes.size());
    if (!restored->RestoreState(decoder) || !decoder.ok()) {
      std::fprintf(stderr, "%s: restore failed: %s\n", m.detector.c_str(),
                   decoder.error().c_str());
      return m;
    }
  }
  m.restore_ms = restore_timer.ElapsedSeconds() * 1e3 / kReps;

  // Lockstep probe: both instances continue the stream from the snapshot
  // point and must agree bit-for-bit on every score.
  m.restored_identical = true;
  for (const auto& row : probe) {
    const auto a = original->Score(row);
    const auto b = restored->Score(row);
    if (a != b) m.restored_identical = false;
  }
  return m;
}

Measurement MeasureGbt(std::uint64_t seed) {
  Measurement m;
  m.detector = "gbt";
  util::Rng rng(seed);
  const auto x = MakeRows(kRefRows, &rng);
  std::vector<double> y(kRefRows);
  for (std::size_t i = 0; i < kRefRows; ++i) y[i] = x[i][0] + rng.Gaussian() * 0.1;

  detect::GbtParams params;
  params.seed = seed;
  detect::GbtRegressor original(params);
  original.Fit(x, y);

  std::vector<std::uint8_t> bytes;
  util::Timer save_timer;
  for (int rep = 0; rep < kReps; ++rep) {
    persist::Encoder encoder;
    encoder.PutString(original.Serialise());
    bytes = std::move(encoder).TakeBytes();
  }
  m.save_ms = save_timer.ElapsedSeconds() * 1e3 / kReps;
  m.bytes = bytes.size();

  detect::GbtRegressor restored(params);
  util::Timer restore_timer;
  for (int rep = 0; rep < kReps; ++rep) {
    persist::Decoder decoder(bytes.data(), bytes.size());
    restored = detect::GbtRegressor(params);
    if (!restored.Deserialise(decoder.GetString()) || !decoder.ok()) {
      std::fprintf(stderr, "gbt: restore failed\n");
      return m;
    }
  }
  m.restore_ms = restore_timer.ElapsedSeconds() * 1e3 / kReps;

  m.restored_identical = true;
  const auto probe = MakeRows(kProbeRows, &rng);
  for (const auto& row : probe)
    if (original.Predict(row) != restored.Predict(row)) m.restored_identical = false;
  return m;
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader("Snapshot cost - serialised size and save/restore "
                     "latency per detector", options);

  const detect::DetectorKind kinds[] = {
      detect::DetectorKind::kClosestPair,    detect::DetectorKind::kGrand,
      detect::DetectorKind::kTranAd,         detect::DetectorKind::kXgBoost,
      detect::DetectorKind::kIsolationForest, detect::DetectorKind::kMlp,
      detect::DetectorKind::kKnnDistance,
  };
  std::vector<Measurement> measurements;
  for (const auto kind : kinds) measurements.push_back(MeasureDetector(kind, options.seed));
  measurements.push_back(MeasureGbt(options.seed));

  bool all_identical = true;
  for (const auto& m : measurements) {
    std::printf("%-18s %9zu bytes   save %8.3f ms   restore %8.3f ms   %s\n",
                m.detector.c_str(), m.bytes, m.save_ms, m.restore_ms,
                m.restored_identical ? "identical" : "MISMATCH");
    all_identical = all_identical && m.restored_identical;
  }

  std::FILE* json = std::fopen("BENCH_snapshot.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_snapshot.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"snapshot_cost\",\n");
  bench::WriteBuildMetadata(json);
  std::fprintf(json, "  \"days\": %d,\n  \"seed\": %" PRIu64 ",\n",
               options.days, options.seed);
  std::fprintf(json, "  \"threads\": %d,\n", options.threads);
  std::fprintf(json, "  \"reference_rows\": %zu,\n", kRefRows);
  std::fprintf(json, "  \"dims\": %zu,\n", kDims);
  std::fprintf(json, "  \"all_restored_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"detector\": \"%s\", \"bytes\": %zu, "
                 "\"save_ms\": %.4f, \"restore_ms\": %.4f, "
                 "\"restored_identical\": %s}%s\n",
                 m.detector.c_str(), m.bytes, m.save_ms, m.restore_ms,
                 m.restored_identical ? "true" : "false",
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nmeasurements written to BENCH_snapshot.json\n");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
