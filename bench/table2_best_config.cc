// Reproduces paper Table 2: the analytical results of the adopted complete
// solution - closest-pair detection on correlation-transformed data - for
// both settings and both prediction horizons, with a SINGLE parametrisation
// shared by all four rows (the paper's protocol: "the same method parameters
// are used for all depicted results").
//
// The shared threshold factor is chosen to maximise F0.5 on setting26 at
// PH=30 (the paper's headline row: F0.5 = 0.68, precision 0.78, recall 0.44).
#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "util/table.h"

namespace navarchos {
namespace {

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader(
      "Table 2 - best configuration: closest-pair on correlation data", options);

  const auto setting40 = bench::MakeSetting40(options);
  const auto setting26 = setting40.ReportingSubset();

  core::MonitorConfig config;
  config.transform = transform::TransformKind::kCorrelation;
  config.detector = detect::DetectorKind::kClosestPair;

  const auto run40 = core::RunFleet(setting40, config, options.Runtime());
  const auto run26 = core::RunFleet(setting26, config, options.Runtime());

  // One factor for all rows, selected on the headline row (setting26, PH30).
  const eval::SweepConfig sweep;
  double best_factor = sweep.factors.front();
  double best_f05 = -1.0;
  for (double factor : sweep.factors) {
    const auto metrics = eval::EvaluateAlarms(run26.AlarmsAt(factor), setting26, 30);
    if (metrics.f05 > best_f05) {
      best_f05 = metrics.f05;
      best_factor = factor;
    }
  }
  std::printf("shared self-tuning factor: %.1f\n\n", best_factor);

  util::Table table({"Setting", "PH", "F0.5", "F1", "Precision", "Recall",
                     "detected", "FP episodes"});
  struct Row {
    const char* setting;
    const telemetry::FleetDataset* fleet;
    const core::FleetRunResult* run;
    int ph;
  };
  const Row rows[] = {{"setting26", &setting26, &run26, 15},
                      {"setting26", &setting26, &run26, 30},
                      {"setting40", &setting40, &run40, 15},
                      {"setting40", &setting40, &run40, 30}};
  for (const Row& row : rows) {
    const auto metrics =
        eval::EvaluateAlarms(row.run->AlarmsAt(best_factor), *row.fleet, row.ph);
    table.AddRow({row.setting, std::to_string(row.ph) + " days",
                  util::Table::Num(metrics.f05, 2), util::Table::Num(metrics.f1, 2),
                  util::Table::Num(metrics.precision, 2),
                  util::Table::Num(metrics.recall, 2),
                  std::to_string(metrics.detected_failures) + "/" +
                      std::to_string(metrics.total_failures),
                  std::to_string(metrics.false_positive_episodes)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\npaper's Table 2:\n"
              "  setting26 15d: F0.5 0.38  F1 0.40  P 0.36  R 0.44\n"
              "  setting26 30d: F0.5 0.68  F1 0.57  P 0.78  R 0.44  <- headline\n"
              "  setting40 15d: F0.5 0.30  F1 0.35  P 0.29  R 0.44\n"
              "  setting40 30d: F0.5 0.50  F1 0.48  P 0.52  R 0.44\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
