// Reproduces paper Table 1: wall-clock execution time of every technique
// under every data transformation (fit + score over the whole fleet-year).
//
// Absolute numbers differ from the paper (C++ vs Python 3.8 on an i5-6500),
// but the orders of magnitude reproduce: the windowed transformations
// (correlation, mean aggregation) reduce the sample count by ~2 orders of
// magnitude and are correspondingly cheaper; closest-pair is the cheapest
// technique; TranAD is the most expensive by a wide margin on per-record
// data (paper: 62,350 s for raw; here minutes, same ordering).
#include <cstdio>

#include "bench/common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const navarchos::util::Args args(argc, argv);
  const auto options = navarchos::bench::BenchOptions::FromArgs(args);
  navarchos::bench::PrintHeader(
      "Table 1 - execution time in seconds (technique x transformation)", options);
  auto grid = navarchos::bench::LoadOrComputeGrid("setting40", options);
  for (auto& record : navarchos::bench::LoadOrComputeGrid("setting26", options))
    grid.push_back(std::move(record));

  // Sum runtimes across both settings (each cell measured once per setting;
  // PH rows share the measurement, so only count ph == 30).
  navarchos::util::Table table(
      {"", "Grand", "Closest-pair", "TranAD", "XGBoost"});
  for (auto transform_kind : navarchos::eval::PaperTransforms()) {
    std::vector<std::string> row{
        navarchos::transform::TransformKindName(transform_kind)};
    for (auto detector_kind : {navarchos::detect::DetectorKind::kGrand,
                               navarchos::detect::DetectorKind::kClosestPair,
                               navarchos::detect::DetectorKind::kTranAd,
                               navarchos::detect::DetectorKind::kXgBoost}) {
      double seconds = 0.0;
      for (const auto& record : grid) {
        if (record.cell.transform == transform_kind &&
            record.cell.detector == detector_kind && record.cell.ph_days == 30) {
          seconds += record.cell.runtime_seconds;
        }
      }
      row.push_back(navarchos::util::Table::Num(seconds, 1));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf("(paper, python: raw/delta three orders of magnitude slower for "
              "TranAD; correlation/mean cheap for all; closest-pair cheapest)\n");
  return 0;
}
