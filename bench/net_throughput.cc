// Throughput, latency and reconnect recovery of the TCP ingest front end.
//
// Streams the interleaved setting40 feed through net::IngestClient ->
// loopback TCP -> net::IngestServer -> service::FleetService at worker
// thread counts {1, 4}, measuring end-to-end frames/sec and the per-frame
// latency distribution (client send to ordered release, p50/p99) via the
// service's completion callback. A second pass per thread count cuts the
// connection mid-stream and measures reconnect recovery time: Abort() to
// the resumed client's WELCOME. Both passes must fingerprint-match the
// in-process replay of the same stream - the loopback-equals-in-process
// invariant - and the exit code reflects exactly that.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "service/fleet_service.h"
#include "telemetry/stream.h"
#include "util/timer.h"

namespace navarchos {
namespace {

/// Order-sensitive FNV-1a over the bytes of a double sequence.
class Fingerprint {
 public:
  void Add(double value) {
    unsigned char bytes[sizeof(double)];
    __builtin_memcpy(bytes, &value, sizeof(double));
    for (unsigned char byte : bytes) {
      hash_ ^= byte;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Add(std::int64_t value) { Add(static_cast<double>(value)); }
  void Add(std::size_t value) { Add(static_cast<double>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t RunFingerprint(const core::FleetRunResult& run) {
  Fingerprint fp;
  fp.Add(run.alarms.size());
  for (const auto& alarm : run.alarms) {
    fp.Add(static_cast<std::int64_t>(alarm.vehicle_id));
    fp.Add(alarm.timestamp);
    fp.Add(alarm.score);
    fp.Add(alarm.threshold);
  }
  for (const auto& samples : run.scored_samples) {
    fp.Add(samples.size());
    for (const auto& sample : samples)
      for (double score : sample.scores) fp.Add(score);
  }
  for (const auto& quality : run.quality) {
    fp.Add(quality.records_seen);
    fp.Add(quality.RecordsDropped());
  }
  return fp.value();
}

struct Measurement {
  int threads = 0;
  double seconds = 0.0;
  double frames_per_sec = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double reconnect_ms = 0.0;
  std::uint64_t fingerprint = 0;
  std::uint64_t resumed_fingerprint = 0;
};

double PercentileUs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies->size() - 1));
  std::nth_element(latencies->begin(),
                   latencies->begin() + static_cast<std::ptrdiff_t>(rank),
                   latencies->end());
  return (*latencies)[rank];
}

service::ServiceConfig ServiceConfigWith(int threads,
                                         const core::MonitorConfig& monitor) {
  service::ServiceConfig config;
  config.monitor = monitor;
  config.runtime = runtime::RuntimeConfig{threads};
  return config;
}

net::ClientConfig ClientConfigFor(std::uint16_t port) {
  net::ClientConfig config;
  config.port = port;
  config.session_id = "bench";
  return config;
}

Measurement MeasureAt(int threads,
                      const std::vector<telemetry::SensorFrame>& stream,
                      const std::vector<std::int32_t>& ids,
                      const core::MonitorConfig& monitor) {
  using Clock = std::chrono::steady_clock;
  Measurement m;
  m.threads = threads;

  // --- Clean pass: frames/sec and per-frame latency over loopback. --------
  {
    service::FleetService svc(ServiceConfigWith(threads, monitor));
    // Under kBlock with one session every frame is admitted, so global_seq
    // equals the stream index: send timestamps land in an index-aligned
    // vector and the completion callback (serialised by the ordered sink)
    // writes its own slot.
    std::vector<Clock::time_point> sent(stream.size());
    std::vector<double> latencies_us(stream.size(), 0.0);
    svc.set_completion_callback(
        [&sent, &latencies_us](const service::FrameCompletion& c) {
          const auto delta = Clock::now() - sent[c.global_seq];
          latencies_us[c.global_seq] =
              std::chrono::duration<double, std::micro>(delta).count();
        });
    net::IngestServer server(&svc, net::ServerConfig{});
    if (!server.Start().ok()) return m;
    net::IngestClient client(ClientConfigFor(server.port()));
    if (!client.Connect(ids).ok()) return m;

    util::Timer timer;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      sent[i] = Clock::now();
      if (!client.Send(stream[i]).ok()) return m;
    }
    if (!client.Finish().ok()) return m;
    server.WaitForFinishedSessions(1);
    server.Stop();
    svc.Drain();
    m.seconds = timer.ElapsedSeconds();
    m.frames_per_sec =
        m.seconds > 0 ? static_cast<double>(stream.size()) / m.seconds : 0.0;
    m.p50_latency_us = PercentileUs(&latencies_us, 0.50);
    m.p99_latency_us = PercentileUs(&latencies_us, 0.99);
    m.fingerprint = RunFingerprint(svc.TakeResult());
  }

  // --- Reconnect pass: cut mid-stream, resume, same result. ---------------
  {
    service::FleetService svc(ServiceConfigWith(threads, monitor));
    net::IngestServer server(&svc, net::ServerConfig{});
    if (!server.Start().ok()) return m;
    const net::ClientConfig client_config = ClientConfigFor(server.port());

    const std::size_t cut = stream.size() / 2 + 17;  // mid-batch, not aligned
    {
      net::IngestClient first(client_config);
      if (!first.Connect(ids).ok()) return m;
      for (std::size_t i = 0; i < cut; ++i)
        if (!first.Send(stream[i]).ok()) return m;
      first.Abort();  // simulated crash: no flush, no FIN
    }
    util::Timer reconnect_timer;
    net::IngestClient resumed(client_config);
    if (!resumed.Connect(ids, /*resume=*/true).ok()) return m;
    m.reconnect_ms = reconnect_timer.ElapsedSeconds() * 1e3;
    for (std::size_t i = resumed.next_seq(); i < stream.size(); ++i)
      if (!resumed.Send(stream[i]).ok()) return m;
    if (!resumed.Finish().ok()) return m;
    server.WaitForFinishedSessions(1);
    server.Stop();
    svc.Drain();
    m.resumed_fingerprint = RunFingerprint(svc.TakeResult());
  }
  return m;
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  // Two full loopback passes per thread count: default to a reduced
  // fleet-quarter so the sweep stays in bench territory. --days overrides.
  if (!args.Has("days")) options.days = 60;
  bench::PrintHeader("Net throughput - frames/sec, latency and reconnect "
                     "recovery of the TCP ingest front end", options);

  const auto fleet = bench::MakeSetting40(options);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  core::MonitorConfig monitor;
  const int hardware = runtime::RuntimeConfig::AllCores().ResolveThreads();
  std::printf("frames: %zu   vehicles: %zu   hardware threads: %d\n\n",
              stream.size(), ids.size(), hardware);

  // The loopback run must reproduce the in-process run bit-for-bit.
  const std::uint64_t reference = RunFingerprint(service::RunStream(
      stream, ids, ServiceConfigWith(1, monitor)));

  std::vector<Measurement> measurements;
  for (int threads : {1, 4}) {
    const Measurement m = MeasureAt(threads, stream, ids, monitor);
    std::printf("threads=%-3d %8.2fs   %9.0f frames/s   p50 %8.1fus   "
                "p99 %9.1fus   reconnect %6.2fms\n",
                m.threads, m.seconds, m.frames_per_sec, m.p50_latency_us,
                m.p99_latency_us, m.reconnect_ms);
    std::fflush(stdout);
    measurements.push_back(m);
  }

  bool loopback_identical = true;
  bool resume_identical = true;
  for (const auto& m : measurements) {
    loopback_identical = loopback_identical && m.fingerprint == reference;
    resume_identical = resume_identical && m.resumed_fingerprint == reference;
  }
  std::printf("\nloopback vs in-process: %s   after disconnect+resume: %s\n",
              loopback_identical ? "IDENTICAL" : "MISMATCH",
              resume_identical ? "IDENTICAL" : "MISMATCH");

  std::FILE* json = std::fopen("BENCH_net.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_net.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"net_throughput\",\n");
  bench::WriteBuildMetadata(json);
  std::fprintf(json, "  \"days\": %d,\n  \"seed\": %" PRIu64 ",\n",
               options.days, options.seed);
  std::fprintf(json, "  \"threads\": %d,\n", options.threads);
  std::fprintf(json, "  \"hardware_concurrency\": %d,\n", hardware);
  std::fprintf(json, "  \"frames\": %zu,\n", stream.size());
  std::fprintf(json, "  \"loopback_equals_in_process\": %s,\n",
               loopback_identical ? "true" : "false");
  std::fprintf(json, "  \"resume_equals_uninterrupted\": %s,\n",
               resume_identical ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"seconds\": %.3f, "
                 "\"frames_per_sec\": %.1f, \"p50_latency_us\": %.1f, "
                 "\"p99_latency_us\": %.1f, \"reconnect_ms\": %.2f}%s\n",
                 m.threads, m.seconds, m.frames_per_sec, m.p50_latency_us,
                 m.p99_latency_us, m.reconnect_ms,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("measurements written to BENCH_net.json\n");
  return loopback_identical && resume_identical ? 0 : 1;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
