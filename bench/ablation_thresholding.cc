// Thresholding ablation, after Giannoulidis et al. (SIGKDD Explorations
// 2022) - the paper's source for the self-tuning rule. Compares, for the
// complete solution (closest-pair on correlation data, setting26, PH=30):
//   * mean + factor * std        (the paper's adopted rule),
//   * median + factor * 1.4826 * MAD (outlier-robust variant),
//   * factor * max(healthy)      (envelope rule),
// each swept over its own factor range, reporting the best operating point
// and the factor sensitivity (how much F0.5 moves across the sweep - flat
// is good, it means less tuning risk).
#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "util/table.h"

namespace navarchos {
namespace {

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader("Ablation - thresholding rules (setting26, PH=30)", options);

  const auto fleet = bench::MakeSetting26(options);
  core::MonitorConfig config;
  config.transform = transform::TransformKind::kCorrelation;
  config.detector = detect::DetectorKind::kClosestPair;
  // Scores and calibrations do not depend on the rule: run once, replay per
  // rule.
  const auto run = core::RunFleet(fleet, config, options.Runtime());

  struct Rule {
    const char* name;
    detect::ThresholdConfig::Kind kind;
    std::vector<double> factors;
  };
  const Rule rules[] = {
      {"mean + f*std (paper)", detect::ThresholdConfig::Kind::kSelfTuning,
       {6.0, 10.0, 14.0, 20.0, 30.0, 45.0}},
      {"median + f*MAD", detect::ThresholdConfig::Kind::kMedianMad,
       {6.0, 10.0, 14.0, 20.0, 30.0, 45.0}},
      {"f * max(healthy)", detect::ThresholdConfig::Kind::kMaxHealthy,
       {1.0, 1.3, 1.7, 2.2, 3.0, 4.0}},
  };

  util::Table table({"rule", "best F0.5", "P", "R", "FP", "best factor",
                     "F0.5 range over sweep"});
  for (const Rule& rule : rules) {
    eval::EvalResult best;
    double best_factor = rule.factors.front();
    double lo = 1.0, hi = 0.0;
    for (double factor : rule.factors) {
      std::vector<core::Alarm> alarms;
      for (std::size_t v = 0; v < run.scored_samples.size(); ++v) {
        auto vehicle_alarms = core::AlarmsForThreshold(
            run.scored_samples[v], run.calibrations[v], factor,
            run.persistence_window, run.persistence_min, run.channel_names,
            rule.kind);
        alarms.insert(alarms.end(), vehicle_alarms.begin(), vehicle_alarms.end());
      }
      const auto metrics = eval::EvaluateAlarms(alarms, fleet, 30);
      lo = std::min(lo, metrics.f05);
      hi = std::max(hi, metrics.f05);
      if (metrics.f05 > best.f05) {
        best = metrics;
        best_factor = factor;
      }
    }
    table.AddRow({rule.name, util::Table::Num(best.f05, 2),
                  util::Table::Num(best.precision, 2),
                  util::Table::Num(best.recall, 2),
                  std::to_string(best.false_positive_episodes),
                  util::Table::Num(best_factor, 1),
                  util::Table::Num(lo, 2) + " - " + util::Table::Num(hi, 2)});
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf("\nthe paper's rule is competitive; the MAD variant trades a "
              "little peak F0.5 for robustness to calibration outliers, and "
              "the max-envelope rule is the most conservative.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
