// Reproduces paper Table 3: the step-2 ablation. The reference profile is
// rebuilt ONLY after repairs - standard service events are ignored - which
// pins most vehicles to their initial operating state as Ref for the whole
// year. The paper fine-tunes the threshold per row here (unlike Table 2) and
// still observes a clear degradation: either precision collapses at equal
// recall, or recall drops to 2/9, proving the value of exploiting all the
// (admittedly partial) event information.
#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "util/table.h"

namespace navarchos {
namespace {

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader(
      "Table 3 - ablation: reference reset only on repairs (services ignored)",
      options);

  const auto setting40 = bench::MakeSetting40(options);
  const auto setting26 = setting40.ReportingSubset();

  core::MonitorConfig config;
  config.transform = transform::TransformKind::kCorrelation;
  config.detector = detect::DetectorKind::kClosestPair;
  config.reset_on_service = false;  // the ablation

  const auto run40 = core::RunFleet(setting40, config, options.Runtime());
  const auto run26 = core::RunFleet(setting26, config, options.Runtime());

  // Per-row threshold tuning (the paper: "we fine tune each row separately").
  const eval::SweepConfig sweep;
  util::Table table({"Setting", "PH", "F0.5", "F1", "Precision", "Recall",
                     "detected", "FP episodes", "factor"});
  struct Row {
    const char* setting;
    const telemetry::FleetDataset* fleet;
    const core::FleetRunResult* run;
    int ph;
  };
  const Row rows[] = {{"setting26", &setting26, &run26, 15},
                      {"setting26", &setting26, &run26, 30},
                      {"setting40", &setting40, &run40, 15},
                      {"setting40", &setting40, &run40, 30}};
  for (const Row& row : rows) {
    eval::EvalResult best;
    double best_factor = sweep.factors.front();
    for (double factor : sweep.factors) {
      const auto metrics =
          eval::EvaluateAlarms(row.run->AlarmsAt(factor), *row.fleet, row.ph);
      if (metrics.f05 > best.f05) {
        best = metrics;
        best_factor = factor;
      }
    }
    table.AddRow({row.setting, std::to_string(row.ph) + " days",
                  util::Table::Num(best.f05, 2), util::Table::Num(best.f1, 2),
                  util::Table::Num(best.precision, 2),
                  util::Table::Num(best.recall, 2),
                  std::to_string(best.detected_failures) + "/" +
                      std::to_string(best.total_failures),
                  std::to_string(best.false_positive_episodes),
                  util::Table::Num(best_factor, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\npaper's Table 3 (per-row tuned):\n"
              "  setting26 15d: F0.5 0.18  P 0.16  R 0.44\n"
              "  setting26 30d: F0.5 0.58  P 1.00  R 0.22\n"
              "  setting40 15d: F0.5 0.11  P 0.10  R 0.22\n"
              "  setting40 30d: F0.5 0.45  P 0.66  R 0.22\n"
              "conclusion: ignoring service events degrades the solution - "
              "leveraging all partial information matters.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
