// Reproduces paper Figure 7: critical-difference ranking of the four
// techniques via Friedman + pairwise Wilcoxon/Holm, at three granularities:
//   (a) over all data transformations,
//   (b) over correlation and raw only,
//   (c) over all transformations except raw.
// Paper result: TranAD, closest-pair and XGBoost significantly outrank the
// Grand inductive method; XGBoost ranks first overall (most robust to the
// transformation choice); the learned models gain when raw data is included.
#include <cstdio>
#include <set>

#include "bench/common.h"
#include "stats/ranking.h"
#include "util/matrix.h"

namespace navarchos {
namespace {

util::Matrix TechniqueScores(const std::vector<bench::GridRecord>& grid,
                             const std::set<transform::TransformKind>& transforms) {
  const auto& detectors = eval::PaperDetectors();
  std::vector<std::vector<double>> rows;
  for (const std::string& setting : {std::string("setting40"), std::string("setting26")}) {
    for (int ph : {15, 30}) {
      for (transform::TransformKind transform_kind : eval::PaperTransforms()) {
        if (transforms.count(transform_kind) == 0) continue;
        std::vector<double> row(detectors.size(), 0.0);
        bool complete = true;
        for (std::size_t d = 0; d < detectors.size(); ++d) {
          bool found = false;
          for (const auto& record : grid) {
            if (record.setting == setting && record.cell.ph_days == ph &&
                record.cell.transform == transform_kind &&
                record.cell.detector == detectors[d]) {
              row[d] = record.cell.metrics.f05;
              found = true;
            }
          }
          complete = complete && found;
        }
        if (complete) rows.push_back(std::move(row));
      }
    }
  }
  return util::Matrix::FromRows(rows);
}

void RunAnalysis(const std::vector<bench::GridRecord>& grid, const char* title,
                 const std::set<transform::TransformKind>& transforms) {
  std::vector<std::string> names;
  for (auto kind : eval::PaperDetectors())
    names.emplace_back(detect::DetectorKindName(kind));
  const util::Matrix scores = TechniqueScores(grid, transforms);
  const auto result = stats::AnalyzeRanks(scores, names);
  std::printf("\n--- %s (%zu blocks) ---\n", title, scores.rows());
  std::printf("%s", stats::RenderCriticalDifferenceDiagram(result).c_str());
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader("Figure 7 - critical diagrams for techniques", options);
  auto grid = bench::LoadOrComputeGrid("setting40", options);
  for (auto& record : bench::LoadOrComputeGrid("setting26", options))
    grid.push_back(std::move(record));

  using TK = transform::TransformKind;
  RunAnalysis(grid, "(a) all transformations",
              {TK::kRaw, TK::kDelta, TK::kMeanAggregation, TK::kCorrelation});
  RunAnalysis(grid, "(b) correlation and raw only", {TK::kCorrelation, TK::kRaw});
  RunAnalysis(grid, "(c) all transformations except raw",
              {TK::kDelta, TK::kMeanAggregation, TK::kCorrelation});
  std::printf("\npaper's reading: the Grand inductive method ranks last; "
              "XGBoost/TranAD benefit when raw data is in the mix.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
