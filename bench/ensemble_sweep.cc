// Cost/benefit sweep of the rolling consensus ensemble.
//
// Streams the interleaved fig4/fig5 fleets (setting40 and its reporting
// subset setting26) through service::FleetService three ways - the paper's
// single-*Ref* baseline and two consensus configurations (K=3/M=2,
// K=4/M=3) - at worker thread counts {1, 4}. Per run it measures the
// event-level false-alarm count and detection lead time (PH = 30 days),
// the p50/p99 frame latency from admission to ordered release (the
// retrain-stall probe: background fits must not stall the pumps), and the
// encoded ensemble bytes per vehicle (memory boundedness). Every run
// fingerprints its complete output - alarms plus per-sample consensus
// votes - and the exit code asserts the fingerprints are identical across
// thread counts: online background retraining must not cost a single byte
// of determinism.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "eval/metrics.h"
#include "service/fleet_service.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

constexpr double kMinutesPerDay = 24.0 * 60.0;
constexpr int kHorizonDays = 30;

/// Order-sensitive FNV-1a over the bytes of a double sequence.
class Fingerprint {
 public:
  void Add(double value) {
    unsigned char bytes[sizeof(double)];
    __builtin_memcpy(bytes, &value, sizeof(double));
    for (unsigned char byte : bytes) {
      hash_ ^= byte;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Add(std::int64_t value) { Add(static_cast<double>(value)); }
  void Add(std::size_t value) { Add(static_cast<double>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// One (config, thread-count) service run.
struct Measurement {
  int threads = 0;
  int false_alarms = 0;
  int detected = 0;
  int total_failures = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f05 = 0.0;
  double mean_lead_days = 0.0;  ///< Over detected repairs; 0 if none.
  double latency_p50_ms = 0.0;  ///< Admission -> ordered release.
  double latency_p99_ms = 0.0;
  double ensemble_bytes_per_vehicle = 0.0;
  std::uint64_t retrains_started = 0;
  std::uint64_t retrains_completed = 0;
  std::uint64_t suppressed_alarms = 0;
  std::uint64_t fingerprint = 0;  ///< Alarms + votes, order-sensitive.
};

/// An ensemble configuration under test ("baseline" = disabled).
struct Variant {
  std::string name;
  ensemble::EnsembleConfig ensemble;
};

double PercentileMs(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0.0;
  const std::size_t rank =
      static_cast<std::size_t>(q * static_cast<double>(samples->size() - 1));
  std::nth_element(samples->begin(),
                   samples->begin() + static_cast<std::ptrdiff_t>(rank),
                   samples->end());
  return (*samples)[rank];
}

/// Mean days from the earliest in-horizon alarm to its repair, over the
/// repairs that had one (the detection lead the operator actually gets).
double MeanLeadDays(const std::vector<core::Alarm>& alarms,
                    const telemetry::FleetDataset& fleet) {
  double total = 0.0;
  int detected = 0;
  for (const telemetry::VehicleHistory& vehicle : fleet.vehicles) {
    for (const telemetry::Minute repair : vehicle.RecordedRepairTimes()) {
      const std::int64_t horizon =
          repair - static_cast<std::int64_t>(kHorizonDays * kMinutesPerDay);
      std::int64_t earliest = -1;
      for (const core::Alarm& alarm : alarms) {
        if (alarm.vehicle_id != vehicle.spec.id) continue;
        if (alarm.timestamp < horizon || alarm.timestamp > repair) continue;
        if (earliest < 0 || alarm.timestamp < earliest)
          earliest = alarm.timestamp;
      }
      if (earliest < 0) continue;
      total += static_cast<double>(repair - earliest) / kMinutesPerDay;
      ++detected;
    }
  }
  return detected > 0 ? total / detected : 0.0;
}

Measurement MeasureAt(int threads, const Variant& variant,
                      const telemetry::FleetDataset& fleet,
                      const std::vector<telemetry::SensorFrame>& stream,
                      const std::vector<std::int32_t>& ids) {
  Measurement m;
  m.threads = threads;

  service::ServiceConfig config;
  config.monitor.ensemble = variant.ensemble;
  config.runtime = runtime::RuntimeConfig{threads};

  // Admission-to-release latency per frame, stamped in the completion
  // callback (which the ordered sink serialises).
  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> submitted(stream.size());
  std::vector<double> latencies_ms;
  latencies_ms.reserve(stream.size());

  service::FleetService svc(config);
  svc.set_completion_callback(
      [&submitted, &latencies_ms](const service::FrameCompletion& done) {
        const auto elapsed = Clock::now() - submitted[done.global_seq];
        latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(elapsed).count());
      });
  for (const std::int32_t id : ids) svc.RegisterVehicle(id);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    // Clean stream + blocking backpressure: every frame is admitted, so
    // global_seq == submission index and the stamp slot is pre-assignable.
    submitted[i] = Clock::now();
    svc.Submit(stream[i]);
  }
  svc.Drain();

  const service::ServiceStats stats = svc.stats();
  m.retrains_started = stats.retrains_started;
  m.retrains_completed = stats.retrains_completed;
  m.suppressed_alarms = stats.consensus_suppressed_alarms;
  m.ensemble_bytes_per_vehicle =
      ids.empty() ? 0.0
                  : static_cast<double>(svc.ensemble_state_bytes()) /
                        static_cast<double>(ids.size());
  const core::FleetRunResult result = svc.TakeResult();

  const eval::EvalResult metrics =
      eval::EvaluateAlarms(result.alarms, fleet, kHorizonDays);
  m.false_alarms = metrics.false_positive_episodes;
  m.detected = metrics.detected_failures;
  m.total_failures = metrics.total_failures;
  m.precision = metrics.precision;
  m.recall = metrics.recall;
  m.f05 = metrics.f05;
  m.mean_lead_days = MeanLeadDays(result.alarms, fleet);
  m.latency_p50_ms = PercentileMs(&latencies_ms, 0.50);
  m.latency_p99_ms = PercentileMs(&latencies_ms, 0.99);

  Fingerprint fp;
  fp.Add(result.alarms.size());
  for (const core::Alarm& alarm : result.alarms) {
    fp.Add(static_cast<std::int64_t>(alarm.vehicle_id));
    fp.Add(alarm.timestamp);
    fp.Add(alarm.channel);
    fp.Add(alarm.score);
    fp.Add(alarm.threshold);
  }
  for (const auto& samples : result.scored_samples) {
    fp.Add(samples.size());
    for (const core::ScoredSample& sample : samples) {
      fp.Add(static_cast<std::int64_t>(sample.votes));
      fp.Add(static_cast<std::int64_t>(sample.ensemble_live));
    }
  }
  for (const auto& lane : result.ensemble_stats) {
    fp.Add(lane.retrains_started);
    fp.Add(lane.retrains_completed);
    fp.Add(lane.retrains_failed);
    fp.Add(lane.consensus_suppressed_alarms);
  }
  m.fingerprint = fp.value();
  return m;
}

std::vector<Variant> MakeVariants() {
  std::vector<Variant> variants;
  variants.push_back({"baseline", {}});  // single *Ref*, ensemble off
  ensemble::EnsembleConfig k3m2;
  k3m2.enabled = true;
  k3m2.k = 3;
  k3m2.m = 2;
  variants.push_back({"k3m2", k3m2});
  ensemble::EnsembleConfig k4m3;
  k4m3.enabled = true;
  k4m3.k = 4;
  k4m3.m = 3;
  variants.push_back({"k4m3", k4m3});
  return variants;
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  // Twelve full service runs (2 settings x 3 variants x 2 thread counts):
  // default to a reduced horizon so the sweep stays in bench territory.
  if (!args.Has("days")) options.days = 45;
  bench::PrintHeader(
      "Ensemble sweep - false alarms, detection lead, pump-stall latency "
      "and memory of the rolling consensus ensemble", options);

  struct Row {
    std::string setting;
    std::string variant;
    Measurement m;
  };
  std::vector<Row> rows;
  bool deterministic = true;
  bool win = true;

  for (const char* setting_name : {"setting40", "setting26"}) {
    const std::string setting = setting_name;
    const telemetry::FleetDataset fleet =
        setting == "setting26" ? bench::MakeSetting26(options)
                               : bench::MakeSetting40(options);
    const auto stream = telemetry::InterleaveFleetStream(fleet);
    const auto ids = service::VehicleIdsOf(fleet);
    std::printf("%s: %zu frames, %zu vehicles\n", setting.c_str(),
                stream.size(), ids.size());

    Measurement baseline;
    for (const Variant& variant : MakeVariants()) {
      Measurement first;
      for (const int threads : {1, 4}) {
        const Measurement m =
            MeasureAt(threads, variant, fleet, stream, ids);
        if (threads == 1) {
          first = m;
        } else if (m.fingerprint != first.fingerprint) {
          deterministic = false;
        }
        std::printf(
            "  %-9s t=%d  FP %3d  detected %d/%d  lead %5.1fd  f05 %.3f  "
            "latency p50 %6.3fms p99 %6.3fms  %7.0f B/vehicle  "
            "retrains %" PRIu64 "  suppressed %" PRIu64 "\n",
            variant.name.c_str(), m.threads, m.false_alarms, m.detected,
            m.total_failures, m.mean_lead_days, m.f05, m.latency_p50_ms,
            m.latency_p99_ms, m.ensemble_bytes_per_vehicle,
            m.retrains_started, m.suppressed_alarms);
        std::fflush(stdout);
        rows.push_back({setting, variant.name, m});
      }
      if (variant.name == "baseline") {
        baseline = first;
      } else if (first.false_alarms > baseline.false_alarms ||
                 first.detected < baseline.detected) {
        // The win condition: strictly no more false alarms at
        // no-worse event detection than the single-*Ref* baseline.
        win = false;
      }
    }
  }

  std::printf("\noutput across thread counts: %s\n",
              deterministic ? "IDENTICAL" : "MISMATCH");
  std::printf("consensus vs baseline (<= false alarms, >= detections): %s\n",
              win ? "HOLDS" : "DOES NOT HOLD");

  std::FILE* json = std::fopen("BENCH_ensemble.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ensemble.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"ensemble_sweep\",\n");
  bench::WriteBuildMetadata(json);
  std::fprintf(json, "  \"days\": %d,\n  \"seed\": %" PRIu64 ",\n",
               options.days, options.seed);
  std::fprintf(json, "  \"threads\": %d,\n", options.threads);
  std::fprintf(json, "  \"ph_days\": %d,\n", kHorizonDays);
  std::fprintf(json, "  \"identical_across_threads\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(json, "  \"consensus_win_holds\": %s,\n", win ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        json,
        "    {\"setting\": \"%s\", \"config\": \"%s\", \"threads\": %d, "
        "\"false_alarms\": %d, \"detected\": %d, \"total_failures\": %d, "
        "\"precision\": %.4f, \"recall\": %.4f, \"f05\": %.4f, "
        "\"mean_lead_days\": %.2f, \"latency_p50_ms\": %.4f, "
        "\"latency_p99_ms\": %.4f, \"ensemble_bytes_per_vehicle\": %.1f, "
        "\"retrains_started\": %" PRIu64 ", \"retrains_completed\": %" PRIu64
        ", \"suppressed_alarms\": %" PRIu64 ", \"fingerprint\": \"%016" PRIx64
        "\"}%s\n",
        row.setting.c_str(), row.variant.c_str(), row.m.threads,
        row.m.false_alarms, row.m.detected, row.m.total_failures,
        row.m.precision, row.m.recall, row.m.f05, row.m.mean_lead_days,
        row.m.latency_p50_ms, row.m.latency_p99_ms,
        row.m.ensemble_bytes_per_vehicle, row.m.retrains_started,
        row.m.retrains_completed, row.m.suppressed_alarms, row.m.fingerprint,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("measurements written to BENCH_ensemble.json\n");
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
