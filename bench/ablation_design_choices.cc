// Ablation benches beyond the paper: sensitivity of the complete solution
// (closest-pair on correlation data, setting26) to the framework's design
// knobs that DESIGN.md calls out:
//   * correlation window length,
//   * reference profile length,
//   * threshold-calibration burn-in,
//   * persistence duration.
// Each sweep varies one knob with the rest at their defaults and reports the
// best-F0.5 operating point at PH=30.
#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "util/table.h"

namespace navarchos {
namespace {

struct Outcome {
  eval::EvalResult metrics;
  double factor = 0.0;
};

Outcome BestAtPh30(const telemetry::FleetDataset& fleet,
                   const core::MonitorConfig& config,
                   const runtime::RuntimeConfig& runtime) {
  const auto run = core::RunFleet(fleet, config, runtime);
  const eval::SweepConfig sweep;
  Outcome best;
  for (double factor : sweep.factors) {
    const auto metrics = eval::EvaluateAlarms(run.AlarmsAt(factor), fleet, 30);
    if (metrics.f05 > best.metrics.f05) {
      best.metrics = metrics;
      best.factor = factor;
    }
  }
  return best;
}

void AddRow(util::Table& table, const std::string& knob, const std::string& value,
            const Outcome& outcome) {
  table.AddRow({knob, value, util::Table::Num(outcome.metrics.f05, 2),
                util::Table::Num(outcome.metrics.precision, 2),
                util::Table::Num(outcome.metrics.recall, 2),
                std::to_string(outcome.metrics.false_positive_episodes),
                util::Table::Num(outcome.factor, 0)});
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader(
      "Ablation - design-choice sensitivity of the complete solution "
      "(setting26, PH=30)",
      options);

  const auto fleet = bench::MakeSetting26(options);
  core::MonitorConfig base;
  base.transform = transform::TransformKind::kCorrelation;
  base.detector = detect::DetectorKind::kClosestPair;

  util::Table table({"knob", "value", "F0.5", "P", "R", "FP", "factor"});

  AddRow(table, "baseline", "(defaults)", BestAtPh30(fleet, base, options.Runtime()));

  for (int window : {120, 300, 480}) {
    core::MonitorConfig config = base;
    config.transform_options.window = window;
    AddRow(table, "correlation window", std::to_string(window) + " min",
           BestAtPh30(fleet, config, options.Runtime()));
  }
  for (double profile : {600.0, 1200.0, 1800.0}) {
    core::MonitorConfig config = base;
    config.profile_minutes = profile;
    AddRow(table, "profile length", util::Table::Num(profile, 0) + " min",
           BestAtPh30(fleet, config, options.Runtime()));
  }
  for (double burn_in : {320.0, 960.0, 1600.0}) {
    core::MonitorConfig config = base;
    config.threshold.burn_in_minutes = burn_in;
    AddRow(table, "calibration burn-in", util::Table::Num(burn_in, 0) + " min",
           BestAtPh30(fleet, config, options.Runtime()));
  }
  for (double minutes : {100.0, 400.0, 800.0}) {
    core::MonitorConfig config = base;
    config.threshold.persistence_minutes = minutes;
    AddRow(table, "persistence", util::Table::Num(minutes, 0) + " min",
           BestAtPh30(fleet, config, options.Runtime()));
  }

  std::printf("\n%s", table.ToString().c_str());
  std::printf("\nreading: short windows raise correlation-estimation noise; "
              "short burn-ins under-estimate healthy score variance; short "
              "persistence admits one-off usage novelty as alarms.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
