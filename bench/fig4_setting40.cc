// Reproduces paper Figure 4: F0.5 of every technique under every data
// transformation on setting40 (all 40 vehicles, 14 of them without recorded
// events), for prediction horizons of 15 and 30 days.
//
// Expected shape (paper §4.1): correlation is the best transformation for
// the similarity-based techniques (closest-pair, Grand); raw data only works
// passably for the learned models (TranAD, XGBoost); delta is weakest;
// setting40 scores below setting26 because the 14 silent vehicles can only
// contribute false positives.
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  const navarchos::util::Args args(argc, argv);
  const auto options = navarchos::bench::BenchOptions::FromArgs(args);
  navarchos::bench::PrintHeader(
      "Figure 4 - F0.5 per transformation x technique, setting40", options);
  const auto grid = navarchos::bench::LoadOrComputeGrid("setting40", options);
  std::printf("\n%s",
              navarchos::bench::RenderSettingFigure(grid, "setting40").c_str());
  std::printf("(threshold factors swept per cell; best F0.5 reported, as in "
              "the paper's protocol)\n");
  navarchos::bench::WriteSettingFigureSvg(grid, "setting40", "fig4", options);
  return 0;
}
