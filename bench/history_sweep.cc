// Cost and determinism of the anomaly history subsystem.
//
// Streams the interleaved setting40 feed through service::FleetService
// with a live history log attached at worker thread counts {1, 4},
// measuring the log's on-disk footprint per vehicle, the raw append
// throughput of HistoryWriter (replaying the captured records into a
// fresh directory), and the RANK / TIMELINE query latency distribution
// (p50/p99 over repeated queries against the live directory). Every pass
// fingerprints the full log contents plus the RANK answer; the exit code
// asserts the history invariant - identical fingerprints across thread
// counts and between the live log and its replay.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "history/history_log.h"
#include "history/history_service.h"
#include "history/query.h"
#include "service/fleet_service.h"
#include "telemetry/stream.h"
#include "util/timer.h"

namespace navarchos {
namespace {

/// Order-sensitive FNV-1a over the bytes of a double sequence.
class Fingerprint {
 public:
  void Add(double value) {
    unsigned char bytes[sizeof(double)];
    __builtin_memcpy(bytes, &value, sizeof(double));
    for (unsigned char byte : bytes) {
      hash_ ^= byte;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Add(std::int64_t value) { Add(static_cast<double>(value)); }
  void Add(std::size_t value) { Add(static_cast<double>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Fingerprints every record of every vehicle log in `dir`, plus the
/// default RANK answer over it - the "query-visible identity" of a log.
std::uint64_t LogFingerprint(const std::string& dir) {
  Fingerprint fp;
  std::vector<history::VehicleLogData> logs;
  if (!history::HistoryReader::ReadDir(dir, &logs).ok()) return 0;
  fp.Add(logs.size());
  for (const history::VehicleLogData& log : logs) {
    fp.Add(static_cast<std::int64_t>(log.vehicle_id));
    fp.Add(log.records.size());
    for (const history::HistoryRecord& record : log.records) {
      fp.Add(static_cast<std::int64_t>(record.global_seq));
      fp.Add(record.timestamp);
      fp.Add(record.score);
      fp.Add(record.threshold);
      fp.Add(static_cast<std::int64_t>(record.alarm ? 1 : 0));
      fp.Add(record.top_channels.size());
      for (const std::uint32_t channel : record.top_channels)
        fp.Add(static_cast<std::int64_t>(channel));
    }
  }
  const history::QueryEngine engine(dir);
  history::RankResult rank;
  if (!engine.Rank(history::RankQuery{}, &rank).ok()) return 0;
  for (const history::RankEntry& entry : rank.entries) {
    fp.Add(static_cast<std::int64_t>(entry.vehicle_id));
    fp.Add(static_cast<std::int64_t>(entry.records));
    fp.Add(static_cast<std::int64_t>(entry.alarms));
    fp.Add(entry.mean_ratio);
    fp.Add(entry.max_ratio);
    fp.Add(entry.last_ts);
  }
  return fp.value();
}

std::uintmax_t DirBytes(const std::string& dir) {
  std::uintmax_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file()) total += entry.file_size();
  return total;
}

double PercentileMs(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0.0;
  const std::size_t rank =
      static_cast<std::size_t>(q * static_cast<double>(samples->size() - 1));
  std::nth_element(samples->begin(),
                   samples->begin() + static_cast<std::ptrdiff_t>(rank),
                   samples->end());
  return (*samples)[rank];
}

struct Measurement {
  int threads = 0;
  std::size_t records = 0;
  double append_records_per_sec = 0.0;
  double segment_bytes_per_vehicle = 0.0;
  double rank_p50_ms = 0.0;
  double rank_p99_ms = 0.0;
  double timeline_p50_ms = 0.0;
  double timeline_p99_ms = 0.0;
  std::uint64_t fingerprint = 0;        ///< Live log + RANK answer.
  std::uint64_t replay_fingerprint = 0; ///< Same, after re-append.
};

service::ServiceConfig ServiceConfigWith(int threads,
                                         const core::MonitorConfig& monitor) {
  service::ServiceConfig config;
  config.monitor = monitor;
  config.runtime = runtime::RuntimeConfig{threads};
  return config;
}

constexpr int kQueryReps = 40;

Measurement MeasureAt(int threads,
                      const std::vector<telemetry::SensorFrame>& stream,
                      const std::vector<std::int32_t>& ids,
                      const core::MonitorConfig& monitor) {
  Measurement m;
  m.threads = threads;
  const std::string live_dir =
      (std::filesystem::temp_directory_path() /
       ("navhist_bench_live_t" + std::to_string(threads)))
          .string();
  const std::string replay_dir =
      (std::filesystem::temp_directory_path() /
       ("navhist_bench_replay_t" + std::to_string(threads)))
          .string();
  std::filesystem::remove_all(live_dir);
  std::filesystem::remove_all(replay_dir);

  // --- Live pass: service run with the log attached. ----------------------
  // The history callback runs inside the ordered release path (serialised),
  // so the side capture into `records` needs no lock.
  std::vector<history::HistoryRecord> records;
  {
    history::HistoryService history(live_dir);
    const util::Status opened = history.Open();
    if (!opened.ok()) {
      std::fprintf(stderr, "history open: %s\n", opened.message().c_str());
      return m;
    }
    service::FleetService svc(ServiceConfigWith(threads, monitor));
    svc.set_history_callback(
        [&history, &records](const history::HistoryRecord& record) {
          history.Append(record);
          records.push_back(record);
        });
    svc.set_checkpoint_barrier([&history] { return history.Flush(); });
    for (const std::int32_t id : ids) svc.RegisterVehicle(id);
    for (const telemetry::SensorFrame& frame : stream) svc.Submit(frame);
    svc.Drain();
    const util::Status flushed = history.Flush();
    if (!flushed.ok() || !history.first_error().ok()) {
      std::fprintf(stderr, "history flush: %s\n",
                   (flushed.ok() ? history.first_error() : flushed)
                       .message()
                       .c_str());
      return m;
    }
    (void)svc.TakeResult();
  }
  m.records = records.size();
  m.segment_bytes_per_vehicle =
      ids.empty() ? 0.0
                  : static_cast<double>(DirBytes(live_dir)) /
                        static_cast<double>(ids.size());

  // --- Append throughput: replay the captured records into a fresh log. ---
  {
    history::HistoryWriter writer;
    if (!writer.Open(replay_dir).ok()) return m;
    util::Timer timer;
    for (const history::HistoryRecord& record : records)
      if (!writer.Append(record).ok()) return m;
    if (!writer.Close().ok()) return m;
    const double seconds = timer.ElapsedSeconds();
    m.append_records_per_sec =
        seconds > 0 ? static_cast<double>(records.size()) / seconds : 0.0;
  }

  // --- Query latency against the live directory. --------------------------
  {
    const history::QueryEngine engine(live_dir);
    history::RankResult rank;
    if (!engine.Rank(history::RankQuery{}, &rank).ok() || rank.entries.empty())
      return m;
    const std::int32_t busiest = rank.entries.front().vehicle_id;

    std::vector<double> rank_ms, timeline_ms;
    rank_ms.reserve(kQueryReps);
    timeline_ms.reserve(kQueryReps);
    for (int rep = 0; rep < kQueryReps; ++rep) {
      util::Timer timer;
      history::RankResult result;
      if (!engine.Rank(history::RankQuery{}, &result).ok()) return m;
      rank_ms.push_back(timer.ElapsedSeconds() * 1e3);
    }
    for (int rep = 0; rep < kQueryReps; ++rep) {
      util::Timer timer;
      history::TimelineQuery query;
      query.vehicle_id = busiest;
      history::TimelineResult result;
      if (!engine.Timeline(query, &result).ok()) return m;
      timeline_ms.push_back(timer.ElapsedSeconds() * 1e3);
    }
    m.rank_p50_ms = PercentileMs(&rank_ms, 0.50);
    m.rank_p99_ms = PercentileMs(&rank_ms, 0.99);
    m.timeline_p50_ms = PercentileMs(&timeline_ms, 0.50);
    m.timeline_p99_ms = PercentileMs(&timeline_ms, 0.99);
  }

  m.fingerprint = LogFingerprint(live_dir);
  m.replay_fingerprint = LogFingerprint(replay_dir);
  std::filesystem::remove_all(live_dir);
  std::filesystem::remove_all(replay_dir);
  return m;
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  // Two full service runs per thread count: default to a reduced horizon
  // so the sweep stays in bench territory. --days overrides.
  if (!args.Has("days")) options.days = 60;
  bench::PrintHeader("History sweep - append throughput, log footprint and "
                     "query latency of the anomaly history store", options);

  const auto fleet = bench::MakeSetting40(options);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  core::MonitorConfig monitor;
  const int hardware = runtime::RuntimeConfig::AllCores().ResolveThreads();
  std::printf("frames: %zu   vehicles: %zu   hardware threads: %d\n\n",
              stream.size(), ids.size(), hardware);

  std::vector<Measurement> measurements;
  for (int threads : {1, 4}) {
    const Measurement m = MeasureAt(threads, stream, ids, monitor);
    std::printf(
        "threads=%-3d %8zu records   %9.0f appends/s   %8.0f B/vehicle   "
        "rank p50 %6.2fms p99 %6.2fms   timeline p50 %6.2fms p99 %6.2fms\n",
        m.threads, m.records, m.append_records_per_sec,
        m.segment_bytes_per_vehicle, m.rank_p50_ms, m.rank_p99_ms,
        m.timeline_p50_ms, m.timeline_p99_ms);
    std::fflush(stdout);
    measurements.push_back(m);
  }

  bool identical = !measurements.empty();
  for (const Measurement& m : measurements)
    identical = identical && m.fingerprint != 0 &&
                m.fingerprint == measurements.front().fingerprint &&
                m.replay_fingerprint == m.fingerprint;
  std::printf("\nlog across thread counts and live vs replay: %s\n",
              identical ? "IDENTICAL" : "MISMATCH");

  std::FILE* json = std::fopen("BENCH_history.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_history.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"history_sweep\",\n");
  bench::WriteBuildMetadata(json);
  std::fprintf(json, "  \"days\": %d,\n  \"seed\": %" PRIu64 ",\n",
               options.days, options.seed);
  std::fprintf(json, "  \"threads\": %d,\n", options.threads);
  std::fprintf(json, "  \"hardware_concurrency\": %d,\n", hardware);
  std::fprintf(json, "  \"frames\": %zu,\n", stream.size());
  std::fprintf(json, "  \"live_equals_replay_across_threads\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"records\": %zu, "
                 "\"append_records_per_sec\": %.1f, "
                 "\"segment_bytes_per_vehicle\": %.1f, "
                 "\"rank_p50_ms\": %.3f, \"rank_p99_ms\": %.3f, "
                 "\"timeline_p50_ms\": %.3f, \"timeline_p99_ms\": %.3f, "
                 "\"fingerprint\": \"%016" PRIx64 "\"}%s\n",
                 m.threads, m.records, m.append_records_per_sec,
                 m.segment_bytes_per_vehicle, m.rank_p50_ms, m.rank_p99_ms,
                 m.timeline_p50_ms, m.timeline_p99_ms, m.fingerprint,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("measurements written to BENCH_history.json\n");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
