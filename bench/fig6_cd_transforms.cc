// Reproduces paper Figure 6: critical-difference ranking of the four data
// transformations via the Friedman test followed by pairwise Wilcoxon
// signed-rank tests with Holm correction (the autorank procedure), at three
// granularities:
//   (a) all techniques,
//   (b) similarity-based techniques only (closest-pair, Grand),
//   (c) learned techniques only (XGBoost, TranAD).
// Paper result: correlation < raw < mean aggregation < delta (rank order),
// consistent at all three granularities; the correlation-vs-raw gap is
// significant for the similarity-based techniques.
#include <cstdio>
#include <set>

#include "bench/common.h"
#include "stats/ranking.h"
#include "util/matrix.h"

namespace navarchos {
namespace {

/// Builds the blocks x transformations score matrix: one block per
/// (setting, PH, technique) combination restricted to `techniques`.
util::Matrix TransformScores(const std::vector<bench::GridRecord>& grid,
                             const std::set<detect::DetectorKind>& techniques) {
  const auto& transforms = eval::PaperTransforms();
  std::vector<std::vector<double>> rows;
  for (const std::string& setting : {std::string("setting40"), std::string("setting26")}) {
    for (int ph : {15, 30}) {
      for (detect::DetectorKind detector : eval::PaperDetectors()) {
        if (techniques.count(detector) == 0) continue;
        std::vector<double> row(transforms.size(), 0.0);
        bool complete = true;
        for (std::size_t t = 0; t < transforms.size(); ++t) {
          bool found = false;
          for (const auto& record : grid) {
            if (record.setting == setting && record.cell.ph_days == ph &&
                record.cell.detector == detector &&
                record.cell.transform == transforms[t]) {
              row[t] = record.cell.metrics.f05;
              found = true;
            }
          }
          complete = complete && found;
        }
        if (complete) rows.push_back(std::move(row));
      }
    }
  }
  return util::Matrix::FromRows(rows);
}

void RunAnalysis(const std::vector<bench::GridRecord>& grid, const char* title,
                 const std::set<detect::DetectorKind>& techniques) {
  std::vector<std::string> names;
  for (auto kind : eval::PaperTransforms())
    names.emplace_back(transform::TransformKindName(kind));
  const util::Matrix scores = TransformScores(grid, techniques);
  const auto result = stats::AnalyzeRanks(scores, names);
  std::printf("\n--- %s (%zu blocks) ---\n", title, scores.rows());
  std::printf("%s", stats::RenderCriticalDifferenceDiagram(result).c_str());
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader("Figure 6 - critical diagrams for data transformations",
                     options);
  auto grid = bench::LoadOrComputeGrid("setting40", options);
  for (auto& record : bench::LoadOrComputeGrid("setting26", options))
    grid.push_back(std::move(record));

  RunAnalysis(grid, "(a) all techniques",
              {detect::DetectorKind::kClosestPair, detect::DetectorKind::kGrand,
               detect::DetectorKind::kTranAd, detect::DetectorKind::kXgBoost});
  RunAnalysis(grid, "(b) similarity-based techniques (closest-pair, Grand)",
              {detect::DetectorKind::kClosestPair, detect::DetectorKind::kGrand});
  RunAnalysis(grid, "(c) learned techniques (XGBoost, TranAD)",
              {detect::DetectorKind::kXgBoost, detect::DetectorKind::kTranAd});
  std::printf("\npaper's ranking: correlation best, then raw, mean "
              "aggregation, delta - consistent at all granularities.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
