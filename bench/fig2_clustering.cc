// Reproduces paper Figure 2 and the §2 data exploration:
//  * day-level (mean, std) aggregation of the six PIDs over the whole fleet,
//  * average-linkage agglomerative clustering cut at 9 clusters,
//  * interpretation of each cluster via fleet metadata (vehicle
//    participation, ride length),
//  * top-1% LOF outliers and their relation to upcoming failures, split
//    into the paper's categories:
//      (a) within 30 days before a failure        (paper: 0%)
//      (b) no failure after the outlier at all    (paper: 11%)
//      (c) at least 31 days before the next one   (paper: 89%)
// The lesson reproduced: raw-space structure reflects vehicle/usage, not
// health.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench/common.h"
#include "neighbors/agglomerative.h"
#include "neighbors/lof.h"
#include "telemetry/filters.h"
#include "transform/day_aggregation.h"
#include "transform/standardizer.h"
#include "util/statistics.h"
#include "util/table.h"

namespace navarchos {
namespace {

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  const int max_points = static_cast<int>(args.GetInt("max-points", 6000));
  bench::PrintHeader("Figure 2 / Section 2 - clustering the day-aggregated fleet",
                     options);

  const auto fleet = bench::MakeSetting40(options);
  std::printf("fleet: %zu records, %zu recorded events, failure-state fractions "
              "PH30=%.1f%% PH15=%.1f%% (paper: 1.5M records, 121 events, 3.6%% / 1.9%%)\n",
              fleet.TotalRecords(), fleet.TotalRecordedEvents(),
              100.0 * fleet.FailureStateFraction(30),
              100.0 * fleet.FailureStateFraction(15));

  // Day aggregation over usable records.
  std::vector<transform::DaySummary> days;
  for (const auto& vehicle : fleet.vehicles) {
    const auto usable = telemetry::FilterRecords(vehicle.records);
    for (auto& summary : transform::AggregateByDay(vehicle.spec.id, usable))
      days.push_back(std::move(summary));
  }
  std::printf("vehicle-days with enough data: %zu\n", days.size());

  // Subsample deterministically if very large (memory of the n^2 matrix).
  if (static_cast<int>(days.size()) > max_points) {
    std::vector<transform::DaySummary> sampled;
    const double step = static_cast<double>(days.size()) / max_points;
    for (double pos = 0.0; pos < static_cast<double>(days.size()); pos += step)
      sampled.push_back(days[static_cast<std::size_t>(pos)]);
    days = std::move(sampled);
    std::printf("subsampled to %zu points for the O(n^2) distance matrix\n",
                days.size());
  }

  std::vector<std::vector<double>> features;
  features.reserve(days.size());
  for (const auto& summary : days) features.push_back(summary.features);
  // Standardise: Euclidean distance across channels of different units.
  transform::Standardizer standardizer;
  standardizer.Fit(features);
  features = standardizer.ApplyAll(features);

  // --- Agglomerative clustering, cut at 9 (as the paper chose). ---
  const auto dendrogram = neighbors::AgglomerativeAverageLinkage(features);
  const auto labels = neighbors::CutToClusters(dendrogram, 9);

  util::Table table({"cluster", "days", "vehicles", "top-vehicle share",
                     "mean km/day", "mean speed", "interpretation"});
  for (int cluster = 0; cluster < 9; ++cluster) {
    std::map<int, int> per_vehicle;
    double km = 0.0, speed = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < days.size(); ++i) {
      if (labels[i] != cluster) continue;
      ++count;
      ++per_vehicle[days[i].vehicle_id];
      km += days[i].km_driven;
      speed += days[i].features[1];  // raw mean speed of the day
    }
    if (count == 0) continue;
    int top_vehicle_days = 0;
    for (const auto& [vehicle, n] : per_vehicle)
      top_vehicle_days = std::max(top_vehicle_days, n);
    const double top_share = static_cast<double>(top_vehicle_days) / count;
    const double mean_km = km / count;
    std::string interpretation;
    if (top_share > 0.7) {
      interpretation = "data of a single vehicle";
    } else if (mean_km > 120.0) {
      interpretation = "long rides";
    } else if (mean_km < 35.0) {
      interpretation = "short rides";
    } else {
      interpretation = "regular rides";
    }
    table.AddRow({std::to_string(cluster), std::to_string(count),
                  std::to_string(per_vehicle.size()),
                  util::Table::Num(top_share, 2), util::Table::Num(mean_km, 1),
                  util::Table::Num(speed / count, 1), interpretation});
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf("(paper: clusters correspond to vehicle identity and usage type; "
              "none corresponds to faulty behaviour)\n");

  // --- LOF top-1% outliers vs upcoming failures. ---
  neighbors::LofModel lof(features, 20);
  const auto scores = lof.FitScores();
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  const std::size_t top = std::max<std::size_t>(1, scores.size() / 100);

  std::map<int, std::vector<telemetry::Minute>> repairs;
  for (const auto& vehicle : fleet.vehicles)
    repairs[vehicle.spec.id] = vehicle.RecordedRepairTimes();

  int category_a = 0, category_b = 0, category_c = 0;
  for (std::size_t rank = 0; rank < top; ++rank) {
    const auto& day = days[order[rank]];
    const telemetry::Minute t = day.day * telemetry::kMinutesPerDay;
    const auto& vehicle_repairs = repairs[day.vehicle_id];
    telemetry::Minute next_repair = -1;
    for (telemetry::Minute repair : vehicle_repairs)
      if (repair >= t && (next_repair < 0 || repair < next_repair)) next_repair = repair;
    if (next_repair < 0) {
      ++category_b;  // no failure after the outlier
    } else if (next_repair - t <= 30 * telemetry::kMinutesPerDay) {
      ++category_a;  // within 30 days of a failure
    } else {
      ++category_c;  // more than 30 days before the next failure
    }
  }
  const double total = static_cast<double>(top);
  std::printf("\ntop-1%% LOF outliers (%zu points) vs next failure of their "
              "vehicle:\n", top);
  std::printf("  (a) within 30 days of a failure : %2d  (%.0f%%)   paper: 0%%\n",
              category_a, 100.0 * category_a / total);
  std::printf("  (b) no failure after outlier    : %2d  (%.0f%%)   paper: 11%%\n",
              category_b, 100.0 * category_b / total);
  std::printf("  (c) >30 days before next failure: %2d  (%.0f%%)   paper: 89%%\n",
              category_c, 100.0 * category_c / total);
  std::printf("\nlesson (paper §2): raw-feature outliers are dominated by "
              "vehicle/usage structure, so distance-based detection on raw "
              "data fails.\nnote: simulated faults (esp. overheating) leave a "
              "stronger raw-space footprint in their final days than the "
              "paper's real faults did, so category (a) is larger here; the "
              "operative conclusion - raw-space methods lose badly to "
              "correlation-space detection - reproduces in Figures 4/5.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
