// Robustness sweep: detection-metric degradation under telemetry corruption.
//
// The paper's fleet stream is clean by construction; real OBD-II transport is
// not. This bench corrupts the simulated fleet with the CorruptionModel at
// increasing severity (multiples of the "moderate" preset: dropout bursts,
// stuck-at runs, NaN channels, spikes, clipping, duplicates, bounded clock
// skew) and runs the best configuration (closest-pair on correlation data,
// setting26) through the hardened monitor at each level. Reported per level:
// event recall / precision / F0.5 at the best swept factor, false-alarm
// episodes per vehicle-month, and the ingest DataQualityReport next to the
// injected-corruption manifest it is judged against.
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "bench/common.h"
#include "eval/metrics.h"
#include "telemetry/corruption.h"
#include "util/csv.h"
#include "util/table.h"

namespace navarchos {
namespace {

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  const int ph_days = static_cast<int>(args.GetInt("ph", 30));
  bench::PrintHeader(
      "Robustness sweep - closest-pair on correlation data, setting26, "
      "corruption severity x detection metrics",
      options);

  const auto fleet = bench::MakeSetting26(options);
  const double vehicle_months = static_cast<double>(fleet.vehicles.size()) *
                                static_cast<double>(options.days) / 30.0;

  core::MonitorConfig config;
  config.transform = transform::TransformKind::kCorrelation;
  config.detector = detect::DetectorKind::kClosestPair;
  config.ingest.drop_stuck_runs = true;  // corruption-hardened policy
  const eval::SweepConfig sweep;

  util::Table table({"severity", "corrupt", "recall", "precision", "F0.5",
                     "FP/veh-mo", "dup m/r", "nan m/r", "reorder m/r",
                     "stuck m/r", "quarantine"});
  util::CsvDocument csv;
  csv.header = {"severity", "corrupted_records", "recall", "precision", "f05",
                "fp_per_vehicle_month", "quarantine_events"};
  for (const double severity : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const telemetry::CorruptionConfig corruption =
        telemetry::CorruptionConfig::Moderate().Scaled(severity);
    telemetry::CorruptionManifest manifest;
    const telemetry::CorruptionModel model(corruption);
    const auto corrupted = model.CorruptFleet(fleet, &manifest);

    const auto run = core::RunFleet(corrupted, config, options.Runtime());
    // The hardened pipeline must never leak non-finite scores, whatever the
    // severity.
    std::size_t non_finite = 0;
    for (const auto& trace : run.scored_samples)
      for (const auto& sample : trace)
        for (double score : sample.scores)
          if (!std::isfinite(score)) ++non_finite;
    if (non_finite > 0) {
      std::printf("FAIL: %zu non-finite scores at severity %.1f\n", non_finite,
                  severity);
      return 1;
    }

    eval::EvalResult best;
    for (double factor : sweep.factors) {
      const auto metrics =
          eval::EvaluateAlarms(run.AlarmsAt(factor), fleet, ph_days);
      if (metrics.f05 > best.f05) best = metrics;
    }

    const core::DataQualityReport quality = run.TotalQuality();
    const auto pair = [](std::size_t manifest_count, std::size_t report_count) {
      return std::to_string(manifest_count) + "/" + std::to_string(report_count);
    };
    table.AddRow(
        {util::Table::Num(severity, 1), std::to_string(manifest.Total()),
         util::Table::Num(best.recall, 2), util::Table::Num(best.precision, 2),
         util::Table::Num(best.f05, 2),
         util::Table::Num(best.false_positive_episodes / vehicle_months, 3),
         pair(manifest.CountOf(telemetry::CorruptionKind::kDuplicate),
              quality.duplicates_dropped),
         pair(manifest.CountOf(telemetry::CorruptionKind::kNanChannel),
              quality.non_finite_dropped),
         pair(manifest.CountOf(telemetry::CorruptionKind::kClockSkew),
              quality.reordered_recovered + quality.late_dropped),
         pair(manifest.CountOf(telemetry::CorruptionKind::kStuckAt),
              quality.stuck_run_records),
         std::to_string(quality.quarantine_events)});
    csv.rows.push_back(
        {util::Table::Num(severity, 1), std::to_string(manifest.Total()),
         util::Table::Num(best.recall, 4), util::Table::Num(best.precision, 4),
         util::Table::Num(best.f05, 4),
         util::Table::Num(best.false_positive_episodes / vehicle_months, 4),
         std::to_string(quality.quarantine_events)});
  }

  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nm/r columns: injected by the corruption manifest / observed by the\n"
      "monitor's DataQualityReport. Duplicates and NaN channels must match\n"
      "exactly when they hit deliverable records; reorder and stuck counts\n"
      "are detection-side views (a skewed record whose displaced neighbours\n"
      "were dropped arrives in order; stuck runs are counted from the run-\n"
      "length threshold onwards). All scores verified finite at every level.\n");

  std::filesystem::create_directories(options.cache_dir);
  const std::string csv_path = options.cache_dir + "/robustness_sweep.csv";
  const util::Status status = util::WriteCsv(csv_path, csv);
  if (status.ok()) std::printf("(csv: %s)\n", csv_path.c_str());
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
