#include "bench/common.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "report/svg.h"
#include "util/csv.h"
#include "util/table.h"

namespace navarchos::bench {

BenchOptions BenchOptions::FromArgs(const util::Args& args) {
  BenchOptions options;
  options.days = static_cast<int>(args.GetInt("days", options.days));
  options.seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));
  options.cache_dir = args.GetString("cache-dir", options.cache_dir);
  options.threads = static_cast<int>(args.GetInt("threads", options.threads));
  return options;
}

telemetry::FleetDataset MakeSetting40(const BenchOptions& options) {
  telemetry::FleetConfig config = telemetry::FleetConfig::PaperScale();
  config.days = options.days;
  config.seed = options.seed;
  return telemetry::GenerateFleet(config, options.Runtime());
}

telemetry::FleetDataset MakeSetting26(const BenchOptions& options) {
  return MakeSetting40(options).ReportingSubset();
}

namespace {

std::string CachePath(const std::string& setting, const BenchOptions& options) {
  char name[128];
  std::snprintf(name, sizeof(name), "grid_%s_d%d_s%llu.csv", setting.c_str(),
                options.days, static_cast<unsigned long long>(options.seed));
  return options.cache_dir + "/" + name;
}

const std::vector<std::string>& GridHeader() {
  static const std::vector<std::string> kHeader = {
      "setting", "transform", "detector", "ph_days",   "f05",
      "f1",      "precision", "recall",   "threshold", "fp_episodes",
      "detected", "total_failures", "runtime_seconds"};
  return kHeader;
}

transform::TransformKind TransformByName(const std::string& name) {
  for (transform::TransformKind kind : eval::PaperTransforms())
    if (name == transform::TransformKindName(kind)) return kind;
  std::fprintf(stderr, "unknown transform in cache: %s\n", name.c_str());
  std::abort();
}

detect::DetectorKind DetectorByName(const std::string& name) {
  for (detect::DetectorKind kind : eval::PaperDetectors())
    if (name == detect::DetectorKindName(kind)) return kind;
  std::fprintf(stderr, "unknown detector in cache: %s\n", name.c_str());
  std::abort();
}

std::vector<GridRecord> ParseGrid(const util::CsvDocument& doc) {
  std::vector<GridRecord> grid;
  for (const auto& row : doc.rows) {
    GridRecord record;
    record.setting = row[0];
    record.cell.transform = TransformByName(row[1]);
    record.cell.detector = DetectorByName(row[2]);
    record.cell.ph_days = std::stoi(row[3]);
    record.cell.metrics.f05 = std::stod(row[4]);
    record.cell.metrics.f1 = std::stod(row[5]);
    record.cell.metrics.precision = std::stod(row[6]);
    record.cell.metrics.recall = std::stod(row[7]);
    record.cell.best_threshold = std::stod(row[8]);
    record.cell.metrics.false_positive_episodes = std::stoi(row[9]);
    record.cell.metrics.detected_failures = std::stoi(row[10]);
    record.cell.metrics.total_failures = std::stoi(row[11]);
    record.cell.runtime_seconds = std::stod(row[12]);
    grid.push_back(std::move(record));
  }
  return grid;
}

util::CsvDocument SerialiseGrid(const std::vector<GridRecord>& grid) {
  util::CsvDocument doc;
  doc.header = GridHeader();
  for (const GridRecord& record : grid) {
    const eval::CellResult& cell = record.cell;
    doc.rows.push_back({record.setting,
                        transform::TransformKindName(cell.transform),
                        detect::DetectorKindName(cell.detector),
                        std::to_string(cell.ph_days),
                        util::Table::Num(cell.metrics.f05, 4),
                        util::Table::Num(cell.metrics.f1, 4),
                        util::Table::Num(cell.metrics.precision, 4),
                        util::Table::Num(cell.metrics.recall, 4),
                        util::Table::Num(cell.best_threshold, 4),
                        std::to_string(cell.metrics.false_positive_episodes),
                        std::to_string(cell.metrics.detected_failures),
                        std::to_string(cell.metrics.total_failures),
                        util::Table::Num(cell.runtime_seconds, 3)});
  }
  return doc;
}

}  // namespace

std::vector<GridRecord> LoadOrComputeGrid(const std::string& setting,
                                          const BenchOptions& options) {
  const std::string path = CachePath(setting, options);
  util::CsvDocument cached;
  if (util::ReadCsv(path, &cached).ok() && !cached.rows.empty()) {
    std::printf("[grid] using cached %s\n", path.c_str());
    return ParseGrid(cached);
  }

  std::printf("[grid] computing %s grid (%d days, seed %llu) - "
              "this runs all 16 transform x technique cells...\n",
              setting.c_str(), options.days,
              static_cast<unsigned long long>(options.seed));
  std::fflush(stdout);
  const telemetry::FleetDataset fleet =
      setting == "setting26" ? MakeSetting26(options) : MakeSetting40(options);
  eval::SweepConfig sweep;
  core::MonitorConfig base;
  const auto cells = eval::RunGrid(fleet, sweep, base, options.Runtime());

  std::vector<GridRecord> grid;
  grid.reserve(cells.size());
  for (const eval::CellResult& cell : cells) grid.push_back({setting, cell});

  // Concurrent bench invocations may race on the cache: tolerate the
  // directory already existing, write to a process-unique temp file, and
  // publish it with an atomic rename so readers never observe a torn CSV.
  std::error_code ec;
  std::filesystem::create_directories(options.cache_dir, ec);
  const std::string temp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const util::Status status = util::WriteCsv(temp_path, SerialiseGrid(grid));
  if (!status.ok()) {
    std::fprintf(stderr, "[grid] cache write failed: %s\n", status.message().c_str());
    return grid;
  }
  std::filesystem::rename(temp_path, path, ec);
  if (ec) {
    std::fprintf(stderr, "[grid] cache publish failed: %s\n", ec.message().c_str());
    std::filesystem::remove(temp_path, ec);
  }
  return grid;
}

std::string RenderSettingFigure(const std::vector<GridRecord>& grid,
                                const std::string& setting) {
  util::Table table({"transform", "technique", "F0.5 PH=15", "(bar)",
                     "F0.5 PH=30", "(bar)", "P@30", "R@30"});
  for (transform::TransformKind transform_kind : eval::PaperTransforms()) {
    for (detect::DetectorKind detector_kind : eval::PaperDetectors()) {
      const GridRecord* ph15 = nullptr;
      const GridRecord* ph30 = nullptr;
      for (const GridRecord& record : grid) {
        if (record.setting != setting || record.cell.transform != transform_kind ||
            record.cell.detector != detector_kind) {
          continue;
        }
        (record.cell.ph_days == 15 ? ph15 : ph30) = &record;
      }
      if (ph15 == nullptr || ph30 == nullptr) continue;
      table.AddRow({transform::TransformKindName(transform_kind),
                    detect::DetectorKindName(detector_kind),
                    util::Table::Num(ph15->cell.metrics.f05, 2),
                    util::AsciiBar(ph15->cell.metrics.f05, 1.0, 20),
                    util::Table::Num(ph30->cell.metrics.f05, 2),
                    util::AsciiBar(ph30->cell.metrics.f05, 1.0, 20),
                    util::Table::Num(ph30->cell.metrics.precision, 2),
                    util::Table::Num(ph30->cell.metrics.recall, 2)});
    }
  }
  return table.ToString();
}

void WriteSettingFigureSvg(const std::vector<GridRecord>& grid,
                           const std::string& setting, const std::string& name,
                           const BenchOptions& options) {
  report::BarChart chart;
  chart.title = name + ": F0.5 at PH=30 (" + setting + ")";
  for (auto transform_kind : eval::PaperTransforms())
    chart.groups.emplace_back(transform::TransformKindName(transform_kind));
  std::size_t colour = 0;
  for (auto detector_kind : eval::PaperDetectors()) {
    report::BarSeries series;
    series.label = detect::DetectorKindName(detector_kind);
    series.colour = report::ColourCycle()[colour++ % report::ColourCycle().size()];
    for (auto transform_kind : eval::PaperTransforms()) {
      double value = 0.0;
      for (const GridRecord& record : grid) {
        if (record.setting == setting && record.cell.ph_days == 30 &&
            record.cell.transform == transform_kind &&
            record.cell.detector == detector_kind) {
          value = record.cell.metrics.f05;
        }
      }
      series.values.push_back(value);
    }
    chart.series.push_back(std::move(series));
  }
  std::filesystem::create_directories(options.cache_dir);
  const std::string path = options.cache_dir + "/" + name + ".svg";
  const util::Status status = report::WriteSvg(path, report::RenderBarChart(chart));
  if (status.ok()) {
    std::printf("figure written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "svg write failed: %s\n", status.message().c_str());
  }
}

void PrintHeader(const std::string& title, const BenchOptions& options) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("fleet: %d days, seed %llu (paper-scale preset; use --days/--seed)\n",
              options.days, static_cast<unsigned long long>(options.seed));
  std::printf("runtime: %d thread(s) (--threads, 0 = all cores; results are "
              "identical at any count)\n",
              options.Runtime().ResolveThreads());
  std::printf("==============================================================\n");
}

// Build type and flags are injected by bench/CMakeLists.txt; default them so
// common.cc still compiles when built outside CMake (e.g. an IDE's single-
// file check).
#ifndef NAVARCHOS_BUILD_TYPE
#define NAVARCHOS_BUILD_TYPE ""
#endif
#ifndef NAVARCHOS_CXX_FLAGS
#define NAVARCHOS_CXX_FLAGS ""
#endif

void WriteBuildMetadata(std::FILE* json) {
#if defined(__clang__)
  std::fprintf(json,
               "  \"build\": {\"compiler\": \"clang\", "
               "\"compiler_version\": \"%d.%d.%d\", ",
               __clang_major__, __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  std::fprintf(json,
               "  \"build\": {\"compiler\": \"gcc\", "
               "\"compiler_version\": \"%d.%d.%d\", ",
               __GNUC__, __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
  std::fprintf(json,
               "  \"build\": {\"compiler\": \"unknown\", "
               "\"compiler_version\": \"\", ");
#endif
  std::fprintf(json, "\"build_type\": \"%s\", \"flags\": \"%s\"},\n",
               NAVARCHOS_BUILD_TYPE, NAVARCHOS_CXX_FLAGS);
}

}  // namespace navarchos::bench
