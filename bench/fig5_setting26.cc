// Reproduces paper Figure 5: F0.5 of every technique under every data
// transformation on setting26 (the 26 vehicles with at least one recorded
// event), for prediction horizons of 15 and 30 days.
//
// Expected shape (paper §4.1): results improve over setting40; the best cell
// is closest-pair on correlation data, whose PH=30 row should approach the
// paper's headline F0.5 = 0.68 (78% precision, 44% recall).
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  const navarchos::util::Args args(argc, argv);
  const auto options = navarchos::bench::BenchOptions::FromArgs(args);
  navarchos::bench::PrintHeader(
      "Figure 5 - F0.5 per transformation x technique, setting26", options);
  const auto grid = navarchos::bench::LoadOrComputeGrid("setting26", options);
  std::printf("\n%s",
              navarchos::bench::RenderSettingFigure(grid, "setting26").c_str());
  std::printf("(threshold factors swept per cell; best F0.5 reported, as in "
              "the paper's protocol)\n");
  navarchos::bench::WriteSettingFigureSvg(grid, "setting26", "fig5", options);
  return 0;
}
