// Reproduces paper Figure 8: the per-feature anomaly-score trace of one
// repair-bearing vehicle under the complete solution (closest-pair on
// correlation data), with the self-tuning threshold per feature, the
// service/repair events, and the aggregated alarm row with TP/FP windows.
//
// Rendered as text: one sparkline row per correlation feature (score
// relative to its threshold: '.' far below, ':' near, '!' violation), event
// markers, and the alarm row.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "eval/metrics.h"
#include "report/svg.h"

namespace navarchos {
namespace {

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader(
      "Figure 8 - anomaly-score trace of one vehicle (closest-pair on "
      "correlations)",
      options);

  const auto fleet = bench::MakeSetting26(options);

  core::MonitorConfig config;
  config.transform = transform::TransformKind::kCorrelation;
  config.detector = detect::DetectorKind::kClosestPair;
  config.threshold.factor = static_cast<double>(args.GetDouble("factor", 14.0));
  const auto run = core::RunFleet(fleet, config, options.Runtime());

  // Pick the repair-bearing vehicle with the most scored samples.
  std::size_t best_vehicle = 0;
  std::size_t best_samples = 0;
  for (std::size_t v = 0; v < fleet.vehicles.size(); ++v) {
    if (fleet.vehicles[v].RecordedRepairTimes().empty()) continue;
    if (run.scored_samples[v].size() > best_samples) {
      best_samples = run.scored_samples[v].size();
      best_vehicle = v;
    }
  }
  const auto& vehicle = fleet.vehicles[best_vehicle];
  const auto& samples = run.scored_samples[best_vehicle];
  const auto& calibrations = run.calibrations[best_vehicle];
  std::printf("vehicle %s: %zu scored samples, %zu reference cycles\n",
              vehicle.spec.DisplayName().c_str(), samples.size(),
              calibrations.size());

  // Day-resolution grid: worst score/threshold ratio per feature per column.
  const int step = std::max(1, options.days / 110);
  const std::size_t columns = static_cast<std::size_t>(options.days / step + 1);
  const std::size_t channels = run.channel_names.size();
  std::vector<std::vector<double>> ratio(channels, std::vector<double>(columns, 0.0));
  for (const auto& sample : samples) {
    const std::size_t column =
        std::min(columns - 1, static_cast<std::size_t>(telemetry::DayOf(sample.timestamp)) /
                                  static_cast<std::size_t>(step));
    const auto& stats = calibrations[static_cast<std::size_t>(sample.calibration_index)];
    for (std::size_t c = 0; c < channels; ++c) {
      const double threshold =
          stats.mean[c] + config.threshold.factor * stats.stddev[c];
      if (threshold > 1e-12)
        ratio[c][column] = std::max(ratio[c][column], sample.scores[c] / threshold);
    }
  }

  std::printf("\nper-feature score vs self-tuning threshold "
              "(' '=no data, '.'<50%%, ':'<100%%, '!'=violation):\n\n");
  for (std::size_t c = 0; c < channels; ++c) {
    std::string line(columns, ' ');
    for (std::size_t col = 0; col < columns; ++col) {
      const double r = ratio[c][col];
      if (r <= 0.0) continue;
      line[col] = r >= 1.0 ? '!' : r >= 0.5 ? ':' : '.';
    }
    std::printf("%-28s |%s|\n", run.channel_names[c].c_str(), line.c_str());
  }

  // Event row.
  std::string events(columns, ' ');
  for (const auto& event : vehicle.RecordedEvents()) {
    const std::size_t column =
        std::min(columns - 1, static_cast<std::size_t>(telemetry::DayOf(event.timestamp)) /
                                  static_cast<std::size_t>(step));
    if (event.type == telemetry::EventType::kRepair) {
      events[column] = 'R';
    } else if (event.type == telemetry::EventType::kService && events[column] != 'R') {
      events[column] = 'S';
    }
  }
  std::printf("%-28s |%s|  (R=repair/failure, S=service)\n", "events", events.c_str());

  // Aggregated alarm row with TP/FP marking at PH=30.
  const auto alarms = core::AlarmsForThreshold(samples, calibrations,
                                               config.threshold.factor,
                                               run.persistence_window,
                                               run.persistence_min, run.channel_names);
  const auto repairs = vehicle.RecordedRepairTimes();
  std::string alarm_row(columns, ' ');
  for (const auto& alarm : alarms) {
    const std::size_t column =
        std::min(columns - 1, static_cast<std::size_t>(telemetry::DayOf(alarm.timestamp)) /
                                  static_cast<std::size_t>(step));
    bool tp = false;
    for (telemetry::Minute repair : repairs) {
      if (alarm.timestamp <= repair &&
          alarm.timestamp > repair - 30 * telemetry::kMinutesPerDay) {
        tp = true;
      }
    }
    alarm_row[column] = tp ? 'T' : 'F';
  }
  std::printf("%-28s |%s|  (T=true-positive alarm day, F=false)\n", "alarms",
              alarm_row.c_str());

  if (!alarms.empty()) {
    std::map<std::string, int> by_channel;
    for (const auto& alarm : alarms) ++by_channel[alarm.channel_name];
    std::printf("\nalarm attribution:");
    for (const auto& [channel, count] : by_channel)
      std::printf("  %s x%d", channel.c_str(), count);
    std::printf("\n");
  }
  std::printf("\nnote (paper §4.2): thresholds differ per feature and change at "
              "every reference rebuild triggered by a service/repair event.\n");

  // SVG companion: the three highest-signal channels as traces with their
  // per-cycle thresholds, plus event markers.
  report::TraceChart svg_chart;
  svg_chart.title = "fig8: anomaly scores of " + vehicle.spec.DisplayName();
  svg_chart.x_label = "day";
  std::vector<std::pair<double, std::size_t>> channel_peaks;
  for (std::size_t c = 0; c < channels; ++c) {
    double peak = 0.0;
    for (std::size_t col = 0; col < columns; ++col) peak = std::max(peak, ratio[c][col]);
    channel_peaks.emplace_back(peak, c);
  }
  std::sort(channel_peaks.rbegin(), channel_peaks.rend());
  for (std::size_t rank = 0; rank < std::min<std::size_t>(3, channel_peaks.size());
       ++rank) {
    const std::size_t c = channel_peaks[rank].second;
    report::TraceSeries series;
    series.label = run.channel_names[c];
    series.colour = report::ColourCycle()[rank];
    for (const auto& sample : samples) {
      series.x.push_back(static_cast<double>(telemetry::DayOf(sample.timestamp)));
      series.y.push_back(sample.scores[c]);
    }
    svg_chart.series.push_back(std::move(series));
    // Matching threshold line (per calibration cycle).
    report::TraceSeries threshold_series;
    threshold_series.label = "thr:" + run.channel_names[c];
    threshold_series.colour = report::ColourCycle()[rank];
    threshold_series.dashed = true;
    for (const auto& sample : samples) {
      const auto& stats =
          calibrations[static_cast<std::size_t>(sample.calibration_index)];
      threshold_series.x.push_back(
          static_cast<double>(telemetry::DayOf(sample.timestamp)));
      threshold_series.y.push_back(stats.mean[c] +
                                   config.threshold.factor * stats.stddev[c]);
    }
    svg_chart.series.push_back(std::move(threshold_series));
  }
  for (const auto& event : vehicle.RecordedEvents()) {
    if (event.type == telemetry::EventType::kRepair) {
      svg_chart.markers.push_back(
          {static_cast<double>(telemetry::DayOf(event.timestamp)), "R", "#cc3311"});
    } else if (event.type == telemetry::EventType::kService) {
      svg_chart.markers.push_back(
          {static_cast<double>(telemetry::DayOf(event.timestamp)), "S", "#999933"});
    }
  }
  const std::string svg_path = options.cache_dir + "/fig8.svg";
  if (report::WriteSvg(svg_path, report::RenderTraceChart(svg_chart)).ok())
    std::printf("figure written to %s\n", svg_path.c_str());
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
