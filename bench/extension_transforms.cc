// Beyond the paper's four transformations: §3.1 lists "delta transformation,
// correlation between signals, frequency-domain transformation, histograms,
// and others" as the candidate step-1 choices but evaluates only four. This
// bench completes the exploration: all seven implemented transformations
// under the adopted detector (closest-pair), setting26, best F0.5 per
// prediction horizon.
#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "util/table.h"

namespace navarchos {
namespace {

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader(
      "Extension - all seven transformations under closest-pair, setting26",
      options);

  const auto fleet = bench::MakeSetting26(options);
  const eval::SweepConfig sweep;

  util::Table table({"transformation", "features", "F0.5@15", "F0.5@30",
                     "P@30", "R@30", "FP@30"});
  for (auto transform_kind :
       {transform::TransformKind::kRaw, transform::TransformKind::kDelta,
        transform::TransformKind::kMeanAggregation,
        transform::TransformKind::kCorrelation, transform::TransformKind::kHistogram,
        transform::TransformKind::kSpectral, transform::TransformKind::kSax}) {
    core::MonitorConfig config;
    config.transform = transform_kind;
    config.detector = detect::DetectorKind::kClosestPair;
    const auto run = core::RunFleet(fleet, config, options.Runtime());

    eval::EvalResult best15, best30;
    for (double factor : sweep.factors) {
      const auto alarms = run.AlarmsAt(factor);
      const auto at15 = eval::EvaluateAlarms(alarms, fleet, 15);
      const auto at30 = eval::EvaluateAlarms(alarms, fleet, 30);
      if (at15.f05 > best15.f05) best15 = at15;
      if (at30.f05 > best30.f05) best30 = at30;
    }
    const auto transformer = transform::MakeTransformer(transform_kind);
    table.AddRow({transform::TransformKindName(transform_kind),
                  std::to_string(transformer->FeatureCount()),
                  util::Table::Num(best15.f05, 2), util::Table::Num(best30.f05, 2),
                  util::Table::Num(best30.precision, 2),
                  util::Table::Num(best30.recall, 2),
                  std::to_string(best30.false_positive_episodes)});
    std::fflush(stdout);
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf("\nreading: the histogram and spectral options capture marginal "
              "shape and dynamics respectively; SAX ('artificial events', the "
              "paper's future-work direction) discretises both. None of them "
              "needs to beat correlation for the framework to be useful - "
              "step 1 is a pluggable choice.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
