// Beyond the paper's four techniques: the related-work detectors the paper
// names but does not evaluate - the isolation forest of Khan et al. 2019
// ("could become an option for the third step ... but XGBoost is expected to
// behave at least as well as IF") and the MLP regression scheme of Massaro
// et al. 2020 - compared against the paper's four on correlation data
// (setting26, best F0.5 per technique at each prediction horizon).
#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "util/table.h"

namespace navarchos {
namespace {

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader(
      "Extension - all six techniques on correlation data, setting26", options);

  const auto fleet = bench::MakeSetting26(options);
  const eval::SweepConfig sweep;

  util::Table table({"technique", "F0.5@15", "F0.5@30", "P@30", "R@30", "FP@30"});
  for (auto detector : {detect::DetectorKind::kClosestPair,
                        detect::DetectorKind::kGrand, detect::DetectorKind::kTranAd,
                        detect::DetectorKind::kXgBoost,
                        detect::DetectorKind::kIsolationForest,
                        detect::DetectorKind::kMlp}) {
    core::MonitorConfig config;
    config.transform = transform::TransformKind::kCorrelation;
    config.detector = detector;
    const auto run = core::RunFleet(fleet, config, options.Runtime());

    const bool probability = detector == detect::DetectorKind::kGrand ||
                             detector == detect::DetectorKind::kIsolationForest;
    const auto& thresholds = probability ? sweep.constants : sweep.factors;
    eval::EvalResult best15, best30;
    for (double threshold : thresholds) {
      const auto alarms = run.AlarmsAt(threshold);
      const auto at15 = eval::EvaluateAlarms(alarms, fleet, 15);
      const auto at30 = eval::EvaluateAlarms(alarms, fleet, 30);
      if (at15.f05 > best15.f05) best15 = at15;
      if (at30.f05 > best30.f05) best30 = at30;
    }
    table.AddRow({detect::DetectorKindName(detector),
                  util::Table::Num(best15.f05, 2), util::Table::Num(best30.f05, 2),
                  util::Table::Num(best30.precision, 2),
                  util::Table::Num(best30.recall, 2),
                  std::to_string(best30.false_positive_episodes)});
    std::fflush(stdout);
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf("\npaper's expectation (§5): XGBoost should behave at least as "
              "well as the isolation forest; the MLP is the simpler ancestor "
              "of the per-feature regression idea.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
