// Seed sensitivity of the headline result.
//
// The paper evaluates ONE fleet-year (its real dataset). The simulator can
// generate many: this bench reruns the complete solution over several seeds
// and reports the spread of the headline metrics (setting26, PH=30). The
// recall ceiling is structural - a failure whose reference/calibration
// period overlaps its own degradation window (because a service reset
// landed inside the fault lead) is undetectable by construction - and how
// many failures that affects varies by realisation.
//
// Seeds are independent realisations, so they dispatch one-per-task on the
// shared pool (--threads); each seed's own synthesis and monitoring run
// serially inside its task. Results are collected index-aligned, so the
// report is byte-identical to the serial run at any thread count.
#include <cstdio>

#include "bench/common.h"
#include "eval/metrics.h"
#include "runtime/parallel.h"
#include "util/statistics.h"
#include "util/table.h"

namespace navarchos {
namespace {

/// One seed's best-threshold headline metrics.
struct SeedOutcome {
  std::uint64_t seed = 0;
  eval::EvalResult best;
};

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  const int num_seeds = static_cast<int>(args.GetInt("seeds", 5));
  bench::PrintHeader("Seed sensitivity - closest-pair on correlation data, "
                     "setting26, PH=30", options);

  const eval::SweepConfig sweep;
  const auto outcomes = runtime::ParallelMap<SeedOutcome>(
      options.Runtime(), static_cast<std::size_t>(num_seeds),
      [&options, &sweep](std::size_t s) {
        bench::BenchOptions seeded = options;
        seeded.seed = options.seed + static_cast<std::uint64_t>(s) * 57;
        seeded.threads = 1;  // The outer map owns the parallelism.
        const auto fleet = bench::MakeSetting26(seeded);
        core::MonitorConfig config;
        config.transform = transform::TransformKind::kCorrelation;
        config.detector = detect::DetectorKind::kClosestPair;
        const auto run = core::RunFleet(fleet, config, seeded.Runtime());

        SeedOutcome outcome;
        outcome.seed = seeded.seed;
        for (double factor : sweep.factors) {
          const auto metrics =
              eval::EvaluateAlarms(run.AlarmsAt(factor), fleet, 30);
          if (metrics.f05 > outcome.best.f05) outcome.best = metrics;
        }
        return outcome;
      });

  util::Table table({"seed", "best F0.5", "P", "R", "detected", "FP"});
  std::vector<double> f05s, precisions, recalls;
  for (const SeedOutcome& outcome : outcomes) {
    const eval::EvalResult& best = outcome.best;
    table.AddRow({std::to_string(outcome.seed), util::Table::Num(best.f05, 2),
                  util::Table::Num(best.precision, 2),
                  util::Table::Num(best.recall, 2),
                  std::to_string(best.detected_failures) + "/" +
                      std::to_string(best.total_failures),
                  std::to_string(best.false_positive_episodes)});
    f05s.push_back(best.f05);
    precisions.push_back(best.precision);
    recalls.push_back(best.recall);
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf("\nacross %d fleet realisations: F0.5 %.2f +- %.2f, precision "
              "%.2f +- %.2f, recall %.2f +- %.2f\n",
              num_seeds, util::Mean(f05s), util::StdDev(f05s),
              util::Mean(precisions), util::StdDev(precisions),
              util::Mean(recalls), util::StdDev(recalls));
  std::printf("(the paper's single realisation reported F0.5 0.68, precision "
              "0.78, recall 0.44)\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
