// Throughput and latency of the streaming fleet service.
//
// Replays the interleaved setting40 feed through service::FleetService at
// threads in {1, 2, 4, hardware_concurrency}, measuring end-to-end
// frames/sec and the per-frame latency distribution (submit to ordered
// release, p50/p99) via the service's completion callback. Every thread
// count must produce a bit-identical run result - the replay-equals-live
// invariant - and the exit code reflects exactly that; speedups are
// reported for the perf trajectory but depend on the host's core count
// (a single-core host necessarily measures ~1x).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/common.h"
#include "service/fleet_service.h"
#include "telemetry/stream.h"
#include "util/timer.h"

namespace navarchos {
namespace {

/// Order-sensitive FNV-1a over the bytes of a double sequence.
class Fingerprint {
 public:
  void Add(double value) {
    unsigned char bytes[sizeof(double)];
    __builtin_memcpy(bytes, &value, sizeof(double));
    for (unsigned char byte : bytes) {
      hash_ ^= byte;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Add(std::int64_t value) { Add(static_cast<double>(value)); }
  void Add(std::size_t value) { Add(static_cast<double>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t RunFingerprint(const core::FleetRunResult& run) {
  Fingerprint fp;
  fp.Add(run.alarms.size());
  for (const auto& alarm : run.alarms) {
    fp.Add(static_cast<std::int64_t>(alarm.vehicle_id));
    fp.Add(alarm.timestamp);
    fp.Add(alarm.score);
    fp.Add(alarm.threshold);
  }
  for (const auto& samples : run.scored_samples) {
    fp.Add(samples.size());
    for (const auto& sample : samples)
      for (double score : sample.scores) fp.Add(score);
  }
  for (const auto& quality : run.quality) {
    fp.Add(quality.records_seen);
    fp.Add(quality.RecordsDropped());
  }
  return fp.value();
}

struct Measurement {
  int threads = 0;
  double seconds = 0.0;
  double frames_per_sec = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  std::uint64_t fingerprint = 0;
};

double PercentileUs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies->size() - 1));
  std::nth_element(latencies->begin(),
                   latencies->begin() + static_cast<std::ptrdiff_t>(rank),
                   latencies->end());
  return (*latencies)[rank];
}

Measurement MeasureAt(int threads,
                      const std::vector<telemetry::SensorFrame>& stream,
                      const std::vector<std::int32_t>& ids,
                      const core::MonitorConfig& monitor) {
  using Clock = std::chrono::steady_clock;
  Measurement m;
  m.threads = threads;

  service::ServiceConfig config;
  config.monitor = monitor;
  config.runtime = runtime::RuntimeConfig{threads};
  service::FleetService svc(config);

  // Under kBlock every frame is admitted, so global_seq == submission
  // index: submit timestamps land in a plain index-aligned vector and the
  // completion callback (serialised by the sink) reads its own slot.
  std::vector<Clock::time_point> submitted(stream.size());
  std::vector<double> latencies_us(stream.size(), 0.0);
  svc.set_completion_callback(
      [&submitted, &latencies_us](const service::FrameCompletion& c) {
        const auto delta = Clock::now() - submitted[c.global_seq];
        latencies_us[c.global_seq] =
            std::chrono::duration<double, std::micro>(delta).count();
      });
  for (const std::int32_t id : ids) svc.RegisterVehicle(id);

  util::Timer timer;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    submitted[i] = Clock::now();
    svc.Submit(stream[i]);
  }
  svc.Drain();
  m.seconds = timer.ElapsedSeconds();
  m.frames_per_sec =
      m.seconds > 0 ? static_cast<double>(stream.size()) / m.seconds : 0.0;
  m.p50_latency_us = PercentileUs(&latencies_us, 0.50);
  m.p99_latency_us = PercentileUs(&latencies_us, 0.99);
  m.fingerprint = RunFingerprint(svc.TakeResult());
  return m;
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  // Four full passes over the feed: default to a reduced fleet-quarter so
  // the sweep stays in bench territory. --days overrides as usual.
  if (!args.Has("days")) options.days = 90;
  bench::PrintHeader("Streaming throughput - frames/sec and per-frame "
                     "latency of the fleet service", options);

  const auto fleet = bench::MakeSetting40(options);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  core::MonitorConfig monitor;
  const int hardware = runtime::RuntimeConfig::AllCores().ResolveThreads();
  std::printf("frames: %zu   vehicles: %zu   hardware threads: %d\n\n",
              stream.size(), ids.size(), hardware);

  std::set<int> counts = {1, 2, 4, hardware};
  std::vector<Measurement> measurements;
  for (int threads : counts) {
    const Measurement m = MeasureAt(threads, stream, ids, monitor);
    std::printf("threads=%-3d %8.2fs   %9.0f frames/s   p50 %8.1fus   "
                "p99 %9.1fus\n",
                m.threads, m.seconds, m.frames_per_sec, m.p50_latency_us,
                m.p99_latency_us);
    std::fflush(stdout);
    measurements.push_back(m);
  }

  // Replay-equals-live: every thread count must produce the identical run.
  bool identical = true;
  for (const auto& m : measurements)
    identical = identical && m.fingerprint == measurements[0].fingerprint;
  std::printf("\ndeterminism across thread counts: %s\n",
              identical ? "IDENTICAL" : "MISMATCH");

  const Measurement& serial = measurements.front();
  std::FILE* json = std::fopen("BENCH_streaming.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_streaming.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"streaming_throughput\",\n");
  bench::WriteBuildMetadata(json);
  std::fprintf(json, "  \"days\": %d,\n  \"seed\": %" PRIu64 ",\n",
               options.days, options.seed);
  std::fprintf(json, "  \"threads\": %d,\n", options.threads);
  std::fprintf(json, "  \"hardware_concurrency\": %d,\n", hardware);
  std::fprintf(json, "  \"frames\": %zu,\n", stream.size());
  std::fprintf(json, "  \"deterministic_across_thread_counts\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"seconds\": %.3f, "
                 "\"frames_per_sec\": %.1f, \"p50_latency_us\": %.1f, "
                 "\"p99_latency_us\": %.1f, \"speedup_vs_1\": %.2f}%s\n",
                 m.threads, m.seconds, m.frames_per_sec, m.p50_latency_us,
                 m.p99_latency_us,
                 m.seconds > 0 ? serial.seconds / m.seconds : 0.0,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("measurements written to BENCH_streaming.json\n");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
