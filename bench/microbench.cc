// Component-level microbenchmarks (google-benchmark): the computational
// primitives behind Table 1's wall-clock numbers. Useful when tuning the
// library: the correlation window, closest-pair scoring and the conformal
// machinery dominate the online path; GBT and TranAD dominate fitting.
#include <benchmark/benchmark.h>

#include "detect/closest_pair.h"
#include "detect/gbt.h"
#include "detect/grand.h"
#include "detect/nn/tranad.h"
#include "neighbors/lof.h"
#include "transform/basic_transforms.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace navarchos {
namespace {

std::vector<std::vector<double>> RandomRef(int n, int dims, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> ref(static_cast<std::size_t>(n));
  for (auto& row : ref) {
    row.resize(static_cast<std::size_t>(dims));
    for (double& value : row) value = rng.Gaussian();
  }
  return ref;
}

void BM_PearsonCorrelationWindow(benchmark::State& state) {
  util::Rng rng(1);
  const int window = static_cast<int>(state.range(0));
  std::vector<double> x(static_cast<std::size_t>(window)), y(x);
  for (int i = 0; i < window; ++i) {
    x[static_cast<std::size_t>(i)] = rng.Gaussian();
    y[static_cast<std::size_t>(i)] = rng.Gaussian();
  }
  for (auto _ : state) benchmark::DoNotOptimize(util::PearsonCorrelation(x, y));
}
BENCHMARK(BM_PearsonCorrelationWindow)->Arg(120)->Arg(300)->Arg(480);

void BM_CorrelationTransformStep(benchmark::State& state) {
  transform::TransformOptions options;
  options.window = static_cast<int>(state.range(0));
  options.stride = 1;  // force feature computation every step
  transform::CorrelationTransform transformer(options);
  util::Rng rng(2);
  telemetry::Record record;
  // Pre-fill the window.
  for (int i = 0; i < options.window; ++i) {
    for (int k = 0; k < telemetry::kNumPids; ++k)
      record.pids[static_cast<std::size_t>(k)] = rng.Gaussian();
    record.timestamp = i;
    transformer.Collect(record);
  }
  for (auto _ : state) {
    for (int k = 0; k < telemetry::kNumPids; ++k)
      record.pids[static_cast<std::size_t>(k)] = rng.Gaussian();
    ++record.timestamp;
    benchmark::DoNotOptimize(transformer.Collect(record));
  }
}
BENCHMARK(BM_CorrelationTransformStep)->Arg(300);

void BM_ClosestPairScore(benchmark::State& state) {
  detect::ClosestPairDetector detector;
  detector.Fit(RandomRef(static_cast<int>(state.range(0)), 15, 3));
  util::Rng rng(4);
  std::vector<double> sample(15);
  for (auto _ : state) {
    for (double& value : sample) value = rng.Gaussian();
    benchmark::DoNotOptimize(detector.Score(sample));
  }
}
BENCHMARK(BM_ClosestPairScore)->Arg(60)->Arg(240);

void BM_GrandScore(benchmark::State& state) {
  detect::GrandConfig config;
  config.ncm = static_cast<detect::GrandNcm>(state.range(0));
  detect::GrandDetector detector(config);
  detector.Fit(RandomRef(60, 15, 5));
  util::Rng rng(6);
  std::vector<double> sample(15);
  for (auto _ : state) {
    for (double& value : sample) value = rng.Gaussian();
    benchmark::DoNotOptimize(detector.Score(sample));
  }
}
BENCHMARK(BM_GrandScore)->Arg(0)->Arg(1)->Arg(2);  // median / knn / lof

void BM_LofQuery(benchmark::State& state) {
  neighbors::LofModel lof(RandomRef(static_cast<int>(state.range(0)), 12, 7), 10);
  util::Rng rng(8);
  std::vector<double> query(12);
  for (auto _ : state) {
    for (double& value : query) value = rng.Gaussian();
    benchmark::DoNotOptimize(lof.Score(query));
  }
}
BENCHMARK(BM_LofQuery)->Arg(60)->Arg(500);

void BM_GbtFit(benchmark::State& state) {
  const auto x = RandomRef(static_cast<int>(state.range(0)), 14, 9);
  util::Rng rng(10);
  std::vector<double> y;
  for (const auto& row : x) y.push_back(row[0] * 2.0 + rng.Gaussian(0, 0.1));
  for (auto _ : state) {
    detect::GbtRegressor model;
    model.Fit(x, y);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_GbtFit)->Arg(60)->Arg(240)->Unit(benchmark::kMillisecond);

void BM_TranAdScoreWindow(benchmark::State& state) {
  detect::nn::TranAdParams params;
  params.window = 10;
  params.epochs = 1;
  params.max_windows_per_epoch = 8;
  detect::nn::TranAdModel model(6, params);
  util::Rng rng(11);
  detect::nn::Matrix window(10, 6);
  for (double& value : window.Data()) value = rng.Gaussian();
  for (auto _ : state) benchmark::DoNotOptimize(model.Score(window));
}
BENCHMARK(BM_TranAdScoreWindow);

void BM_TranAdTrainEpoch(benchmark::State& state) {
  detect::nn::TranAdParams params;
  params.window = 10;
  params.epochs = 1;
  params.max_windows_per_epoch = 50;
  util::Rng rng(12);
  std::vector<detect::nn::Matrix> windows;
  for (int i = 0; i < 50; ++i) {
    detect::nn::Matrix window(10, 6);
    for (double& value : window.Data()) value = rng.Gaussian();
    windows.push_back(std::move(window));
  }
  for (auto _ : state) {
    detect::nn::TranAdModel model(6, params);
    model.Train(windows);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_TranAdTrainEpoch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace navarchos

BENCHMARK_MAIN();
