// Grand reference-strategy ablation (paper §3.4).
//
// The original Grand (Rognvaldsson et al. 2018) models normality from the
// "wisdom of the crowd": a vehicle's peers. The paper argues that in a
// heterogeneous fleet this fails - "vehicles differ from each other, and so,
// we follow another strategy ... formed using an operation period of the
// same vehicle". This bench makes the argument quantitative by running Grand
// with a (self) per-vehicle reference vs a (fleet) reference pooled from
// other vehicles, on two feature spaces:
//   * mean-aggregated features, where vehicle heterogeneity lives - here the
//     fleet reference should misclassify healthy operation as strange;
//   * correlation features, which are largely vehicle-invariant - here the
//     two references should behave comparably.
// Reported metric per (vehicle, strategy): the fraction of samples with a
// conformal p-value below 0.05 ("strange") during healthy vs pre-failure
// periods.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "detect/grand.h"
#include "eval/metrics.h"
#include "telemetry/filters.h"
#include "transform/transformer.h"
#include "util/statistics.h"
#include "util/table.h"

namespace navarchos {
namespace {

/// Transformed samples of one vehicle's usable records.
std::vector<transform::TransformedSample> Samples(
    const telemetry::VehicleHistory& vehicle, transform::TransformKind kind) {
  const auto transformer = transform::MakeTransformer(kind);
  return transform::TransformAll(*transformer,
                                 telemetry::FilterRecords(vehicle.records));
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  bench::PrintHeader("Ablation - Grand reference strategy: self vs fleet",
                     options);

  const auto fleet = bench::MakeSetting26(options);

  for (const auto transform_kind : {transform::TransformKind::kMeanAggregation,
                                    transform::TransformKind::kCorrelation}) {
  std::printf("\n### feature space: %s\n",
              transform::TransformKindName(transform_kind));
  std::vector<std::vector<transform::TransformedSample>> samples;
  samples.reserve(fleet.vehicles.size());
  for (const auto& vehicle : fleet.vehicles)
    samples.push_back(Samples(vehicle, transform_kind));

  util::Table table({"vehicle", "fault", "strategy", "strange-rate healthy",
                     "strange-rate pre-failure", "separation"});
  double self_healthy_sum = 0.0, fleet_healthy_sum = 0.0;
  double self_separation_sum = 0.0, fleet_separation_sum = 0.0;
  int counted = 0;
  for (std::size_t v = 0; v < fleet.vehicles.size(); ++v) {
    const auto& vehicle = fleet.vehicles[v];
    if (vehicle.faults.empty()) continue;
    const auto& fault = vehicle.faults[0];
    if (samples[v].size() < 200) continue;

    // Healthy head of this vehicle's own stream as the "self" reference.
    // Both references are capped at the same size: the conformal p-value
    // floor is 1/(n+1), so unequal reference sizes would distort the
    // comparison.
    constexpr std::size_t kReferenceSize = 180;
    std::vector<std::vector<double>> self_reference;
    for (const auto& sample : samples[v]) {
      if (sample.timestamp >= fault.onset) break;
      self_reference.push_back(sample.features);
      if (self_reference.size() >= kReferenceSize) break;
    }

    // Pooled healthy samples of all OTHER vehicles as the "fleet" reference,
    // spread evenly across them.
    std::vector<std::vector<double>> fleet_reference;
    const std::size_t per_vehicle =
        kReferenceSize / std::max<std::size_t>(1, fleet.vehicles.size() - 1) + 1;
    for (std::size_t other = 0; other < fleet.vehicles.size() &&
                                fleet_reference.size() < kReferenceSize; ++other) {
      if (other == v) continue;
      std::size_t taken = 0;
      for (const auto& sample : samples[other]) {
        bool in_fault = false;
        for (const auto& other_fault : fleet.vehicles[other].faults)
          if (sample.timestamp >= other_fault.onset &&
              sample.timestamp < other_fault.repair_time)
            in_fault = true;
        if (in_fault) continue;
        fleet_reference.push_back(sample.features);
        if (++taken >= per_vehicle || fleet_reference.size() >= kReferenceSize) break;
      }
    }
    if (self_reference.size() < 60 || fleet_reference.size() < 60) continue;

    for (const bool use_self : {true, false}) {
      detect::GrandDetector grand;
      grand.Fit(use_self ? self_reference : fleet_reference);
      // Operational metric: how often does each period look "strange"
      // (p below 0.05)? A useful reference keeps the healthy rate low and
      // the pre-failure rate high.
      int healthy_strange = 0, healthy_count = 0;
      int failing_strange = 0, failing_count = 0;
      for (const auto& sample : samples[v]) {
        grand.Score(sample.features);
        const bool strange = grand.last_p_value() < 0.05;
        if (sample.timestamp >= fault.onset && sample.timestamp < fault.repair_time) {
          ++failing_count;
          failing_strange += strange ? 1 : 0;
        } else if (sample.timestamp < fault.onset) {
          ++healthy_count;
          healthy_strange += strange ? 1 : 0;
        }
      }
      if (healthy_count < 20 || failing_count < 10) continue;
      const double healthy_rate =
          static_cast<double>(healthy_strange) / healthy_count;
      const double failing_rate =
          static_cast<double>(failing_strange) / failing_count;
      const double separation = failing_rate / std::max(0.01, healthy_rate);
      (use_self ? self_separation_sum : fleet_separation_sum) += separation;
      (use_self ? self_healthy_sum : fleet_healthy_sum) += healthy_rate;
      if (!use_self) ++counted;
      table.AddRow({vehicle.spec.DisplayName(),
                    telemetry::FaultTypeName(fault.type),
                    use_self ? "self" : "fleet",
                    util::Table::Num(healthy_rate, 2),
                    util::Table::Num(failing_rate, 2),
                    util::Table::Num(separation, 1) + "x"});
    }
  }
  std::printf("\n%s", table.ToString().c_str());
  if (counted > 0) {
    std::printf("\nmeans over %d failures: healthy strange-rate self %.2f vs "
                "fleet %.2f; separation self %.1fx vs fleet %.1fx\n",
                counted, self_healthy_sum / counted, fleet_healthy_sum / counted,
                self_separation_sum / counted, fleet_separation_sum / counted);
  }
  }  // transform_kind
  std::printf("\nreading (paper §3.4): on level-sensitive features the fleet "
              "reference treats a heterogeneous vehicle's normal operation as "
              "strange, which is why the paper adopts the per-vehicle 'self' "
              "strategy; on correlation features the gap narrows because the "
              "couplings are largely vehicle-invariant.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
