// Reproduces paper Figure 1: DTC, repair and service events of 4 vehicles on
// a timeline, illustrating that DTCs fail to anticipate repairs (the paper's
// motivation for not relying on DTCs).
//
// The bench picks four vehicles exhibiting the archetypes of the figure:
//  * a vehicle streaming DTCs long AFTER its repair without needing one,
//  * two vehicles with repairs but no DTCs anywhere near them,
//  * one vehicle where a DTC does precede the failure (the lucky case).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"

namespace navarchos {
namespace {

using bench::BenchOptions;
using telemetry::DayOf;
using telemetry::EventType;
using telemetry::VehicleHistory;

/// Days-resolution timeline string: '.' nothing, 'd' DTC, 'S' service,
/// 'R' repair (repairs win over services win over DTCs on shared days).
std::string Timeline(const VehicleHistory& vehicle, int days, int step) {
  std::string line(static_cast<std::size_t>((days + step - 1) / step), '.');
  auto mark = [&](telemetry::Minute t, char symbol) {
    const std::size_t pos = static_cast<std::size_t>(DayOf(t)) / static_cast<std::size_t>(step);
    if (pos >= line.size()) return;
    char& cell = line[pos];
    const auto rank = [](char c) {
      return c == 'R' ? 3 : c == 'S' ? 2 : c == 'd' ? 1 : 0;
    };
    const int symbol_rank = rank(symbol);
    if (symbol_rank > rank(cell)) cell = symbol;
  };
  for (const auto& event : vehicle.RecordedEvents()) {
    switch (event.type) {
      case EventType::kDtcPending:
      case EventType::kDtcStored:
        mark(event.timestamp, 'd');
        break;
      case EventType::kService:
        mark(event.timestamp, 'S');
        break;
      case EventType::kRepair:
        mark(event.timestamp, 'R');
        break;
      default:
        break;
    }
  }
  return line;
}

/// DTCs within `window_days` before any recorded repair.
int DtcsBeforeRepair(const VehicleHistory& vehicle, int window_days) {
  int count = 0;
  for (const auto& repair_time : vehicle.RecordedRepairTimes()) {
    for (const auto& event : vehicle.RecordedEvents()) {
      if ((event.type == EventType::kDtcPending ||
           event.type == EventType::kDtcStored) &&
          event.timestamp < repair_time &&
          event.timestamp > repair_time - window_days * telemetry::kMinutesPerDay) {
        ++count;
      }
    }
  }
  return count;
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const BenchOptions options = BenchOptions::FromArgs(args);
  bench::PrintHeader("Figure 1 - DTCs vs repairs/services on vehicle timelines",
                     options);

  const auto fleet = bench::MakeSetting26(options);

  // Select four archetypal vehicles: prefer repair-bearing ones with
  // differing DTC behaviour, plus the noisiest DTC emitter.
  std::vector<const telemetry::VehicleHistory*> picks;
  const telemetry::VehicleHistory* with_dtc_before = nullptr;
  const telemetry::VehicleHistory* noisy_after = nullptr;
  std::vector<const telemetry::VehicleHistory*> silent_failures;
  for (const auto& vehicle : fleet.vehicles) {
    if (vehicle.RecordedRepairTimes().empty()) continue;
    const int before = DtcsBeforeRepair(vehicle, 30);
    int dtcs_total = 0;
    for (const auto& event : vehicle.RecordedEvents())
      if (event.type == EventType::kDtcPending || event.type == EventType::kDtcStored)
        ++dtcs_total;
    if (before > 0 && with_dtc_before == nullptr) {
      with_dtc_before = &vehicle;
    } else if (dtcs_total >= 5 && noisy_after == nullptr) {
      noisy_after = &vehicle;
    } else if (before == 0) {
      silent_failures.push_back(&vehicle);
    }
  }
  if (noisy_after != nullptr) picks.push_back(noisy_after);
  for (const auto* vehicle : silent_failures) {
    if (picks.size() >= 3) break;
    picks.push_back(vehicle);
  }
  if (with_dtc_before != nullptr) picks.push_back(with_dtc_before);
  for (const auto& vehicle : fleet.vehicles) {
    if (picks.size() >= 4) break;
    if (!vehicle.RecordedRepairTimes().empty()) picks.push_back(&vehicle);
  }

  const int step = std::max(1, options.days / 120);
  std::printf("\nlegend: d = DTC (pending/stored), S = service, R = repair, "
              "one column = %d day(s)\n\n", step);
  int index = 1;
  for (const auto* vehicle : picks) {
    std::printf("vehicle %d %-12s |%s|\n", index++, vehicle->spec.DisplayName().c_str(),
                Timeline(*vehicle, options.days, step).c_str());
  }

  // The figure's quantitative message, fleet-wide: even when a DTC happens
  // to precede a repair, treating every DTC as a warning floods the
  // mechanics with false alarms.
  int repairs = 0, repairs_with_dtc_warning = 0, dtcs_total = 0, dtcs_useful = 0;
  for (const auto& vehicle : fleet.vehicles) {
    const auto repair_times = vehicle.RecordedRepairTimes();
    repairs += static_cast<int>(repair_times.size());
    for (const auto& event : vehicle.RecordedEvents()) {
      if (event.type != EventType::kDtcPending && event.type != EventType::kDtcStored)
        continue;
      ++dtcs_total;
      for (telemetry::Minute repair : repair_times) {
        if (event.timestamp < repair &&
            event.timestamp > repair - 30 * telemetry::kMinutesPerDay) {
          ++dtcs_useful;
          break;
        }
      }
    }
    if (DtcsBeforeRepair(vehicle, 30) > 0) ++repairs_with_dtc_warning;
  }
  std::printf("\nfleet-wide: %d recorded repairs; %d preceded by any DTC within "
              "30 days,\nbut only %d of %d DTC events fall in such a window "
              "(DTC 'precision' %.0f%%).\n",
              repairs, repairs_with_dtc_warning, dtcs_useful, dtcs_total,
              dtcs_total > 0 ? 100.0 * dtcs_useful / dtcs_total : 0.0);
  std::printf("paper's observation: DTCs cannot be relied on for predicting "
              "repairs - alarming on DTCs either misses most failures or "
              "floods the operator with false alarms.\n");
  return 0;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
