// Observability overhead and output transparency of the metrics subsystem.
//
// Replays the interleaved setting40 feed through service::FleetService in
// two modes at threads in {1, 4}:
//
//   passive - metrics are recorded on every hot path (they always are; the
//             registry has no off switch) but nobody reads them;
//   scraped - a scraper thread's workload is simulated inline: every
//             --scrape-every frames the bench takes a full SnapshotStats(),
//             encodes it with the wire codec and renders the diffable text
//             form, exactly what a STATS request costs the service.
//
// Two claims are checked and recorded in BENCH_obs.json:
//
//   1. Output transparency (HARD, exit code): the run-result fingerprint is
//      bit-identical across modes, repetitions and thread counts -
//      observing the service never changes what it computes.
//   2. Overhead (recorded): scraped frames/sec vs passive frames/sec per
//      thread count, best-of-N repetitions to damp scheduler noise. The
//      acceptance bar for the subsystem is <2% regression.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "obs/metrics.h"
#include "service/fleet_service.h"
#include "telemetry/stream.h"
#include "util/timer.h"

namespace navarchos {
namespace {

/// Order-sensitive FNV-1a over the bytes of a double sequence.
class Fingerprint {
 public:
  void Add(double value) {
    unsigned char bytes[sizeof(double)];
    __builtin_memcpy(bytes, &value, sizeof(double));
    for (unsigned char byte : bytes) {
      hash_ ^= byte;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Add(std::int64_t value) { Add(static_cast<double>(value)); }
  void Add(std::size_t value) { Add(static_cast<double>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t RunFingerprint(const core::FleetRunResult& run) {
  Fingerprint fp;
  fp.Add(run.alarms.size());
  for (const auto& alarm : run.alarms) {
    fp.Add(static_cast<std::int64_t>(alarm.vehicle_id));
    fp.Add(alarm.timestamp);
    fp.Add(alarm.score);
    fp.Add(alarm.threshold);
  }
  for (const auto& samples : run.scored_samples) {
    fp.Add(samples.size());
    for (const auto& sample : samples)
      for (double score : sample.scores) fp.Add(score);
  }
  return fp.value();
}

struct Measurement {
  int threads = 0;
  std::string mode;
  double seconds = 0.0;
  double frames_per_sec = 0.0;
  std::uint64_t scrapes = 0;
  std::uint64_t snapshot_bytes = 0;  ///< Wire-encoded size of the last scrape.
  std::uint64_t fingerprint = 0;
};

Measurement MeasureAt(int threads, bool scraped, std::size_t scrape_every,
                      const std::vector<telemetry::SensorFrame>& stream,
                      const std::vector<std::int32_t>& ids,
                      const core::MonitorConfig& monitor) {
  Measurement m;
  m.threads = threads;
  m.mode = scraped ? "scraped" : "passive";

  service::ServiceConfig config;
  config.monitor = monitor;
  config.runtime = runtime::RuntimeConfig{threads};
  service::FleetService svc(config);
  for (const std::int32_t id : ids) svc.RegisterVehicle(id);

  // `sink` keeps the scrape work observable so the optimizer cannot drop
  // it; it folds in every byte of every encoded snapshot.
  std::uint64_t sink = 0;
  util::Timer timer;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    svc.Submit(stream[i]);
    if (scraped && (i + 1) % scrape_every == 0) {
      const obs::StatsSnapshot snapshot = svc.SnapshotStats();
      persist::Encoder encoder;
      obs::EncodeStatsSnapshot(encoder, snapshot);
      const std::string text = obs::FormatSnapshot(snapshot);
      for (std::uint8_t b : encoder.bytes()) sink += b;
      sink += text.size();
      ++m.scrapes;
      m.snapshot_bytes = encoder.bytes().size();
    }
  }
  svc.Drain();
  if (scraped) {
    // The post-drain scrape of the CI obs-scrape job.
    persist::Encoder encoder;
    obs::EncodeStatsSnapshot(encoder, svc.SnapshotStats());
    m.snapshot_bytes = encoder.bytes().size();
    ++m.scrapes;
  }
  m.seconds = timer.ElapsedSeconds();
  m.frames_per_sec =
      m.seconds > 0 ? static_cast<double>(stream.size()) / m.seconds : 0.0;
  m.fingerprint = RunFingerprint(svc.TakeResult());
  if (sink == 0xdeadbeef) std::printf("(unreachable)\n");
  return m;
}

int Main(int argc, char** argv) {
  const util::Args args(argc, argv);
  auto options = bench::BenchOptions::FromArgs(args);
  // Many passes over the feed (2 modes x 2 thread counts x reps): default
  // to a reduced slice. --days overrides as usual.
  if (!args.Has("days")) options.days = 30;
  const std::size_t scrape_every =
      static_cast<std::size_t>(args.GetInt("scrape-every", 1000));
  const int reps = static_cast<int>(args.GetInt("reps", 3));
  bench::PrintHeader("Observability overhead - passive vs scraped streaming, "
                     "output transparency", options);

  const auto fleet = bench::MakeSetting40(options);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  core::MonitorConfig monitor;
  std::printf("frames: %zu   vehicles: %zu   scrape every %zu frames, "
              "best of %d reps\n\n",
              stream.size(), ids.size(), scrape_every, reps);

  std::vector<Measurement> measurements;
  bool identical = true;
  std::uint64_t reference_fp = 0;
  bool have_reference = false;
  for (int threads : {1, 4}) {
    for (const bool scraped : {false, true}) {
      // Best-of-N: keep the fastest repetition; every repetition's
      // fingerprint participates in the transparency check.
      Measurement best;
      for (int rep = 0; rep < reps; ++rep) {
        const Measurement m =
            MeasureAt(threads, scraped, scrape_every, stream, ids, monitor);
        if (!have_reference) {
          reference_fp = m.fingerprint;
          have_reference = true;
        }
        identical = identical && m.fingerprint == reference_fp;
        if (rep == 0 || m.seconds < best.seconds) best = m;
      }
      std::printf("threads=%-3d %-8s %8.2fs   %9.0f frames/s   "
                  "%" PRIu64 " scrapes   snapshot %" PRIu64 " bytes\n",
                  best.threads, best.mode.c_str(), best.seconds,
                  best.frames_per_sec, best.scrapes, best.snapshot_bytes);
      std::fflush(stdout);
      measurements.push_back(best);
    }
  }

  // Overhead per thread count: passive and scraped rows alternate.
  std::printf("\n");
  double worst_overhead_pct = 0.0;
  for (std::size_t i = 0; i + 1 < measurements.size(); i += 2) {
    const Measurement& passive = measurements[i];
    const Measurement& scraped = measurements[i + 1];
    const double overhead_pct =
        passive.frames_per_sec > 0
            ? 100.0 * (1.0 - scraped.frames_per_sec / passive.frames_per_sec)
            : 0.0;
    worst_overhead_pct = std::max(worst_overhead_pct, overhead_pct);
    std::printf("threads=%-3d scrape overhead: %+.2f%% frames/s\n",
                passive.threads, overhead_pct);
  }
  std::printf("output transparency across modes/reps/threads: %s\n",
              identical ? "IDENTICAL" : "MISMATCH");

  std::FILE* json = std::fopen("BENCH_obs.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"obs_overhead\",\n");
  bench::WriteBuildMetadata(json);
  std::fprintf(json, "  \"days\": %d,\n  \"seed\": %" PRIu64 ",\n",
               options.days, options.seed);
  std::fprintf(json, "  \"threads\": %d,\n", options.threads);
  std::fprintf(json, "  \"frames\": %zu,\n", stream.size());
  std::fprintf(json, "  \"scrape_every\": %zu,\n", scrape_every);
  std::fprintf(json, "  \"reps\": %d,\n", reps);
  std::fprintf(json, "  \"worst_overhead_pct\": %.2f,\n", worst_overhead_pct);
  std::fprintf(json, "  \"output_transparent\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"mode\": \"%s\", \"seconds\": %.3f, "
                 "\"frames_per_sec\": %.1f, \"scrapes\": %" PRIu64 ", "
                 "\"snapshot_bytes\": %" PRIu64 ", "
                 "\"fingerprint\": \"%016" PRIx64 "\"}%s\n",
                 m.threads, m.mode.c_str(), m.seconds, m.frames_per_sec,
                 m.scrapes, m.snapshot_bytes, m.fingerprint,
                 i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("measurements written to BENCH_obs.json\n");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace navarchos

int main(int argc, char** argv) { return navarchos::Main(argc, argv); }
