#!/usr/bin/env bash
# Shard recovery check (the CI `shard-recovery` job).
#
# Proves the headline guarantee of the sharded fleet subsystem end to end,
# process boundary included:
#   1. reference: run the streaming example unsharded and uninterrupted
#      with a history log attached, record its alarm log and its
#      RANK / TIMELINE / COMOVE answers (the fleet-wide total order);
#   2. crash: run the SAME feed split across 4 shards with periodic fleet
#      checkpoints (per-shard snapshots + CRC'd manifest) and a fresh log,
#      SIGKILL the process the moment a committed manifest exists on disk
#      - no drain, no destructor;
#   3. restore: start a fresh 4-shard process from the fleet manifest over
#      the same log directory - every per-shard snapshot is CRC-verified
#      against the manifest before any state is touched, the group resumes
#      at the fleet cursor, and the history replay skips checkpointed
#      records as duplicates;
#   4. verify: the restored sharded run's alarm log AND every query answer
#      over its recovered log must be byte-identical to the unsharded
#      uninterrupted reference.
#
# Usage: shard_recovery_check.sh [path-to-streaming_service-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

binary="${1:-build/examples/streaming_service}"
[[ -x "${binary}" ]] || {
  echo "shard_recovery_check: ${binary} not built" >&2
  exit 1
}

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
fleet_dir="${workdir}/fleet_checkpoint"
manifest="${fleet_dir}/fleet.manifest"
ref_log="${workdir}/reference_alarms.log"
restored_log="${workdir}/restored_alarms.log"
ref_hist="${workdir}/history_ref"
crash_hist="${workdir}/history_crash"

query() { # query <dir> <suffix> -- writes rank/timeline/comove answers
  local dir="$1" suffix="$2"
  "${binary}" --query rank --history-dir "${dir}" > "${workdir}/rank_${suffix}.txt"
  local vehicle
  vehicle="$(awk 'NR==2 {gsub(":","",$2); print $2; exit}' "${workdir}/rank_${suffix}.txt")"
  [[ -n "${vehicle}" ]] || {
    echo "shard_recovery_check: RANK over ${dir} returned no vehicles" >&2
    exit 1
  }
  "${binary}" --query timeline --vehicle "${vehicle}" --history-dir "${dir}" \
    > "${workdir}/timeline_${suffix}.txt"
  local alarm_seq
  alarm_seq="$(awk '/alarm 1/ {print $2; exit}' "${workdir}/timeline_${suffix}.txt")"
  if [[ -n "${alarm_seq}" ]]; then
    "${binary}" --query comove --alarm-seq "${alarm_seq}" --history-dir "${dir}" \
      > "${workdir}/comove_${suffix}.txt"
  else
    : > "${workdir}/comove_${suffix}.txt"
  fi
}

echo "== reference: unsharded, uninterrupted run =="
"${binary}" --alarm-log "${ref_log}" --history-dir "${ref_hist}" > /dev/null
[[ -s "${ref_log}" ]] || {
  echo "shard_recovery_check: reference produced no alarms - nothing to compare" >&2
  exit 1
}
query "${ref_hist}" ref

echo "== crash run: 4 shards, fleet checkpoint every 20000 frames, SIGKILL mid-stream =="
"${binary}" --shards 4 --snapshot-every 20000 --snapshot-path "${fleet_dir}" \
  --history-dir "${crash_hist}" > /dev/null &
victim=$!
# Wait for a COMMITTED fleet checkpoint: the manifest is written last and
# renamed into place atomically, so its existence guarantees all four
# per-shard snapshots it references are already durable.
for _ in $(seq 1 600); do
  [[ -s "${manifest}" ]] && break
  kill -0 "${victim}" 2>/dev/null || break
  sleep 0.05
done
if [[ ! -s "${manifest}" ]]; then
  wait "${victim}" || true
  echo "shard_recovery_check: no committed fleet manifest before the run ended" >&2
  exit 1
fi
kill -KILL "${victim}" 2>/dev/null || true
wait "${victim}" 2>/dev/null || true
snaps="$(find "${fleet_dir}" -name 'shard-*.snap' | wc -l)"
echo "killed pid ${victim}; fleet checkpoint holds ${snaps} shard snapshot(s) + manifest"

echo "== restore run: rebuild all 4 shards from the fleet manifest =="
"${binary}" --shards 4 --restore "${fleet_dir}" --alarm-log "${restored_log}" \
  --history-dir "${crash_hist}"

echo "== verify: alarm logs must be byte-identical =="
if ! diff -q "${ref_log}" "${restored_log}"; then
  echo "shard_recovery_check: restored sharded alarm log differs from the unsharded reference" >&2
  diff "${ref_log}" "${restored_log}" | head -20 >&2 || true
  exit 1
fi

echo "== verify: fleet query answers must be byte-identical =="
query "${crash_hist}" crash
for kind in rank timeline comove; do
  if ! diff -q "${workdir}/${kind}_ref.txt" "${workdir}/${kind}_crash.txt"; then
    echo "shard_recovery_check: ${kind} answer differs after sharded recovery" >&2
    diff "${workdir}/${kind}_ref.txt" "${workdir}/${kind}_crash.txt" | head -20 >&2 || true
    exit 1
  fi
done
echo "shard_recovery_check: restored 4-shard run equals the unsharded uninterrupted reference ($(wc -l < "${ref_log}") alarms)"
