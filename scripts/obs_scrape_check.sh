#!/usr/bin/env bash
# Observability scrape check (the CI `obs-scrape` job).
#
# Proves the headline guarantee of the metrics subsystem end to end,
# process boundary included:
#   1. serve: start the streaming example as a 4-shard ingest server with
#      an observability epilogue (--stats-out + --await-scrapes): after
#      draining it writes the in-process fleet metrics aggregate to a file
#      and keeps the listeners answering STATS until 8 scrapes landed;
#   2. mid-stream: a first client streams part of the fleet and cuts the
#      connection without FIN, pinning the server mid-session (it cannot
#      drain until a resume arrives) - then every shard is scraped over
#      the wire (--query stats --fleet) while ingest state is live and
#      undrained (4 scrapes);
#   3. post-drain: a resume client finishes the stream; after the server
#      published its quiesced in-process aggregate, scrape every shard
#      again and merge (4 more scrapes);
#   4. verify: the wire-scraped merged fleet snapshot must be
#      byte-identical to the in-process aggregate the server wrote -
#      scraping is invisible to the metrics (lazy connection accounting,
#      post-snapshot stats_served increments, STATS traffic excluded from
#      the byte counters), so the two renderings diff clean.
#
# Usage: obs_scrape_check.sh [path-to-streaming_service-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

binary="${1:-build/examples/streaming_service}"
[[ -x "${binary}" ]] || {
  echo "obs_scrape_check: ${binary} not built" >&2
  exit 1
}

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "${server_pid}" ]] && kill "${server_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT
port_file="${workdir}/port"
server_out="${workdir}/server.out"
inproc_stats="${workdir}/inproc_stats.txt"
midstream_stats="${workdir}/midstream_stats.txt"
fleet_stats="${workdir}/fleet_stats.txt"

echo "== server: 4 shards, ephemeral ports, observability epilogue =="
"${binary}" --listen 0 --shards 4 --port-file "${port_file}" --sessions 1 \
  --stats-out "${inproc_stats}" --await-scrapes 8 \
  > "${server_out}" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  [[ -s "${port_file}" ]] && break
  kill -0 "${server_pid}" 2>/dev/null || break
  sleep 0.05
done
[[ -s "${port_file}" ]] || {
  echo "obs_scrape_check: server never published its port" >&2
  cat "${server_out}" >&2 || true
  exit 1
}
port="$(cat "${port_file}")"
echo "server pid ${server_pid} on bootstrap port ${port}"

echo "== client: stream part of the fleet, then cut without FIN =="
"${binary}" --connect "${port}" --sharded --abort-after 40000 \
  > "${workdir}/client_abort.out" 2>&1

echo "== mid-stream: scrape every shard while the sessions are open =="
# No FIN has arrived, so the server is provably still mid-stream: it
# cannot start draining before the resume client below finishes.
"${binary}" --query stats --fleet --connect "${port}" > "${midstream_stats}"
[[ -s "${midstream_stats}" ]] || {
  echo "obs_scrape_check: mid-stream fleet scrape produced no output" >&2
  exit 1
}
grep -q '^counter server\.frames_received ' "${midstream_stats}" || {
  echo "obs_scrape_check: mid-stream scrape is missing server counters" >&2
  head -20 "${midstream_stats}" >&2 || true
  exit 1
}

echo "== resume client: finish the stream =="
"${binary}" --connect "${port}" --sharded --resume \
  > "${workdir}/client_resume.out" 2>&1

echo "== drain: wait for the server's quiesced in-process aggregate =="
for _ in $(seq 1 1200); do
  grep -q "final stats written" "${server_out}" 2>/dev/null && break
  kill -0 "${server_pid}" 2>/dev/null || break
  sleep 0.1
done
grep -q "final stats written" "${server_out}" || {
  echo "obs_scrape_check: server never published its final stats" >&2
  cat "${server_out}" >&2 || true
  exit 1
}

echo "== post-drain: scrape every shard and merge the fleet snapshot =="
"${binary}" --query stats --fleet --connect "${port}" > "${fleet_stats}"

echo "== verify: wire-scraped merge == in-process aggregate =="
if ! diff -q "${inproc_stats}" "${fleet_stats}"; then
  echo "obs_scrape_check: wire-scraped fleet snapshot differs from the" \
       "in-process aggregate" >&2
  diff "${inproc_stats}" "${fleet_stats}" | head -40 >&2 || true
  exit 1
fi

wait "${server_pid}"
server_pid=""

echo "obs_scrape_check: PASS (wire scrape == in-process aggregate," \
     "$(wc -l < "${fleet_stats}") metric lines)"
