#!/usr/bin/env bash
# Ensemble kill-and-restore check (the CI `ensemble-recovery` job).
#
# The consensus-ensemble variant of restore-equals-uninterrupted, process
# boundary included. With --ensemble-k the service's checkpoints carry the
# full rolling-ensemble state - member models, the rolling training window,
# the sample counter AND any retrain that was in flight when the snapshot
# quiesced (the fit is re-posted after restore at the same pre-committed
# activation boundary). Frequent checkpoints against a small retrain period
# make it overwhelmingly likely that the surviving snapshot was taken with
# a background fit pending, so this exercises exactly the state the ctest
# suite covers in-process (EnsembleSnapshotTest), across a real SIGKILL:
#   1. reference: run the streaming example with the ensemble on,
#      uninterrupted, record its alarm log;
#   2. crash: run it again with periodic checkpoints, SIGKILL the process
#      the moment a snapshot exists on disk - no drain, no destructor;
#   3. restore: start a fresh process from the snapshot (same ensemble
#      flags), let it replay the remaining frames;
#   4. verify: the restored run's alarm log must be byte-identical to the
#      uninterrupted reference.
#
# Usage: ensemble_recovery_check.sh [path-to-streaming_service-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

binary="${1:-build/examples/streaming_service}"
[[ -x "${binary}" ]] || {
  echo "ensemble_recovery_check: ${binary} not built" >&2
  exit 1
}

# K=3/M=2 with a short retrain period: a retrain boundary every 48 usable
# samples per vehicle keeps a fit pending for a large fraction of the run.
ensemble_flags=(--ensemble-k 3 --ensemble-m 2 --retrain-every 48)

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
snapshot="${workdir}/checkpoint.bin"
reference_log="${workdir}/reference_alarms.log"
restored_log="${workdir}/restored_alarms.log"

echo "== reference: uninterrupted ensemble run =="
"${binary}" "${ensemble_flags[@]}" --alarm-log "${reference_log}" > /dev/null
[[ -s "${reference_log}" ]] || {
  echo "ensemble_recovery_check: reference produced no alarms - nothing to compare" >&2
  exit 1
}

echo "== crash run: checkpoint every 10000 frames, SIGKILL mid-stream =="
"${binary}" "${ensemble_flags[@]}" --snapshot-every 10000 \
  --snapshot-path "${snapshot}" > /dev/null &
victim=$!
for _ in $(seq 1 600); do
  [[ -s "${snapshot}" ]] && break
  kill -0 "${victim}" 2>/dev/null || break
  sleep 0.05
done
if [[ ! -s "${snapshot}" ]]; then
  wait "${victim}" || true
  echo "ensemble_recovery_check: no snapshot appeared before the run ended" >&2
  exit 1
fi
kill -KILL "${victim}" 2>/dev/null || true
wait "${victim}" 2>/dev/null || true
echo "killed pid ${victim} with a snapshot of $(wc -c < "${snapshot}") bytes"

echo "== restore run: resume from the snapshot with the same ensemble flags =="
"${binary}" "${ensemble_flags[@]}" --restore "${snapshot}" \
  --alarm-log "${restored_log}"

echo "== verify: alarm logs must be byte-identical =="
if ! diff -q "${reference_log}" "${restored_log}"; then
  echo "ensemble_recovery_check: restored alarm log differs from the uninterrupted reference" >&2
  diff "${reference_log}" "${restored_log}" | head -20 >&2 || true
  exit 1
fi
echo "ensemble_recovery_check: restore equals uninterrupted ($(wc -l < "${reference_log}") alarms)"
