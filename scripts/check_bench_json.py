#!/usr/bin/env python3
"""Schema guard for bench JSON artifacts.

Every bench that emits a BENCH_*.json file must record the --threads value
it ran with in the file's header (top-level "threads" key, integer), so a
measurement can never be archived without its execution-runtime context.
CI runs this over every emitted artifact; a missing or mistyped key fails
the job.

Usage: check_bench_json.py BENCH_a.json [BENCH_b.json ...]
"""
import json
import sys


def check(path: str) -> str | None:
    """Returns an error message for `path`, or None when it conforms."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return f"{path}: unreadable or invalid JSON: {err}"
    if not isinstance(data, dict):
        return f"{path}: top level must be a JSON object"
    if "bench" not in data:
        return f"{path}: missing top-level 'bench' name"
    threads = data.get("threads")
    # bool is an int subclass in Python; reject it explicitly.
    if isinstance(threads, bool) or not isinstance(threads, int):
        return (f"{path}: missing integer top-level 'threads' "
                f"(the --threads value the bench ran with)")
    return None


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: check_bench_json.py BENCH_*.json", file=sys.stderr)
        return 2
    errors = [msg for path in argv[1:] if (msg := check(path))]
    for msg in errors:
        print(f"check_bench_json: {msg}", file=sys.stderr)
    if not errors:
        print(f"check_bench_json: {len(argv) - 1} artifact(s) conform")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
