#!/usr/bin/env python3
"""Schema guard for bench JSON artifacts.

Every bench that emits a BENCH_*.json file must record the --threads value
it ran with in the file's header (top-level "threads" key, integer), so a
measurement can never be archived without its execution-runtime context.
Likewise every artifact must carry a top-level "build" object (compiler,
compiler_version, build_type, flags - all strings; see
bench::WriteBuildMetadata), so a measurement can never be archived without
its toolchain context either.
On top of those universal rules, benches registered in SCHEMAS must carry
their bench-specific result fields (e.g. BENCH_snapshot.json must list
detector/bytes/save_ms/restore_ms per result row).

Unknown bench names are a HARD ERROR: every bench that ships a
BENCH_*.json artifact must register its result schema in SCHEMAS below, so
a new bench can never silently ship unguarded measurement rows.

CI runs this over every emitted artifact; any violation fails the job.

Usage: check_bench_json.py BENCH_a.json [BENCH_b.json ...]
"""
import json
import sys

# Type predicates for schema rows: (predicate, human-readable name).
_NUMBER = (lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
           "number")
_INT = (lambda v: isinstance(v, int) and not isinstance(v, bool), "integer")
_STR = (lambda v: isinstance(v, str), "string")

# Per-bench result-row requirements: bench name -> [(field, predicate, name)].
SCHEMAS = {
    "snapshot_cost": [
        ("detector", *_STR),
        ("bytes", *_INT),
        ("save_ms", *_NUMBER),
        ("restore_ms", *_NUMBER),
    ],
    "streaming_throughput": [
        ("threads", *_INT),
        ("seconds", *_NUMBER),
        ("frames_per_sec", *_NUMBER),
    ],
    "net_throughput": [
        ("threads", *_INT),
        ("frames_per_sec", *_NUMBER),
        ("p50_latency_us", *_NUMBER),
        ("p99_latency_us", *_NUMBER),
        ("reconnect_ms", *_NUMBER),
    ],
    "chaos_sweep": [
        ("threads", *_INT),
        ("seconds", *_NUMBER),
        ("frames_per_sec", *_NUMBER),
        ("faults_injected", *_INT),
        ("reconnects", *_INT),
    ],
    "history_sweep": [
        ("threads", *_INT),
        ("append_records_per_sec", *_NUMBER),
        ("segment_bytes_per_vehicle", *_NUMBER),
        ("rank_p50_ms", *_NUMBER),
        ("rank_p99_ms", *_NUMBER),
        ("timeline_p50_ms", *_NUMBER),
        ("timeline_p99_ms", *_NUMBER),
        ("fingerprint", *_STR),
    ],
    "ensemble_sweep": [
        ("setting", *_STR),
        ("config", *_STR),
        ("threads", *_INT),
        ("false_alarms", *_INT),
        ("detected", *_INT),
        ("total_failures", *_INT),
        ("mean_lead_days", *_NUMBER),
        ("latency_p50_ms", *_NUMBER),
        ("latency_p99_ms", *_NUMBER),
        ("ensemble_bytes_per_vehicle", *_NUMBER),
        ("retrains_started", *_INT),
        ("suppressed_alarms", *_INT),
        ("fingerprint", *_STR),
    ],
    "shard_sweep": [
        ("shards", *_INT),
        ("threads", *_INT),
        ("frames_per_sec", *_NUMBER),
        ("checkpoint_ms", *_NUMBER),
        ("checkpoint_bytes", *_INT),
        ("fingerprint", *_STR),
    ],
    "scaling_sweep": [
        ("threads", *_INT),
        ("generate_seconds", *_NUMBER),
        ("run_fleet_seconds", *_NUMBER),
        ("run_grid_seconds", *_NUMBER),
    ],
    "obs_overhead": [
        ("threads", *_INT),
        ("mode", *_STR),
        ("seconds", *_NUMBER),
        ("frames_per_sec", *_NUMBER),
        ("scrapes", *_INT),
        ("snapshot_bytes", *_INT),
        ("fingerprint", *_STR),
    ],
}

# Universal header requirement: the build-metadata block every artifact
# must carry (all string-valued).
BUILD_FIELDS = ("compiler", "compiler_version", "build_type", "flags")


def check_results(path: str, bench: str, data: dict) -> list[str]:
    """Bench-specific checks for registered benches."""
    schema = SCHEMAS.get(bench)
    if schema is None:
        return []
    results = data.get("results")
    if not isinstance(results, list) or not results:
        return [f"{path}: bench '{bench}' must carry a non-empty 'results' list"]
    errors = []
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            errors.append(f"{path}: results[{i}] must be an object")
            continue
        for field, predicate, type_name in schema:
            if not predicate(row.get(field)):
                errors.append(
                    f"{path}: results[{i}] missing {type_name} '{field}'")
    return errors


def check(path: str) -> list[str]:
    """Returns the error messages for `path` (empty when it conforms).

    A readable artifact whose bench name has no SCHEMAS entry is an ERROR,
    not a warning: an unregistered bench ships unguarded measurement rows,
    which is exactly what this guard exists to prevent. Register the
    bench's result schema in SCHEMAS before emitting its artifact.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: unreadable or invalid JSON: {err}"]
    if not isinstance(data, dict):
        return [f"{path}: top level must be a JSON object"]
    bench = data.get("bench")
    if not isinstance(bench, str) or not bench:
        return [f"{path}: missing top-level 'bench' name"]
    errors = []
    if bench not in SCHEMAS:
        errors.append(
            f"{path}: bench '{bench}' has no registered result schema - "
            f"add one to SCHEMAS in scripts/check_bench_json.py")
    threads = data.get("threads")
    # bool is an int subclass in Python; reject it explicitly.
    if isinstance(threads, bool) or not isinstance(threads, int):
        errors.append(f"{path}: missing integer top-level 'threads' "
                      f"(the --threads value the bench ran with)")
    build = data.get("build")
    if not isinstance(build, dict):
        errors.append(f"{path}: missing top-level 'build' object "
                      f"(toolchain metadata; see bench::WriteBuildMetadata)")
    else:
        for field in BUILD_FIELDS:
            if not isinstance(build.get(field), str):
                errors.append(f"{path}: 'build' missing string '{field}'")
    errors.extend(check_results(path, bench, data))
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: check_bench_json.py BENCH_*.json", file=sys.stderr)
        return 2
    errors = [msg for path in argv[1:] for msg in check(path)]
    for msg in errors:
        print(f"check_bench_json: {msg}", file=sys.stderr)
    if not errors:
        print(f"check_bench_json: {len(argv) - 1} artifact(s) conform")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
