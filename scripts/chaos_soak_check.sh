#!/usr/bin/env bash
# Chaos soak check (the CI `chaos-soak` job).
#
# Soaks the ingest front end under scripted transport hostility and holds
# it to the chaos invariant:
#   1. sweep: run bench/chaos_sweep over several fault-corpus seeds; every
#      run must exit 0 (every frame admitted exactly once, served results
#      bit-identical to the in-process reference at thread counts 1 and 4);
#   2. schema: every emitted BENCH_chaos.json must pass
#      scripts/check_bench_json.py;
#   3. reproducibility: rerunning the first seed must reproduce the
#      deterministic portion of the artifact exactly - same fingerprint,
#      same per-schedule fault and reconnect counts (wall-time fields are
#      the only thing allowed to move between runs).
#
# Usage: chaos_soak_check.sh [path-to-chaos_sweep-binary]
# Knobs: CHAOS_SEEDS (default "1 2 3"), CHAOS_DAYS (6), CHAOS_SCHEDULES (8).
set -euo pipefail
cd "$(dirname "$0")/.."

binary="${1:-build/bench/chaos_sweep}"
[[ -x "${binary}" ]] || {
  echo "chaos_soak_check: ${binary} not built" >&2
  exit 1
}

days="${CHAOS_DAYS:-6}"
schedules="${CHAOS_SCHEDULES:-8}"
read -r -a seeds <<< "${CHAOS_SEEDS:-1 2 3}"

workdir="$(mktemp -d)"
cleanup() { rm -rf "${workdir}"; }
trap cleanup EXIT

# Projects the deterministic portion of a BENCH_chaos.json (fingerprint,
# invariant booleans, per-schedule fault/reconnect counts) so two runs of
# the same seed can be diffed without tripping over wall-time fields.
stable_view() {
  python3 - "$1" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
rows = [{k: r[k] for k in ("threads", "schedule", "script",
                           "faults_injected", "reconnects")}
        for r in data["results"]]
print(json.dumps({"fingerprint": data["fingerprint"],
                  "chaos_equals_in_process": data["chaos_equals_in_process"],
                  "exactly_once": data["exactly_once"],
                  "rows": rows}, indent=1))
EOF
}

for seed in "${seeds[@]}"; do
  echo "== chaos sweep: seed ${seed}, ${schedules} schedules, ${days} days =="
  "${binary}" --days "${days}" --schedules "${schedules}" --seed "${seed}"
  python3 scripts/check_bench_json.py BENCH_chaos.json
  cp BENCH_chaos.json "${workdir}/seed_${seed}.json"
done

echo "== reproducibility: rerun seed ${seeds[0]} and diff the stable view =="
"${binary}" --days "${days}" --schedules "${schedules}" --seed "${seeds[0]}" \
  > /dev/null
stable_view "${workdir}/seed_${seeds[0]}.json" > "${workdir}/first.stable"
stable_view BENCH_chaos.json > "${workdir}/second.stable"
if ! diff -u "${workdir}/first.stable" "${workdir}/second.stable"; then
  echo "chaos_soak_check: rerun of seed ${seeds[0]} diverged" >&2
  exit 1
fi
echo "chaos_soak_check: ${#seeds[@]} seed(s) held the chaos invariant and reproduced exactly"
