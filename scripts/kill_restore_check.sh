#!/usr/bin/env bash
# Kill-and-restore check (the CI `kill-restore` job).
#
# Proves the headline guarantee of the checkpoint/restore subsystem end to
# end, process boundary included:
#   1. reference: run the streaming example uninterrupted, record its alarm
#      log (the deterministic total order);
#   2. crash: run it again with periodic checkpoints, SIGKILL the process
#      the moment a snapshot exists on disk - no drain, no destructor;
#   3. restore: start a fresh process from the snapshot, let it replay the
#      remaining frames;
#   4. verify: the restored run's alarm log must be byte-identical to the
#      uninterrupted reference.
#
# Usage: kill_restore_check.sh [path-to-streaming_service-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

binary="${1:-build/examples/streaming_service}"
[[ -x "${binary}" ]] || {
  echo "kill_restore_check: ${binary} not built" >&2
  exit 1
}

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
snapshot="${workdir}/checkpoint.bin"
reference_log="${workdir}/reference_alarms.log"
restored_log="${workdir}/restored_alarms.log"

echo "== reference: uninterrupted run =="
"${binary}" --alarm-log "${reference_log}" > /dev/null
[[ -s "${reference_log}" ]] || {
  echo "kill_restore_check: reference produced no alarms - nothing to compare" >&2
  exit 1
}

echo "== crash run: checkpoint every 20000 frames, SIGKILL mid-stream =="
"${binary}" --snapshot-every 20000 --snapshot-path "${snapshot}" > /dev/null &
victim=$!
for _ in $(seq 1 600); do
  [[ -s "${snapshot}" ]] && break
  kill -0 "${victim}" 2>/dev/null || break
  sleep 0.05
done
if [[ ! -s "${snapshot}" ]]; then
  wait "${victim}" || true
  echo "kill_restore_check: no snapshot appeared before the run ended" >&2
  exit 1
fi
kill -KILL "${victim}" 2>/dev/null || true
wait "${victim}" 2>/dev/null || true
echo "killed pid ${victim} with a snapshot of $(wc -c < "${snapshot}") bytes"

echo "== restore run: resume from the snapshot =="
"${binary}" --restore "${snapshot}" --alarm-log "${restored_log}"

echo "== verify: alarm logs must be byte-identical =="
if ! diff -q "${reference_log}" "${restored_log}"; then
  echo "kill_restore_check: restored alarm log differs from the uninterrupted reference" >&2
  diff "${reference_log}" "${restored_log}" | head -20 >&2 || true
  exit 1
fi
echo "kill_restore_check: restore equals uninterrupted ($(wc -l < "${reference_log}") alarms)"
