#!/usr/bin/env bash
# History recovery check (the CI `history-recovery` job).
#
# Proves the headline guarantee of the anomaly history subsystem end to
# end, process boundary included:
#   1. reference: run the streaming example uninterrupted with a history
#      log attached, record its RANK / TIMELINE / COMOVE answers;
#   2. crash: run it again with periodic checkpoints and a fresh log,
#      SIGKILL the process the moment a snapshot exists - whatever block
#      the writer was amid stays torn on disk;
#   3. recover: start a fresh process from the snapshot over the SAME log
#      directory - Open() CRC-checks the tail, truncates the torn bytes,
#      recovers the per-vehicle cursor, and the replay re-appends exactly
#      the lost suffix (checkpointed records are skipped as duplicates);
#   4. verify: every query answer over the recovered log must be
#      byte-identical to the uninterrupted reference.
#
# Usage: history_recovery_check.sh [path-to-streaming_service-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

binary="${1:-build/examples/streaming_service}"
[[ -x "${binary}" ]] || {
  echo "history_recovery_check: ${binary} not built" >&2
  exit 1
}

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
snapshot="${workdir}/checkpoint.bin"
ref_dir="${workdir}/history_ref"
crash_dir="${workdir}/history_crash"

query() { # query <dir> <suffix> -- writes rank/timeline/comove answers
  local dir="$1" suffix="$2"
  "${binary}" --query rank --history-dir "${dir}" > "${workdir}/rank_${suffix}.txt"
  local vehicle
  vehicle="$(awk 'NR==2 {gsub(":","",$2); print $2; exit}' "${workdir}/rank_${suffix}.txt")"
  [[ -n "${vehicle}" ]] || {
    echo "history_recovery_check: RANK over ${dir} returned no vehicles" >&2
    exit 1
  }
  "${binary}" --query timeline --vehicle "${vehicle}" --history-dir "${dir}" \
    > "${workdir}/timeline_${suffix}.txt"
  local alarm_seq
  alarm_seq="$(awk '/alarm 1/ {print $2; exit}' "${workdir}/timeline_${suffix}.txt")"
  if [[ -n "${alarm_seq}" ]]; then
    "${binary}" --query comove --alarm-seq "${alarm_seq}" --history-dir "${dir}" \
      > "${workdir}/comove_${suffix}.txt"
  else
    : > "${workdir}/comove_${suffix}.txt"
  fi
}

echo "== reference: uninterrupted run with history log =="
"${binary}" --history-dir "${ref_dir}" > /dev/null
query "${ref_dir}" ref

echo "== crash run: checkpoint every 20000 frames, SIGKILL mid-stream =="
"${binary}" --snapshot-every 20000 --snapshot-path "${snapshot}" \
  --history-dir "${crash_dir}" > /dev/null &
victim=$!
# Wait for a snapshot AND a non-empty log: the checkpoint barrier flushes
# the log before each snapshot, so killing here leaves checkpointed records
# on disk - the recovery replay must skip them as duplicates (a kill before
# the first logged record would not exercise that path).
logged() {
  # A freshly opened segment holds a 32-byte header; only a file clearly
  # past that proves a record block reached the disk.
  [[ -d "${crash_dir}" ]] && \
    [[ "$(find "${crash_dir}" -type f -size +64c 2>/dev/null | head -1)" ]]
}
for _ in $(seq 1 600); do
  [[ -s "${snapshot}" ]] && logged && break
  kill -0 "${victim}" 2>/dev/null || break
  sleep 0.05
done
if ! { [[ -s "${snapshot}" ]] && logged; }; then
  wait "${victim}" || true
  echo "history_recovery_check: no snapshot + logged records before the run ended" >&2
  exit 1
fi
kill -KILL "${victim}" 2>/dev/null || true
wait "${victim}" 2>/dev/null || true
echo "killed pid ${victim}; log holds $(du -sb "${crash_dir}" | cut -f1) bytes"

echo "== recover: restore from the snapshot over the same log directory =="
"${binary}" --restore "${snapshot}" --history-dir "${crash_dir}" | \
  grep "history log:" || true

echo "== verify: query answers must be byte-identical =="
query "${crash_dir}" crash
for kind in rank timeline comove; do
  if ! diff -q "${workdir}/${kind}_ref.txt" "${workdir}/${kind}_crash.txt"; then
    echo "history_recovery_check: ${kind} answer differs after recovery" >&2
    diff "${workdir}/${kind}_ref.txt" "${workdir}/${kind}_crash.txt" | head -20 >&2 || true
    exit 1
  fi
done
echo "history_recovery_check: recovered log answers equal the uninterrupted reference"
