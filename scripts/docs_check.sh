#!/usr/bin/env bash
# Strict public-API documentation check (the CI `docs` job).
#
# Runs Doxygen over the documented subsystems' public headers with
# EXTRACT_ALL=NO and WARN_AS_ERROR=YES: every public declaration in
# src/runtime, src/core, src/service, src/persist, src/net, src/history,
# src/shard, src/ensemble and src/obs must carry a documentation comment,
# and any Doxygen warning fails the check. The full-site Doxyfile (which
# extracts everything for browsing) stays as-is; this is the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

command -v doxygen >/dev/null || {
  echo "docs_check: doxygen not installed" >&2
  exit 1
}

out_dir="build/docs-api-check"
mkdir -p "${out_dir}"

(
  cat Doxyfile
  echo "INPUT = src/runtime src/core src/service src/persist src/net src/history src/shard src/ensemble src/obs"
  echo "FILE_PATTERNS = *.h"
  echo "USE_MDFILE_AS_MAINPAGE ="
  echo "EXTRACT_ALL = NO"
  echo "WARN_IF_UNDOCUMENTED = YES"
  echo "WARN_AS_ERROR = YES"
  echo "OUTPUT_DIRECTORY = ${out_dir}"
  echo "GENERATE_HTML = YES"
  echo "GENERATE_LATEX = NO"
) | doxygen -

echo "docs_check: public API documentation is complete"
