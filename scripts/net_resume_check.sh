#!/usr/bin/env bash
# Network disconnect-and-resume check (the CI `net-resume` job).
#
# Proves the headline guarantee of the TCP ingest front end end to end,
# process boundary included:
#   1. reference: run the streaming example in process, uninterrupted,
#      record its alarm log (the deterministic total order);
#   2. serve: start the example as an ingest server on an ephemeral port;
#   3. crash: stream the fleet from a client process that cuts the
#      connection mid-stream without FIN (the server sees exactly what a
#      SIGKILLed client would leave behind: a dead socket and un-ACKed
#      frames);
#   4. resume: a fresh client process reconnects under the same session id
#      with RESUME and streams the rest from the server's cursor;
#   5. verify: the server's drained alarm log must be byte-identical to the
#      in-process reference.
#
# Usage: net_resume_check.sh [path-to-streaming_service-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

binary="${1:-build/examples/streaming_service}"
[[ -x "${binary}" ]] || {
  echo "net_resume_check: ${binary} not built" >&2
  exit 1
}

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "${server_pid}" ]] && kill "${server_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT
port_file="${workdir}/port"
reference_log="${workdir}/reference_alarms.log"
streamed_log="${workdir}/streamed_alarms.log"
server_out="${workdir}/server.out"

echo "== reference: uninterrupted in-process run =="
"${binary}" --alarm-log "${reference_log}" > /dev/null
[[ -s "${reference_log}" ]] || {
  echo "net_resume_check: reference produced no alarms - nothing to compare" >&2
  exit 1
}

echo "== server: listen on an ephemeral port =="
"${binary}" --listen 0 --port-file "${port_file}" --sessions 1 \
  --alarm-log "${streamed_log}" > "${server_out}" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  [[ -s "${port_file}" ]] && break
  kill -0 "${server_pid}" 2>/dev/null || break
  sleep 0.05
done
[[ -s "${port_file}" ]] || {
  echo "net_resume_check: server never published its port" >&2
  cat "${server_out}" >&2 || true
  exit 1
}
port="$(cat "${port_file}")"
echo "server pid ${server_pid} on port ${port}"

echo "== crash run: client cuts the connection mid-stream (no FIN) =="
"${binary}" --connect "${port}" --session resume-check --abort-after 40000

echo "== resume run: fresh client process continues the session =="
"${binary}" --connect "${port}" --session resume-check --resume

echo "== drain: wait for the server to finish =="
wait "${server_pid}"
server_pid=""

echo "== verify: alarm logs must be byte-identical =="
if ! diff -q "${reference_log}" "${streamed_log}"; then
  echo "net_resume_check: streamed alarm log differs from the in-process reference" >&2
  diff "${reference_log}" "${streamed_log}" | head -20 >&2 || true
  cat "${server_out}" >&2 || true
  exit 1
fi
echo "net_resume_check: disconnect+resume over TCP equals in-process ($(wc -l < "${reference_log}") alarms)"
