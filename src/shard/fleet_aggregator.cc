#include "shard/fleet_aggregator.h"

#include <utility>

#include "util/check.h"

namespace navarchos::shard {

namespace {

/// Minimum encoded size of one alarm (fixed fields + empty name), bounding
/// counts claimed by a manifest before any allocation.
constexpr std::size_t kMinAlarmBytes = 4 + 8 + 8 + 4 + 8 + 8;

void SaveAlarm(persist::Encoder& encoder, const core::Alarm& alarm) {
  encoder.PutI32(alarm.vehicle_id);
  encoder.PutI64(alarm.timestamp);
  encoder.PutU64(alarm.channel);
  encoder.PutString(alarm.channel_name);
  encoder.PutDouble(alarm.score);
  encoder.PutDouble(alarm.threshold);
}

bool RestoreAlarm(persist::Decoder& decoder, core::Alarm* alarm) {
  alarm->vehicle_id = decoder.GetI32();
  alarm->timestamp = decoder.GetI64();
  alarm->channel = static_cast<std::size_t>(decoder.GetU64());
  alarm->channel_name = decoder.GetString();
  alarm->score = decoder.GetDouble();
  alarm->threshold = decoder.GetDouble();
  return decoder.ok();
}

}  // namespace

FleetAggregator::FleetAggregator(std::uint32_t shard_count)
    : shards_(shard_count) {
  NAVARCHOS_CHECK(shard_count >= 1);
}

void FleetAggregator::set_alarm_callback(service::AlarmCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  alarm_callback_ = std::move(callback);
}

void FleetAggregator::set_history_callback(service::HistoryCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  history_callback_ = std::move(callback);
}

void FleetAggregator::AttachShard(int shard, service::FleetService* service) {
  // All three callbacks funnel into this aggregator under mu_. The shard's
  // sink serialises its own callbacks, so per-shard "current bundle"
  // accumulation sees one frame's alarms/records/completion contiguously.
  service->set_alarm_callback(
      [this, shard](const core::Alarm& alarm) { OnAlarm(shard, alarm); });
  service->set_history_callback([this, shard](
      const history::HistoryRecord& record) { OnRecord(shard, record); });
  service->set_completion_callback(
      [this, shard](const service::FrameCompletion& completion) {
        OnComplete(shard, completion);
      });
}

void FleetAggregator::OnAlarm(int shard, const core::Alarm& alarm) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_[static_cast<std::size_t>(shard)].current.alarms.push_back(alarm);
}

void FleetAggregator::OnRecord(int shard,
                               const history::HistoryRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_[static_cast<std::size_t>(shard)].current.records.push_back(record);
}

void FleetAggregator::OnComplete(
    int shard, const service::FrameCompletion& completion) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& state = shards_[static_cast<std::size_t>(shard)];
  Bundle bundle = std::move(state.current);
  state.current = Bundle{};
  bundle.vehicle_id = completion.vehicle_id;
  const auto it = state.local_to_fleet.find(completion.global_seq);
  if (it == state.local_to_fleet.end()) {
    // The pump completed the frame before the router reported its fleet
    // seq; park the bundle until OnAdmitted delivers the mapping.
    state.unmapped.emplace(completion.global_seq, std::move(bundle));
    return;
  }
  const std::uint64_t fleet_seq = it->second;
  state.local_to_fleet.erase(it);
  EnqueueLocked(fleet_seq, std::move(bundle));
}

void FleetAggregator::OnAdmitted(int shard, std::uint64_t local_seq,
                                 std::uint64_t fleet_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& state = shards_[static_cast<std::size_t>(shard)];
  const auto it = state.unmapped.find(local_seq);
  if (it != state.unmapped.end()) {
    Bundle bundle = std::move(it->second);
    state.unmapped.erase(it);
    EnqueueLocked(fleet_seq, std::move(bundle));
    return;
  }
  state.local_to_fleet.emplace(local_seq, fleet_seq);
}

void FleetAggregator::EnqueueLocked(std::uint64_t fleet_seq, Bundle bundle) {
  pending_.emplace(fleet_seq, std::move(bundle));
  ReleaseLocked();
}

void FleetAggregator::ReleaseLocked() {
  auto it = pending_.find(next_fleet_release_);
  while (it != pending_.end()) {
    Bundle& bundle = it->second;
    for (core::Alarm& alarm : bundle.alarms) {
      if (alarm_callback_) alarm_callback_(alarm);
      alarms_.push_back(std::move(alarm));
    }
    for (history::HistoryRecord& record : bundle.records) {
      // Re-stamp with the fleet seq: the fleet history log must index by
      // the fleet-wide order, not any shard's local one.
      record.global_seq = next_fleet_release_;
      if (history_callback_) history_callback_(record);
    }
    last_fleet_seq_[bundle.vehicle_id] = next_fleet_release_;
    pending_.erase(it);
    ++next_fleet_release_;
    it = pending_.find(next_fleet_release_);
  }
}

void FleetAggregator::FinishFleet(
    const std::vector<std::int32_t>& vehicle_order) {
  std::lock_guard<std::mutex> lock(mu_);
  // Every sequenced frame must be mapped, completed and released before
  // the unsequenced flushes may go out - the drain barrier guarantees it.
  NAVARCHOS_CHECK(pending_.empty());
  for (const ShardState& state : shards_) {
    NAVARCHOS_CHECK(state.local_to_fleet.empty());
    NAVARCHOS_CHECK(state.unmapped.empty());
  }
  // Regroup the shards' flush leftovers by vehicle (order within a vehicle
  // is its shard's lane-flush order, i.e. the monitor's own).
  std::unordered_map<std::int32_t, Bundle> by_vehicle;
  for (ShardState& state : shards_) {
    for (core::Alarm& alarm : state.current.alarms)
      by_vehicle[alarm.vehicle_id].alarms.push_back(std::move(alarm));
    for (history::HistoryRecord& record : state.current.records)
      by_vehicle[record.vehicle_id].records.push_back(std::move(record));
    state.current = Bundle{};
  }
  // Emit in fleet registration order - the lane order an unsharded drain
  // flushes in - attributing records to the vehicle's last released seq.
  for (const std::int32_t vehicle_id : vehicle_order) {
    const auto it = by_vehicle.find(vehicle_id);
    if (it == by_vehicle.end()) continue;
    for (core::Alarm& alarm : it->second.alarms) {
      if (alarm_callback_) alarm_callback_(alarm);
      alarms_.push_back(std::move(alarm));
    }
    const auto seq_it = last_fleet_seq_.find(vehicle_id);
    const std::uint64_t seq =
        seq_it == last_fleet_seq_.end() ? 0 : seq_it->second;
    for (history::HistoryRecord& record : it->second.records) {
      record.global_seq = seq;
      if (history_callback_) history_callback_(record);
    }
    by_vehicle.erase(it);
  }
  NAVARCHOS_CHECK(by_vehicle.empty());  // every vehicle was in the order
}

std::vector<core::Alarm> FleetAggregator::released_alarms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alarms_;
}

std::uint64_t FleetAggregator::next_fleet_release() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_fleet_release_;
}

void FleetAggregator::Save(persist::Encoder& encoder) const {
  std::lock_guard<std::mutex> lock(mu_);
  NAVARCHOS_CHECK(pending_.empty());  // checkpoint barrier already passed
  for (const ShardState& state : shards_) {
    NAVARCHOS_CHECK(state.local_to_fleet.empty());
    NAVARCHOS_CHECK(state.unmapped.empty());
    NAVARCHOS_CHECK(state.current.alarms.empty());
    NAVARCHOS_CHECK(state.current.records.empty());
  }
  encoder.PutU64(next_fleet_release_);
  encoder.PutU64(alarms_.size());
  for (const core::Alarm& alarm : alarms_) SaveAlarm(encoder, alarm);
  encoder.PutU64(last_fleet_seq_.size());
  // std::map iteration: the encoding is deterministic (sorted by vehicle).
  std::map<std::int32_t, std::uint64_t> sorted(last_fleet_seq_.begin(),
                                               last_fleet_seq_.end());
  for (const auto& [vehicle_id, seq] : sorted) {
    encoder.PutI32(vehicle_id);
    encoder.PutU64(seq);
  }
}

bool FleetAggregator::Restore(persist::Decoder& decoder) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t next_release = decoder.GetU64();
  const std::uint64_t alarm_count = decoder.GetU64();
  if (!decoder.ok()) return false;
  if (alarm_count > decoder.remaining() / kMinAlarmBytes) {
    decoder.Fail("aggregator alarm count exceeds payload size");
    return false;
  }
  next_fleet_release_ = next_release;
  alarms_.clear();
  alarms_.reserve(static_cast<std::size_t>(alarm_count));
  for (std::uint64_t i = 0; i < alarm_count; ++i) {
    core::Alarm alarm;
    if (!RestoreAlarm(decoder, &alarm)) return false;
    alarms_.push_back(std::move(alarm));
  }
  const std::uint64_t vehicle_count = decoder.GetU64();
  if (!decoder.ok()) return false;
  if (vehicle_count > decoder.remaining() / (4 + 8)) {
    decoder.Fail("aggregator vehicle count exceeds payload size");
    return false;
  }
  last_fleet_seq_.clear();
  for (std::uint64_t i = 0; i < vehicle_count; ++i) {
    const std::int32_t vehicle_id = decoder.GetI32();
    const std::uint64_t seq = decoder.GetU64();
    last_fleet_seq_[vehicle_id] = seq;
  }
  return decoder.ok();
}

}  // namespace navarchos::shard
