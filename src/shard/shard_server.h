// ShardServer: one IngestServer listener per shard of a ShardGroup.
//
// The wire face of the sharded fleet: N poll-thread IngestServers, each
// feeding its own shard's FleetService, wired back into the group's
// FleetAggregator through the server admission/registration hooks. After
// all listeners bound, every server advertises the complete shard map
// (count, seed, ports) in its WELCOMEs, so a ShardedClient can bootstrap
// from any one port. All servers share the group's fleet-wide history
// service for QUERY, so RANK/TIMELINE/COMOVE answers are fleet-wide on
// every shard.
#ifndef NAVARCHOS_SHARD_SHARD_SERVER_H_
#define NAVARCHOS_SHARD_SHARD_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/ingest_server.h"
#include "shard/shard_group.h"

/// \file
/// \brief ShardServer: the per-shard TCP listeners of a ShardGroup, with
/// shard-map advertisement and fleet-order aggregation hooks.

namespace navarchos::shard {

/// N per-shard IngestServers over one ShardGroup.
class ShardServer {
 public:
  /// Borrows `group` (must outlive the server). `server_template` seeds
  /// every shard's ServerConfig; its `port` is used by shard 0 only (the
  /// bootstrap port; the other shards bind ephemeral ports advertised via
  /// the shard map) and its `history` is shared by all shards.
  ShardServer(ShardGroup* group, const net::ServerConfig& server_template);

  /// Stops every listener.
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds and starts every shard's listener, then installs the complete
  /// shard map on each (WELCOMEs advertise it from then on).
  util::Status Start();

  /// Stops every listener (idempotent).
  void Stop();

  /// Bound port of shard `shard`'s listener.
  std::uint16_t port(int shard) const;

  /// The advertised shard map (meaningful after Start).
  const net::ShardMapInfo& map_info() const { return map_info_; }

  /// Sum of finished (FINished) sessions across all shards.
  std::uint64_t finished_sessions() const;

  /// Blocks until at least `count` sessions finished fleet-wide, or
  /// `timeout_ms` elapsed (0 waits forever). Returns whether reached.
  bool WaitForFinishedSessions(std::uint64_t count,
                               std::int64_t timeout_ms = 0);

  /// Borrowed access to shard `shard`'s server (stats, tests).
  net::IngestServer* server(int shard);

 private:
  ShardGroup* const group_;
  const net::ServerConfig template_;
  std::vector<std::unique_ptr<net::IngestServer>> servers_;
  net::ShardMapInfo map_info_;
};

}  // namespace navarchos::shard

#endif  // NAVARCHOS_SHARD_SHARD_SERVER_H_
