#include "shard/shard_group.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "persist/snapshot.h"
#include "util/check.h"

namespace navarchos::shard {

namespace {

/// Layout version of the fleet manifest's "fleet" and "agg" chunks.
constexpr std::uint32_t kManifestVersion = 1;

/// File name of the fleet manifest inside a checkpoint directory.
const char kManifestName[] = "fleet.manifest";

/// Epoch-named per-shard snapshot file name ("shard-2.e7.snap").
std::string ShardFileName(std::uint32_t shard, std::uint64_t epoch) {
  return "shard-" + std::to_string(shard) + ".e" + std::to_string(epoch) +
         ".snap";
}

}  // namespace

ShardGroup::ShardGroup(const ShardGroupConfig& config)
    : config_(config),
      pool_(config.service.runtime.ResolveThreads()),
      map_(config.shard_count, config.hash_seed),
      aggregator_(config.shard_count) {
  NAVARCHOS_CHECK(config.shard_count >= 1);
  shards_.reserve(config.shard_count);
  for (std::uint32_t shard = 0; shard < config.shard_count; ++shard) {
    service::ServiceConfig shard_config = config.service;
    shard_config.shared_pool = &pool_;
    shards_.push_back(
        std::make_unique<service::FleetService>(shard_config));
    aggregator_.AttachShard(static_cast<int>(shard), shards_.back().get());
  }
  // The shared pool serves every shard, so its metrics belong to no single
  // one; by convention they live in shard 0's registry (FleetSnapshot merges
  // all registries, so the fleet view is the same either way).
  pool_.AttachMetrics(shards_[0]->metrics());
}

ShardGroup::~ShardGroup() {
  Drain();
  // The shards are destroyed before pool_ (member order), and each shard's
  // destructor drains, so no pump task outlives its lanes.
}

int ShardGroup::RegisterVehicle(std::int32_t vehicle_id) {
  std::lock_guard<std::mutex> lock(mu_);
  NAVARCHOS_CHECK(!draining_);
  const auto it = vehicle_index_.find(vehicle_id);
  if (it != vehicle_index_.end()) return static_cast<int>(it->second);
  VehicleSlot slot;
  slot.vehicle_id = vehicle_id;
  slot.shard = map_.ShardOf(vehicle_id);
  slot.lane = shards_[static_cast<std::size_t>(slot.shard)]->RegisterVehicle(
      vehicle_id);
  vehicles_.push_back(slot);
  vehicle_index_.emplace(vehicle_id, vehicles_.size() - 1);
  return static_cast<int>(vehicles_.size() - 1);
}

bool ShardGroup::Submit(const telemetry::SensorFrame& frame) {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) return false;
  const auto it = vehicle_index_.find(frame.vehicle_id());
  int shard;
  if (it == vehicle_index_.end()) {
    // Auto-register in first-seen order, as FleetService does.
    lock.unlock();
    RegisterVehicle(frame.vehicle_id());
    lock.lock();
    if (draining_) return false;
    shard = vehicles_[vehicle_index_.at(frame.vehicle_id())].shard;
  } else {
    shard = vehicles_[it->second].shard;
  }
  const service::Admission admission =
      shards_[static_cast<std::size_t>(shard)]->Ingest(frame);
  if (!admission.accepted()) return false;
  // Fleet seqs are assigned only to ADMITTED frames, in submission order:
  // sheds leave no hole, so the aggregator's contiguous release never
  // stalls.
  aggregator_.OnAdmitted(shard, admission.global_seq, next_fleet_seq_);
  ++next_fleet_seq_;
  return true;
}

void ShardGroup::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) return;
  draining_ = true;
  std::vector<std::int32_t> vehicle_order;
  vehicle_order.reserve(vehicles_.size());
  for (const VehicleSlot& slot : vehicles_) {
    NAVARCHOS_CHECK(slot.shard >= 0);  // every slot filled (wire order too)
    vehicle_order.push_back(slot.vehicle_id);
  }
  for (auto& shard : shards_) shard->Drain();
  aggregator_.FinishFleet(vehicle_order);
  drained_ = true;
}

core::FleetRunResult ShardGroup::TakeResult() {
  std::lock_guard<std::mutex> lock(mu_);
  NAVARCHOS_CHECK(drained_);
  std::vector<core::FleetRunResult> shard_results;
  shard_results.reserve(shards_.size());
  for (auto& shard : shards_) shard_results.push_back(shard->TakeResult());
  core::FleetRunResult result;
  // Threshold/persistence metadata is config-derived and identical on
  // every shard; channel names may be empty on a vehicle-less shard, so
  // take the first non-empty.
  result.persistence_window = shard_results[0].persistence_window;
  result.persistence_min = shard_results[0].persistence_min;
  result.threshold_kind = shard_results[0].threshold_kind;
  for (const core::FleetRunResult& shard_result : shard_results) {
    if (!shard_result.channel_names.empty()) {
      result.channel_names = shard_result.channel_names;
      break;
    }
  }
  result.alarms = aggregator_.released_alarms();
  result.scored_samples.resize(vehicles_.size());
  result.calibrations.resize(vehicles_.size());
  result.quality.resize(vehicles_.size());
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const VehicleSlot& slot = vehicles_[i];
    core::FleetRunResult& home = shard_results[static_cast<std::size_t>(
        slot.shard)];
    const std::size_t lane = static_cast<std::size_t>(slot.lane);
    result.scored_samples[i] = std::move(home.scored_samples[lane]);
    result.calibrations[i] = std::move(home.calibrations[lane]);
    result.quality[i] = std::move(home.quality[lane]);
  }
  return result;
}

void ShardGroup::set_alarm_callback(service::AlarmCallback callback) {
  aggregator_.set_alarm_callback(std::move(callback));
}

void ShardGroup::set_history_callback(service::HistoryCallback callback) {
  aggregator_.set_history_callback(std::move(callback));
}

void ShardGroup::set_checkpoint_barrier(
    std::function<util::Status()> barrier) {
  std::lock_guard<std::mutex> lock(mu_);
  checkpoint_barrier_ = std::move(barrier);
}

util::Status ShardGroup::Checkpoint(const std::string& dir) {
  // Holding mu_ blocks new submissions on every shard at once; the shared
  // pool falling idle then means every admitted frame on every shard has
  // been pumped, completed and released through the aggregator - the one
  // consistent fleet-wide cut the manifest describes.
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_ || drained_)
    return util::Status::Error("cannot checkpoint a draining fleet");
  pool_.WaitIdle();
  if (checkpoint_barrier_) {
    const util::Status barrier_status = checkpoint_barrier_();
    if (!barrier_status.ok()) return barrier_status;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    return util::Status::Error("cannot create checkpoint dir " + dir + ": " +
                               ec.message());
  const std::uint64_t epoch = checkpoint_epoch_ + 1;
  persist::Snapshot manifest;

  persist::Encoder fleet_encoder;
  fleet_encoder.PutU32(kManifestVersion);
  fleet_encoder.PutU32(config_.shard_count);
  fleet_encoder.PutU64(config_.hash_seed);
  fleet_encoder.PutU64(next_fleet_seq_);
  fleet_encoder.PutU64(epoch);
  fleet_encoder.PutU32(static_cast<std::uint32_t>(vehicles_.size()));
  for (const VehicleSlot& slot : vehicles_)
    fleet_encoder.PutI32(slot.vehicle_id);
  manifest.Add("fleet", std::move(fleet_encoder));

  persist::Encoder agg_encoder;
  aggregator_.Save(agg_encoder);
  manifest.Add("agg", std::move(agg_encoder));

  // Epoch-named per-shard files: the previous epoch's files stay intact
  // until the new manifest commits, so a crash mid-checkpoint cannot
  // damage the last durable fleet state.
  for (std::uint32_t shard = 0; shard < config_.shard_count; ++shard) {
    const std::string name = ShardFileName(shard, epoch);
    const std::string path = dir + "/" + name;
    const util::Status shard_status = shards_[shard]->Checkpoint(path);
    if (!shard_status.ok()) return shard_status;
    std::uint32_t crc = 0;
    std::uint64_t size = 0;
    const util::Status crc_status = persist::Crc32OfFile(path, &crc, &size);
    if (!crc_status.ok()) return crc_status;
    persist::Encoder shard_encoder;
    shard_encoder.PutString(name);
    shard_encoder.PutU64(size);
    shard_encoder.PutU32(crc);
    manifest.Add("shard." + std::to_string(shard), std::move(shard_encoder));
  }

  // The manifest's atomic rename is the commit point of the whole fleet
  // checkpoint: before it, restore sees the old epoch; after it, the new.
  const util::Status manifest_status =
      persist::WriteSnapshot(dir + "/" + kManifestName, manifest);
  if (!manifest_status.ok()) return manifest_status;
  checkpoint_epoch_ = epoch;

  // Best-effort cleanup of superseded epochs (crash-safe: losing stale
  // files is the goal, and the committed epoch's files are never touched).
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    bool current = false;
    for (std::uint32_t shard = 0; shard < config_.shard_count; ++shard)
      if (name == ShardFileName(shard, epoch)) current = true;
    if (!current) std::filesystem::remove(entry.path(), ec);
  }
  return util::Status();
}

util::Status ShardGroup::RestoreFromDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!vehicles_.empty() || next_fleet_seq_ != 0)
    return util::Status::Error("restore requires a fresh shard group");
  persist::Snapshot manifest;
  const std::string manifest_path = dir + "/" + kManifestName;
  util::Status status = persist::ReadSnapshot(manifest_path, &manifest);
  if (!status.ok()) return status;

  const persist::SnapshotChunk* fleet_chunk = manifest.Find("fleet");
  if (fleet_chunk == nullptr)
    return util::Status::Error("fleet manifest: missing 'fleet' chunk");
  persist::Decoder fleet_decoder(fleet_chunk->payload);
  const std::uint32_t version = fleet_decoder.GetU32();
  const std::uint32_t shard_count = fleet_decoder.GetU32();
  const std::uint64_t hash_seed = fleet_decoder.GetU64();
  const std::uint64_t next_fleet_seq = fleet_decoder.GetU64();
  const std::uint64_t epoch = fleet_decoder.GetU64();
  const std::uint32_t vehicle_count = fleet_decoder.GetU32();
  if (!fleet_decoder.ok())
    return util::Status::Error("fleet manifest: truncated 'fleet' chunk");
  if (version != kManifestVersion)
    return util::Status::Error("fleet manifest: unsupported version " +
                               std::to_string(version));
  if (shard_count != config_.shard_count)
    return util::Status::Error(
        "fleet manifest: shard count mismatch (manifest " +
        std::to_string(shard_count) + ", group " +
        std::to_string(config_.shard_count) + ")");
  if (hash_seed != config_.hash_seed)
    return util::Status::Error("fleet manifest: hash seed mismatch");
  if (vehicle_count > fleet_decoder.remaining() / 4)
    return util::Status::Error(
        "fleet manifest: vehicle count exceeds payload size");
  std::vector<std::int32_t> vehicle_order;
  vehicle_order.reserve(vehicle_count);
  for (std::uint32_t i = 0; i < vehicle_count; ++i)
    vehicle_order.push_back(fleet_decoder.GetI32());
  status = fleet_decoder.ToStatus("fleet manifest 'fleet' chunk");
  if (!status.ok()) return status;

  // Verify every per-shard file against the manifest's fingerprint BEFORE
  // restoring anything: a half-written or bit-flipped shard snapshot must
  // fail the whole fleet restore, not produce a Frankenstein fleet.
  std::vector<std::string> shard_paths(config_.shard_count);
  for (std::uint32_t shard = 0; shard < config_.shard_count; ++shard) {
    const persist::SnapshotChunk* chunk =
        manifest.Find("shard." + std::to_string(shard));
    if (chunk == nullptr)
      return util::Status::Error("fleet manifest: missing shard " +
                                 std::to_string(shard) + " chunk");
    persist::Decoder decoder(chunk->payload);
    const std::string name = decoder.GetString();
    const std::uint64_t expected_size = decoder.GetU64();
    const std::uint32_t expected_crc = decoder.GetU32();
    status = decoder.ToStatus("fleet manifest shard chunk");
    if (!status.ok()) return status;
    const std::string path = dir + "/" + name;
    std::uint32_t crc = 0;
    std::uint64_t size = 0;
    status = persist::Crc32OfFile(path, &crc, &size);
    if (!status.ok()) return status;
    if (size != expected_size || crc != expected_crc)
      return util::Status::Error(
          "fleet manifest: " + path + " does not match its fingerprint " +
          "(size " + std::to_string(size) + " vs " +
          std::to_string(expected_size) + ", crc " + std::to_string(crc) +
          " vs " + std::to_string(expected_crc) + ")");
    shard_paths[shard] = path;
  }

  for (std::uint32_t shard = 0; shard < config_.shard_count; ++shard) {
    status = shards_[shard]->RestoreFromFile(shard_paths[shard]);
    if (!status.ok()) return status;
  }

  const persist::SnapshotChunk* agg_chunk = manifest.Find("agg");
  if (agg_chunk == nullptr)
    return util::Status::Error("fleet manifest: missing 'agg' chunk");
  persist::Decoder agg_decoder(agg_chunk->payload);
  if (!aggregator_.Restore(agg_decoder))
    return util::Status::Error("fleet manifest: malformed 'agg' chunk");
  status = agg_decoder.ToStatus("fleet manifest 'agg' chunk");
  if (!status.ok()) return status;

  // Re-learn the routing records: the shards' restores already recreated
  // their lanes, so RegisterVehicle returns each existing lane index.
  for (const std::int32_t vehicle_id : vehicle_order) {
    VehicleSlot slot;
    slot.vehicle_id = vehicle_id;
    slot.shard = map_.ShardOf(vehicle_id);
    slot.lane =
        shards_[static_cast<std::size_t>(slot.shard)]->RegisterVehicle(
            vehicle_id);
    vehicles_.push_back(slot);
    vehicle_index_.emplace(vehicle_id, vehicles_.size() - 1);
  }

  // Cross-check the composition: the shards' admissions must sum to the
  // fleet cursor, or the manifest and shard files disagree.
  std::uint64_t accepted = 0;
  for (const auto& shard : shards_) accepted += shard->stats().frames_accepted;
  if (accepted != next_fleet_seq)
    return util::Status::Error(
        "fleet manifest: shard admissions sum to " + std::to_string(accepted) +
        " but the fleet cursor is " + std::to_string(next_fleet_seq));
  if (aggregator_.next_fleet_release() != next_fleet_seq)
    return util::Status::Error("fleet manifest: aggregator cursor " +
                               std::to_string(aggregator_.next_fleet_release()) +
                               " disagrees with the fleet cursor " +
                               std::to_string(next_fleet_seq));
  next_fleet_seq_ = next_fleet_seq;
  checkpoint_epoch_ = epoch;
  return util::Status();
}

std::vector<core::Alarm> ShardGroup::released_alarms() const {
  return aggregator_.released_alarms();
}

obs::StatsSnapshot ShardGroup::FleetSnapshot() {
  obs::StatsSnapshot fleet;
  for (auto& shard : shards_)
    obs::MergeSnapshot(&fleet, shard->SnapshotStats());
  return fleet;
}

ShardGroupStats ShardGroup::stats() const {
  ShardGroupStats total;
  for (const auto& shard : shards_) {
    const service::ServiceStats stats = shard->stats();
    total.frames_submitted += stats.frames_submitted;
    total.frames_accepted += stats.frames_accepted;
    total.frames_rejected += stats.frames_rejected;
    total.frames_processed += stats.frames_processed;
    total.alarms_emitted += stats.alarms_emitted;
  }
  return total;
}

std::size_t ShardGroup::vehicle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return vehicles_.size();
}

service::FleetService* ShardGroup::shard_service(int shard) {
  return shards_[static_cast<std::size_t>(shard)].get();
}

void ShardGroup::OnWireAdmission(int shard, std::int32_t vehicle_id,
                                 std::uint64_t local_seq,
                                 std::uint64_t fleet_seq) {
  (void)vehicle_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_fleet_seq_ = std::max(next_fleet_seq_, fleet_seq + 1);
  }
  aggregator_.OnAdmitted(shard, local_seq, fleet_seq);
}

void ShardGroup::OnWireRegistration(std::int32_t vehicle_id,
                                    std::uint32_t fleet_order) {
  std::lock_guard<std::mutex> lock(mu_);
  if (vehicle_index_.count(vehicle_id) != 0) return;
  const std::size_t index = fleet_order;
  if (vehicles_.size() <= index) {
    VehicleSlot empty;
    empty.shard = -1;  // unfilled sentinel; Drain CHECKs none remain
    vehicles_.resize(index + 1, empty);
  }
  VehicleSlot& slot = vehicles_[index];
  slot.vehicle_id = vehicle_id;
  slot.shard = map_.ShardOf(vehicle_id);
  slot.lane = shards_[static_cast<std::size_t>(slot.shard)]->RegisterVehicle(
      vehicle_id);
  vehicle_index_.emplace(vehicle_id, index);
}

}  // namespace navarchos::shard
