// ShardGroup: N in-process FleetService shards behind one router.
//
// The group owns one shared runtime::ThreadPool, N FleetServices running
// on it (ServiceConfig::shared_pool), a ShardMap routing vehicle ids to
// shards, and a FleetAggregator merging the shards' ordered release
// streams back into one fleet-wide total order. Its public surface
// mirrors FleetService - RegisterVehicle / Submit / Drain / TakeResult /
// Checkpoint / Restore - so callers scale from one shard to N by changing
// a count, not their code.
//
// The house invariant extends across the split: for a given submission
// sequence, fleet-level alarms, history records and query answers are
// bit-identical at ANY shard count x ANY thread count, and equal to the
// unsharded run. Sharding only re-partitions per-vehicle lanes between
// services; every per-vehicle computation is untouched, and the fleet
// sequence numbers assigned at Submit rebuild the one total order the
// unsharded OrderedSink would have produced.
//
// Fleet-wide checkpoint: Checkpoint(dir) quiesces every shard behind one
// barrier (the shared pool's WaitIdle with ingest blocked is a global
// quiesce), writes one snapshot per shard plus a CRC'd manifest naming
// them - and the manifest's atomic rename is the commit point, so a crash
// between files leaves the previous checkpoint intact. RestoreFromDir
// verifies every per-shard file against the manifest's CRCs before any
// state is touched.
#ifndef NAVARCHOS_SHARD_SHARD_GROUP_H_
#define NAVARCHOS_SHARD_SHARD_GROUP_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/fleet_service.h"
#include "shard/fleet_aggregator.h"
#include "shard/shard_router.h"

/// \file
/// \brief ShardGroup: the in-process sharded fleet - N FleetServices on a
/// shared pool behind a consistent-hash router, with fleet-wide ordered
/// output and a manifest-committed fleet checkpoint.

namespace navarchos::shard {

/// Configuration of a sharded fleet group.
struct ShardGroupConfig {
  /// Per-shard service configuration (monitor pipeline, queue capacity,
  /// backpressure, pump batch). The `runtime` field sizes the ONE pool
  /// all shards share; `shared_pool` is overwritten by the group.
  service::ServiceConfig service;
  /// Number of shards (1 = a single service behind the same API).
  std::uint32_t shard_count = 1;
  /// Seed of the consistent-hash ring (see shard_router.h).
  std::uint64_t hash_seed = kDefaultHashSeed;
};

/// Aggregate counters over all shards (sums of the per-shard stats).
using ShardGroupStats = service::ServiceStats;

/// N FleetService shards behind one consistent-hash router. Threading
/// rules are FleetService's: Submit/RegisterVehicle from one ingest
/// thread (they are serialised internally), Drain never from a callback.
class ShardGroup {
 public:
  /// Builds the shared pool, the shards and the aggregator.
  explicit ShardGroup(const ShardGroupConfig& config);

  /// Drains (if not yet drained) and stops the shards and pool.
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  /// Registers `vehicle_id` on its home shard; returns the vehicle's
  /// fleet-wide registration index (its slot in TakeResult()'s vectors).
  /// Idempotent: a known vehicle returns its existing index.
  int RegisterVehicle(std::int32_t vehicle_id);

  /// Routes one frame to its home shard and, when admitted, assigns the
  /// next fleet-wide sequence number. Returns whether the frame was
  /// admitted (false = shed under kReject, or draining).
  bool Submit(const telemetry::SensorFrame& frame);

  /// Drains every shard, then emits the end-of-stream flushes in fleet
  /// registration order through the aggregator. Idempotent.
  void Drain();

  /// Composes the fleet-wide run result: aggregator-ordered alarms plus
  /// per-vehicle vectors re-indexed from shard lane order into fleet
  /// registration order - the same shape an unsharded run returns.
  /// Requires Drain() first.
  core::FleetRunResult TakeResult();

  /// Installs the fleet-wide alarm observer (forwarded to the
  /// aggregator). Must be set before the first Submit.
  void set_alarm_callback(service::AlarmCallback callback);

  /// Installs the fleet-wide history observer; records carry fleet
  /// sequence numbers. Must be set before the first Submit.
  void set_history_callback(service::HistoryCallback callback);

  /// Installs a barrier run inside Checkpoint after the fleet-wide
  /// quiesce and before any snapshot is written (the history-flush hook,
  /// as in FleetService::set_checkpoint_barrier, but once per fleet
  /// checkpoint rather than per shard).
  void set_checkpoint_barrier(std::function<util::Status()> barrier);

  /// Fleet-wide durable checkpoint into directory `dir`: blocks ingest,
  /// quiesces all shards, runs the barrier, writes one epoch-named
  /// snapshot per shard plus the CRC'd `fleet.manifest` (atomic rename =
  /// commit), then resumes ingest and removes stale-epoch files. Fails
  /// while draining/drained.
  util::Status Checkpoint(const std::string& dir);

  /// Restores a fleet checkpoint into this FRESH group (no registrations
  /// or submissions yet; same monitor config, shard count and hash seed
  /// as the checkpointing group). Verifies the manifest and every
  /// per-shard file's CRC before restoring; on error the group must be
  /// discarded.
  util::Status RestoreFromDir(const std::string& dir);

  /// Copy of the fleet-ordered released alarms (quiescent callers only).
  std::vector<core::Alarm> released_alarms() const;

  /// Sums of the per-shard service counters.
  ShardGroupStats stats() const;

  /// Merged fleet-wide metrics snapshot: the per-shard registry snapshots
  /// (FleetService::SnapshotStats) folded together with obs::MergeSnapshot
  /// - counters and histogram cells add, gauges take the max. Per-lane
  /// gauge names are keyed by vehicle id, and vehicles are sharded
  /// disjointly, so no gauge collides across shards. The shared pool's
  /// metrics live in shard 0's registry and appear here exactly once.
  obs::StatsSnapshot FleetSnapshot();

  /// Number of registered vehicles, fleet-wide.
  std::size_t vehicle_count() const;

  /// The routing table (pure function of shard count and seed).
  const ShardMap& shard_map() const { return map_; }

  /// Borrowed access to shard `shard`'s service (wire front ends attach
  /// one IngestServer per shard).
  service::FleetService* shard_service(int shard);

  /// Borrowed access to the fleet aggregator (wire front ends report
  /// admissions into it).
  FleetAggregator* aggregator() { return &aggregator_; }

  /// Reports an admission decided outside Submit (the wire path: a shard
  /// IngestServer admitted `local_seq` carrying `fleet_seq`). Also tracks
  /// the fleet seq high-water mark.
  void OnWireAdmission(int shard, std::int32_t vehicle_id,
                       std::uint64_t local_seq, std::uint64_t fleet_seq);

  /// Records a vehicle's fleet-wide registration index declared over the
  /// wire (the HELLO fleet-order tail), so Drain can flush in fleet
  /// order.
  void OnWireRegistration(std::int32_t vehicle_id, std::uint32_t fleet_order);

 private:
  /// One registered vehicle's routing record.
  struct VehicleSlot {
    std::int32_t vehicle_id = 0;
    int shard = 0;
    int lane = 0;  ///< Lane index within the home shard.
  };

  const ShardGroupConfig config_;
  runtime::ThreadPool pool_;  ///< The one pool all shards share.
  ShardMap map_;
  FleetAggregator aggregator_;
  std::vector<std::unique_ptr<service::FleetService>> shards_;

  mutable std::mutex mu_;  ///< Serialises Submit/Register/Drain/Checkpoint.
  std::vector<VehicleSlot> vehicles_;  ///< Fleet registration order.
  std::unordered_map<std::int32_t, std::size_t> vehicle_index_;
  std::uint64_t next_fleet_seq_ = 0;
  std::uint64_t checkpoint_epoch_ = 0;
  bool draining_ = false;
  bool drained_ = false;
  std::function<util::Status()> checkpoint_barrier_;
};

}  // namespace navarchos::shard

#endif  // NAVARCHOS_SHARD_SHARD_GROUP_H_
