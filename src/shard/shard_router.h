// Consistent-hash shard router: the pure function vehicle id -> shard.
//
// A fleet served by N shards needs every peer - routing clients, shard
// servers, the checkpoint manifest - to agree on which shard owns which
// vehicle, across processes and across runs. ShardMap is therefore a PURE
// FUNCTION of (shard_count, seed): it derives a consistent-hash ring of
// kVirtualNodesPerShard seeded points per shard at construction, with no
// ambient state (no time, no randomness, no host identity), so the same
// two numbers always yield the same assignment. The WELCOME shard-map
// tail (net::ShardMapInfo) carries exactly these two numbers plus the
// shard ports; a client rebuilds the identical ring locally.
//
// The hash is the splitmix64 finalizer (Steele, Lea & Flood, "Fast
// splittable pseudorandom number generators", OOPSLA 2014) - a fixed,
// documented 64-bit mixer, NOT std::hash (whose result is implementation-
// defined and would silently break cross-process agreement). Ring points
// are Mix64(seed ^ Mix64((shard + 1) << 32 | vnode)); a vehicle hashes to
// Mix64(seed ^ Mix64(zero-extended id)) and is owned by the first ring
// point clockwise from it. The `shard + 1` high word keeps vnode labels
// disjoint from zero-extended vehicle ids, so a vehicle never hashes
// exactly onto a ring point derived from its own id (without it, ids
// 0..63 would collide with shard 0's vnode labels and all pin to shard
// 0). Consistent hashing keeps reassignment minimal
// when the shard count changes: growing N shards to N+1 moves only ~1/(N+1)
// of the vehicles (a plain modulo would move nearly all of them).
#ifndef NAVARCHOS_SHARD_SHARD_ROUTER_H_
#define NAVARCHOS_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <utility>
#include <vector>

/// \file
/// \brief ShardMap: the seeded consistent-hash ring assigning vehicle ids
/// to shards, identical across processes and runs by construction.

/// \namespace navarchos::shard
/// \brief Fleet sharding: the consistent-hash router, per-shard services
/// behind one shared pool, the fleet-order aggregator and the fleet-wide
/// checkpoint manifest.

namespace navarchos::shard {

/// Default seed of the consistent-hash ring (the golden-ratio constant
/// also used as the splitmix64 increment). Every peer of a fleet must use
/// the same seed; deployments that want a private ring override it.
inline constexpr std::uint64_t kDefaultHashSeed = 0x9E3779B97F4A7C15ull;

/// Virtual ring points per shard. More points smooth the load split
/// between shards at the cost of a larger (still tiny) ring; 64 keeps the
/// imbalance of a uniform fleet within a few percent.
inline constexpr std::uint32_t kVirtualNodesPerShard = 64;

/// The splitmix64 finalizer: the fixed 64-bit mixer under every ring
/// point and vehicle hash. Public so tests and documentation can pin the
/// exact function (it is part of the wire-visible contract).
std::uint64_t Mix64(std::uint64_t x);

/// The vehicle-to-shard assignment: a consistent-hash ring derived purely
/// from (shard_count, seed). Immutable and thread-safe after construction.
class ShardMap {
 public:
  /// Builds the ring for `shard_count` >= 1 shards under `seed`.
  explicit ShardMap(std::uint32_t shard_count,
                    std::uint64_t seed = kDefaultHashSeed);

  /// Shard owning `vehicle_id`: the ring point first clockwise from the
  /// vehicle's hash. Always 0 for a single-shard map.
  int ShardOf(std::int32_t vehicle_id) const;

  /// Number of shards the ring was built for.
  std::uint32_t shard_count() const { return shard_count_; }

  /// Seed the ring was built under.
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint32_t shard_count_;
  std::uint64_t seed_;
  /// Ring points (hash, shard), sorted by hash; ties broken by shard id
  /// at construction so the ring order is unambiguous.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace navarchos::shard

#endif  // NAVARCHOS_SHARD_SHARD_ROUTER_H_
