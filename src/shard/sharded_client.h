// ShardedClient: one routing session over N shard listeners.
//
// A sharded fleet exposes one listener per shard. The client dials ANY of
// them, learns the full shard map from the WELCOME tail (shard count,
// hash seed, every shard's port), rebuilds the identical ShardMap
// locally, and maintains one self-healing IngestClient session per shard
// (session ids "<base>#<shard>"). Each Send routes its frame to the home
// shard, assigns the next FLEET sequence number (carried in the FRAMES
// fleet-seq tail so the server-side aggregator can restore the fleet-wide
// total order), and inherits the per-shard stop-and-wait / reconnect /
// RESUME machinery unchanged - a mid-stream cut on one shard heals
// exactly like the unsharded client's.
//
// Resume across client objects replays the WHOLE submission stream: the
// caller re-Sends every frame from the beginning and the client skips
// frames its home shard already decided (shard-local submission index
// below the shard's WELCOME cursor). Because fleet seqs are a pure
// function of the submission order, the replayed assignment is identical,
// so skipped and resent frames alike carry the same fleet seq as before
// the cut - exactly-once admission per shard composes into exactly-once
// fleet-wide.
#ifndef NAVARCHOS_SHARD_SHARDED_CLIENT_H_
#define NAVARCHOS_SHARD_SHARDED_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/ingest_client.h"
#include "shard/shard_router.h"

/// \file
/// \brief ShardedClient: resolves vehicle->shard from the WELCOME shard
/// map and maintains one resumable self-healing session per shard.

namespace navarchos::shard {

/// Configuration of a sharded client.
struct ShardedClientConfig {
  /// Per-shard client tuning (host, deadlines, batch size, backoff,
  /// transport factory). `port` is the bootstrap port - any shard's
  /// listener; the shard map learned from its WELCOME supplies the rest.
  /// `session_id` is the base name; shard s uses "<session_id>#<s>".
  net::ClientConfig client;
};

/// Routing client over N per-shard sessions. Single-threaded, like
/// IngestClient.
class ShardedClient {
 public:
  /// Stores the configuration; nothing is dialled yet.
  explicit ShardedClient(const ShardedClientConfig& config);

  /// Dials the bootstrap port, learns the shard map, then connects one
  /// session per shard, registering each vehicle on its home shard with
  /// its fleet-wide registration index (`vehicle_ids` order). With
  /// `resume`, each shard session resumes its own cursor.
  util::Status Connect(const std::vector<std::int32_t>& vehicle_ids,
                       bool resume = false);

  /// Routes one frame to its home shard under the next fleet sequence
  /// number. On resume, frames the home shard already decided are skipped
  /// locally (the fleet seq still advances, keeping the assignment pure).
  util::Status Send(const telemetry::SensorFrame& frame);

  /// Flushes every shard session's partial batch.
  util::Status Flush();

  /// Flushes and FINishes every shard session.
  util::Status Finish();

  /// Simulated crash: closes every shard session without FIN.
  void Abort();

  /// The shard map learned at Connect.
  const net::ShardMapInfo& shard_map_info() const { return map_info_; }

  /// Fleet sequence number the next Send will assign.
  std::uint64_t next_fleet_seq() const { return next_fleet_seq_; }

  /// Sum of per-shard frames actually sent (excludes resume skips).
  std::uint64_t frames_sent() const;

  /// Runs a RANK query against shard 0 (all shards share one fleet-wide
  /// history log, so any shard answers fleet queries).
  util::Status QueryRank(const history::RankQuery& query,
                         history::RankResult* out);

  /// Runs a TIMELINE query against shard 0.
  util::Status QueryTimeline(const history::TimelineQuery& query,
                             history::TimelineResult* out);

  /// Runs a COMOVE query against shard 0.
  util::Status QueryComove(const history::ComoveQuery& query,
                           history::ComoveResult* out);

 private:
  /// Shard owning `vehicle_id` under the learned map.
  int ShardOf(std::int32_t vehicle_id) const;

  const ShardedClientConfig config_;
  net::ShardMapInfo map_info_;
  std::unique_ptr<ShardMap> map_;  ///< Built from map_info_ at Connect.
  std::vector<std::unique_ptr<net::IngestClient>> clients_;  ///< Per shard.
  /// Shard-local submission index per shard (counts every routed frame,
  /// sent or skipped); the resume-skip cursor compares against it.
  std::vector<std::uint64_t> local_index_;
  /// Each shard session's WELCOME cursor at Connect: frames with a
  /// shard-local index below it were decided before the resume.
  std::vector<std::uint64_t> resume_cursor_;
  std::uint64_t next_fleet_seq_ = 0;
};

}  // namespace navarchos::shard

#endif  // NAVARCHOS_SHARD_SHARDED_CLIENT_H_
