// FleetAggregator: merges per-shard ordered streams into the fleet order.
//
// Each shard's FleetService already releases its own completions in
// shard-local admission order (the OrderedSink contract). Sharding splits
// the fleet's one admission order across N such services, so restoring
// the fleet-wide total order needs one more merge: every admitted frame
// carries a FLEET sequence number (assigned in fleet submission order by
// the ShardGroup router or a sharded wire client), and the aggregator is
// a fleet-level ordered sink keyed by it - releasing alarms, history
// records and the released-alarm log in contiguous fleet-seq order, no
// matter how the shards' pumps interleave.
//
// Mechanics: the aggregator installs itself as every shard's alarm /
// history / completion callback. A shard's callbacks arrive in a strict
// per-frame pattern (alarms, then history records, then the completion),
// so the aggregator accumulates a per-shard "current bundle" and seals it
// at each completion under the frame's shard-local sequence number. The
// bundle then waits for two facts to meet: its local->fleet mapping
// (reported by OnAdmitted, possibly after the pump already completed the
// frame - admission and completion race benignly) and the fleet release
// cursor reaching its fleet seq. History records are re-stamped with the
// fleet seq on release, so the fleet history log and its RANK / TIMELINE /
// COMOVE answers are bit-identical to the unsharded run's.
//
// End-of-stream monitor flushes are unsequenced (they follow the drain
// barrier); each shard's flush leftovers stay in its current bundle until
// FinishFleet regroups them by vehicle and emits them in FLEET
// registration order - exactly the lane order an unsharded drain uses -
// attributing each vehicle's flush records to its last released fleet seq.
#ifndef NAVARCHOS_SHARD_FLEET_AGGREGATOR_H_
#define NAVARCHOS_SHARD_FLEET_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "persist/codec.h"
#include "service/fleet_service.h"

/// \file
/// \brief FleetAggregator: the fleet-level ordered sink merging N shards'
/// release streams into one deterministic fleet-wide total order.

namespace navarchos::shard {

/// Fleet-level ordered sink over N shard services. Thread-safe: shard
/// sinks invoke its callbacks from worker threads, the router reports
/// admissions from the ingest thread(s).
class FleetAggregator {
 public:
  /// Prepares per-shard state for `shard_count` shards.
  explicit FleetAggregator(std::uint32_t shard_count);

  FleetAggregator(const FleetAggregator&) = delete;
  FleetAggregator& operator=(const FleetAggregator&) = delete;

  /// Installs the fleet-wide alarm observer (release order = fleet order).
  /// Must be set before any shard ingests.
  void set_alarm_callback(service::AlarmCallback callback);

  /// Installs the fleet-wide history observer; records arrive re-stamped
  /// with their fleet sequence number. Must be set before any shard
  /// ingests.
  void set_history_callback(service::HistoryCallback callback);

  /// Hooks shard `shard`'s service callbacks into this aggregator. Must be
  /// called once per shard, before the shard's first Submit.
  void AttachShard(int shard, service::FleetService* service);

  /// Reports that the frame admitted under `local_seq` on `shard` carries
  /// fleet sequence number `fleet_seq`. Safe before or after the shard's
  /// pump completes the frame.
  void OnAdmitted(int shard, std::uint64_t local_seq, std::uint64_t fleet_seq);

  /// Emits the end-of-stream flush leftovers in fleet registration order
  /// (`vehicle_order` = vehicle ids in fleet order). Call after every
  /// shard drained; requires all sequenced work released.
  void FinishFleet(const std::vector<std::int32_t>& vehicle_order);

  /// Copy of the fleet-ordered released alarms (quiescent callers only).
  std::vector<core::Alarm> released_alarms() const;

  /// First fleet sequence number not yet released.
  std::uint64_t next_fleet_release() const;

  /// Serialises the quiescent aggregator (release cursor, released
  /// alarms, per-vehicle last-released seqs) for the fleet manifest.
  /// Legal only with nothing in flight (the checkpoint barrier).
  void Save(persist::Encoder& encoder) const;

  /// Restores state saved by Save(). Returns false on malformed input.
  bool Restore(persist::Decoder& decoder);

 private:
  /// One frame's (or one shard's flush leftovers') released payload.
  struct Bundle {
    std::int32_t vehicle_id = 0;
    std::vector<core::Alarm> alarms;
    std::vector<history::HistoryRecord> records;
  };

  /// Merge state of one shard's release stream.
  struct ShardState {
    /// Alarms/records accumulated since the last completion. Sealed into
    /// a bundle per completion; holds the unsequenced flush leftovers
    /// after the shard drains.
    Bundle current;
    /// local seq -> fleet seq for admitted-but-not-yet-completed frames.
    std::unordered_map<std::uint64_t, std::uint64_t> local_to_fleet;
    /// Completed-but-unmapped bundles (the pump beat OnAdmitted).
    std::map<std::uint64_t, Bundle> unmapped;
  };

  void OnAlarm(int shard, const core::Alarm& alarm);
  void OnRecord(int shard, const history::HistoryRecord& record);
  void OnComplete(int shard, const service::FrameCompletion& completion);

  /// Enqueues a sealed bundle under its fleet seq and releases the
  /// contiguous prefix. Caller holds mu_.
  void EnqueueLocked(std::uint64_t fleet_seq, Bundle bundle);

  /// Releases every bundle contiguous with the cursor. Caller holds mu_.
  void ReleaseLocked();

  mutable std::mutex mu_;
  std::vector<ShardState> shards_;
  /// Sealed bundles waiting for the fleet cursor, keyed by fleet seq.
  std::map<std::uint64_t, Bundle> pending_;
  std::uint64_t next_fleet_release_ = 0;
  /// Last released fleet seq per vehicle: the flush-record attribution.
  std::unordered_map<std::int32_t, std::uint64_t> last_fleet_seq_;
  std::vector<core::Alarm> alarms_;  ///< Released, in fleet order.
  service::AlarmCallback alarm_callback_;
  service::HistoryCallback history_callback_;
};

}  // namespace navarchos::shard

#endif  // NAVARCHOS_SHARD_FLEET_AGGREGATOR_H_
