#include "shard/shard_server.h"

#include <chrono>
#include <thread>

#include "util/check.h"

namespace navarchos::shard {

ShardServer::ShardServer(ShardGroup* group,
                         const net::ServerConfig& server_template)
    : group_(group), template_(server_template) {
  NAVARCHOS_CHECK(group != nullptr);
}

ShardServer::~ShardServer() { Stop(); }

util::Status ShardServer::Start() {
  const std::uint32_t shard_count = group_->shard_map().shard_count();
  servers_.clear();
  servers_.reserve(shard_count);
  for (std::uint32_t shard = 0; shard < shard_count; ++shard) {
    net::ServerConfig config = template_;
    // Shard 0 keeps the template's port (the well-known bootstrap port);
    // the rest bind ephemeral ports and are discovered via the shard map.
    if (shard > 0) config.port = 0;
    // Wire admissions and fleet-order registrations flow back into the
    // group's aggregator; the shard index is bound per listener.
    const int shard_index = static_cast<int>(shard);
    ShardGroup* group = group_;
    config.registration_hook = [group](std::int32_t vehicle_id,
                                       std::uint32_t fleet_order) {
      group->OnWireRegistration(vehicle_id, fleet_order);
    };
    config.admission_hook = [group, shard_index](std::int32_t vehicle_id,
                                                 std::uint64_t local_seq,
                                                 std::uint64_t fleet_seq) {
      group->OnWireAdmission(shard_index, vehicle_id, local_seq, fleet_seq);
    };
    servers_.push_back(std::make_unique<net::IngestServer>(
        group_->shard_service(shard_index), config));
    servers_.back()->set_shard_id(static_cast<std::uint32_t>(shard_index));
    const util::Status status = servers_.back()->Start();
    if (!status.ok()) {
      Stop();
      return status;
    }
  }
  // Only now are all ports known; advertise the complete map everywhere.
  // A single-shard fleet advertises NOTHING (map_info_ stays the default
  // "unsharded" value), keeping its WELCOMEs byte-identical to the
  // pre-shard protocol for old peers.
  map_info_ = net::ShardMapInfo{};
  if (shard_count > 1) {
    map_info_.shard_count = shard_count;
    map_info_.hash_seed = group_->shard_map().seed();
    for (const auto& server : servers_)
      map_info_.ports.push_back(server->port());
    for (const auto& server : servers_) server->set_shard_map(map_info_);
  }
  return util::Status();
}

void ShardServer::Stop() {
  for (const auto& server : servers_)
    if (server) server->Stop();
}

std::uint16_t ShardServer::port(int shard) const {
  return servers_[static_cast<std::size_t>(shard)]->port();
}

std::uint64_t ShardServer::finished_sessions() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) total += server->finished_sessions();
  return total;
}

bool ShardServer::WaitForFinishedSessions(std::uint64_t count,
                                          std::int64_t timeout_ms) {
  // Each shard server has its own condition variable; a fleet-wide wait
  // polls the sum (the waits here gate test/example shutdown, not a hot
  // path).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (finished_sessions() < count) {
    if (timeout_ms > 0 && std::chrono::steady_clock::now() >= deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

net::IngestServer* ShardServer::server(int shard) {
  return servers_[static_cast<std::size_t>(shard)].get();
}

}  // namespace navarchos::shard
