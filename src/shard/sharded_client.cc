#include "shard/sharded_client.h"

#include <utility>

#include "util/check.h"

namespace navarchos::shard {

ShardedClient::ShardedClient(const ShardedClientConfig& config)
    : config_(config) {}

util::Status ShardedClient::Connect(
    const std::vector<std::int32_t>& vehicle_ids, bool resume) {
  // Bootstrap: dial the configured port (any shard), read the shard map
  // from its WELCOME, and hang up without FIN (the probe session streams
  // nothing; retention GC reclaims it).
  {
    net::ClientConfig probe_config = config_.client;
    probe_config.session_id = config_.client.session_id + "#bootstrap";
    net::IngestClient probe(probe_config);
    const util::Status status = probe.Connect({}, /*resume=*/false);
    if (!status.ok()) return status;
    map_info_ = probe.shard_map();
    probe.Abort();
  }
  if (map_info_.unsharded()) {
    map_info_.shard_count = 1;
    map_info_.ports = {config_.client.port};
  }
  map_ = std::make_unique<ShardMap>(map_info_.shard_count,
                                    map_info_.hash_seed);

  // Partition the fleet by home shard, preserving the fleet registration
  // order within each shard and remembering every vehicle's fleet-wide
  // index (the HELLO fleet-order tail).
  std::vector<std::vector<std::int32_t>> ids_by_shard(map_info_.shard_count);
  std::vector<std::vector<std::uint32_t>> order_by_shard(
      map_info_.shard_count);
  for (std::size_t i = 0; i < vehicle_ids.size(); ++i) {
    const int shard = map_->ShardOf(vehicle_ids[i]);
    ids_by_shard[static_cast<std::size_t>(shard)].push_back(vehicle_ids[i]);
    order_by_shard[static_cast<std::size_t>(shard)].push_back(
        static_cast<std::uint32_t>(i));
  }

  clients_.clear();
  local_index_.assign(map_info_.shard_count, 0);
  resume_cursor_.assign(map_info_.shard_count, 0);
  next_fleet_seq_ = 0;
  for (std::uint32_t shard = 0; shard < map_info_.shard_count; ++shard) {
    net::ClientConfig shard_config = config_.client;
    shard_config.port = map_info_.ports[shard];
    shard_config.session_id =
        config_.client.session_id + "#" + std::to_string(shard);
    // Decorrelate the shards' backoff jitter without losing determinism.
    shard_config.jitter_seed = config_.client.jitter_seed + shard;
    clients_.push_back(std::make_unique<net::IngestClient>(shard_config));
    const util::Status status = clients_.back()->Connect(
        ids_by_shard[shard], order_by_shard[shard], resume);
    if (!status.ok()) return status;
    // Frames below this shard-local cursor were decided before the
    // resume; Send skips them while still advancing the fleet seq.
    resume_cursor_[shard] = clients_.back()->next_seq();
  }
  return util::Status();
}

int ShardedClient::ShardOf(std::int32_t vehicle_id) const {
  NAVARCHOS_CHECK(map_ != nullptr);  // Connect first
  return map_->ShardOf(vehicle_id);
}

util::Status ShardedClient::Send(const telemetry::SensorFrame& frame) {
  const int shard = ShardOf(frame.vehicle_id());
  const std::size_t s = static_cast<std::size_t>(shard);
  const std::uint64_t local = local_index_[s]++;
  const std::uint64_t fleet_seq = next_fleet_seq_++;
  // Resume replays the whole stream from the start: both counters advance
  // for every frame (keeping the fleet-seq assignment a pure function of
  // the submission order), but only undecided frames hit the wire.
  if (local < resume_cursor_[s]) return util::Status();
  return clients_[s]->Send(frame, fleet_seq);
}

util::Status ShardedClient::Flush() {
  for (auto& client : clients_) {
    const util::Status status = client->Flush();
    if (!status.ok()) return status;
  }
  return util::Status();
}

util::Status ShardedClient::Finish() {
  for (auto& client : clients_) {
    const util::Status status = client->Finish();
    if (!status.ok()) return status;
  }
  return util::Status();
}

void ShardedClient::Abort() {
  for (auto& client : clients_) client->Abort();
}

std::uint64_t ShardedClient::frames_sent() const {
  std::uint64_t total = 0;
  for (const auto& client : clients_) total += client->stats().frames_sent;
  return total;
}

util::Status ShardedClient::QueryRank(const history::RankQuery& query,
                                      history::RankResult* out) {
  NAVARCHOS_CHECK(!clients_.empty());
  return clients_[0]->QueryRank(query, out);
}

util::Status ShardedClient::QueryTimeline(const history::TimelineQuery& query,
                                          history::TimelineResult* out) {
  NAVARCHOS_CHECK(!clients_.empty());
  return clients_[0]->QueryTimeline(query, out);
}

util::Status ShardedClient::QueryComove(const history::ComoveQuery& query,
                                        history::ComoveResult* out) {
  NAVARCHOS_CHECK(!clients_.empty());
  return clients_[0]->QueryComove(query, out);
}

}  // namespace navarchos::shard
