#include "shard/shard_router.h"

#include <algorithm>

#include "util/check.h"

namespace navarchos::shard {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

ShardMap::ShardMap(std::uint32_t shard_count, std::uint64_t seed)
    : shard_count_(shard_count), seed_(seed) {
  NAVARCHOS_CHECK(shard_count >= 1);
  if (shard_count == 1) return;  // everything routes to shard 0; no ring
  ring_.reserve(std::size_t{shard_count} * kVirtualNodesPerShard);
  for (std::uint32_t shard = 0; shard < shard_count; ++shard) {
    for (std::uint32_t vnode = 0; vnode < kVirtualNodesPerShard; ++vnode) {
      // shard+1 in the high word keeps vnode labels disjoint from the
      // zero-extended 32-bit vehicle keys: a label never hashes through
      // the same pre-image as a vehicle id, so no vehicle can land
      // exactly ON its own ring point (which would pin ids 0..63 to
      // shard 0).
      const std::uint64_t label = (std::uint64_t{shard + 1} << 32) | vnode;
      ring_.emplace_back(Mix64(seed ^ Mix64(label)), shard);
    }
  }
  // Sort by ring position; break hash collisions by shard id so the ring
  // order (hence every assignment) is a total, reproducible order.
  std::sort(ring_.begin(), ring_.end());
}

int ShardMap::ShardOf(std::int32_t vehicle_id) const {
  if (shard_count_ == 1) return 0;
  // Zero-extend the id so negative ids hash the same on every platform.
  const std::uint64_t key =
      Mix64(seed_ ^ Mix64(static_cast<std::uint32_t>(vehicle_id)));
  // First ring point clockwise from the key, wrapping past the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const std::pair<std::uint64_t, std::uint32_t>& point,
         std::uint64_t value) { return point.first < value; });
  if (it == ring_.end()) it = ring_.begin();
  return static_cast<int>(it->second);
}

}  // namespace navarchos::shard
