#include "ensemble/ensemble.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::ensemble {

namespace {

// Ensemble chunk-payload layout version; bumped on any change below.
constexpr std::uint32_t kEnsembleStateVersion = 1;

bool AllFinite(const std::vector<double>& values) {
  for (double value : values)
    if (!std::isfinite(value)) return false;
  return true;
}

// Mirrors core::CalibrationStats::ThresholdOf for one channel's healthy
// scores (the ensemble cannot depend on core, which embeds it).
double ThresholdOfColumn(std::vector<double>& column,
                         detect::ThresholdConfig::Kind kind, double factor) {
  switch (kind) {
    case detect::ThresholdConfig::Kind::kSelfTuning:
      return util::Mean(column) + factor * util::StdDev(column);
    case detect::ThresholdConfig::Kind::kMedianMad: {
      const double median = util::Median(column);
      std::vector<double> deviations(column.size());
      for (std::size_t i = 0; i < column.size(); ++i)
        deviations[i] = std::fabs(column[i] - median);
      // 1.4826 makes the MAD a consistent sigma estimator under normality.
      return median + factor * 1.4826 * util::Median(deviations);
    }
    case detect::ThresholdConfig::Kind::kMaxHealthy:
      return factor * util::Max(column);
    case detect::ThresholdConfig::Kind::kConstant:
      return factor;
  }
  return factor;
}

}  // namespace

RollingEnsemble::RollingEnsemble(const EnsembleConfig& config,
                                 const EnsembleRuntime& runtime)
    : config_(config), runtime_(runtime) {
  NAVARCHOS_CHECK(config_.k >= 1);
  NAVARCHOS_CHECK(config_.m >= 1 && config_.m <= config_.k);
  NAVARCHOS_CHECK(runtime_.window >= 1);
  stagger_ = config_.stagger > 0
                 ? config_.stagger
                 : std::max(1, static_cast<int>(runtime_.window) / config_.k);
  retrain_every_ = config_.retrain_every > 0 ? config_.retrain_every : stagger_;
  activation_lag_ = config_.activation_lag > 0 ? config_.activation_lag
                                               : retrain_every_ / 2;
  activation_lag_ = std::clamp(activation_lag_, 1, retrain_every_);
  // Probe the member detector kind once for its minimum reference size.
  min_train_ = detect::MakeDetector(runtime_.detector, runtime_.detector_options)
                   ->MinReferenceSize();
}

RollingEnsemble::~RollingEnsemble() = default;

RollingEnsemble::FitResult RollingEnsemble::FitMember(
    const std::vector<std::vector<double>>& snapshot,
    const EnsembleRuntime& runtime, bool inject_fail) {
  FitResult result;
  if (inject_fail || snapshot.empty()) return result;
  std::unique_ptr<detect::Detector> detector =
      detect::MakeDetector(runtime.detector, runtime.detector_options);
  if (snapshot.size() < detector->MinReferenceSize()) return result;
  detector->Fit(snapshot);
  const std::size_t channels = detector->ScoreChannels();
  if (channels == 0) return result;

  std::vector<double> thresholds(channels, 0.0);
  if (detector->ScoresAreProbabilities()) {
    // Probability-scored detectors are thresholded with the constant, like
    // the monitor's own calibration.
    thresholds.assign(channels, runtime.threshold.constant);
  } else {
    std::vector<std::vector<double>> calib =
        detector->SelfCalibrationScores(runtime.exclusion_radius);
    if (calib.empty()) {
      // Detector without self-calibration support: score the training rows
      // in order. Stateful detectors advance deterministically - the same
      // walk every fit of this snapshot would take.
      calib.reserve(snapshot.size());
      for (const std::vector<double>& row : snapshot)
        calib.push_back(detector->Score(row));
    }
    std::vector<double> column(calib.size());
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < calib.size(); ++i) {
        if (calib[i].size() != channels) return result;
        column[i] = calib[i][c];
      }
      thresholds[c] =
          ThresholdOfColumn(column, runtime.threshold.kind,
                            runtime.threshold.factor);
    }
  }
  if (!AllFinite(thresholds)) return result;
  result.ok = true;
  result.detector = std::move(detector);
  result.thresholds = std::move(thresholds);
  return result;
}

void RollingEnsemble::PostPendingFit() {
  if (pool_ == nullptr || !pending_) return;
  // The task is fully detached from `this`: it owns a copy of the snapshot
  // and communicates only through the future, so it races with nothing and
  // survives an abandoning Reset().
  std::vector<std::vector<double>> snapshot = pending_->snapshot;
  const EnsembleRuntime runtime = runtime_;
  const bool inject = pending_->inject;
  obs::Histogram* retrain_us = retrain_us_;
  pending_->future = pool_->Submit(
      [snapshot = std::move(snapshot), runtime, inject,
       retrain_us]() mutable {
        const std::uint64_t start =
            retrain_us != nullptr ? obs::MonotonicMicros() : 0;
        FitResult result = FitMember(snapshot, runtime, inject);
        if (retrain_us != nullptr)
          retrain_us->Record(obs::MonotonicMicros() - start);
        return result;
      });
}

void RollingEnsemble::LaunchPending() {
  retrains_started_.fetch_add(1, std::memory_order_relaxed);
  PostPendingFit();
}

void RollingEnsemble::JoinPending() {
  Pending pending = std::move(*pending_);
  pending_.reset();
  FitResult result;
  if (pending.future.valid()) {
    // Help the pool instead of idling: with one worker the fit task may be
    // queued *behind* this very pump, so blocking without helping would
    // deadlock. TryRunOneTask runs queued tasks (possibly other lanes'
    // pumps - safe, a lane's pump is never queued while it runs) until the
    // fit finishes.
    while (pending.future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (pool_ == nullptr || !pool_->TryRunOneTask())
        std::this_thread::yield();
    }
    result = pending.future.get();
  } else {
    const std::uint64_t start =
        retrain_us_ != nullptr ? obs::MonotonicMicros() : 0;
    result = FitMember(pending.snapshot, runtime_, pending.inject);
    if (retrain_us_ != nullptr)
      retrain_us_->Record(obs::MonotonicMicros() - start);
  }
  if (!result.ok) {
    // Keep the previous member; scoring falls back to the survivors.
    retrains_failed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Member member;
  member.detector = std::move(result.detector);
  member.thresholds = std::move(result.thresholds);
  member.trained_at = pending.boundary;
  members_.push_back(std::move(member));
  while (members_.size() > static_cast<std::size_t>(config_.k))
    members_.erase(members_.begin());  // oldest first
  retrains_completed_.fetch_add(1, std::memory_order_relaxed);
}

Verdict RollingEnsemble::OnSample(const std::vector<double>& features) {
  ++counter_;

  // Activation before boundary: with activation_lag == retrain_every the
  // previous retrain activates exactly when the next boundary fires, and
  // the swap must precede the new snapshot.
  if (pending_ && counter_ >= pending_->activation) JoinPending();

  window_.push_back(features);
  while (window_.size() > runtime_.window) window_.pop_front();

  if (counter_ % static_cast<std::uint64_t>(retrain_every_) == 0 &&
      window_.size() >= min_train_ && !pending_) {
    Pending pending;
    pending.boundary = counter_;
    pending.activation = counter_ + static_cast<std::uint64_t>(activation_lag_);
    pending.ordinal = ++retrain_ordinal_;
    pending.inject =
        std::find(config_.inject_fit_failures.begin(),
                  config_.inject_fit_failures.end(),
                  pending.ordinal) != config_.inject_fit_failures.end();
    pending.snapshot.assign(window_.begin(), window_.end());
    pending_ = std::move(pending);
    LaunchPending();
  }

  Verdict verdict;
  verdict.live = static_cast<int>(members_.size());
  for (Member& member : members_) {
    const std::vector<double> scores = member.detector->Score(features);
    if (!AllFinite(scores) || scores.size() != member.thresholds.size())
      continue;
    for (std::size_t c = 0; c < scores.size(); ++c) {
      if (scores[c] > member.thresholds[c]) {
        ++verdict.votes;
        break;
      }
    }
  }
  verdict.pass = verdict.live == 0 ||
                 verdict.votes >= std::min(config_.m, verdict.live);
  return verdict;
}

void RollingEnsemble::RecordSuppressedAlarm() {
  suppressed_alarms_.fetch_add(1, std::memory_order_relaxed);
}

void RollingEnsemble::Reset() {
  // An abandoned in-flight fit task finishes on its own and writes into a
  // future nobody reads - it never touches the ensemble.
  pending_.reset();
  members_.clear();
  window_.clear();
  counter_ = 0;
}

EnsembleStats RollingEnsemble::stats() const {
  EnsembleStats stats;
  stats.retrains_started = retrains_started_.load(std::memory_order_relaxed);
  stats.retrains_completed =
      retrains_completed_.load(std::memory_order_relaxed);
  stats.retrains_failed = retrains_failed_.load(std::memory_order_relaxed);
  stats.consensus_suppressed_alarms =
      suppressed_alarms_.load(std::memory_order_relaxed);
  return stats;
}

void RollingEnsemble::Save(persist::Encoder& encoder) const {
  encoder.PutU32(kEnsembleStateVersion);
  // Fingerprint: reject a snapshot taken under a different schedule before
  // interpreting any state.
  encoder.PutI32(config_.k);
  encoder.PutI32(config_.m);
  encoder.PutI32(retrain_every_);
  encoder.PutI32(activation_lag_);
  encoder.PutU64(runtime_.window);

  encoder.PutU64(counter_);
  encoder.PutU64(retrain_ordinal_);
  encoder.PutU64(retrains_started_.load(std::memory_order_relaxed));
  encoder.PutU64(retrains_completed_.load(std::memory_order_relaxed));
  encoder.PutU64(retrains_failed_.load(std::memory_order_relaxed));
  encoder.PutU64(suppressed_alarms_.load(std::memory_order_relaxed));

  encoder.PutU64(window_.size());
  for (const std::vector<double>& row : window_) encoder.PutDoubleVec(row);

  encoder.PutU64(members_.size());
  for (const Member& member : members_) {
    encoder.PutU64(member.trained_at);
    encoder.PutDoubleVec(member.thresholds);
    member.detector->SaveState(encoder);
  }

  encoder.PutBool(pending_.has_value());
  if (pending_) {
    encoder.PutU64(pending_->boundary);
    encoder.PutU64(pending_->activation);
    encoder.PutU64(pending_->ordinal);
    encoder.PutBool(pending_->inject);
    encoder.PutDoubleMat(pending_->snapshot);
  }
}

bool RollingEnsemble::Restore(persist::Decoder& decoder) {
  const std::uint32_t version = decoder.GetU32();
  if (decoder.ok() && version != kEnsembleStateVersion) {
    decoder.Fail("unsupported ensemble state version " +
                 std::to_string(version));
    return false;
  }
  const std::int32_t k = decoder.GetI32();
  const std::int32_t m = decoder.GetI32();
  const std::int32_t retrain_every = decoder.GetI32();
  const std::int32_t activation_lag = decoder.GetI32();
  const std::uint64_t window = decoder.GetU64();
  if (!decoder.ok()) return false;
  if (k != config_.k || m != config_.m || retrain_every != retrain_every_ ||
      activation_lag != activation_lag_ || window != runtime_.window) {
    decoder.Fail("ensemble fingerprint mismatch: snapshot is k=" +
                 std::to_string(k) + " m=" + std::to_string(m) +
                 " retrain_every=" + std::to_string(retrain_every) +
                 ", this ensemble is k=" + std::to_string(config_.k) + " m=" +
                 std::to_string(config_.m) + " retrain_every=" +
                 std::to_string(retrain_every_));
    return false;
  }

  counter_ = decoder.GetU64();
  retrain_ordinal_ = decoder.GetU64();
  retrains_started_.store(decoder.GetU64(), std::memory_order_relaxed);
  retrains_completed_.store(decoder.GetU64(), std::memory_order_relaxed);
  retrains_failed_.store(decoder.GetU64(), std::memory_order_relaxed);
  suppressed_alarms_.store(decoder.GetU64(), std::memory_order_relaxed);

  const std::uint64_t window_rows = decoder.GetU64();
  if (!decoder.ok() || window_rows > runtime_.window) {
    decoder.Fail("ensemble window row count out of bounds");
    return false;
  }
  window_.clear();
  for (std::uint64_t i = 0; i < window_rows; ++i) {
    window_.push_back(decoder.GetDoubleVec());
    if (!decoder.ok()) return false;
  }

  const std::uint64_t member_count = decoder.GetU64();
  if (!decoder.ok() || member_count > static_cast<std::uint64_t>(config_.k)) {
    decoder.Fail("ensemble member count out of bounds");
    return false;
  }
  members_.clear();
  for (std::uint64_t i = 0; i < member_count; ++i) {
    Member member;
    member.trained_at = decoder.GetU64();
    member.thresholds = decoder.GetDoubleVec();
    member.detector =
        detect::MakeDetector(runtime_.detector, runtime_.detector_options);
    if (!member.detector->RestoreState(decoder)) return false;
    if (!decoder.ok()) return false;
    members_.push_back(std::move(member));
  }

  pending_.reset();
  if (decoder.GetBool()) {
    Pending pending;
    pending.boundary = decoder.GetU64();
    pending.activation = decoder.GetU64();
    pending.ordinal = decoder.GetU64();
    pending.inject = decoder.GetBool();
    pending.snapshot = decoder.GetDoubleMat();
    if (!decoder.ok()) return false;
    pending_ = std::move(pending);
    // Re-run the fit: it is a pure function of the snapshot, so the member
    // activated after restore is bit-identical to the uninterrupted one.
    // The original launch was already counted in retrains_started.
    PostPendingFit();
  }
  return decoder.ok();
}

std::size_t RollingEnsemble::EncodedBytes() const {
  persist::Encoder encoder;
  Save(encoder);
  return encoder.bytes().size();
}

}  // namespace navarchos::ensemble
