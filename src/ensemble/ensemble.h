// Rolling consensus ensemble: K staggered reference models per vehicle.
//
// The paper rebuilds each vehicle's reference model (*Ref*) only at
// recorded maintenance events, so between rebuilds the single detector
// drifts with usage and weather and false alarms accumulate. The rolling
// ensemble layers netdata's production counter-measure on top: maintain K
// *Ref* models per vehicle, each (re)trained on a window of recent samples
// offset from its neighbours by `stagger = window / K` samples, score every
// sample against all live members, and let an alarm through only when at
// least M of the K members agree the sample is anomalous. One drifted or
// unluckily-trained member can no longer page an operator on its own.
//
// Retraining runs *online*: at a deterministic sample-count boundary
// (never wall clock) the caller's pump snapshots the training window, a
// pure fit task runs on the shared runtime::ThreadPool while ingest
// continues, and the replacement member is swapped in exactly at a
// pre-committed activation sample count. Because the fitted member is a
// pure function of the snapshot and both the snapshot and the activation
// point are fixed by the sample counter, the ensemble's verdict stream is
// bit-identical at any thread count, with or without a pool, live or
// replayed, and across checkpoint/restore - the house determinism
// invariant extended to background training. A failed fit (injected or
// real) keeps the previous member; scoring falls back to the surviving
// members.
#ifndef NAVARCHOS_ENSEMBLE_ENSEMBLE_H_
#define NAVARCHOS_ENSEMBLE_ENSEMBLE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "detect/factory.h"
#include "detect/threshold.h"
#include "obs/metrics.h"
#include "persist/codec.h"
#include "runtime/thread_pool.h"

/// \file
/// \brief RollingEnsemble, the per-vehicle K-of-M consensus layer with
/// online (ThreadPool) member retraining, plus its configuration and
/// counters.

/// \namespace navarchos::ensemble
/// \brief The rolling consensus ensemble subsystem: staggered per-vehicle
/// reference models retrained online on the shared thread pool, gating
/// alarms on M-of-K agreement.

namespace navarchos::ensemble {

/// Opt-in configuration of the per-vehicle rolling consensus ensemble.
/// All schedule knobs are in *usable samples* (transformed feature vectors
/// that passed the monitor's ingest guard), never wall clock, so the
/// retrain schedule is a pure function of the stream.
struct EnsembleConfig {
  /// Master switch; disabled leaves the single-*Ref* behaviour untouched.
  bool enabled = false;
  /// Ensemble size: staggered reference models kept per vehicle.
  int k = 4;
  /// Consensus quorum: members that must vote "anomalous" for an alarm to
  /// pass (clamped to the number of live members while the ring fills).
  int m = 3;
  /// Training window per member, in samples. 0 resolves to the monitor's
  /// reference profile length.
  int window = 0;
  /// Sample offset between consecutive members' training windows.
  /// 0 resolves to window / k (at least 1).
  int stagger = 0;
  /// Samples between retrain boundaries: every `retrain_every` usable
  /// samples the oldest member is re-fitted on the current window.
  /// 0 resolves to `stagger` - which is what makes the members staggered.
  int retrain_every = 0;
  /// Samples between a retrain boundary (window snapshot, fit task posted)
  /// and the activation point where the fitted member is swapped in. The
  /// fit has this much stream time to complete in the background before
  /// the pump would have to wait for it. 0 resolves to retrain_every / 2,
  /// clamped to [1, retrain_every] so at most one retrain is in flight.
  int activation_lag = 0;
  /// Test seam: 1-based retrain ordinals whose fit deliberately fails, so
  /// the surviving-member fallback is exercisable deterministically.
  std::vector<std::uint64_t> inject_fit_failures;
};

/// Everything the ensemble inherits from its owning monitor's pipeline:
/// how members are built, thresholded and calibrated.
struct EnsembleRuntime {
  /// Detector kind each member instantiates.
  detect::DetectorKind detector = detect::DetectorKind::kClosestPair;
  /// Options of the member detectors.
  detect::DetectorOptions detector_options;
  /// Thresholding rule/factor applied to each member's calibration scores.
  detect::ThresholdConfig threshold;
  /// Temporal exclusion radius for SelfCalibrationScores (overlapping
  /// sliding windows), mirroring the monitor's own calibration.
  int exclusion_radius = 1;
  /// Resolved training window in samples (EnsembleConfig::window after the
  /// 0 -> profile-length default).
  std::size_t window = 0;
};

/// Lifetime counters of one ensemble (all monotonic). Readable live from
/// other threads; exact once the owning pump is quiescent.
struct EnsembleStats {
  std::uint64_t retrains_started = 0;    ///< Fit tasks posted (or run inline).
  std::uint64_t retrains_completed = 0;  ///< Members swapped in successfully.
  std::uint64_t retrains_failed = 0;     ///< Fits that failed; member kept.
  /// Alarm candidates the consensus vote vetoed (fewer than M members
  /// agreed with the primary detector).
  std::uint64_t consensus_suppressed_alarms = 0;
};

/// The consensus verdict for one scored sample.
struct Verdict {
  int votes = 0;  ///< Members that scored the sample above their threshold.
  int live = 0;   ///< Members that scored the sample at all.
  /// True when an alarm may pass: no live members yet (the ensemble is
  /// still bootstrapping) or at least min(m, live) members voted.
  bool pass = true;
};

/// One vehicle's rolling consensus ensemble. Not thread-safe: OnSample /
/// Reset / Save are called by the single pump (or batch thread) that owns
/// the vehicle, exactly like the VehicleMonitor that embeds it. The only
/// cross-thread traffic is the detached fit task (pure, communicates via a
/// future) and the stats() counters (atomics).
class RollingEnsemble {
 public:
  /// Builds an empty ensemble from the resolved configuration.
  RollingEnsemble(const EnsembleConfig& config, const EnsembleRuntime& runtime);

  /// Joins any in-flight background fit before tearing down.
  ~RollingEnsemble();

  RollingEnsemble(const RollingEnsemble&) = delete;
  RollingEnsemble& operator=(const RollingEnsemble&) = delete;

  /// Installs the pool background fits are posted to. Null (the default)
  /// runs every fit inline at its activation point - same output, no
  /// overlap. May be set any time before the next retrain boundary.
  void set_pool(runtime::ThreadPool* pool) { pool_ = pool; }

  /// Installs the histogram member-fit durations are recorded into
  /// (microseconds, background and inline fits alike). Observe-only:
  /// nothing in the schedule reads it. Null (the default) records nothing.
  /// The histogram must outlive the ensemble; typically all lanes of a
  /// service share one `ensemble.retrain_us` histogram (Record is atomic).
  void set_retrain_histogram(obs::Histogram* histogram) {
    retrain_us_ = histogram;
  }

  /// Feeds one usable transformed sample: advances the schedule counter,
  /// joins a pending retrain at its activation point, rolls the training
  /// window, posts a fit task at a retrain boundary, and scores the sample
  /// against every live member. Returns the consensus verdict.
  Verdict OnSample(const std::vector<double>& features);

  /// Records that the owning monitor suppressed an alarm candidate on this
  /// ensemble's veto (kept here so the counter travels with the ensemble
  /// through checkpoints).
  void RecordSuppressedAlarm();

  /// Discards members, window, counter and any pending retrain (the
  /// maintenance-reset path: pre-maintenance models are invalid).
  void Reset();

  /// Live member count.
  int live_members() const { return static_cast<int>(members_.size()); }

  /// True while a retrain is posted but not yet activated.
  bool retrain_pending() const { return pending_.has_value(); }

  /// Snapshot of the lifetime counters.
  EnsembleStats stats() const;

  /// Serialises the full ensemble - schedule counter, rolling window,
  /// every member's detector state and thresholds, and a pending retrain's
  /// training snapshot (the fit is re-run deterministically on restore).
  void Save(persist::Encoder& encoder) const;

  /// Restores state written by Save into a freshly built ensemble with the
  /// same configuration. Returns false (decoder failed) on malformed input
  /// or a configuration mismatch. A pending retrain is re-posted to the
  /// pool (set_pool first) or re-fitted inline at activation.
  bool Restore(persist::Decoder& decoder);

  /// Encoded size of Save()'s output right now: the bytes/vehicle metric
  /// of the memory-boundedness win condition.
  std::size_t EncodedBytes() const;

 private:
  /// One live member: a fitted detector and its calibrated thresholds.
  struct Member {
    std::unique_ptr<detect::Detector> detector;
    std::vector<double> thresholds;
    std::uint64_t trained_at = 0;  ///< Schedule counter of its fit boundary.
  };

  /// What a fit task produces. ok == false keeps the previous member.
  struct FitResult {
    bool ok = false;
    std::unique_ptr<detect::Detector> detector;
    std::vector<double> thresholds;
  };

  /// A retrain between its boundary and its activation point.
  struct Pending {
    std::uint64_t boundary = 0;    ///< Counter value of the snapshot.
    std::uint64_t activation = 0;  ///< Counter value of the swap.
    std::uint64_t ordinal = 0;     ///< 1-based retrain number (injection key).
    bool inject = false;           ///< This fit is scripted to fail.
    /// The training snapshot; kept so a checkpoint taken mid-retrain can
    /// re-run the identical fit after restore.
    std::vector<std::vector<double>> snapshot;
    /// Result of the background fit; invalid when the fit runs inline at
    /// activation (no pool, or re-posted after restore without one).
    std::future<FitResult> future;
  };

  /// Pure fit: detector from the factory, Fit on the snapshot, thresholds
  /// from self-calibration scores (falling back to scoring the snapshot
  /// rows in order). Touches nothing outside its arguments.
  static FitResult FitMember(const std::vector<std::vector<double>>& snapshot,
                             const EnsembleRuntime& runtime, bool inject_fail);

  /// Posts (or arms for inline execution) the fit of `pending_`.
  void LaunchPending();

  /// Posts the pending fit to the pool when one is installed; otherwise
  /// leaves it to run inline at activation. Does not touch the counters
  /// (Restore re-posts an already-counted retrain through this).
  void PostPendingFit();

  /// Blocks until the pending fit finished - helping the pool drain so a
  /// single-threaded pool cannot deadlock - and swaps the member in (or
  /// counts the failure and keeps the old member).
  void JoinPending();

  const EnsembleConfig config_;
  const EnsembleRuntime runtime_;
  int stagger_ = 1;
  int retrain_every_ = 1;
  int activation_lag_ = 1;
  std::size_t min_train_ = 8;  ///< Member detector's MinReferenceSize.

  runtime::ThreadPool* pool_ = nullptr;
  obs::Histogram* retrain_us_ = nullptr;  ///< Fit-duration sink (optional).
  std::uint64_t counter_ = 0;  ///< Usable samples seen this reference cycle.
  std::uint64_t retrain_ordinal_ = 0;  ///< Lifetime retrains started.
  std::deque<std::vector<double>> window_;
  std::vector<Member> members_;  ///< Oldest first.
  std::optional<Pending> pending_;

  std::atomic<std::uint64_t> retrains_started_{0};
  std::atomic<std::uint64_t> retrains_completed_{0};
  std::atomic<std::uint64_t> retrains_failed_{0};
  std::atomic<std::uint64_t> suppressed_alarms_{0};
};

}  // namespace navarchos::ensemble

#endif  // NAVARCHOS_ENSEMBLE_ENSEMBLE_H_
