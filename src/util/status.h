// Minimal Status type for recoverable errors (IO, malformed input).
#ifndef NAVARCHOS_UTIL_STATUS_H_
#define NAVARCHOS_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace navarchos::util {

/// Outcome of an operation that can fail for data-dependent reasons.
///
/// Usage:
///   Status s = WriteCsv(path, table);
///   if (!s.ok()) { log(s.message()); ... }
class Status {
 public:
  /// Constructs a success status.
  Status() = default;

  /// Constructs a failure status carrying a human-readable message.
  static Status Error(std::string message) { return Status(std::move(message)); }

  /// True when the operation succeeded.
  bool ok() const { return message_.empty(); }

  /// Failure description; empty on success.
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}

  std::string message_;
};

}  // namespace navarchos::util

#endif  // NAVARCHOS_UTIL_STATUS_H_
