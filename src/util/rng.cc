#include "util/rng.h"

#include <cmath>

namespace navarchos::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  NAVARCHOS_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % range);
  std::uint64_t draw;
  do {
    draw = NextU64();
  } while (draw > limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

double Rng::Exponential(double rate) {
  NAVARCHOS_CHECK(rate > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    NAVARCHOS_CHECK(w >= 0.0);
    total += w;
  }
  NAVARCHOS_CHECK(total > 0.0);
  double draw = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numerical tail
}

RngState Rng::SaveState() const {
  RngState state;
  state.words = state_;
  state.has_spare_gaussian = has_spare_gaussian_;
  state.spare_gaussian = spare_gaussian_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  state_ = state.words;
  has_spare_gaussian_ = state.has_spare_gaussian;
  spare_gaussian_ = state.spare_gaussian;
}

Rng Rng::Fork(std::uint64_t stream) const {
  // Mix the parent state with the stream id through splitmix64 so that
  // forked generators are decorrelated from the parent and each other.
  std::uint64_t s = state_[0] ^ Rotl(stream, 13) ^ (stream * 0xd1342543de82ef95ull);
  return Rng(SplitMix64(s));
}

}  // namespace navarchos::util
