// ASCII table rendering for bench and example output.
//
// The benches reproduce the paper's tables/figures as text; Table keeps the
// formatting consistent (aligned columns, fixed precision) across binaries.
#ifndef NAVARCHOS_UTIL_TABLE_H_
#define NAVARCHOS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace navarchos::util {

/// Column-aligned text table with a header row.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row of pre-formatted cells. Short rows are padded with "".
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `precision` decimals.
  static std::string Num(double value, int precision = 2);

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

  /// Renders as comma-separated values (for machine-readable bench output).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal bar of `value` scaled to `max_value` over `width`
/// characters, e.g. for text versions of the paper's bar charts (Fig. 4/5).
std::string AsciiBar(double value, double max_value, int width);

}  // namespace navarchos::util

#endif  // NAVARCHOS_UTIL_TABLE_H_
