#include "util/args.h"

#include <cstdlib>

namespace navarchos::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      flags_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[token] = argv[++i];
    } else {
      flags_[token] = "";  // boolean switch
    }
  }
}

bool Args::Has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Args::GetString(const std::string& key, const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Args::GetInt(const std::string& key, std::int64_t fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::GetDouble(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace navarchos::util
