// CSV reading and writing.
//
// Benches export their result tables as CSV next to the textual rendering so
// downstream plotting can regenerate the paper's figures; the telemetry
// simulator can also persist generated fleets for inspection.
#ifndef NAVARCHOS_UTIL_CSV_H_
#define NAVARCHOS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace navarchos::util {

/// In-memory CSV document: a header plus string cells.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Writes `doc` to `path`. Cells containing commas/quotes/newlines are quoted.
Status WriteCsv(const std::string& path, const CsvDocument& doc);

/// Reads `path`; the first line becomes the header. Handles quoted cells.
Status ReadCsv(const std::string& path, CsvDocument* doc);

/// Splits one CSV line into cells (RFC-4180 style quoting).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace navarchos::util

#endif  // NAVARCHOS_UTIL_CSV_H_
