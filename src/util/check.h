// Lightweight invariant-checking macros.
//
// The library is exception-free in the spirit of the Google style guide;
// broken invariants abort with a diagnostic instead. Recoverable conditions
// (bad input files, empty datasets, ...) are reported through util::Status.
#ifndef NAVARCHOS_UTIL_CHECK_H_
#define NAVARCHOS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace navarchos::util {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace navarchos::util

/// Aborts with a diagnostic when `cond` is false. Enabled in all build types:
/// the conditions guarded by NAVARCHOS_CHECK are programmer errors, not data
/// errors, and silently continuing would corrupt downstream statistics.
#define NAVARCHOS_CHECK(cond)                                          \
  do {                                                                 \
    if (!(cond)) ::navarchos::util::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (0)

#endif  // NAVARCHOS_UTIL_CHECK_H_
