// Wall-clock timing for the execution-time experiment (paper Table 1).
#ifndef NAVARCHOS_UTIL_TIMER_H_
#define NAVARCHOS_UTIL_TIMER_H_

#include <chrono>

namespace navarchos::util {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace navarchos::util

#endif  // NAVARCHOS_UTIL_TIMER_H_
