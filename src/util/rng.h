// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (fleet simulation, model
// initialisation, subsampling) flows from util::Rng so that a fixed seed
// reproduces a run bit-for-bit across platforms. The generator is
// xoshiro256**, seeded through splitmix64; both are public-domain algorithms
// by Blackman & Vigna.
#ifndef NAVARCHOS_UTIL_RNG_H_
#define NAVARCHOS_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace navarchos::util {

/// Complete serialisable state of an Rng: the four xoshiro256** state words
/// plus the Box-Muller spare, so a restored generator resumes its stream at
/// the exact position it was captured (including a pending Gaussian spare).
struct RngState {
  std::array<std::uint64_t, 4> words{};  ///< xoshiro256** state words.
  bool has_spare_gaussian = false;       ///< True when a spare draw is cached.
  double spare_gaussian = 0.0;           ///< The cached Box-Muller spare.
};

/// Deterministic, seedable random number generator (xoshiro256**).
///
/// Not thread-safe; create one Rng per thread or per simulated entity.
/// Prefer Fork() over sharing when independent sub-streams are needed
/// (e.g. one stream per vehicle) so that adding entities does not perturb
/// the draws of existing ones.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds produce equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box-Muller, cached spare).
  double Gaussian();

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential draw with the given rate (lambda > 0).
  double Exponential(double rate);

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Requires at least one strictly positive weight.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent generator; `stream` distinguishes sub-streams
  /// derived from the same parent state. Const - forking reads but never
  /// advances the parent - so a master generator may be forked concurrently
  /// from parallel workers, and the stream id alone determines the child:
  /// Fork(s) yields the same generator no matter when or where it is called.
  ///
  /// Stream-allocation convention (keeps sub-streams collision-free):
  ///   1-99            fleet-level streams (specs, weather, assignment, ...);
  ///   100 + vehicle   per-vehicle simulation streams (GenerateFleet);
  ///   components owning their own seed (e.g. telemetry::CorruptionModel)
  ///   fork per-entity streams from a generator built on that seed instead
  ///   of sharing the fleet master.
  Rng Fork(std::uint64_t stream) const;

  /// Captures the full generator state (stream position included).
  RngState SaveState() const;

  /// Resets the generator to a previously captured state; the stream then
  /// continues exactly as it would have from the capture point.
  void RestoreState(const RngState& state);

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace navarchos::util

#endif  // NAVARCHOS_UTIL_RNG_H_
