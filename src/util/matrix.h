// Dense row-major matrix of doubles.
//
// Deliberately small: the library needs contiguous 2-D storage with row
// views, a handful of BLAS-1/2 style helpers for the neural detector, and
// nothing else. Heavy linear algebra lives in detect/nn_ops where the shapes
// are known.
#ifndef NAVARCHOS_UTIL_MATRIX_H_
#define NAVARCHOS_UTIL_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"

namespace navarchos::util {

/// Row-major dense matrix.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix initialised to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from equally sized rows. Requires a rectangular input.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(std::size_t r, std::size_t c) {
    NAVARCHOS_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(std::size_t r, std::size_t c) const {
    NAVARCHOS_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Mutable view of row `r`.
  std::span<double> Row(std::size_t r) {
    NAVARCHOS_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  /// Read-only view of row `r`.
  std::span<const double> Row(std::size_t r) const {
    NAVARCHOS_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of column `c`.
  std::vector<double> Col(std::size_t c) const;

  /// Flat backing storage (row-major).
  std::span<double> Data() { return data_; }
  std::span<const double> Data() const { return data_; }

  /// Matrix product this(rows x cols) * other(cols x k).
  Matrix MatMul(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace navarchos::util

#endif  // NAVARCHOS_UTIL_MATRIX_H_
