#include "util/matrix.h"

namespace navarchos::util {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    NAVARCHOS_CHECK(rows[r].size() == m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m.data_[r * m.cols_ + c] = rows[r][c];
  }
  return m;
}

std::vector<double> Matrix::Col(std::size_t c) const {
  NAVARCHOS_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  NAVARCHOS_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.data_[c * rows_ + r] = data_[r * cols_ + c];
  return out;
}

}  // namespace navarchos::util
