// Tiny command-line flag parser used by benches and examples.
//
// Supports --name value and --name=value forms plus boolean switches.
// Unrecognised flags are reported so that typos in bench invocations fail
// loudly rather than silently running the default configuration.
#ifndef NAVARCHOS_UTIL_ARGS_H_
#define NAVARCHOS_UTIL_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace navarchos::util {

/// Parsed command-line flags.
class Args {
 public:
  /// Parses argv. Flags look like --key value, --key=value, or --switch.
  Args(int argc, const char* const* argv);

  /// True when --key was present.
  bool Has(const std::string& key) const;

  /// String value of --key, or `fallback` when absent.
  std::string GetString(const std::string& key, const std::string& fallback) const;

  /// Integer value of --key, or `fallback` when absent.
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;

  /// Double value of --key, or `fallback` when absent.
  double GetDouble(const std::string& key, double fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace navarchos::util

#endif  // NAVARCHOS_UTIL_ARGS_H_
