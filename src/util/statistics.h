// Descriptive statistics over contiguous double sequences.
//
// These are the numerical primitives every higher layer builds on: the
// correlation transform, the self-tuning threshold, the conformal scoring in
// Grand, and the evaluation harness. All functions are deterministic and
// allocation-free unless stated otherwise.
#ifndef NAVARCHOS_UTIL_STATISTICS_H_
#define NAVARCHOS_UTIL_STATISTICS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace navarchos::util {

/// Arithmetic mean. Requires a non-empty span.
double Mean(std::span<const double> values);

/// Population variance (divides by N). Requires a non-empty span.
double Variance(std::span<const double> values);

/// Sample variance (divides by N-1). Requires at least two values.
double SampleVariance(std::span<const double> values);

/// Population standard deviation.
double StdDev(std::span<const double> values);

/// Sample standard deviation.
double SampleStdDev(std::span<const double> values);

/// Median (averages the two central order statistics for even N).
/// Copies the input; O(N) average via nth_element.
double Median(std::span<const double> values);

/// Linear-interpolated quantile for q in [0, 1]. Copies the input.
double Quantile(std::span<const double> values, double q);

/// Minimum element. Requires a non-empty span.
double Min(std::span<const double> values);

/// Maximum element. Requires a non-empty span.
double Max(std::span<const double> values);

/// Pearson correlation coefficient of two equal-length spans.
///
/// Returns 0 when either side is (numerically) constant: in the PdM pipeline
/// a flat signal carries no co-movement information and treating it as
/// uncorrelated keeps downstream feature vectors finite (the same convention
/// scikit-learn users apply by imputing NaN correlations with 0).
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

/// Euclidean distance between two equal-length vectors.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance (no sqrt).
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// Ranks with ties resolved by midrank averaging (1-based, as in
/// scipy.stats.rankdata "average"). Used by Friedman/Wilcoxon tests.
std::vector<double> MidRanks(std::span<const double> values);

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// Upper-tail chi-squared survival function with `dof` degrees of freedom
/// (regularised incomplete gamma). Used by the Friedman test.
double ChiSquaredSurvival(double statistic, int dof);

}  // namespace navarchos::util

#endif  // NAVARCHOS_UTIL_STATISTICS_H_
