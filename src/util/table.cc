#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace navarchos::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::ToString() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size())
        out << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string AsciiBar(double value, double max_value, int width) {
  if (max_value <= 0.0 || value <= 0.0 || width <= 0) return "";
  const double frac = std::min(1.0, value / max_value);
  const int filled = static_cast<int>(frac * width + 0.5);
  return std::string(static_cast<std::size_t>(filled), '#');
}

}  // namespace navarchos::util
