#include "util/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace navarchos::util {

double Mean(std::span<const double> values) {
  NAVARCHOS_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  NAVARCHOS_CHECK(!values.empty());
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    const double d = v - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size());
}

double SampleVariance(std::span<const double> values) {
  NAVARCHOS_CHECK(values.size() >= 2);
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    const double d = v - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size() - 1);
}

double StdDev(std::span<const double> values) { return std::sqrt(Variance(values)); }

double SampleStdDev(std::span<const double> values) {
  return std::sqrt(SampleVariance(values));
}

double Median(std::span<const double> values) {
  NAVARCHOS_CHECK(!values.empty());
  std::vector<double> copy(values.begin(), values.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  const double upper = copy[mid];
  if (copy.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

double Quantile(std::span<const double> values, double q) {
  NAVARCHOS_CHECK(!values.empty());
  NAVARCHOS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  const double pos = q * static_cast<double>(copy.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] + frac * (copy[hi] - copy[lo]);
}

double Min(std::span<const double> values) {
  NAVARCHOS_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  NAVARCHOS_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) {
  NAVARCHOS_CHECK(x.size() == y.size());
  NAVARCHOS_CHECK(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sum_x = 0.0, sum_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
  }
  const double mx = sum_x / n;
  const double my = sum_y / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom <= 1e-30) return 0.0;
  const double r = sxy / denom;
  return std::clamp(r, -1.0, 1.0);
}

double EuclideanDistance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  NAVARCHOS_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

std::vector<double> MidRanks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tie block [i, j]: assign the average of ranks i+1 ... j+1.
    const double avg = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

namespace {

// Regularised lower incomplete gamma P(a, x) via series / continued fraction
// (Numerical Recipes style). Accurate enough for p-value reporting.
double GammaP(double a, double x) {
  NAVARCHOS_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Continued fraction for Q(a, x); P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return 1.0 - q;
}

}  // namespace

double ChiSquaredSurvival(double statistic, int dof) {
  NAVARCHOS_CHECK(dof > 0);
  if (statistic <= 0.0) return 1.0;
  return 1.0 - GammaP(0.5 * static_cast<double>(dof), 0.5 * statistic);
}

}  // namespace navarchos::util
