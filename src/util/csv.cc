#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace navarchos::util {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

void WriteCell(std::ostream& out, const std::string& cell) {
  if (!NeedsQuoting(cell)) {
    out << cell;
    return;
  }
  out << '"';
  for (char c : cell) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

void WriteRow(std::ostream& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out << ',';
    WriteCell(out, row[i]);
  }
  out << '\n';
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

Status WriteCsv(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open for writing: " + path);
  WriteRow(out, doc.header);
  for (const auto& row : doc.rows) WriteRow(out, row);
  out.flush();
  if (!out) return Status::Error("write failed: " + path);
  return Status();
}

Status ReadCsv(const std::string& path, CsvDocument* doc) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open for reading: " + path);
  doc->header.clear();
  doc->rows.clear();
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && in.eof()) break;
    auto cells = SplitCsvLine(line);
    if (first) {
      doc->header = std::move(cells);
      first = false;
    } else {
      doc->rows.push_back(std::move(cells));
    }
  }
  return Status();
}

}  // namespace navarchos::util
