// The byte-transport seam of the network ingest front end.
//
// Socket is a concrete RAII wrapper over one TCP file descriptor; Transport
// is the virtual seam above it that the server and client actually talk
// through. Everything above the seam (framing, sessions, backpressure,
// resume) sees only non-blocking Read/Write calls with explicit would-block
// results, so a deterministic fault layer (net::FaultySocket) can be slid
// between the protocol and the kernel without either peer noticing - the
// exact analogue of telemetry::CorruptionModel one layer down the stack.
//
// All transports are single-owner, single-thread objects: one connection is
// driven by exactly one thread (the serving thread on the server, the
// ingest thread on the client), so no locking happens on the byte path.
#ifndef NAVARCHOS_NET_TRANSPORT_H_
#define NAVARCHOS_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/socket.h"
#include "util/status.h"

/// \file
/// \brief Transport, the injectable byte-transport seam between the wire
/// protocol and the kernel socket, plus the default SocketTransport and the
/// poll-based deadline helpers built on it.

namespace navarchos::net {

/// Outcome of one non-blocking transport operation.
enum class IoStatus {
  kOk,          ///< Some bytes were transferred (count in the out-param).
  kWouldBlock,  ///< No progress right now; poll and retry.
  kEof,         ///< The peer closed the connection in an orderly way.
  kError,       ///< Transport failure; the error string names it.
};

/// The injectable byte-transport seam. Implementations must be non-blocking:
/// Read/Write never wait for the peer, they report kWouldBlock instead, and
/// the caller drives progress off poll(fd()).
class Transport {
 public:
  /// Closing is the implementation's job (RAII over the descriptor).
  virtual ~Transport() = default;

  /// Reads up to `capacity` bytes into `buffer`. On kOk, `*received` holds
  /// the (positive) byte count; on kError, `*error` names the failure.
  virtual IoStatus Read(std::uint8_t* buffer, std::size_t capacity,
                        std::size_t* received, std::string* error) = 0;

  /// Writes up to `size` bytes of `data`. On kOk, `*written` holds the
  /// (positive) byte count - partial writes are normal; on kError, `*error`
  /// names the failure. Write never reports kEof.
  virtual IoStatus Write(const std::uint8_t* data, std::size_t size,
                         std::size_t* written, std::string* error) = 0;

  /// The pollable descriptor (-1 once closed). Poll readiness is a hint,
  /// never a promise: a fault layer may still report kWouldBlock on a
  /// readable descriptor.
  virtual int fd() const = 0;

  /// True while the transport can still move bytes.
  virtual bool valid() const = 0;

  /// Closes the underlying descriptor (idempotent).
  virtual void Close() = 0;
};

/// The production transport: one connected TCP socket switched to
/// non-blocking mode. EINTR is retried internally; EAGAIN surfaces as
/// kWouldBlock.
class SocketTransport final : public Transport {
 public:
  /// Takes ownership of `socket` and switches it to O_NONBLOCK.
  explicit SocketTransport(Socket socket);

  IoStatus Read(std::uint8_t* buffer, std::size_t capacity,
                std::size_t* received, std::string* error) override;
  IoStatus Write(const std::uint8_t* data, std::size_t size,
                 std::size_t* written, std::string* error) override;
  int fd() const override { return socket_.fd(); }
  bool valid() const override { return socket_.valid(); }
  void Close() override { socket_.Close(); }

 private:
  Socket socket_;
};

/// Factory wrapping a freshly connected/accepted socket in a Transport.
/// The server calls it once per accepted connection, the client once per
/// dial (reconnects included) - the injection point for FaultySocket.
using TransportFactory = std::function<std::unique_ptr<Transport>(Socket)>;

/// The default factory: plain SocketTransport over the socket.
std::unique_ptr<Transport> MakeSocketTransport(Socket socket);

// ------------------------------------------------------- deadline helpers

/// Waits until `transport`'s descriptor polls readable (`for_write` false)
/// or writable (true), or `deadline_ms` elapses (0 waits forever). Returns
/// false on timeout or poll failure. A fault layer stalling a ready
/// descriptor makes the caller loop; WaitReady alone never spins hot
/// because the fault layer sleeps before reporting spurious would-block.
bool WaitReady(const Transport& transport, bool for_write, int deadline_ms);

/// Blocking full write over a non-blocking transport: loops Write + poll
/// until every byte left or `deadline_ms` elapsed (0 = no deadline).
util::Status SendAllWithin(Transport* transport, const std::uint8_t* data,
                           std::size_t size, int deadline_ms);

}  // namespace navarchos::net

#endif  // NAVARCHOS_NET_TRANSPORT_H_
