#include "net/wire.h"

#include <cstring>

#include "util/check.h"

namespace navarchos::net {

namespace {

/// Encodes `value` as 4 little-endian bytes at `out`.
void PutU32Le(std::uint32_t value, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
  out[2] = static_cast<std::uint8_t>(value >> 16);
  out[3] = static_cast<std::uint8_t>(value >> 24);
}

std::uint32_t GetU32Le(const std::uint8_t* data) {
  return static_cast<std::uint32_t>(data[0]) |
         static_cast<std::uint32_t>(data[1]) << 8 |
         static_cast<std::uint32_t>(data[2]) << 16 |
         static_cast<std::uint32_t>(data[3]) << 24;
}

/// CRC32 over the frame's checksummed region: type byte, length field (as
/// its 4 LE bytes) and the payload, folded incrementally so no payload-size
/// copy is ever made.
std::uint32_t FrameCrc(MessageType type, const std::uint8_t* payload,
                       std::size_t size) {
  std::uint8_t header[5];
  header[0] = static_cast<std::uint8_t>(type);
  PutU32Le(static_cast<std::uint32_t>(size), header + 1);
  std::uint32_t crc = persist::Crc32Init();
  crc = persist::Crc32Update(crc, header, sizeof(header));
  crc = persist::Crc32Update(crc, payload, size);
  return persist::Crc32Final(crc);
}

bool ValidMessageType(std::uint8_t byte) {
  return byte >= static_cast<std::uint8_t>(MessageType::kHello) &&
         byte <= static_cast<std::uint8_t>(MessageType::kError);
}

}  // namespace

// ------------------------------------------------------------ frame codecs

void EncodeSensorFrame(persist::Encoder& encoder,
                       const telemetry::SensorFrame& frame) {
  encoder.PutU8(static_cast<std::uint8_t>(frame.kind));
  if (frame.kind == telemetry::SensorFrame::Kind::kRecord) {
    encoder.PutI32(frame.record.vehicle_id);
    encoder.PutI64(frame.record.timestamp);
    for (double pid : frame.record.pids) encoder.PutDouble(pid);
  } else {
    encoder.PutI32(frame.event.vehicle_id);
    encoder.PutI64(frame.event.timestamp);
    encoder.PutU8(static_cast<std::uint8_t>(frame.event.type));
    encoder.PutString(frame.event.code);
    encoder.PutBool(frame.event.recorded);
    encoder.PutI32(frame.event.fault_id);
  }
}

bool DecodeSensorFrame(persist::Decoder& decoder,
                       telemetry::SensorFrame* frame) {
  const std::uint8_t kind = decoder.GetU8();
  if (!decoder.ok()) return false;
  if (kind == static_cast<std::uint8_t>(telemetry::SensorFrame::Kind::kRecord)) {
    frame->kind = telemetry::SensorFrame::Kind::kRecord;
    frame->record.vehicle_id = decoder.GetI32();
    frame->record.timestamp = decoder.GetI64();
    for (double& pid : frame->record.pids) pid = decoder.GetDouble();
  } else if (kind ==
             static_cast<std::uint8_t>(telemetry::SensorFrame::Kind::kEvent)) {
    frame->kind = telemetry::SensorFrame::Kind::kEvent;
    frame->event.vehicle_id = decoder.GetI32();
    frame->event.timestamp = decoder.GetI64();
    const std::uint8_t type = decoder.GetU8();
    if (decoder.ok() &&
        type > static_cast<std::uint8_t>(telemetry::EventType::kOther)) {
      decoder.Fail("unknown event type " + std::to_string(type));
      return false;
    }
    frame->event.type = static_cast<telemetry::EventType>(type);
    frame->event.code = decoder.GetString();
    frame->event.recorded = decoder.GetBool();
    frame->event.fault_id = decoder.GetI32();
  } else {
    decoder.Fail("unknown frame kind " + std::to_string(kind));
    return false;
  }
  return decoder.ok();
}

// ---------------------------------------------------------- message codecs

std::vector<std::uint8_t> EncodeFrame(MessageType type,
                                      const std::vector<std::uint8_t>& payload) {
  NAVARCHOS_CHECK(payload.size() <= kMaxPayloadBytes);
  std::vector<std::uint8_t> bytes;
  bytes.resize(kFrameOverheadBytes + payload.size());
  PutU32Le(kWireMagic, bytes.data());
  bytes[4] = static_cast<std::uint8_t>(type);
  PutU32Le(static_cast<std::uint32_t>(payload.size()), bytes.data() + 5);
  if (!payload.empty())
    std::memcpy(bytes.data() + 9, payload.data(), payload.size());
  PutU32Le(FrameCrc(type, payload.data(), payload.size()),
           bytes.data() + 9 + payload.size());
  return bytes;
}

std::vector<std::uint8_t> EncodeHello(const HelloMessage& message) {
  persist::Encoder encoder;
  encoder.PutU32(message.protocol_version);
  encoder.PutString(message.session_id);
  encoder.PutBool(message.resume);
  encoder.PutU32(static_cast<std::uint32_t>(message.vehicle_ids.size()));
  for (std::int32_t id : message.vehicle_ids) encoder.PutI32(id);
  return EncodeFrame(MessageType::kHello, encoder.bytes());
}

std::vector<std::uint8_t> EncodeWelcome(const WelcomeMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.next_seq);
  return EncodeFrame(MessageType::kWelcome, encoder.bytes());
}

std::vector<std::uint8_t> EncodeFrames(const FramesMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.first_seq);
  encoder.PutU32(static_cast<std::uint32_t>(message.frames.size()));
  for (const telemetry::SensorFrame& frame : message.frames)
    EncodeSensorFrame(encoder, frame);
  return EncodeFrame(MessageType::kFrames, encoder.bytes());
}

std::vector<std::uint8_t> EncodeAck(const AckMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.through_seq);
  encoder.PutU64(message.sheds);
  return EncodeFrame(MessageType::kAck, encoder.bytes());
}

std::vector<std::uint8_t> EncodeNack(const NackMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.seq);
  encoder.PutI32(message.vehicle_id);
  encoder.PutU8(static_cast<std::uint8_t>(message.code));
  return EncodeFrame(MessageType::kNack, encoder.bytes());
}

std::vector<std::uint8_t> EncodeFin(const FinMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.total_seq);
  return EncodeFrame(MessageType::kFin, encoder.bytes());
}

std::vector<std::uint8_t> EncodeError(const ErrorMessage& message) {
  persist::Encoder encoder;
  encoder.PutString(message.message);
  return EncodeFrame(MessageType::kError, encoder.bytes());
}

util::Status DecodeHello(const std::vector<std::uint8_t>& payload,
                         HelloMessage* out) {
  persist::Decoder decoder(payload);
  out->protocol_version = decoder.GetU32();
  out->session_id = decoder.GetString();
  out->resume = decoder.GetBool();
  const std::uint32_t count = decoder.GetU32();
  // Each id is 4 bytes; bound the claimed count by the bytes that remain
  // before reserving anything (the codec robustness contract).
  if (decoder.ok() && count > decoder.remaining() / 4)
    decoder.Fail("vehicle id count exceeds payload size");
  if (decoder.ok()) {
    out->vehicle_ids.clear();
    out->vehicle_ids.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
      out->vehicle_ids.push_back(decoder.GetI32());
  }
  return decoder.ToStatus("HELLO payload");
}

util::Status DecodeWelcome(const std::vector<std::uint8_t>& payload,
                           WelcomeMessage* out) {
  persist::Decoder decoder(payload);
  out->next_seq = decoder.GetU64();
  return decoder.ToStatus("WELCOME payload");
}

util::Status DecodeFrames(const std::vector<std::uint8_t>& payload,
                          FramesMessage* out) {
  persist::Decoder decoder(payload);
  out->first_seq = decoder.GetU64();
  const std::uint32_t count = decoder.GetU32();
  // The smallest encodable frame is an event with an empty code string:
  // kind + vehicle id + timestamp + event type + string length prefix +
  // recorded flag + fault id. Records are larger (the fixed pid array).
  // Bounding the count by that floor rejects inflated claims before any
  // allocation.
  constexpr std::size_t kMinFrameBytes = 1 + 4 + 8 + 1 + 8 + 1 + 4;
  if (decoder.ok() && count > decoder.remaining() / kMinFrameBytes)
    decoder.Fail("frame count exceeds payload size");
  if (decoder.ok()) {
    out->frames.clear();
    out->frames.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      telemetry::SensorFrame frame;
      if (!DecodeSensorFrame(decoder, &frame)) break;
      out->frames.push_back(std::move(frame));
    }
  }
  return decoder.ToStatus("FRAMES payload");
}

util::Status DecodeAck(const std::vector<std::uint8_t>& payload,
                       AckMessage* out) {
  persist::Decoder decoder(payload);
  out->through_seq = decoder.GetU64();
  out->sheds = decoder.GetU64();
  return decoder.ToStatus("ACK payload");
}

util::Status DecodeNack(const std::vector<std::uint8_t>& payload,
                        NackMessage* out) {
  persist::Decoder decoder(payload);
  out->seq = decoder.GetU64();
  out->vehicle_id = decoder.GetI32();
  const std::uint8_t code = decoder.GetU8();
  if (decoder.ok() && (code < static_cast<std::uint8_t>(NackCode::kQueueFull) ||
                       code > static_cast<std::uint8_t>(NackCode::kDraining)))
    decoder.Fail("unknown NACK code " + std::to_string(code));
  out->code = static_cast<NackCode>(code);
  return decoder.ToStatus("NACK payload");
}

util::Status DecodeFin(const std::vector<std::uint8_t>& payload,
                       FinMessage* out) {
  persist::Decoder decoder(payload);
  out->total_seq = decoder.GetU64();
  return decoder.ToStatus("FIN payload");
}

util::Status DecodeError(const std::vector<std::uint8_t>& payload,
                         ErrorMessage* out) {
  persist::Decoder decoder(payload);
  out->message = decoder.GetString();
  return decoder.ToStatus("ERROR payload");
}

// --------------------------------------------------------- stream reassembly

void MessageReader::Append(const std::uint8_t* data, std::size_t size) {
  // Compact the consumed prefix before growing, so a long-lived connection
  // never accumulates released bytes.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

MessageReader::Result MessageReader::Next(WireMessage* out) {
  if (!error_.empty()) return Result::kError;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 9) return Result::kNeedMore;  // magic + type + length
  const std::uint8_t* head = buffer_.data() + consumed_;

  const std::uint32_t magic = GetU32Le(head);
  if (magic != kWireMagic) {
    error_ = "bad frame magic (stream desynchronised or corrupt)";
    return Result::kError;
  }
  const std::uint8_t type = head[4];
  if (!ValidMessageType(type)) {
    error_ = "unknown message type " + std::to_string(type);
    return Result::kError;
  }
  const std::uint32_t length = GetU32Le(head + 5);
  if (length > kMaxPayloadBytes) {
    error_ = "payload length " + std::to_string(length) +
             " exceeds the protocol maximum";
    return Result::kError;
  }
  if (available < kFrameOverheadBytes + length) return Result::kNeedMore;

  const std::uint8_t* payload = head + 9;
  const std::uint32_t expected_crc = GetU32Le(payload + length);
  const std::uint32_t found_crc = FrameCrc(static_cast<MessageType>(type),
                                           payload, length);
  if (expected_crc != found_crc) {
    error_ = "frame CRC mismatch on a " +
             std::string(MessageTypeName(static_cast<MessageType>(type))) +
             " message";
    return Result::kError;
  }

  out->type = static_cast<MessageType>(type);
  out->payload.assign(payload, payload + length);
  consumed_ += kFrameOverheadBytes + length;
  return Result::kMessage;
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "HELLO";
    case MessageType::kWelcome: return "WELCOME";
    case MessageType::kFrames: return "FRAMES";
    case MessageType::kAck: return "ACK";
    case MessageType::kNack: return "NACK";
    case MessageType::kFin: return "FIN";
    case MessageType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

}  // namespace navarchos::net
