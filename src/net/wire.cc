#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace navarchos::net {

namespace {

/// Encodes `value` as 4 little-endian bytes at `out`.
void PutU32Le(std::uint32_t value, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
  out[2] = static_cast<std::uint8_t>(value >> 16);
  out[3] = static_cast<std::uint8_t>(value >> 24);
}

std::uint32_t GetU32Le(const std::uint8_t* data) {
  return static_cast<std::uint32_t>(data[0]) |
         static_cast<std::uint32_t>(data[1]) << 8 |
         static_cast<std::uint32_t>(data[2]) << 16 |
         static_cast<std::uint32_t>(data[3]) << 24;
}

/// CRC32 over the frame's checksummed region: type byte, length field (as
/// its 4 LE bytes) and the payload, folded incrementally so no payload-size
/// copy is ever made.
std::uint32_t FrameCrc(MessageType type, const std::uint8_t* payload,
                       std::size_t size) {
  std::uint8_t header[5];
  header[0] = static_cast<std::uint8_t>(type);
  PutU32Le(static_cast<std::uint32_t>(size), header + 1);
  std::uint32_t crc = persist::Crc32Init();
  crc = persist::Crc32Update(crc, header, sizeof(header));
  crc = persist::Crc32Update(crc, payload, size);
  return persist::Crc32Final(crc);
}

bool ValidMessageType(std::uint8_t byte) {
  return byte >= static_cast<std::uint8_t>(MessageType::kHello) &&
         byte <= static_cast<std::uint8_t>(MessageType::kStats);
}

bool ValidQueryKind(std::uint8_t byte) {
  return byte >= static_cast<std::uint8_t>(QueryKind::kRank) &&
         byte <= static_cast<std::uint8_t>(QueryKind::kComove);
}

/// Appends one history record (a TIMELINE result row) to `encoder`.
void EncodeHistoryRecord(persist::Encoder& encoder,
                         const history::HistoryRecord& record) {
  encoder.PutI32(record.vehicle_id);
  encoder.PutU64(record.global_seq);
  encoder.PutI64(record.timestamp);
  encoder.PutDouble(record.score);
  encoder.PutDouble(record.threshold);
  encoder.PutBool(record.alarm);
  encoder.PutU8(static_cast<std::uint8_t>(
      std::min(record.top_channels.size(), history::kMaxTopChannels)));
  for (std::size_t c = 0;
       c < record.top_channels.size() && c < history::kMaxTopChannels; ++c)
    encoder.PutU32(record.top_channels[c]);
}

bool DecodeHistoryRecord(persist::Decoder& decoder,
                         history::HistoryRecord* record) {
  record->vehicle_id = decoder.GetI32();
  record->global_seq = decoder.GetU64();
  record->timestamp = decoder.GetI64();
  record->score = decoder.GetDouble();
  record->threshold = decoder.GetDouble();
  record->alarm = decoder.GetBool();
  const std::uint8_t top_k = decoder.GetU8();
  if (!decoder.ok()) return false;
  if (top_k > decoder.remaining() / 4) {
    decoder.Fail("record channel count exceeds payload size");
    return false;
  }
  record->top_channels.clear();
  record->top_channels.reserve(top_k);
  for (std::uint8_t c = 0; c < top_k; ++c)
    record->top_channels.push_back(decoder.GetU32());
  return decoder.ok();
}

}  // namespace

// ------------------------------------------------------------ frame codecs

void EncodeSensorFrame(persist::Encoder& encoder,
                       const telemetry::SensorFrame& frame) {
  encoder.PutU8(static_cast<std::uint8_t>(frame.kind));
  if (frame.kind == telemetry::SensorFrame::Kind::kRecord) {
    encoder.PutI32(frame.record.vehicle_id);
    encoder.PutI64(frame.record.timestamp);
    for (double pid : frame.record.pids) encoder.PutDouble(pid);
  } else {
    encoder.PutI32(frame.event.vehicle_id);
    encoder.PutI64(frame.event.timestamp);
    encoder.PutU8(static_cast<std::uint8_t>(frame.event.type));
    encoder.PutString(frame.event.code);
    encoder.PutBool(frame.event.recorded);
    encoder.PutI32(frame.event.fault_id);
  }
}

bool DecodeSensorFrame(persist::Decoder& decoder,
                       telemetry::SensorFrame* frame) {
  const std::uint8_t kind = decoder.GetU8();
  if (!decoder.ok()) return false;
  if (kind == static_cast<std::uint8_t>(telemetry::SensorFrame::Kind::kRecord)) {
    frame->kind = telemetry::SensorFrame::Kind::kRecord;
    frame->record.vehicle_id = decoder.GetI32();
    frame->record.timestamp = decoder.GetI64();
    for (double& pid : frame->record.pids) pid = decoder.GetDouble();
  } else if (kind ==
             static_cast<std::uint8_t>(telemetry::SensorFrame::Kind::kEvent)) {
    frame->kind = telemetry::SensorFrame::Kind::kEvent;
    frame->event.vehicle_id = decoder.GetI32();
    frame->event.timestamp = decoder.GetI64();
    const std::uint8_t type = decoder.GetU8();
    if (decoder.ok() &&
        type > static_cast<std::uint8_t>(telemetry::EventType::kOther)) {
      decoder.Fail("unknown event type " + std::to_string(type));
      return false;
    }
    frame->event.type = static_cast<telemetry::EventType>(type);
    frame->event.code = decoder.GetString();
    frame->event.recorded = decoder.GetBool();
    frame->event.fault_id = decoder.GetI32();
  } else {
    decoder.Fail("unknown frame kind " + std::to_string(kind));
    return false;
  }
  return decoder.ok();
}

// ---------------------------------------------------------- message codecs

std::vector<std::uint8_t> EncodeFrame(MessageType type,
                                      const std::vector<std::uint8_t>& payload) {
  NAVARCHOS_CHECK(payload.size() <= kMaxPayloadBytes);
  std::vector<std::uint8_t> bytes;
  bytes.resize(kFrameOverheadBytes + payload.size());
  PutU32Le(kWireMagic, bytes.data());
  bytes[4] = static_cast<std::uint8_t>(type);
  PutU32Le(static_cast<std::uint32_t>(payload.size()), bytes.data() + 5);
  if (!payload.empty())
    std::memcpy(bytes.data() + 9, payload.data(), payload.size());
  PutU32Le(FrameCrc(type, payload.data(), payload.size()),
           bytes.data() + 9 + payload.size());
  return bytes;
}

std::vector<std::uint8_t> EncodeHello(const HelloMessage& message) {
  persist::Encoder encoder;
  encoder.PutU32(message.protocol_version);
  encoder.PutString(message.session_id);
  encoder.PutBool(message.resume);
  encoder.PutU32(static_cast<std::uint32_t>(message.vehicle_ids.size()));
  for (std::int32_t id : message.vehicle_ids) encoder.PutI32(id);
  // Optional tail (sharded sessions): fleet-wide registration index per
  // vehicle. Encoded only when present, so unsharded HELLOs stay
  // byte-identical to the pre-shard protocol.
  if (!message.fleet_order.empty()) {
    NAVARCHOS_CHECK(message.fleet_order.size() == message.vehicle_ids.size());
    for (std::uint32_t index : message.fleet_order) encoder.PutU32(index);
  }
  return EncodeFrame(MessageType::kHello, encoder.bytes());
}

std::vector<std::uint8_t> EncodeWelcome(const WelcomeMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.next_seq);
  // Optional tail: the shard map, encoded only for sharded topologies so
  // unsharded WELCOMEs stay byte-identical to the pre-shard protocol.
  if (!message.shard_map.unsharded()) {
    NAVARCHOS_CHECK(message.shard_map.ports.size() ==
                    message.shard_map.shard_count);
    encoder.PutU32(message.shard_map.shard_count);
    encoder.PutU64(message.shard_map.hash_seed);
    for (std::uint16_t port : message.shard_map.ports) encoder.PutU32(port);
  }
  return EncodeFrame(MessageType::kWelcome, encoder.bytes());
}

std::vector<std::uint8_t> EncodeFrames(const FramesMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.first_seq);
  encoder.PutU32(static_cast<std::uint32_t>(message.frames.size()));
  for (const telemetry::SensorFrame& frame : message.frames)
    EncodeSensorFrame(encoder, frame);
  // Optional tail (sharded sessions): fleet-wide sequence number per
  // frame, parallel to `frames`.
  if (!message.fleet_seqs.empty()) {
    NAVARCHOS_CHECK(message.fleet_seqs.size() == message.frames.size());
    for (std::uint64_t seq : message.fleet_seqs) encoder.PutU64(seq);
  }
  return EncodeFrame(MessageType::kFrames, encoder.bytes());
}

std::vector<std::uint8_t> EncodeAck(const AckMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.through_seq);
  encoder.PutU64(message.sheds);
  return EncodeFrame(MessageType::kAck, encoder.bytes());
}

std::vector<std::uint8_t> EncodeNack(const NackMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.seq);
  encoder.PutI32(message.vehicle_id);
  encoder.PutU8(static_cast<std::uint8_t>(message.code));
  return EncodeFrame(MessageType::kNack, encoder.bytes());
}

std::vector<std::uint8_t> EncodeFin(const FinMessage& message) {
  persist::Encoder encoder;
  encoder.PutU64(message.total_seq);
  return EncodeFrame(MessageType::kFin, encoder.bytes());
}

std::vector<std::uint8_t> EncodeError(const ErrorMessage& message) {
  persist::Encoder encoder;
  encoder.PutString(message.message);
  return EncodeFrame(MessageType::kError, encoder.bytes());
}

util::Status DecodeHello(const std::vector<std::uint8_t>& payload,
                         HelloMessage* out) {
  persist::Decoder decoder(payload);
  out->protocol_version = decoder.GetU32();
  out->session_id = decoder.GetString();
  out->resume = decoder.GetBool();
  const std::uint32_t count = decoder.GetU32();
  // Each id is 4 bytes; bound the claimed count by the bytes that remain
  // before reserving anything (the codec robustness contract).
  if (decoder.ok() && count > decoder.remaining() / 4)
    decoder.Fail("vehicle id count exceeds payload size");
  if (decoder.ok()) {
    out->vehicle_ids.clear();
    out->vehicle_ids.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
      out->vehicle_ids.push_back(decoder.GetI32());
  }
  // Optional fleet-order tail: exactly one u32 per vehicle when present.
  out->fleet_order.clear();
  if (decoder.ok() && decoder.remaining() > 0) {
    if (decoder.remaining() != std::size_t{count} * 4)
      decoder.Fail("HELLO fleet-order tail size mismatch");
    if (decoder.ok()) {
      out->fleet_order.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i)
        out->fleet_order.push_back(decoder.GetU32());
    }
  }
  return decoder.ToStatus("HELLO payload");
}

util::Status DecodeWelcome(const std::vector<std::uint8_t>& payload,
                           WelcomeMessage* out) {
  persist::Decoder decoder(payload);
  out->next_seq = decoder.GetU64();
  // Optional shard-map tail; its absence means the unsharded default.
  out->shard_map = ShardMapInfo{};
  if (decoder.ok() && decoder.remaining() > 0) {
    const std::uint32_t shard_count = decoder.GetU32();
    const std::uint64_t hash_seed = decoder.GetU64();
    if (decoder.ok() &&
        (shard_count == 0 ||
         shard_count > decoder.remaining() / 4))
      decoder.Fail("WELCOME shard count exceeds payload size");
    if (decoder.ok()) {
      out->shard_map.shard_count = shard_count;
      out->shard_map.hash_seed = hash_seed;
      out->shard_map.ports.reserve(shard_count);
      for (std::uint32_t i = 0; i < shard_count; ++i) {
        const std::uint32_t port = decoder.GetU32();
        if (port > 0xFFFFu) {
          decoder.Fail("WELCOME shard port out of range");
          break;
        }
        out->shard_map.ports.push_back(static_cast<std::uint16_t>(port));
      }
    }
  }
  return decoder.ToStatus("WELCOME payload");
}

util::Status DecodeFrames(const std::vector<std::uint8_t>& payload,
                          FramesMessage* out) {
  persist::Decoder decoder(payload);
  out->first_seq = decoder.GetU64();
  const std::uint32_t count = decoder.GetU32();
  // The smallest encodable frame is an event with an empty code string:
  // kind + vehicle id + timestamp + event type + string length prefix +
  // recorded flag + fault id. Records are larger (the fixed pid array).
  // Bounding the count by that floor rejects inflated claims before any
  // allocation.
  constexpr std::size_t kMinFrameBytes = 1 + 4 + 8 + 1 + 8 + 1 + 4;
  if (decoder.ok() && count > decoder.remaining() / kMinFrameBytes)
    decoder.Fail("frame count exceeds payload size");
  if (decoder.ok()) {
    out->frames.clear();
    out->frames.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      telemetry::SensorFrame frame;
      if (!DecodeSensorFrame(decoder, &frame)) break;
      out->frames.push_back(std::move(frame));
    }
  }
  // Optional fleet-seq tail: exactly one u64 per frame when present.
  out->fleet_seqs.clear();
  if (decoder.ok() && decoder.remaining() > 0) {
    if (decoder.remaining() != std::size_t{count} * 8)
      decoder.Fail("FRAMES fleet-seq tail size mismatch");
    if (decoder.ok()) {
      out->fleet_seqs.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i)
        out->fleet_seqs.push_back(decoder.GetU64());
    }
  }
  return decoder.ToStatus("FRAMES payload");
}

util::Status DecodeAck(const std::vector<std::uint8_t>& payload,
                       AckMessage* out) {
  persist::Decoder decoder(payload);
  out->through_seq = decoder.GetU64();
  out->sheds = decoder.GetU64();
  return decoder.ToStatus("ACK payload");
}

util::Status DecodeNack(const std::vector<std::uint8_t>& payload,
                        NackMessage* out) {
  persist::Decoder decoder(payload);
  out->seq = decoder.GetU64();
  out->vehicle_id = decoder.GetI32();
  const std::uint8_t code = decoder.GetU8();
  if (decoder.ok() && (code < static_cast<std::uint8_t>(NackCode::kQueueFull) ||
                       code > static_cast<std::uint8_t>(NackCode::kDraining)))
    decoder.Fail("unknown NACK code " + std::to_string(code));
  out->code = static_cast<NackCode>(code);
  return decoder.ToStatus("NACK payload");
}

util::Status DecodeFin(const std::vector<std::uint8_t>& payload,
                       FinMessage* out) {
  persist::Decoder decoder(payload);
  out->total_seq = decoder.GetU64();
  return decoder.ToStatus("FIN payload");
}

util::Status DecodeError(const std::vector<std::uint8_t>& payload,
                         ErrorMessage* out) {
  persist::Decoder decoder(payload);
  out->message = decoder.GetString();
  return decoder.ToStatus("ERROR payload");
}

std::vector<std::uint8_t> EncodeQuery(const QueryMessage& message) {
  persist::Encoder encoder;
  encoder.PutU8(static_cast<std::uint8_t>(message.kind));
  switch (message.kind) {
    case QueryKind::kRank:
      encoder.PutI64(message.rank.window_minutes);
      encoder.PutI64(message.rank.end_ts);
      encoder.PutU32(message.rank.limit);
      break;
    case QueryKind::kTimeline:
      encoder.PutI32(message.timeline.vehicle_id);
      encoder.PutI64(message.timeline.start_ts);
      encoder.PutI64(message.timeline.end_ts);
      encoder.PutU32(message.timeline.max_records);
      break;
    case QueryKind::kComove:
      encoder.PutU64(message.comove.alarm_seq);
      encoder.PutU32(message.comove.window);
      break;
  }
  return EncodeFrame(MessageType::kQuery, encoder.bytes());
}

std::vector<std::uint8_t> EncodeResult(const ResultMessage& message) {
  persist::Encoder encoder;
  encoder.PutU8(static_cast<std::uint8_t>(message.kind));
  encoder.PutU32(message.page);
  encoder.PutBool(message.last);
  switch (message.kind) {
    case QueryKind::kRank:
      encoder.PutU32(static_cast<std::uint32_t>(message.rank_entries.size()));
      for (const history::RankEntry& entry : message.rank_entries) {
        encoder.PutI32(entry.vehicle_id);
        encoder.PutU64(entry.records);
        encoder.PutU64(entry.alarms);
        encoder.PutDouble(entry.mean_ratio);
        encoder.PutDouble(entry.max_ratio);
        encoder.PutI64(entry.last_ts);
      }
      break;
    case QueryKind::kTimeline:
      encoder.PutU32(
          static_cast<std::uint32_t>(message.timeline_records.size()));
      for (const history::HistoryRecord& record : message.timeline_records)
        EncodeHistoryRecord(encoder, record);
      break;
    case QueryKind::kComove:
      encoder.PutI32(message.comove_vehicle_id);
      encoder.PutI64(message.comove_alarm_ts);
      encoder.PutU32(
          static_cast<std::uint32_t>(message.comove_entries.size()));
      for (const history::ComoveEntry& entry : message.comove_entries) {
        encoder.PutU32(entry.channel);
        encoder.PutU64(entry.hits);
        encoder.PutU64(entry.weight);
      }
      break;
  }
  return EncodeFrame(MessageType::kResult, encoder.bytes());
}

std::vector<std::uint8_t> EncodeStatsRequest() {
  // The request direction is the empty payload; a response always carries
  // at least the snapshot's version field, so the two cannot collide.
  return EncodeFrame(MessageType::kStats, {});
}

std::vector<std::uint8_t> EncodeStatsResponse(const StatsMessage& message) {
  persist::Encoder encoder;
  obs::EncodeStatsSnapshot(encoder, message.snapshot);
  // Optional tail: answering shard id + the shard map, encoded only for
  // sharded topologies so unsharded responses stay tail-free (and an
  // unsharded shard_id is 0 by definition).
  if (!message.shard_map.unsharded()) {
    NAVARCHOS_CHECK(message.shard_map.ports.size() ==
                    message.shard_map.shard_count);
    encoder.PutU32(message.shard_id);
    encoder.PutU32(message.shard_map.shard_count);
    encoder.PutU64(message.shard_map.hash_seed);
    for (std::uint16_t port : message.shard_map.ports) encoder.PutU32(port);
  }
  return EncodeFrame(MessageType::kStats, encoder.bytes());
}

util::Status DecodeQuery(const std::vector<std::uint8_t>& payload,
                         QueryMessage* out) {
  persist::Decoder decoder(payload);
  const std::uint8_t kind = decoder.GetU8();
  if (decoder.ok() && !ValidQueryKind(kind))
    decoder.Fail("unknown query kind " + std::to_string(kind));
  if (!decoder.ok()) return decoder.ToStatus("QUERY payload");
  out->kind = static_cast<QueryKind>(kind);
  switch (out->kind) {
    case QueryKind::kRank:
      out->rank.window_minutes = decoder.GetI64();
      out->rank.end_ts = decoder.GetI64();
      out->rank.limit = decoder.GetU32();
      break;
    case QueryKind::kTimeline:
      out->timeline.vehicle_id = decoder.GetI32();
      out->timeline.start_ts = decoder.GetI64();
      out->timeline.end_ts = decoder.GetI64();
      out->timeline.max_records = decoder.GetU32();
      break;
    case QueryKind::kComove:
      out->comove.alarm_seq = decoder.GetU64();
      out->comove.window = decoder.GetU32();
      break;
  }
  return decoder.ToStatus("QUERY payload");
}

util::Status DecodeResult(const std::vector<std::uint8_t>& payload,
                          ResultMessage* out) {
  persist::Decoder decoder(payload);
  const std::uint8_t kind = decoder.GetU8();
  if (decoder.ok() && !ValidQueryKind(kind))
    decoder.Fail("unknown query kind " + std::to_string(kind));
  out->page = decoder.GetU32();
  out->last = decoder.GetBool();
  if (!decoder.ok()) return decoder.ToStatus("RESULT payload");
  out->kind = static_cast<QueryKind>(kind);
  // Bound every claimed count by the minimum encoded entry size before
  // reserving anything (the codec robustness contract).
  switch (out->kind) {
    case QueryKind::kRank: {
      const std::uint32_t count = decoder.GetU32();
      constexpr std::size_t kMinRankEntryBytes = 4 + 8 + 8 + 8 + 8 + 8;
      if (decoder.ok() && count > decoder.remaining() / kMinRankEntryBytes)
        decoder.Fail("rank entry count exceeds payload size");
      if (decoder.ok()) {
        out->rank_entries.clear();
        out->rank_entries.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          history::RankEntry entry;
          entry.vehicle_id = decoder.GetI32();
          entry.records = decoder.GetU64();
          entry.alarms = decoder.GetU64();
          entry.mean_ratio = decoder.GetDouble();
          entry.max_ratio = decoder.GetDouble();
          entry.last_ts = decoder.GetI64();
          if (!decoder.ok()) break;
          out->rank_entries.push_back(entry);
        }
      }
      break;
    }
    case QueryKind::kTimeline: {
      const std::uint32_t count = decoder.GetU32();
      constexpr std::size_t kMinRecordBytes = 4 + 8 + 8 + 8 + 8 + 1 + 1;
      if (decoder.ok() && count > decoder.remaining() / kMinRecordBytes)
        decoder.Fail("timeline record count exceeds payload size");
      if (decoder.ok()) {
        out->timeline_records.clear();
        out->timeline_records.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          history::HistoryRecord record;
          if (!DecodeHistoryRecord(decoder, &record)) break;
          out->timeline_records.push_back(std::move(record));
        }
      }
      break;
    }
    case QueryKind::kComove: {
      out->comove_vehicle_id = decoder.GetI32();
      out->comove_alarm_ts = decoder.GetI64();
      const std::uint32_t count = decoder.GetU32();
      constexpr std::size_t kMinComoveEntryBytes = 4 + 8 + 8;
      if (decoder.ok() && count > decoder.remaining() / kMinComoveEntryBytes)
        decoder.Fail("comove entry count exceeds payload size");
      if (decoder.ok()) {
        out->comove_entries.clear();
        out->comove_entries.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          history::ComoveEntry entry;
          entry.channel = decoder.GetU32();
          entry.hits = decoder.GetU64();
          entry.weight = decoder.GetU64();
          if (!decoder.ok()) break;
          out->comove_entries.push_back(entry);
        }
      }
      break;
    }
  }
  return decoder.ToStatus("RESULT payload");
}

util::Status DecodeStatsResponse(const std::vector<std::uint8_t>& payload,
                                 StatsMessage* out) {
  persist::Decoder decoder(payload);
  if (payload.empty()) {
    decoder.Fail("STATS payload is empty (a request, not a response)");
    return decoder.ToStatus("STATS payload");
  }
  if (!obs::DecodeStatsSnapshot(decoder, &out->snapshot))
    return decoder.ToStatus("STATS payload");
  // Optional shard-identity tail; its absence means unsharded (shard 0).
  out->shard_id = 0;
  out->shard_map = ShardMapInfo{};
  if (decoder.ok() && decoder.remaining() > 0) {
    const std::uint32_t shard_id = decoder.GetU32();
    const std::uint32_t shard_count = decoder.GetU32();
    const std::uint64_t hash_seed = decoder.GetU64();
    if (decoder.ok() &&
        (shard_count == 0 || shard_count > decoder.remaining() / 4))
      decoder.Fail("STATS shard count exceeds payload size");
    if (decoder.ok() && shard_id >= shard_count)
      decoder.Fail("STATS shard id out of range");
    if (decoder.ok()) {
      out->shard_id = shard_id;
      out->shard_map.shard_count = shard_count;
      out->shard_map.hash_seed = hash_seed;
      out->shard_map.ports.reserve(shard_count);
      for (std::uint32_t i = 0; i < shard_count; ++i) {
        const std::uint32_t port = decoder.GetU32();
        if (port > 0xFFFFu) {
          decoder.Fail("STATS shard port out of range");
          break;
        }
        out->shard_map.ports.push_back(static_cast<std::uint16_t>(port));
      }
    }
  }
  return decoder.ToStatus("STATS payload");
}

// --------------------------------------------------------- stream reassembly

void MessageReader::Append(const std::uint8_t* data, std::size_t size) {
  // Compact the consumed prefix before growing, so a long-lived connection
  // never accumulates released bytes.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

MessageReader::Result MessageReader::Next(WireMessage* out) {
  if (!error_.empty()) return Result::kError;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 9) return Result::kNeedMore;  // magic + type + length
  const std::uint8_t* head = buffer_.data() + consumed_;

  const std::uint32_t magic = GetU32Le(head);
  if (magic != kWireMagic) {
    error_ = "bad frame magic (stream desynchronised or corrupt)";
    return Result::kError;
  }
  const std::uint8_t type = head[4];
  if (!ValidMessageType(type)) {
    error_ = "unknown message type " + std::to_string(type);
    return Result::kError;
  }
  const std::uint32_t length = GetU32Le(head + 5);
  if (length > kMaxPayloadBytes) {
    error_ = "payload length " + std::to_string(length) +
             " exceeds the protocol maximum";
    return Result::kError;
  }
  if (available < kFrameOverheadBytes + length) return Result::kNeedMore;

  const std::uint8_t* payload = head + 9;
  const std::uint32_t expected_crc = GetU32Le(payload + length);
  const std::uint32_t found_crc = FrameCrc(static_cast<MessageType>(type),
                                           payload, length);
  if (expected_crc != found_crc) {
    error_ = "frame CRC mismatch on a " +
             std::string(MessageTypeName(static_cast<MessageType>(type))) +
             " message";
    return Result::kError;
  }

  out->type = static_cast<MessageType>(type);
  out->payload.assign(payload, payload + length);
  consumed_ += kFrameOverheadBytes + length;
  return Result::kMessage;
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "HELLO";
    case MessageType::kWelcome: return "WELCOME";
    case MessageType::kFrames: return "FRAMES";
    case MessageType::kAck: return "ACK";
    case MessageType::kNack: return "NACK";
    case MessageType::kFin: return "FIN";
    case MessageType::kError: return "ERROR";
    case MessageType::kQuery: return "QUERY";
    case MessageType::kResult: return "RESULT";
    case MessageType::kStats: return "STATS";
  }
  return "UNKNOWN";
}

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRank: return "RANK";
    case QueryKind::kTimeline: return "TIMELINE";
    case QueryKind::kComove: return "COMOVE";
  }
  return "UNKNOWN";
}

}  // namespace navarchos::net
