// Deterministic transport fault injection (the chaos harness substrate).
//
// The PR-1 playbook applied to the transport: telemetry::CorruptionModel
// perturbs the *data* with seeded failure modes and records a ground-truth
// manifest; FaultySocket perturbs the *byte transport* the same way. A
// FaultScript declares, per connection, exactly which hostile-link
// behaviours to execute - short reads/writes, EINTR-style interrupt storms,
// a connection reset at a precise cumulative byte offset, periodic stalls,
// and silent half-open death - and a FaultInjector hands scripts to
// successive connections (in dial/accept order) while recording every
// injected fault in a FaultManifest.
//
// Determinism: byte offsets are cumulative over the transport, so kernel
// read/write chunking cannot move a scripted reset; the stop-and-wait wire
// protocol makes the send/receive interleaving itself deterministic. The
// chaos suites exploit this: for every scripted schedule, the served
// results must be bit-identical to the in-process reference.
#ifndef NAVARCHOS_NET_FAULT_INJECTION_H_
#define NAVARCHOS_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"

/// \file
/// \brief Scripted transport fault injection: FaultScript schedules,
/// FaultySocket (the Transport decorator executing them), FaultInjector
/// (the per-connection script dispenser) and the ground-truth
/// FaultManifest, mirroring telemetry/corruption one layer down.

namespace navarchos::net {

/// The transport failure modes FaultySocket can inject.
enum class FaultKind : int {
  kShortRead = 0,   ///< Reads clamped to a few bytes per call.
  kShortWrite = 1,  ///< Writes clamped to a few bytes per call.
  kInterrupt = 2,   ///< Spurious zero-progress interruption (EINTR storm).
  kStall = 3,       ///< The operation stalls before making progress.
  kReset = 4,       ///< Connection reset at an exact cumulative byte offset.
  kHalfOpen = 5,    ///< Silent death: writes vanish, reads never return.
};

/// Display name of a fault kind ("short_read", "reset", ...).
const char* FaultKindName(FaultKind kind);

/// Number of fault kinds.
inline constexpr int kNumFaultKinds = 6;

/// What one connection's transport does to its byte stream. Zero-valued
/// fields inject nothing, so a default FaultScript is a clean transport.
struct FaultScript {
  /// >0: every Read returns at most this many bytes (short-read regime).
  std::size_t read_chunk = 0;
  /// >0: every Write accepts at most this many bytes (short-write regime).
  std::size_t write_chunk = 0;
  /// >0: every Nth transport operation makes no progress and reports
  /// would-block - the visible effect of an EINTR storm.
  int interrupt_every = 0;
  /// >0: every Nth transport operation stalls for stall_ms first.
  int stall_every = 0;
  /// Stall duration in milliseconds (used when stall_every > 0).
  int stall_ms = 5;
  /// >0: the connection dies with an injected reset once the cumulative
  /// byte count (sent + received) reaches exactly this offset.
  std::uint64_t reset_after_bytes = 0;
  /// >0: silent half-open death once the cumulative byte count reaches
  /// this offset - writes pretend to succeed, reads never complete. Only
  /// deadlines (client) or idle reaping (server) can detect it.
  std::uint64_t half_open_after_bytes = 0;

  /// True when every field is zero: the script is a clean passthrough.
  bool Inactive() const;

  /// Human-readable one-line summary ("reset@97 short_read(3)" style).
  std::string Describe() const;
};

/// One injected fault, attributed to its connection and byte offset.
struct FaultEvent {
  int connection = 0;          ///< Dial/accept index of the connection.
  FaultKind kind = FaultKind::kReset;  ///< What was injected.
  std::uint64_t offset = 0;    ///< Cumulative transport bytes at injection.
};

/// Ground truth of everything a FaultInjector's transports injected.
struct FaultManifest {
  std::vector<FaultEvent> events;  ///< In injection order.

  /// Number of injected faults of `kind`. Clamp-style regimes (short
  /// reads/writes) are recorded once per connection, not once per call.
  std::size_t CountOf(FaultKind kind) const;

  /// Total injected faults.
  std::size_t Total() const { return events.size(); }
};

/// Hands one FaultScript to each successive connection and collects the
/// manifest. Connections beyond the script list get clean transports, so
/// every scripted run terminates. Thread-safe: the server's serving thread
/// and the client's ingest thread may both open connections through one
/// injector.
class FaultInjector {
 public:
  /// Scripts for connections 0, 1, ... in open order.
  explicit FaultInjector(std::vector<FaultScript> scripts);

  /// A TransportFactory wiring this injector into a ServerConfig or
  /// ClientConfig. The injector must outlive every transport it wraps.
  TransportFactory Factory();

  /// Copy of the manifest so far (thread-safe snapshot).
  FaultManifest manifest() const;

  /// Connections opened through the factory so far.
  int connections_opened() const;

 private:
  friend class FaultySocket;

  /// Appends one injected-fault record (called by FaultySocket).
  void Record(const FaultEvent& event);

  mutable std::mutex mu_;
  const std::vector<FaultScript> scripts_;
  int next_connection_ = 0;
  FaultManifest manifest_;
};

/// Transport decorator executing one FaultScript over an inner transport.
/// Single-threaded like every Transport; the shared FaultInjector only
/// sees locked manifest appends.
class FaultySocket final : public Transport {
 public:
  /// Wraps `inner`, executing `script`; `connection` labels manifest
  /// entries and `recorder` (may be null) collects them.
  FaultySocket(std::unique_ptr<Transport> inner, const FaultScript& script,
               int connection, FaultInjector* recorder);

  IoStatus Read(std::uint8_t* buffer, std::size_t capacity,
                std::size_t* received, std::string* error) override;
  IoStatus Write(const std::uint8_t* data, std::size_t size,
                 std::size_t* written, std::string* error) override;
  int fd() const override { return inner_->fd(); }
  bool valid() const override { return !reset_ && inner_->valid(); }
  void Close() override { inner_->Close(); }

 private:
  /// Shared interrupt/stall/reset/half-open gate run before each
  /// operation; returns false when the op must not touch the inner
  /// transport (the IoStatus to surface is in `*status`).
  bool PreOp(IoStatus* status, std::string* error);

  /// Bytes the current op may still move before the reset boundary.
  std::size_t CapToResetBoundary(std::size_t want) const;

  void RecordOnce(bool* flag, FaultKind kind);

  std::unique_ptr<Transport> inner_;
  const FaultScript script_;
  const int connection_;
  FaultInjector* const recorder_;

  std::uint64_t bytes_ = 0;  ///< Cumulative bytes moved (both directions).
  std::uint64_t ops_ = 0;    ///< Transport operations attempted.
  bool reset_ = false;       ///< The scripted reset has fired.
  bool half_open_ = false;   ///< The scripted half-open death has begun.
  bool recorded_short_read_ = false;
  bool recorded_short_write_ = false;
  bool recorded_half_open_ = false;
};

/// A seeded corpus of `count` fault scripts for sweep-style harnesses:
/// deterministic in `seed`, mixing resets at varied offsets, short-IO
/// regimes, interrupt storms and stalls (never half-open death, which
/// needs client deadlines to terminate).
std::vector<FaultScript> SeededFaultScripts(std::uint64_t seed, int count);

}  // namespace navarchos::net

#endif  // NAVARCHOS_NET_FAULT_INJECTION_H_
