#include "net/ingest_client.h"

#include <chrono>
#include <thread>
#include <utility>

namespace navarchos::net {

namespace {

constexpr std::size_t kRecvChunkBytes = 64 * 1024;

}  // namespace

IngestClient::IngestClient(const ClientConfig& config) : config_(config) {}

IngestClient::~IngestClient() { Abort(); }

util::Status IngestClient::Connect(const std::vector<std::int32_t>& vehicle_ids,
                                   bool resume) {
  util::Status status;
  int backoff_ms = config_.backoff_ms;
  for (int attempt = 0; attempt < config_.connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    ++stats_.connect_attempts;
    status = ConnectTcp(config_.host, config_.port, &socket_);
    if (status.ok()) break;
  }
  if (!status.ok())
    return util::Status::Error("connect to " + config_.host + ":" +
                               std::to_string(config_.port) + " failed after " +
                               std::to_string(config_.connect_attempts) +
                               " attempts: " + status.message());

  HelloMessage hello;
  hello.session_id = config_.session_id;
  hello.resume = resume;
  hello.vehicle_ids = vehicle_ids;
  const auto bytes = EncodeHello(hello);
  status = socket_.SendAll(bytes.data(), bytes.size());
  if (!status.ok()) return status;

  // Block for WELCOME (or ERROR).
  std::vector<std::uint8_t> buffer(kRecvChunkBytes);
  while (true) {
    WireMessage message;
    const MessageReader::Result result = reader_.Next(&message);
    if (result == MessageReader::Result::kError)
      return util::Status::Error("corrupt server stream: " + reader_.error());
    if (result == MessageReader::Result::kMessage) {
      if (message.type == MessageType::kError) {
        ErrorMessage error;
        (void)DecodeError(message.payload, &error);
        return util::Status::Error("server refused HELLO: " + error.message);
      }
      if (message.type != MessageType::kWelcome)
        return util::Status::Error(std::string("expected WELCOME, got ") +
                                   MessageTypeName(message.type));
      WelcomeMessage welcome;
      status = DecodeWelcome(message.payload, &welcome);
      if (!status.ok()) return status;
      next_seq_ = welcome.next_seq;
      acked_through_ = welcome.next_seq;
      pending_.first_seq = next_seq_;
      pending_.frames.clear();
      return util::Status();
    }
    std::size_t received = 0;
    std::string error;
    const Socket::RecvResult recv =
        socket_.Recv(buffer.data(), buffer.size(), &received, &error);
    if (recv == Socket::RecvResult::kEof)
      return util::Status::Error("server closed the connection before WELCOME");
    if (recv == Socket::RecvResult::kError) return util::Status::Error(error);
    reader_.Append(buffer.data(), received);
  }
}

util::Status IngestClient::Send(const telemetry::SensorFrame& frame) {
  if (!socket_.valid()) return util::Status::Error("client is not connected");
  if (pending_.frames.empty()) pending_.first_seq = next_seq_;
  pending_.frames.push_back(frame);
  ++next_seq_;
  ++stats_.frames_sent;
  if (pending_.frames.size() >= config_.batch_frames) return Flush();
  return util::Status();
}

util::Status IngestClient::Flush() {
  if (pending_.frames.empty()) return util::Status();
  if (!socket_.valid()) return util::Status::Error("client is not connected");
  const auto bytes = EncodeFrames(pending_);
  util::Status status = socket_.SendAll(bytes.data(), bytes.size());
  if (!status.ok()) return status;
  ++stats_.batches_sent;
  const std::uint64_t target = pending_.first_seq + pending_.frames.size();
  pending_.frames.clear();
  return AwaitAck(target);
}

util::Status IngestClient::Finish() {
  util::Status status = Flush();
  if (!status.ok()) return status;
  const FinMessage fin{next_seq_};
  const auto bytes = EncodeFin(fin);
  status = socket_.SendAll(bytes.data(), bytes.size());
  if (!status.ok()) return status;
  status = AwaitAck(next_seq_);
  socket_.Close();
  return status;
}

void IngestClient::Abort() { socket_.Close(); }

util::Status IngestClient::AwaitAck(std::uint64_t target) {
  std::vector<std::uint8_t> buffer(kRecvChunkBytes);
  while (acked_through_ < target) {
    WireMessage message;
    const MessageReader::Result result = reader_.Next(&message);
    if (result == MessageReader::Result::kError)
      return util::Status::Error("corrupt server stream: " + reader_.error());
    if (result == MessageReader::Result::kMessage) {
      switch (message.type) {
        case MessageType::kAck: {
          AckMessage ack;
          const util::Status status = DecodeAck(message.payload, &ack);
          if (!status.ok()) return status;
          acked_through_ = ack.through_seq;
          break;
        }
        case MessageType::kNack: {
          NackMessage nack;
          const util::Status status = DecodeNack(message.payload, &nack);
          if (!status.ok()) return status;
          nacks_.push_back(nack);
          break;
        }
        case MessageType::kError: {
          ErrorMessage error;
          (void)DecodeError(message.payload, &error);
          return util::Status::Error("server error: " + error.message);
        }
        default:
          return util::Status::Error(std::string("unexpected ") +
                                     MessageTypeName(message.type) +
                                     " while awaiting ACK");
      }
      continue;
    }
    std::size_t received = 0;
    std::string error;
    const Socket::RecvResult recv =
        socket_.Recv(buffer.data(), buffer.size(), &received, &error);
    if (recv == Socket::RecvResult::kEof)
      return util::Status::Error(
          "server closed the connection while an ACK was outstanding");
    if (recv == Socket::RecvResult::kError) return util::Status::Error(error);
    reader_.Append(buffer.data(), received);
  }
  return util::Status();
}

}  // namespace navarchos::net
