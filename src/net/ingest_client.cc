#include "net/ingest_client.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "util/check.h"

namespace navarchos::net {

namespace {

constexpr std::size_t kRecvChunkBytes = 64 * 1024;

}  // namespace

IngestClient::IngestClient(const ClientConfig& config)
    : config_(config), backoff_rng_(config.jitter_seed) {}

IngestClient::~IngestClient() { Abort(); }

IngestClient::OpBudget IngestClient::StartOp() const {
  OpBudget budget;
  budget.reconnects_left = config_.max_reconnects;
  if (config_.total_deadline_ms > 0) {
    budget.has_total = true;
    budget.total_deadline =
        Clock::now() + std::chrono::milliseconds(config_.total_deadline_ms);
  }
  return budget;
}

bool IngestClient::NextWaitDeadline(const OpBudget& budget,
                                    int* deadline_ms) const {
  *deadline_ms = config_.op_deadline_ms > 0 ? config_.op_deadline_ms : 0;
  if (!budget.has_total) return true;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      budget.total_deadline - Clock::now());
  if (left.count() <= 0) return false;
  const int total_left = static_cast<int>(
      std::min<std::int64_t>(left.count(), std::numeric_limits<int>::max()));
  *deadline_ms = *deadline_ms > 0 ? std::min(*deadline_ms, total_left)
                                  : total_left;
  return true;
}

int IngestClient::BackoffDelayMs(int attempt) {
  if (attempt <= 0) return 0;
  // Double in 64-bit and clamp: the old `backoff_ms *= 2` int walk
  // overflowed into negative (i.e. zero) waits after ~25 attempts,
  // turning a patient retry loop into a hot one.
  std::int64_t ceiling = config_.backoff_ms;
  for (int i = 1; i < attempt && ceiling < config_.max_backoff_ms; ++i)
    ceiling *= 2;
  ceiling = std::min<std::int64_t>(ceiling, config_.max_backoff_ms);
  if (ceiling <= 0) return 0;
  // Decorrelating jitter over [ceiling/2, ceiling]: a fleet of clients
  // reconnecting after one server blip spreads out instead of thundering
  // back in lockstep, while any single client stays reproducible.
  return static_cast<int>(backoff_rng_.UniformInt(ceiling / 2, ceiling));
}

util::Status IngestClient::SendWithin(OpBudget* budget,
                                      const std::vector<std::uint8_t>& bytes) {
  int deadline_ms = 0;
  if (!NextWaitDeadline(*budget, &deadline_ms))
    return util::Status::Error("total deadline exceeded");
  return SendAllWithin(transport_.get(), bytes.data(), bytes.size(),
                       deadline_ms);
}

util::Status IngestClient::NextMessage(OpBudget* budget, WireMessage* out,
                                       bool* fatal) {
  int deadline_ms = 0;
  if (!NextWaitDeadline(*budget, &deadline_ms)) {
    *fatal = true;
    return util::Status::Error("total deadline exceeded");
  }
  const Clock::time_point start = Clock::now();
  std::vector<std::uint8_t> buffer(kRecvChunkBytes);
  while (true) {
    const MessageReader::Result result = reader_.Next(out);
    if (result == MessageReader::Result::kError)
      return util::Status::Error("corrupt server stream: " + reader_.error());
    if (result == MessageReader::Result::kMessage) return util::Status();

    int remaining_ms = deadline_ms;
    if (deadline_ms > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now() - start);
      remaining_ms = deadline_ms - static_cast<int>(elapsed.count());
      if (remaining_ms <= 0)
        return util::Status::Error("deadline expired waiting for the server");
    }
    if (!WaitReady(*transport_, /*for_write=*/false, remaining_ms))
      return util::Status::Error("deadline expired waiting for the server");
    std::size_t received = 0;
    std::string error;
    switch (transport_->Read(buffer.data(), buffer.size(), &received, &error)) {
      case IoStatus::kOk:
        reader_.Append(buffer.data(), received);
        break;
      case IoStatus::kWouldBlock:
        break;  // readiness was a hint (fault layer); re-check the deadline
      case IoStatus::kEof:
        return util::Status::Error("server closed the connection");
      case IoStatus::kError:
        return util::Status::Error(error);
    }
  }
}

util::Status IngestClient::ConnectOnce(OpBudget* budget, bool resume,
                                       bool adopt_cursor, bool* fatal) {
  *fatal = false;
  int deadline_ms = 0;
  if (!NextWaitDeadline(*budget, &deadline_ms)) {
    *fatal = true;
    return util::Status::Error("total deadline exceeded");
  }
  int connect_timeout_ms = config_.connect_timeout_ms;
  if (deadline_ms > 0 &&
      (connect_timeout_ms <= 0 || deadline_ms < connect_timeout_ms))
    connect_timeout_ms = deadline_ms;

  ++stats_.connect_attempts;
  Socket socket;
  util::Status status =
      ConnectTcp(config_.host, config_.port, &socket, connect_timeout_ms);
  if (!status.ok()) return status;
  transport_ = config_.transport_factory
                   ? config_.transport_factory(std::move(socket))
                   : MakeSocketTransport(std::move(socket));
  // A fresh connection is a fresh byte stream: drop any half-reassembled
  // message (and latched framing error) of the previous one.
  reader_ = MessageReader();

  HelloMessage hello;
  hello.session_id = config_.session_id;
  hello.resume = resume;
  hello.vehicle_ids = vehicle_ids_;
  hello.fleet_order = fleet_order_;
  status = SendWithin(budget, EncodeHello(hello));
  if (!status.ok()) {
    transport_->Close();
    return status;
  }

  WireMessage message;
  status = NextMessage(budget, &message, fatal);
  if (!status.ok()) {
    transport_->Close();
    return status;
  }
  if (message.type == MessageType::kError) {
    ErrorMessage error;
    (void)DecodeError(message.payload, &error);
    transport_->Close();
    // The server refusing HELLO (draining, bound session, bad version) is
    // a decision, not a transport fault: healing must not hammer it.
    *fatal = true;
    return util::Status::Error("server refused HELLO: " + error.message);
  }
  if (message.type != MessageType::kWelcome) {
    transport_->Close();
    return util::Status::Error(std::string("expected WELCOME, got ") +
                               MessageTypeName(message.type));
  }
  WelcomeMessage welcome;
  status = DecodeWelcome(message.payload, &welcome);
  if (!status.ok()) {
    transport_->Close();
    return status;
  }
  // The server's cursor: everything below it is decided. A healing
  // reconnect must NOT rewind next_seq_ - the frames in [cursor,
  // next_seq_) are exactly the retained in-flight batch being resent.
  acked_through_ = welcome.next_seq;
  shard_map_ = welcome.shard_map;
  if (adopt_cursor) next_seq_ = welcome.next_seq;
  return util::Status();
}

util::Status IngestClient::Connect(const std::vector<std::int32_t>& vehicle_ids,
                                   bool resume) {
  return Connect(vehicle_ids, {}, resume);
}

util::Status IngestClient::Connect(
    const std::vector<std::int32_t>& vehicle_ids,
    const std::vector<std::uint32_t>& fleet_order, bool resume) {
  NAVARCHOS_CHECK(fleet_order.empty() ||
                  fleet_order.size() == vehicle_ids.size());
  vehicle_ids_ = vehicle_ids;
  fleet_order_ = fleet_order;
  OpBudget budget = StartOp();
  util::Status status;
  for (int attempt = 0; attempt < config_.connect_attempts; ++attempt) {
    const int delay_ms = BackoffDelayMs(attempt);
    if (delay_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    bool fatal = false;
    status = ConnectOnce(&budget, resume, /*adopt_cursor=*/true, &fatal);
    if (status.ok()) {
      connected_once_ = true;
      pending_.first_seq = next_seq_;
      pending_.frames.clear();
      return util::Status();
    }
    if (fatal) return status;
  }
  return util::Status::Error("connect to " + config_.host + ":" +
                             std::to_string(config_.port) + " failed after " +
                             std::to_string(config_.connect_attempts) +
                             " attempts: " + status.message());
}

bool IngestClient::Heal(OpBudget* budget, util::Status* status) {
  if (!connected_once_) return false;
  if (transport_) transport_->Close();
  for (int attempt = 0;; ++attempt) {
    if (budget->reconnects_left <= 0) {
      *status = util::Status::Error("reconnect budget exhausted; last error: " +
                                    status->message());
      return false;
    }
    --budget->reconnects_left;
    const int delay_ms = BackoffDelayMs(attempt);
    if (delay_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    bool fatal = false;
    const util::Status attempt_status =
        ConnectOnce(budget, /*resume=*/true, /*adopt_cursor=*/false, &fatal);
    if (attempt_status.ok()) {
      ++stats_.reconnects;
      return true;
    }
    if (fatal) {
      *status = attempt_status;
      return false;
    }
  }
}

util::Status IngestClient::Send(const telemetry::SensorFrame& frame) {
  if (!transport_ || !transport_->valid())
    return util::Status::Error("client is not connected");
  // A sharded session (fleet seqs in flight) must not interleave plain
  // sends: the FRAMES tail is all-or-nothing per batch.
  NAVARCHOS_CHECK(pending_.fleet_seqs.empty());
  if (pending_.frames.empty()) pending_.first_seq = next_seq_;
  pending_.frames.push_back(frame);
  ++next_seq_;
  ++stats_.frames_sent;
  if (pending_.frames.size() >= config_.batch_frames) return Flush();
  return util::Status();
}

util::Status IngestClient::Send(const telemetry::SensorFrame& frame,
                                std::uint64_t fleet_seq) {
  if (!transport_ || !transport_->valid())
    return util::Status::Error("client is not connected");
  NAVARCHOS_CHECK(pending_.fleet_seqs.size() == pending_.frames.size());
  if (pending_.frames.empty()) pending_.first_seq = next_seq_;
  pending_.frames.push_back(frame);
  pending_.fleet_seqs.push_back(fleet_seq);
  ++next_seq_;
  ++stats_.frames_sent;
  if (pending_.frames.size() >= config_.batch_frames) return Flush();
  return util::Status();
}

util::Status IngestClient::Flush() {
  if (pending_.frames.empty()) return util::Status();
  if (!transport_ || !transport_->valid())
    return util::Status::Error("client is not connected");
  inflight_ = std::move(pending_);
  pending_ = FramesMessage{};
  OpBudget budget = StartOp();
  const util::Status status = FlushInflight(&budget);
  inflight_ = FramesMessage{};
  return status;
}

util::Status IngestClient::FlushInflight(OpBudget* budget) {
  const std::uint64_t target = inflight_.first_seq + inflight_.frames.size();
  while (acked_through_ < target) {
    // Rewind to the server's cursor: frames below it were decided on a
    // previous connection; resending them would only be skipped as
    // duplicates, so drop them here and keep the wire minimal.
    if (inflight_.first_seq < acked_through_) {
      const std::size_t decided =
          static_cast<std::size_t>(acked_through_ - inflight_.first_seq);
      inflight_.frames.erase(inflight_.frames.begin(),
                             inflight_.frames.begin() +
                                 static_cast<std::ptrdiff_t>(decided));
      // The fleet-seq tail stays parallel to the frames through a rewind.
      if (!inflight_.fleet_seqs.empty())
        inflight_.fleet_seqs.erase(inflight_.fleet_seqs.begin(),
                                   inflight_.fleet_seqs.begin() +
                                       static_cast<std::ptrdiff_t>(decided));
      inflight_.first_seq = acked_through_;
    }
    util::Status status = SendWithin(budget, EncodeFrames(inflight_));
    bool fatal = false;
    if (status.ok()) {
      ++stats_.batches_sent;
      status = AwaitAck(budget, target, /*require_ack_message=*/false, &fatal);
    }
    if (status.ok()) break;
    if (fatal) return status;
    if (!Heal(budget, &status)) return status;
  }
  return util::Status();
}

util::Status IngestClient::Finish() {
  util::Status status = Flush();
  if (!status.ok()) return status;
  if (!transport_ || !transport_->valid())
    return util::Status::Error("client is not connected");
  OpBudget budget = StartOp();
  while (true) {
    const FinMessage fin{next_seq_};
    status = SendWithin(&budget, EncodeFin(fin));
    bool fatal = false;
    if (status.ok()) {
      // Insist on a fresh ACK *message*, not just cursor coverage: after a
      // heal the cursor already covers next_seq_, but only the FIN ACK
      // proves the server actually recorded the finish (a half-open link
      // swallows the FIN silently). Retransmitted FINs are safe - the
      // server counts a session's finish once.
      status = AwaitAck(&budget, next_seq_, /*require_ack_message=*/true,
                        &fatal);
    }
    if (status.ok()) break;
    if (fatal) return status;
    if (!Heal(&budget, &status)) return status;
  }
  transport_->Close();
  return util::Status();
}

void IngestClient::Abort() {
  if (transport_) transport_->Close();
}

util::Status IngestClient::RunQuery(const QueryMessage& query,
                                    std::vector<ResultMessage>* pages) {
  pages->clear();
  OpBudget budget = StartOp();
  // When no ingest connection is live, dial a dedicated one without HELLO:
  // queries are stateless reads, so they neither need nor want a session.
  const bool ephemeral = !transport_ || !transport_->valid();
  if (ephemeral) {
    int deadline_ms = 0;
    if (!NextWaitDeadline(budget, &deadline_ms))
      return util::Status::Error("total deadline exceeded");
    int connect_timeout_ms = config_.connect_timeout_ms;
    if (deadline_ms > 0 &&
        (connect_timeout_ms <= 0 || deadline_ms < connect_timeout_ms))
      connect_timeout_ms = deadline_ms;
    ++stats_.connect_attempts;
    Socket socket;
    util::Status status =
        ConnectTcp(config_.host, config_.port, &socket, connect_timeout_ms);
    if (!status.ok()) return status;
    transport_ = config_.transport_factory
                     ? config_.transport_factory(std::move(socket))
                     : MakeSocketTransport(std::move(socket));
    reader_ = MessageReader();
  }

  util::Status status = SendWithin(&budget, EncodeQuery(query));
  while (status.ok()) {
    WireMessage message;
    bool fatal = false;
    status = NextMessage(&budget, &message, &fatal);
    if (!status.ok()) break;
    if (message.type == MessageType::kError) {
      ErrorMessage error;
      (void)DecodeError(message.payload, &error);
      status = util::Status::Error("server error: " + error.message);
      break;
    }
    if (message.type != MessageType::kResult) {
      status = util::Status::Error(std::string("unexpected ") +
                                   MessageTypeName(message.type) +
                                   " while awaiting RESULT");
      break;
    }
    ResultMessage page;
    status = DecodeResult(message.payload, &page);
    if (!status.ok()) break;
    if (page.kind != query.kind) {
      status = util::Status::Error(
          std::string("RESULT answers ") + QueryKindName(page.kind) +
          " but the query was " + QueryKindName(query.kind));
      break;
    }
    if (page.page != pages->size()) {
      status = util::Status::Error(
          "RESULT pages out of order: got page " + std::to_string(page.page) +
          ", expected " + std::to_string(pages->size()));
      break;
    }
    const bool last = page.last;
    pages->push_back(std::move(page));
    if (last) break;
  }
  if (ephemeral) transport_->Close();
  return status;
}

util::Status IngestClient::QueryRank(const history::RankQuery& query,
                                     history::RankResult* out) {
  QueryMessage message;
  message.kind = QueryKind::kRank;
  message.rank = query;
  std::vector<ResultMessage> pages;
  util::Status status = RunQuery(message, &pages);
  if (!status.ok()) return status;
  out->entries.clear();
  for (const ResultMessage& page : pages)
    out->entries.insert(out->entries.end(), page.rank_entries.begin(),
                        page.rank_entries.end());
  return util::Status();
}

util::Status IngestClient::QueryTimeline(const history::TimelineQuery& query,
                                         history::TimelineResult* out) {
  QueryMessage message;
  message.kind = QueryKind::kTimeline;
  message.timeline = query;
  std::vector<ResultMessage> pages;
  util::Status status = RunQuery(message, &pages);
  if (!status.ok()) return status;
  out->records.clear();
  for (const ResultMessage& page : pages)
    out->records.insert(out->records.end(), page.timeline_records.begin(),
                        page.timeline_records.end());
  return util::Status();
}

util::Status IngestClient::QueryComove(const history::ComoveQuery& query,
                                       history::ComoveResult* out) {
  QueryMessage message;
  message.kind = QueryKind::kComove;
  message.comove = query;
  std::vector<ResultMessage> pages;
  util::Status status = RunQuery(message, &pages);
  if (!status.ok()) return status;
  out->entries.clear();
  if (!pages.empty()) {
    out->vehicle_id = pages.front().comove_vehicle_id;
    out->alarm_ts = pages.front().comove_alarm_ts;
  }
  for (const ResultMessage& page : pages)
    out->entries.insert(out->entries.end(), page.comove_entries.begin(),
                        page.comove_entries.end());
  return util::Status();
}

util::Status IngestClient::QueryStats(StatsMessage* out) {
  OpBudget budget = StartOp();
  // Like RunQuery: a scrape is a stateless read, so when no ingest
  // connection is live it rides a short-lived dedicated dial with no HELLO.
  const bool ephemeral = !transport_ || !transport_->valid();
  if (ephemeral) {
    int deadline_ms = 0;
    if (!NextWaitDeadline(budget, &deadline_ms))
      return util::Status::Error("total deadline exceeded");
    int connect_timeout_ms = config_.connect_timeout_ms;
    if (deadline_ms > 0 &&
        (connect_timeout_ms <= 0 || deadline_ms < connect_timeout_ms))
      connect_timeout_ms = deadline_ms;
    ++stats_.connect_attempts;
    Socket socket;
    util::Status status =
        ConnectTcp(config_.host, config_.port, &socket, connect_timeout_ms);
    if (!status.ok()) return status;
    transport_ = config_.transport_factory
                     ? config_.transport_factory(std::move(socket))
                     : MakeSocketTransport(std::move(socket));
    reader_ = MessageReader();
  }

  util::Status status = SendWithin(&budget, EncodeStatsRequest());
  while (status.ok()) {
    WireMessage message;
    bool fatal = false;
    status = NextMessage(&budget, &message, &fatal);
    if (!status.ok()) break;
    if (message.type == MessageType::kError) {
      ErrorMessage error;
      (void)DecodeError(message.payload, &error);
      status = util::Status::Error("server error: " + error.message);
      break;
    }
    if (message.type != MessageType::kStats) {
      status = util::Status::Error(std::string("unexpected ") +
                                   MessageTypeName(message.type) +
                                   " while awaiting STATS");
      break;
    }
    status = DecodeStatsResponse(message.payload, out);
    break;
  }
  if (ephemeral) transport_->Close();
  return status;
}

util::Status IngestClient::AwaitAck(OpBudget* budget, std::uint64_t target,
                                    bool require_ack_message, bool* fatal) {
  *fatal = false;
  bool got_ack = false;
  while (acked_through_ < target || (require_ack_message && !got_ack)) {
    WireMessage message;
    util::Status status = NextMessage(budget, &message, fatal);
    if (!status.ok()) return status;
    switch (message.type) {
      case MessageType::kAck: {
        AckMessage ack;
        status = DecodeAck(message.payload, &ack);
        if (!status.ok()) return status;
        acked_through_ = std::max(acked_through_, ack.through_seq);
        got_ack = ack.through_seq >= target;
        break;
      }
      case MessageType::kNack: {
        NackMessage nack;
        status = DecodeNack(message.payload, &nack);
        if (!status.ok()) return status;
        nacks_.push_back(nack);
        break;
      }
      case MessageType::kError: {
        ErrorMessage error;
        (void)DecodeError(message.payload, &error);
        *fatal = true;
        return util::Status::Error("server error: " + error.message);
      }
      default:
        *fatal = true;
        return util::Status::Error(std::string("unexpected ") +
                                   MessageTypeName(message.type) +
                                   " while awaiting ACK");
    }
  }
  return util::Status();
}

}  // namespace navarchos::net
