#include "net/ingest_server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "util/check.h"

namespace navarchos::net {

namespace {

/// Receive buffer of one read call; frames reassemble across reads, so the
/// size only trades syscalls against memory.
constexpr std::size_t kRecvChunkBytes = 64 * 1024;

/// Flushed prefixes beyond this are compacted away so a long-lived slow
/// (but not yet disconnect-worthy) consumer cannot pin retired bytes.
constexpr std::size_t kOutboundCompactBytes = 64 * 1024;

}  // namespace

IngestServer::IngestServer(service::FleetService* service,
                           const ServerConfig& config)
    : service_(service), config_(config) {
  NAVARCHOS_CHECK(service != nullptr);
  // All server counters live in the served service's registry, so one
  // STATS snapshot covers the full stack and ServerStats is just a view.
  obs::MetricsRegistry* registry = service->metrics();
  counters_.connections_accepted =
      registry->counter("server.connections_accepted");
  counters_.sessions_started = registry->counter("server.sessions_started");
  counters_.resumes = registry->counter("server.resumes");
  counters_.frames_received = registry->counter("server.frames_received");
  counters_.frames_admitted = registry->counter("server.frames_admitted");
  counters_.frames_shed = registry->counter("server.frames_shed");
  counters_.duplicates_skipped =
      registry->counter("server.duplicates_skipped");
  counters_.protocol_errors = registry->counter("server.protocol_errors");
  counters_.slow_consumer_disconnects =
      registry->counter("server.slow_consumer_disconnects");
  counters_.idle_reaps = registry->counter("server.idle_reaps");
  counters_.sessions_expired = registry->counter("server.sessions_expired");
  counters_.queries_served = registry->counter("server.queries_served");
  counters_.stats_served = registry->counter("server.stats_served");
  counters_.session_bytes_in = registry->counter("server.session_bytes_in");
  counters_.session_bytes_out =
      registry->counter("server.session_bytes_out");
}

IngestServer::~IngestServer() { Stop(); }

util::Status IngestServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return util::Status::Error("server already running");
  }
  util::Status status = listener_.Bind(config_.bind_address, config_.port);
  if (!status.ok()) return status;
  if (::pipe(wake_pipe_) != 0) {
    listener_.Close();
    return util::Status::Error("cannot create wake pipe");
  }
  stop_requested_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = true;
  }
  thread_ = std::thread([this]() { Serve(); });
  return util::Status();
}

void IngestServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  // Latch the stop flag first: the serving thread polls it per admitted
  // frame, so even a thread blocked behind kBlock lane backpressure
  // abandons its backlog as soon as the current admission completes.
  stop_requested_.store(true, std::memory_order_relaxed);
  // Wake the poll loop; the serving thread exits at the top of its cycle.
  const std::uint8_t byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  thread_.join();
  connections_.clear();
  listener_.Close();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

std::uint16_t IngestServer::port() const { return listener_.port(); }

void IngestServer::set_shard_map(const ShardMapInfo& map) {
  std::lock_guard<std::mutex> lock(mu_);
  shard_map_ = map;
}

void IngestServer::set_shard_id(std::uint32_t shard_id) {
  std::lock_guard<std::mutex> lock(mu_);
  shard_id_ = shard_id;
}

ServerStats IngestServer::stats() const {
  ServerStats stats;
  stats.connections_accepted = counters_.connections_accepted->value();
  stats.sessions_started = counters_.sessions_started->value();
  stats.resumes = counters_.resumes->value();
  stats.frames_received = counters_.frames_received->value();
  stats.frames_admitted = counters_.frames_admitted->value();
  stats.frames_shed = counters_.frames_shed->value();
  stats.duplicates_skipped = counters_.duplicates_skipped->value();
  stats.protocol_errors = counters_.protocol_errors->value();
  stats.slow_consumer_disconnects =
      counters_.slow_consumer_disconnects->value();
  stats.idle_reaps = counters_.idle_reaps->value();
  stats.sessions_expired = counters_.sessions_expired->value();
  stats.queries_served = counters_.queries_served->value();
  stats.stats_served = counters_.stats_served->value();
  stats.session_bytes_in = counters_.session_bytes_in->value();
  stats.session_bytes_out = counters_.session_bytes_out->value();
  return stats;
}

std::uint64_t IngestServer::finished_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_sessions_;
}

bool IngestServer::WaitForFinishedSessions(std::uint64_t count,
                                           std::int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto reached = [this, count]() { return finished_sessions_ >= count; };
  if (timeout_ms <= 0) {
    finished_cv_.wait(lock, reached);
    return true;
  }
  return finished_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               reached);
}

int IngestServer::PollTimeoutMs() const {
  if (config_.idle_timeout_ms <= 0 && config_.session_retention_ms <= 0)
    return -1;
  bool pending = false;
  Clock::time_point earliest{};
  const auto consider = [&pending, &earliest](Clock::time_point t) {
    if (!pending || t < earliest) earliest = t;
    pending = true;
  };
  if (config_.idle_timeout_ms > 0) {
    for (const auto& conn : connections_)
      if (!conn->closing)
        consider(conn->last_activity +
                 std::chrono::milliseconds(config_.idle_timeout_ms));
  }
  if (config_.session_retention_ms > 0) {
    for (const auto& entry : sessions_)
      if (!entry.second.bound)
        consider(entry.second.last_unbound +
                 std::chrono::milliseconds(config_.session_retention_ms));
  }
  if (!pending) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      earliest - Clock::now());
  return static_cast<int>(std::clamp<std::int64_t>(left.count(), 1, 1000));
}

void IngestServer::ReapIdleAndExpireSessions() {
  const Clock::time_point now = Clock::now();
  if (config_.idle_timeout_ms > 0) {
    const auto deadline = std::chrono::milliseconds(config_.idle_timeout_ms);
    for (auto& conn : connections_) {
      if (conn->closing || now - conn->last_activity < deadline) continue;
      // A half-open peer sends nothing and acknowledges nothing: this
      // reap is the only path that ever frees its connection + binding.
      CloseNow(conn.get());
      counters_.idle_reaps->Increment();
    }
  }
  if (config_.session_retention_ms > 0) {
    const auto retention =
        std::chrono::milliseconds(config_.session_retention_ms);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (!it->second.bound && now - it->second.last_unbound >= retention) {
        it = sessions_.erase(it);
        counters_.sessions_expired->Increment();
      } else {
        ++it;
      }
    }
  }
}

void IngestServer::Serve() {
  std::vector<std::uint8_t> buffer(kRecvChunkBytes);
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) return;
    }

    // Snapshot the polled connection count: the accept block below may
    // append to connections_, and those new entries have no pollfd yet.
    const std::size_t polled = connections_.size();
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : connections_) {
      short events = 0;
      if (!conn->draining) events |= POLLIN;
      if (conn->OutboundPending() > 0) events |= POLLOUT;
      fds.push_back({conn->transport->fd(), events, 0});
    }

    if (::poll(fds.data(), fds.size(), PollTimeoutMs()) < 0) {
      if (errno == EINTR) continue;
      return;  // unrecoverable poll failure; Stop() still joins cleanly
    }

    if (fds[0].revents != 0) continue;  // wake byte: re-check running_

    if (fds[1].revents != 0) {
      Socket accepted;
      if (listener_.Accept(&accepted).ok()) {
        // Not counted yet: connections_accepted counts lazily at the
        // connection's first non-STATS message, so a scrape-only dial
        // cannot perturb the snapshot it reads.
        if (connections_.size() >= config_.max_connections) {
          ErrorMessage refusal{"server connection limit reached"};
          const auto bytes = EncodeError(refusal);
          (void)accepted.SendAll(bytes.data(), bytes.size());
        } else {
          auto conn = std::make_unique<Connection>();
          conn->transport = config_.transport_factory
                                ? config_.transport_factory(std::move(accepted))
                                : MakeSocketTransport(std::move(accepted));
          conn->last_activity = Clock::now();
          connections_.push_back(std::move(conn));
        }
      }
    }

    // Readable/writable connections: fds[2 + i] mirrors connections_[i]
    // for the first `polled` entries only - connections accepted this
    // cycle were never polled and are served from the next cycle on.
    for (std::size_t i = 0; i < polled; ++i) {
      Connection* conn = connections_[i].get();
      const short revents = fds[2 + i].revents;
      if (conn->closing) continue;
      if (conn->OutboundPending() > 0 && revents != 0) FlushOutbound(conn);
      if (conn->closing) continue;
      if (conn->draining) {
        // Read side is done; the connection lives only to drain its final
        // ACK/ERROR. A peer that hangs up early just ends it now.
        if (conn->OutboundPending() == 0 || (revents & (POLLERR | POLLHUP)))
          conn->closing = true;
        continue;
      }
      if ((revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      std::size_t received = 0;
      std::string error;
      const IoStatus result =
          conn->transport->Read(buffer.data(), buffer.size(), &received, &error);
      switch (result) {
        case IoStatus::kOk:
          conn->last_activity = Clock::now();
          conn->reader.Append(buffer.data(), received);
          if (!HandleReadable(conn)) CloseGracefully(conn);
          break;
        case IoStatus::kWouldBlock:
          break;  // poll readiness was a hint (fault layer), not a promise
        case IoStatus::kEof:
        case IoStatus::kError:
          // EOF or reset: the session cursor survives for a later RESUME;
          // an incomplete trailing message is simply discarded (its frames
          // were never decided, so the resume cursor re-requests them).
          CloseNow(conn);
          break;
      }
    }

    ReapIdleAndExpireSessions();

    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& conn) {
                         return conn->closing;
                       }),
        connections_.end());
  }
}

bool IngestServer::HandleReadable(Connection* conn) {
  WireMessage message;
  while (true) {
    if (stop_requested_.load(std::memory_order_relaxed)) return true;
    const MessageReader::Result result = conn->reader.Next(&message);
    if (result == MessageReader::Result::kNeedMore) return true;
    if (result == MessageReader::Result::kError) {
      FailConnection(conn, conn->reader.error());
      return false;
    }
    if (!HandleMessage(conn, message)) return false;
  }
}

bool IngestServer::HandleMessage(Connection* conn, const WireMessage& message) {
  if (message.type != MessageType::kStats) {
    // Lazy accept counting + session byte accounting, both skipping read
    // traffic (STATS here, QUERY below) so scrapes stay self-invisible.
    if (!conn->counted_accept) {
      conn->counted_accept = true;
      counters_.connections_accepted->Increment();
    }
    if (message.type != MessageType::kQuery)
      counters_.session_bytes_in->Add(kFrameOverheadBytes +
                                      message.payload.size());
  }
  switch (message.type) {
    case MessageType::kHello: {
      HelloMessage hello;
      util::Status status = DecodeHello(message.payload, &hello);
      if (!status.ok()) {
        FailConnection(conn, status.message());
        return false;
      }
      if (hello.protocol_version != kProtocolVersion) {
        FailConnection(conn, "unsupported protocol version " +
                                 std::to_string(hello.protocol_version));
        return false;
      }
      if (conn->session != nullptr) {
        FailConnection(conn, "duplicate HELLO on one connection");
        return false;
      }
      const bool known = sessions_.count(hello.session_id) != 0;
      Session& session = sessions_[hello.session_id];
      if (session.bound) {
        // A second connection HELLOing a bound session would interleave
        // cursor updates with the first and break exactly-once admission.
        FailConnection(conn, "session '" + hello.session_id +
                                 "' is already bound to a live connection");
        return false;
      }
      // Register the client's vehicles in its declared order, fixing the
      // serving FleetService's lane order (idempotent on resume). A
      // draining service refuses cleanly instead of aborting the server.
      for (std::size_t i = 0; i < hello.vehicle_ids.size(); ++i) {
        const std::int32_t id = hello.vehicle_ids[i];
        int lane = 0;
        const util::Status registered = service_->TryRegisterVehicle(id, &lane);
        if (!registered.ok()) {
          FailConnection(conn, registered.message());
          return false;
        }
        // Peers that predate the fleet-order tail get the identity
        // mapping: the shard-local lane index IS the fleet order on a
        // single-shard fleet (the only fleet shape legacy peers can talk
        // to).
        if (config_.registration_hook)
          config_.registration_hook(id, !hello.fleet_order.empty()
                                            ? hello.fleet_order[i]
                                            : static_cast<std::uint32_t>(lane));
      }
      session.bound = true;
      conn->session = &session;
      if (known)
        counters_.resumes->Increment();
      else
        counters_.sessions_started->Increment();
      WelcomeMessage welcome;
      welcome.next_seq = session.next_expected;
      {
        std::lock_guard<std::mutex> lock(mu_);
        welcome.shard_map = shard_map_;
      }
      const std::vector<std::uint8_t> bytes = EncodeWelcome(welcome);
      counters_.session_bytes_out->Add(bytes.size());
      QueueBytes(conn, bytes);
      return !conn->closing;
    }

    case MessageType::kFrames: {
      if (conn->session == nullptr) {
        FailConnection(conn, "FRAMES before HELLO");
        return false;
      }
      FramesMessage frames;
      util::Status status = DecodeFrames(message.payload, &frames);
      if (!status.ok()) {
        FailConnection(conn, status.message());
        return false;
      }
      Session& session = *conn->session;
      if (frames.first_seq > session.next_expected) {
        FailConnection(conn, "sequence gap: batch starts at " +
                                 std::to_string(frames.first_seq) +
                                 " but the session expects " +
                                 std::to_string(session.next_expected));
        return false;
      }
      std::uint64_t admitted = 0;
      std::uint64_t shed = 0;
      std::uint64_t duplicates = 0;
      std::size_t decided = 0;
      bool disconnected = false;
      for (std::size_t i = 0; i < frames.frames.size(); ++i) {
        // A Stop() must not wait for the whole backlog: abandon the rest
        // of the batch un-ACKed; the resume cursor re-requests it.
        if (stop_requested_.load(std::memory_order_relaxed)) break;
        const std::uint64_t seq = frames.first_seq + i;
        ++decided;
        if (seq < session.next_expected) {
          // Overlap below the resume cursor: already decided, skip - this
          // is what makes a reconnect admit every frame exactly once.
          ++duplicates;
          continue;
        }
        const service::Admission admission = service_->Ingest(frames.frames[i]);
        session.next_expected = seq + 1;
        if (admission.accepted()) {
          ++admitted;
          // Tail-less (legacy) peers get the identity mapping: on a
          // single-shard fleet the local admission seq IS the fleet seq.
          if (config_.admission_hook)
            config_.admission_hook(admission.vehicle_id, admission.global_seq,
                                   frames.fleet_seqs.empty()
                                       ? admission.global_seq
                                       : frames.fleet_seqs[i]);
        } else {
          ++shed;
          ++session.sheds;
          const NackMessage nack{
              seq, admission.vehicle_id,
              admission.code == service::AdmissionCode::kShedQueueFull
                  ? NackCode::kQueueFull
                  : NackCode::kDraining};
          const std::vector<std::uint8_t> bytes = EncodeNack(nack);
          counters_.session_bytes_out->Add(bytes.size());
          QueueBytes(conn, bytes);
          if (conn->closing) {  // slow consumer disconnected mid-batch
            disconnected = true;
            break;
          }
        }
      }
      // Count even a cut-short batch exactly: everything decided above
      // went through the service, so the wire-side counters must agree
      // with the service's own.
      counters_.frames_received->Add(decided);
      counters_.frames_admitted->Add(admitted);
      counters_.frames_shed->Add(shed);
      counters_.duplicates_skipped->Add(duplicates);
      if (disconnected) return false;
      if (decided < frames.frames.size()) return true;  // stopping
      const AckMessage ack{session.next_expected, session.sheds};
      const std::vector<std::uint8_t> bytes = EncodeAck(ack);
      counters_.session_bytes_out->Add(bytes.size());
      QueueBytes(conn, bytes);
      return !conn->closing;
    }

    case MessageType::kFin: {
      if (conn->session == nullptr) {
        FailConnection(conn, "FIN before HELLO");
        return false;
      }
      FinMessage fin;
      util::Status status = DecodeFin(message.payload, &fin);
      if (!status.ok()) {
        FailConnection(conn, status.message());
        return false;
      }
      Session& session = *conn->session;
      if (fin.total_seq != session.next_expected) {
        FailConnection(conn, "FIN claims " + std::to_string(fin.total_seq) +
                                 " frames but the session decided " +
                                 std::to_string(session.next_expected));
        return false;
      }
      const AckMessage ack{session.next_expected, session.sheds};
      const std::vector<std::uint8_t> bytes = EncodeAck(ack);
      counters_.session_bytes_out->Add(bytes.size());
      QueueBytes(conn, bytes);
      if (!session.finished) {
        session.finished = true;
        std::lock_guard<std::mutex> lock(mu_);
        ++finished_sessions_;
        finished_cv_.notify_all();
      }
      return false;  // orderly close once the final ACK drained
    }

    case MessageType::kQuery: {
      // Queries are stateless reads: no HELLO/session required, so a
      // dashboard can dial, QUERY, collect RESULT pages and hang up
      // without ever touching the ingest cursor machinery.
      QueryMessage query;
      util::Status status = DecodeQuery(message.payload, &query);
      if (!status.ok()) {
        FailConnection(conn, status.message());
        return false;
      }
      return HandleQuery(conn, query);
    }

    case MessageType::kError: {
      ErrorMessage error;
      if (DecodeError(message.payload, &error).ok())
        counters_.protocol_errors->Increment();
      return false;
    }

    case MessageType::kStats:
      return HandleStats(conn, message);

    default:
      FailConnection(conn, std::string("unexpected ") +
                               MessageTypeName(message.type) +
                               " message on the server side");
      return false;
  }
}

bool IngestServer::HandleQuery(Connection* conn, const QueryMessage& query) {
  if (config_.history == nullptr) {
    FailConnection(conn, "history queries are not enabled on this server");
    return false;
  }
  // Answer pages are built fully before queueing: a failed query must be
  // answered with ERROR alone, never a RESULT prefix followed by ERROR.
  std::vector<ResultMessage> pages;
  switch (query.kind) {
    case QueryKind::kRank: {
      history::RankResult result;
      const util::Status status = config_.history->Rank(query.rank, &result);
      if (!status.ok()) {
        FailConnection(conn, status.message());
        return false;
      }
      const std::size_t total = result.entries.size();
      for (std::size_t off = 0; off == 0 || off < total;
           off += kMaxResultEntriesPerPage) {
        ResultMessage page;
        page.kind = QueryKind::kRank;
        page.page = static_cast<std::uint32_t>(pages.size());
        const std::size_t end =
            std::min(total, off + kMaxResultEntriesPerPage);
        page.rank_entries.assign(result.entries.begin() + off,
                                 result.entries.begin() + end);
        page.last = end == total;
        pages.push_back(std::move(page));
      }
      break;
    }
    case QueryKind::kTimeline: {
      history::TimelineResult result;
      const util::Status status =
          config_.history->Timeline(query.timeline, &result);
      if (!status.ok()) {
        FailConnection(conn, status.message());
        return false;
      }
      const std::size_t total = result.records.size();
      for (std::size_t off = 0; off == 0 || off < total;
           off += kMaxResultEntriesPerPage) {
        ResultMessage page;
        page.kind = QueryKind::kTimeline;
        page.page = static_cast<std::uint32_t>(pages.size());
        const std::size_t end =
            std::min(total, off + kMaxResultEntriesPerPage);
        page.timeline_records.assign(result.records.begin() + off,
                                     result.records.begin() + end);
        page.last = end == total;
        pages.push_back(std::move(page));
      }
      break;
    }
    case QueryKind::kComove: {
      history::ComoveResult result;
      const util::Status status =
          config_.history->Comove(query.comove, &result);
      if (!status.ok()) {
        FailConnection(conn, status.message());
        return false;
      }
      const std::size_t total = result.entries.size();
      for (std::size_t off = 0; off == 0 || off < total;
           off += kMaxResultEntriesPerPage) {
        ResultMessage page;
        page.kind = QueryKind::kComove;
        page.page = static_cast<std::uint32_t>(pages.size());
        page.comove_vehicle_id = result.vehicle_id;
        page.comove_alarm_ts = result.alarm_ts;
        const std::size_t end =
            std::min(total, off + kMaxResultEntriesPerPage);
        page.comove_entries.assign(result.entries.begin() + off,
                                   result.entries.begin() + end);
        page.last = end == total;
        pages.push_back(std::move(page));
      }
      break;
    }
  }
  for (const ResultMessage& page : pages) {
    QueueBytes(conn, EncodeResult(page));
    if (conn->closing) return false;  // slow consumer mid-reply
  }
  counters_.queries_served->Increment();
  return !conn->closing;
}

bool IngestServer::HandleStats(Connection* conn, const WireMessage& message) {
  if (!message.payload.empty()) {
    FailConnection(conn, "STATS request must carry an empty payload");
    return false;
  }
  StatsMessage response;
  // The snapshot covers the whole stack (service, sink, pool, ensemble,
  // history and these server counters) because they all live in the
  // served service's registry.
  response.snapshot = service_->SnapshotStats();
  {
    std::lock_guard<std::mutex> lock(mu_);
    response.shard_id = shard_id_;
    response.shard_map = shard_map_;
  }
  QueueBytes(conn, EncodeStatsResponse(response));
  // After the snapshot, so the scrape that bumps it never reports itself.
  counters_.stats_served->Increment();
  return !conn->closing;
}

void IngestServer::QueueBytes(Connection* conn,
                              const std::vector<std::uint8_t>& bytes) {
  if (conn->closing || !conn->transport->valid()) return;
  conn->outbound.insert(conn->outbound.end(), bytes.begin(), bytes.end());
  FlushOutbound(conn);
  if (conn->closing) return;
  if (conn->OutboundPending() > config_.max_outbound_bytes) {
    // The peer stopped reading while the server still owes it this much:
    // a blocking send here is exactly how a slow consumer would wedge the
    // single serving thread. Disconnect instead; the session cursor
    // survives for an honest reconnect.
    CloseNow(conn);
    counters_.slow_consumer_disconnects->Increment();
  }
}

void IngestServer::FlushOutbound(Connection* conn) {
  while (conn->OutboundPending() > 0) {
    std::size_t written = 0;
    std::string error;
    const IoStatus status = conn->transport->Write(
        conn->outbound.data() + conn->outbound_off, conn->OutboundPending(),
        &written, &error);
    if (status == IoStatus::kOk) {
      conn->outbound_off += written;
      conn->last_activity = Clock::now();
      continue;
    }
    if (status == IoStatus::kWouldBlock) break;
    CloseNow(conn);  // write error: the peer is gone
    return;
  }
  if (conn->OutboundPending() == 0) {
    conn->outbound.clear();
    conn->outbound_off = 0;
    if (conn->draining) conn->closing = true;
  } else if (conn->outbound_off > kOutboundCompactBytes) {
    conn->outbound.erase(
        conn->outbound.begin(),
        conn->outbound.begin() + static_cast<std::ptrdiff_t>(conn->outbound_off));
    conn->outbound_off = 0;
  }
}

void IngestServer::UnbindSession(Connection* conn) {
  // Release immediately (not at erase time) so that a reconnect processed
  // later in the same poll cycle can already rebind.
  if (conn->session != nullptr) {
    conn->session->bound = false;
    conn->session->last_unbound = Clock::now();
    conn->session = nullptr;
  }
}

void IngestServer::CloseGracefully(Connection* conn) {
  UnbindSession(conn);
  conn->draining = true;
  if (conn->OutboundPending() == 0) conn->closing = true;
}

void IngestServer::CloseNow(Connection* conn) {
  UnbindSession(conn);
  conn->closing = true;
}

void IngestServer::FailConnection(Connection* conn, const std::string& message) {
  counters_.protocol_errors->Increment();
  const ErrorMessage error{message};
  const std::vector<std::uint8_t> bytes = EncodeError(error);
  counters_.session_bytes_out->Add(bytes.size());
  QueueBytes(conn, bytes);
}

}  // namespace navarchos::net
