// Binary wire protocol of the network ingest front end.
//
// A connection carries a stream of length-prefixed, CRC-checksummed
// messages. Every message is framed identically:
//
//   offset 0  magic    u32 LE   kWireMagic ("NWP1") - desync tripwire
//   offset 4  type     u8       MessageType
//   offset 5  length   u32 LE   payload bytes (<= kMaxPayloadBytes)
//   offset 9  payload  length bytes (persist::Encoder encoding)
//   then      crc32    u32 LE   CRC32 over type byte + length field + payload
//
// The CRC covers the type and length as well as the payload, so a flipped
// header byte is caught even when the payload survives intact; the magic is
// outside the CRC but any flip there fails the magic check first. Payloads
// reuse the bounds-checked persist::Encoder/Decoder codecs, so the decoder
// robustness contract of the persistence layer (no crash, no unbounded
// allocation on any input) extends to every byte that arrives off the wire.
//
// Protocol flow (client -> server unless noted):
//   HELLO    session id, resume flag, vehicle registration list
//   WELCOME  (server) next expected wire sequence number for the session
//   FRAMES   a batch of SensorFrames, first_seq + count (stop-and-wait:
//            the client sends the next batch only after the ACK)
//   ACK      (server) cumulative: every wire seq < through_seq was decided
//   NACK     (server) one shed frame, attributable by wire seq
//   FIN      end of stream; the server acks and closes
//   ERROR    protocol violation, either direction; the connection closes
//   QUERY    a history query (RANK / TIMELINE / COMOVE); needs no session
//   RESULT   (server) one page of a query's result; `last` ends the reply
//   STATS    stats scrape, both directions: an empty payload asks, a
//            non-empty one answers with the shard's metrics snapshot
//            (stateless like QUERY - no session required)
//
// Wire sequence numbers count the frames of one session in submission
// order, across reconnects: a client that reconnects RESUMEs from the
// WELCOME cursor, so the server admits every frame exactly once no matter
// where the previous connection was cut.
//
// Version-1 extension rule (how sharding fields ride along without a
// version bump): a payload may grow an OPTIONAL TAIL - extra fields
// appended after the original encoding, encoded only when they differ
// from their defaults, and decoded only when payload bytes remain. A
// default-valued message therefore encodes byte-identically to the
// pre-tail protocol, and a pre-tail peer decodes it unchanged (decoders
// demand exact consumption, so a tail sent to an old peer fails loudly
// rather than being silently dropped). The normative byte layout of every
// message, tails included, is specified in docs/WIRE_PROTOCOL.md.
#ifndef NAVARCHOS_NET_WIRE_H_
#define NAVARCHOS_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "history/history_log.h"
#include "history/query.h"
#include "obs/metrics.h"
#include "persist/codec.h"
#include "telemetry/stream.h"
#include "util/status.h"

/// \file
/// \brief Wire protocol of the network ingest front end: message framing
/// with per-message CRC32, typed control/data messages, SensorFrame codecs
/// and the incremental MessageReader used by both peers.

/// \namespace navarchos::net
/// \brief The network ingest front end: binary wire protocol, the
/// poll-based IngestServer that feeds a FleetService over TCP, and the
/// blocking IngestClient with bounded retry and session resume.

namespace navarchos::net {

/// Frame magic ("NWP1" little-endian) leading every wire message.
inline constexpr std::uint32_t kWireMagic = 0x3150574Eu;

/// Protocol version negotiated in HELLO; bumped on any incompatible change.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on one message's payload, enforced before any allocation on
/// both the encode and decode paths.
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{4} << 20;

/// Bytes of framing around a payload (magic + type + length + crc32).
inline constexpr std::size_t kFrameOverheadBytes = 4 + 1 + 4 + 4;

/// Message discriminator on the wire.
enum class MessageType : std::uint8_t {
  kHello = 1,    ///< Client opens (or resumes) a session.
  kWelcome = 2,  ///< Server answers HELLO with the session's resume cursor.
  kFrames = 3,   ///< Client ships a batch of SensorFrames.
  kAck = 4,      ///< Server acknowledges every wire seq below a cursor.
  kNack = 5,     ///< Server reports one shed frame by wire seq.
  kFin = 6,      ///< Client ends the stream.
  kError = 7,    ///< Protocol violation; sender closes after this.
  kQuery = 8,    ///< Client asks a history query (no session required).
  kResult = 9,   ///< Server returns one page of a query result.
  kStats = 10,   ///< Stats scrape: empty payload = request, else response.
};

/// Reason a frame was shed, carried in a NACK.
enum class NackCode : std::uint8_t {
  kQueueFull = 1,  ///< The vehicle's ingest lane was full (kReject policy).
  kDraining = 2,   ///< The service was already draining.
};

/// HELLO payload: opens a session (or resumes one after a disconnect).
struct HelloMessage {
  /// Protocol version of the client; the server rejects mismatches.
  std::uint32_t protocol_version = kProtocolVersion;
  /// Stable session name; reconnects with the same id resume its cursor.
  std::string session_id;
  /// True when the client expects an existing session (reconnect). Purely
  /// diagnostic: the WELCOME cursor is authoritative either way.
  bool resume = false;
  /// Vehicles to register, in registration order (fixes the lane order of
  /// the serving FleetService, hence result index alignment).
  std::vector<std::int32_t> vehicle_ids;
  /// Optional tail (sharded sessions only): fleet-wide registration index
  /// of each vehicle in `vehicle_ids`, parallel to it. A sharded client
  /// tells each shard where its vehicles sit in the fleet-wide order, so
  /// the shard's end-of-stream flush records can be merged back into one
  /// fleet order. Empty (the default) encodes byte-identically to the
  /// pre-shard protocol.
  std::vector<std::uint32_t> fleet_order;
};

/// Shard topology advertised in a WELCOME (optional payload tail).
///
/// A fleet may be served by N in-process shards, each with its own
/// listener. Any shard's WELCOME advertises the full map; the client
/// re-routes each vehicle to `ports[ShardMap(shard_count, hash_seed)
/// .ShardOf(vehicle_id)]` (see src/shard/shard_router.h for the hash).
/// The default-constructed value means "unsharded" and encodes to zero
/// bytes, so single-shard WELCOMEs are byte-identical to the pre-shard
/// protocol and old clients parse them unchanged.
struct ShardMapInfo {
  /// Number of shards (1 = unsharded, the default).
  std::uint32_t shard_count = 1;
  /// Seed of the consistent-hash ring (must match across client/server).
  std::uint64_t hash_seed = 0;
  /// TCP port of each shard's listener, indexed by shard id. Empty when
  /// unsharded; otherwise size() == shard_count.
  std::vector<std::uint16_t> ports;

  /// True when this is the default "unsharded" topology.
  bool unsharded() const {
    return shard_count == 1 && hash_seed == 0 && ports.empty();
  }
};

/// WELCOME payload: the server's answer to HELLO.
struct WelcomeMessage {
  /// First wire sequence number the server has not yet decided; the client
  /// (re)starts streaming from exactly here.
  std::uint64_t next_seq = 0;
  /// Shard topology (optional tail; absent == unsharded). See ShardMapInfo.
  ShardMapInfo shard_map;
};

/// FRAMES payload: one batch of consecutive frames.
struct FramesMessage {
  /// Wire sequence number of frames[0]; frame i carries first_seq + i.
  std::uint64_t first_seq = 0;
  /// The batch, in submission order.
  std::vector<telemetry::SensorFrame> frames;
  /// Optional tail (sharded sessions only): fleet-wide sequence number of
  /// each frame, parallel to `frames`. A sharded client assigns fleet
  /// sequence numbers at submission time and carries them to each shard,
  /// so the server-side aggregator can merge the shards' ordered streams
  /// back into the one fleet-wide total order. Empty (the default)
  /// encodes byte-identically to the pre-shard protocol.
  std::vector<std::uint64_t> fleet_seqs;
};

/// ACK payload: cumulative acknowledgement.
struct AckMessage {
  /// Every wire sequence number < through_seq has been decided (admitted
  /// or shed); the client may discard its copies below this cursor.
  std::uint64_t through_seq = 0;
  /// Total frames the session has shed so far (NACK count).
  std::uint64_t sheds = 0;
};

/// NACK payload: one shed frame, attributable by sequence number.
struct NackMessage {
  std::uint64_t seq = 0;        ///< Wire sequence number of the shed frame.
  std::int32_t vehicle_id = 0;  ///< Vehicle the frame belonged to.
  NackCode code = NackCode::kQueueFull;  ///< Why it was shed.
};

/// FIN payload: graceful end of stream.
struct FinMessage {
  /// Total frames the session streamed (the expected final ACK cursor).
  std::uint64_t total_seq = 0;
};

/// ERROR payload: human-readable protocol violation report.
struct ErrorMessage {
  std::string message;  ///< What went wrong, for logs and Status values.
};

/// Which history query a QUERY message carries.
enum class QueryKind : std::uint8_t {
  kRank = 1,      ///< Rank the fleet by severity over a window.
  kTimeline = 2,  ///< One vehicle's score/alarm series.
  kComove = 3,    ///< Channels that co-moved around one alarm.
};

/// Entries a RESULT page carries at most; a larger result is split into
/// consecutive pages (all but the final one with `last == false`), which
/// keeps every page far below kMaxPayloadBytes.
inline constexpr std::size_t kMaxResultEntriesPerPage = 512;

/// QUERY payload: a tagged union over the three history query shapes (only
/// the member selected by `kind` is encoded on the wire). Queries need no
/// HELLO/session - reads are stateless.
struct QueryMessage {
  QueryKind kind = QueryKind::kRank;   ///< Which query this is.
  history::RankQuery rank;             ///< Parameters when kind == kRank.
  history::TimelineQuery timeline;     ///< ... when kind == kTimeline.
  history::ComoveQuery comove;         ///< ... when kind == kComove.
};

/// RESULT payload: one page of a query's answer. Pages arrive in order
/// (page 0, 1, ...) and the reply ends with the page whose `last` is true;
/// a failed query is answered with ERROR instead.
struct ResultMessage {
  QueryKind kind = QueryKind::kRank;  ///< Query this page answers.
  std::uint32_t page = 0;             ///< Page index within the reply.
  bool last = true;                   ///< True on the reply's final page.
  /// RANK entries of this page (kind == kRank).
  std::vector<history::RankEntry> rank_entries;
  /// TIMELINE records of this page (kind == kTimeline).
  std::vector<history::HistoryRecord> timeline_records;
  /// COMOVE anchor (kind == kComove; repeated on every page).
  std::int32_t comove_vehicle_id = 0;
  std::int64_t comove_alarm_ts = 0;   ///< Timestamp of the COMOVE anchor.
  /// COMOVE entries of this page (kind == kComove).
  std::vector<history::ComoveEntry> comove_entries;
};

/// STATS response payload: one shard's point-in-time metrics snapshot.
///
/// The request direction is an *empty* STATS payload (a snapshot always
/// encodes to at least its version field, so the two directions cannot be
/// confused). Like QUERY, STATS needs no HELLO/session. The response may
/// carry an optional tail - the answering shard's id plus the full shard
/// map, encoded only for sharded topologies - so a scraper that knows one
/// port can discover and scrape every shard of the fleet.
struct StatsMessage {
  /// The shard's metrics snapshot (see obs::MetricsRegistry::Snapshot).
  obs::StatsSnapshot snapshot;
  /// Optional tail: id of the answering shard (0 when unsharded).
  std::uint32_t shard_id = 0;
  /// Optional tail: shard topology, same encoding as the WELCOME tail.
  ShardMapInfo shard_map;
};

/// One reassembled wire message: its type and raw (CRC-verified) payload.
struct WireMessage {
  MessageType type = MessageType::kError;  ///< Frame type byte.
  std::vector<std::uint8_t> payload;       ///< Verified payload bytes.
};

// ------------------------------------------------------------ frame codecs

/// Appends `frame` to `encoder` (kind tag, then the record or event).
void EncodeSensorFrame(persist::Encoder& encoder,
                       const telemetry::SensorFrame& frame);

/// Decodes one SensorFrame; returns false (with the decoder failed) on any
/// malformed input - unknown kind or event type included.
bool DecodeSensorFrame(persist::Decoder& decoder, telemetry::SensorFrame* frame);

// ---------------------------------------------------------- message codecs

/// Frames `payload` of `type` into the full wire form (magic, header,
/// payload, CRC32). Payloads above kMaxPayloadBytes are a programming
/// error.
std::vector<std::uint8_t> EncodeFrame(MessageType type,
                                      const std::vector<std::uint8_t>& payload);

/// Encodes a HELLO into its full wire form.
std::vector<std::uint8_t> EncodeHello(const HelloMessage& message);
/// Encodes a WELCOME into its full wire form.
std::vector<std::uint8_t> EncodeWelcome(const WelcomeMessage& message);
/// Encodes a FRAMES batch into its full wire form.
std::vector<std::uint8_t> EncodeFrames(const FramesMessage& message);
/// Encodes an ACK into its full wire form.
std::vector<std::uint8_t> EncodeAck(const AckMessage& message);
/// Encodes a NACK into its full wire form.
std::vector<std::uint8_t> EncodeNack(const NackMessage& message);
/// Encodes a FIN into its full wire form.
std::vector<std::uint8_t> EncodeFin(const FinMessage& message);
/// Encodes an ERROR into its full wire form.
std::vector<std::uint8_t> EncodeError(const ErrorMessage& message);
/// Encodes a QUERY into its full wire form.
std::vector<std::uint8_t> EncodeQuery(const QueryMessage& message);
/// Encodes one RESULT page into its full wire form.
std::vector<std::uint8_t> EncodeResult(const ResultMessage& message);
/// Encodes a STATS request (empty payload) into its full wire form.
std::vector<std::uint8_t> EncodeStatsRequest();
/// Encodes a STATS response into its full wire form.
std::vector<std::uint8_t> EncodeStatsResponse(const StatsMessage& message);

/// Decodes a HELLO payload (as delivered by MessageReader).
util::Status DecodeHello(const std::vector<std::uint8_t>& payload,
                         HelloMessage* out);
/// Decodes a WELCOME payload.
util::Status DecodeWelcome(const std::vector<std::uint8_t>& payload,
                           WelcomeMessage* out);
/// Decodes a FRAMES payload.
util::Status DecodeFrames(const std::vector<std::uint8_t>& payload,
                          FramesMessage* out);
/// Decodes an ACK payload.
util::Status DecodeAck(const std::vector<std::uint8_t>& payload, AckMessage* out);
/// Decodes a NACK payload.
util::Status DecodeNack(const std::vector<std::uint8_t>& payload,
                        NackMessage* out);
/// Decodes a FIN payload.
util::Status DecodeFin(const std::vector<std::uint8_t>& payload, FinMessage* out);
/// Decodes an ERROR payload.
util::Status DecodeError(const std::vector<std::uint8_t>& payload,
                         ErrorMessage* out);
/// Decodes a QUERY payload.
util::Status DecodeQuery(const std::vector<std::uint8_t>& payload,
                         QueryMessage* out);
/// Decodes a RESULT payload.
util::Status DecodeResult(const std::vector<std::uint8_t>& payload,
                          ResultMessage* out);
/// Decodes a STATS response payload. An empty payload is a *request*, not
/// a response, and is rejected; callers distinguish the directions by
/// payload emptiness before decoding.
util::Status DecodeStatsResponse(const std::vector<std::uint8_t>& payload,
                                 StatsMessage* out);

// --------------------------------------------------------- stream reassembly

/// Incremental reassembler of wire messages from a TCP byte stream.
///
/// Both peers feed every received chunk through Append and then drain
/// complete messages with Next. The reader verifies magic, type, the
/// payload-length bound and the CRC32 before exposing any payload; the
/// first violation latches an error (the connection must be dropped - a
/// byte stream that framed one bad message cannot be resynchronised).
class MessageReader {
 public:
  /// Outcome of one Next() call.
  enum class Result {
    kMessage,   ///< `*out` holds the next complete, CRC-verified message.
    kNeedMore,  ///< The buffer holds no complete message yet.
    kError,     ///< The stream is corrupt; error() describes the violation.
  };

  /// Appends `size` received bytes to the reassembly buffer.
  void Append(const std::uint8_t* data, std::size_t size);

  /// Extracts the next complete message, if any. After kError every further
  /// call returns kError.
  Result Next(WireMessage* out);

  /// Description of the first framing violation; empty until one occurs.
  const std::string& error() const { return error_; }

  /// Bytes currently buffered (incomplete trailing message).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< Prefix of buffer_ already handed out.
  std::string error_;
};

/// Human-readable name of a message type ("HELLO", "FRAMES", ...).
const char* MessageTypeName(MessageType type);

/// Human-readable name of a query kind ("RANK", "TIMELINE", "COMOVE").
const char* QueryKindName(QueryKind kind);

}  // namespace navarchos::net

#endif  // NAVARCHOS_NET_WIRE_H_
