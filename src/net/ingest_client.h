// Blocking ingest client of the network front end.
//
// IngestClient dials an IngestServer with bounded retry/backoff, opens (or
// resumes) a session with HELLO, and ships SensorFrames in stop-and-wait
// batches: Send buffers frames locally, Flush writes one FRAMES message
// and blocks until the server's cumulative ACK for it arrives, collecting
// any NACKs (shed frames, attributable by wire sequence number) delivered
// in between. The stop-and-wait discipline is the client half of the flow
// control story: a server stalled on lane backpressure simply delays the
// ACK, and the client stops producing.
//
// Resume: after any disconnect - transport error, crash, Abort() - a new
// client constructed with the same session id and resume=true learns the
// server's cursor from WELCOME (next_seq) and re-sends from exactly there.
// The caller keeps its frames addressable by wire sequence number (for a
// recorded stream, wire seq == stream index), so resuming is a loop
// restart, not a protocol dance.
#ifndef NAVARCHOS_NET_INGEST_CLIENT_H_
#define NAVARCHOS_NET_INGEST_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

/// \file
/// \brief IngestClient: blocking stop-and-wait sender with bounded
/// connect retry/backoff, NACK collection and session resume.

namespace navarchos::net {

/// Configuration of an ingest client.
struct ClientConfig {
  /// Server IPv4 address.
  std::string host = "127.0.0.1";
  /// Server port.
  std::uint16_t port = 0;
  /// Session id; reconnects under the same id resume its cursor.
  std::string session_id = "default";
  /// Frames buffered per FRAMES batch before Flush happens implicitly.
  std::size_t batch_frames = 256;
  /// Connection attempts before Connect gives up.
  int connect_attempts = 5;
  /// Backoff before the second attempt; doubles per further attempt.
  int backoff_ms = 50;
};

/// Counters of one client's lifetime.
struct ClientStats {
  std::uint64_t frames_sent = 0;      ///< Frames handed to Send.
  std::uint64_t batches_sent = 0;     ///< FRAMES messages written.
  std::uint64_t connect_attempts = 0; ///< Dial attempts made.
};

/// Blocking stop-and-wait ingest client. Single-threaded by design: all
/// calls must come from one thread (the ingest thread of the deployment).
class IngestClient {
 public:
  /// Stores the configuration; nothing is dialled yet.
  explicit IngestClient(const ClientConfig& config);

  /// Closes the connection without FIN (like Abort).
  ~IngestClient();

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  /// Dials the server (bounded retry with exponential backoff), sends
  /// HELLO with `vehicle_ids` and `resume`, and blocks for WELCOME. On
  /// success next_seq() holds the server's cursor: the first wire sequence
  /// number this client must send.
  util::Status Connect(const std::vector<std::int32_t>& vehicle_ids,
                       bool resume = false);

  /// The next wire sequence number to send: the WELCOME cursor after
  /// Connect, then advancing with every Send.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Buffers one frame under the next wire sequence number; flushes
  /// implicitly when the batch is full. An implicit flush blocks for the
  /// batch's ACK (stop-and-wait).
  util::Status Send(const telemetry::SensorFrame& frame);

  /// Sends the buffered partial batch (if any) and blocks until its ACK
  /// arrived, collecting NACKs on the way. No-op on an empty buffer.
  util::Status Flush();

  /// Flushes, sends FIN and blocks for the final ACK, then closes the
  /// connection in an orderly way.
  util::Status Finish();

  /// Simulated crash: closes the socket immediately - no flush, no FIN.
  /// The server keeps the session cursor; a new client with resume=true
  /// picks up where the last ACKed batch ended.
  void Abort();

  /// Cumulative ACK cursor: every wire seq below it was decided.
  std::uint64_t acked_through() const { return acked_through_; }

  /// Every NACK received so far (shed frames by wire sequence number).
  const std::vector<NackMessage>& nacks() const { return nacks_; }

  /// Counter snapshot.
  const ClientStats& stats() const { return stats_; }

 private:
  /// Blocks until an ACK with through_seq >= `target` arrives, collecting
  /// NACKs; fails on ERROR messages, EOF or transport errors.
  util::Status AwaitAck(std::uint64_t target);

  const ClientConfig config_;
  Socket socket_;
  MessageReader reader_;
  FramesMessage pending_;  ///< The batch being built.
  std::uint64_t next_seq_ = 0;
  std::uint64_t acked_through_ = 0;
  std::vector<NackMessage> nacks_;
  ClientStats stats_;
};

}  // namespace navarchos::net

#endif  // NAVARCHOS_NET_INGEST_CLIENT_H_
