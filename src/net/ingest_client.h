// Self-healing blocking ingest client of the network front end.
//
// IngestClient dials an IngestServer with bounded retry and capped,
// seeded-jitter exponential backoff, opens (or resumes) a session with
// HELLO, and ships SensorFrames in stop-and-wait batches: Send buffers
// frames locally, Flush writes one FRAMES message and blocks until the
// server's cumulative ACK for it arrives, collecting any NACKs (shed
// frames, attributable by wire sequence number) delivered in between. The
// stop-and-wait discipline is the client half of the flow control story: a
// server stalled on lane backpressure simply delays the ACK, and the
// client stops producing.
//
// Self-healing: a transport failure in the middle of Flush or Finish -
// connection reset, EOF, a missed per-operation deadline against a
// half-open peer - does not surface to the caller. The client retains the
// in-flight batch, reconnects under the same session id, learns the
// server's cursor from WELCOME, rewinds the batch to that cursor (frames
// below it were already decided; resending them would only be skipped as
// duplicates) and resumes. Only fatal conditions end the operation: a
// server ERROR message, the reconnect budget, or the total deadline.
//
// Deadlines: op_deadline_ms bounds every individual blocking wait (connect,
// WELCOME, ACK) so a silently dead peer costs a bounded wait instead of
// forever; total_deadline_ms bounds one whole logical operation (Connect /
// Flush / Finish) across all its healing attempts.
//
// Resume across client objects still works as before: a new client
// constructed with the same session id and resume=true learns the server's
// cursor from WELCOME (next_seq) and re-sends from exactly there.
#ifndef NAVARCHOS_NET_INGEST_CLIENT_H_
#define NAVARCHOS_NET_INGEST_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/rng.h"
#include "util/status.h"

/// \file
/// \brief IngestClient: self-healing stop-and-wait sender with capped
/// jittered backoff, per-operation and total deadlines, automatic
/// reconnect-and-resume, NACK collection and session resume.

namespace navarchos::net {

/// Configuration of an ingest client.
struct ClientConfig {
  /// Server IPv4 address.
  std::string host = "127.0.0.1";
  /// Server port.
  std::uint16_t port = 0;
  /// Session id; reconnects under the same id resume its cursor.
  std::string session_id = "default";
  /// Frames buffered per FRAMES batch before Flush happens implicitly.
  std::size_t batch_frames = 256;
  /// Connection attempts per dial before the dial gives up.
  int connect_attempts = 5;
  /// Backoff before the second attempt; doubles per further attempt.
  int backoff_ms = 50;
  /// Ceiling of the exponential backoff: however many attempts have
  /// failed, no single wait exceeds this (the doubling is computed in
  /// 64-bit and clamped, so it cannot overflow into a negative wait).
  int max_backoff_ms = 2000;
  /// Seed of the backoff jitter stream. Jitter decorrelates reconnect
  /// storms across clients; seeding it keeps any single client's timing
  /// reproducible. Clients sharing a seed jitter identically.
  std::uint64_t jitter_seed = 1;
  /// Bound on one TCP connect (passed to ConnectTcp); 0 waits forever.
  int connect_timeout_ms = 2000;
  /// Bound on each individual blocking wait - for WELCOME, for an ACK, for
  /// outbound bytes to drain. A breached deadline counts as a transport
  /// failure and triggers healing. 0 disables (waits forever).
  int op_deadline_ms = 0;
  /// Bound on one whole logical operation (Connect / Flush / Finish)
  /// including every healing attempt inside it. 0 disables.
  int total_deadline_ms = 0;
  /// Healing reconnects allowed per logical operation before the failure
  /// is surfaced to the caller.
  int max_reconnects = 8;
  /// Wraps each dialled socket in a Transport; null uses the plain
  /// non-blocking SocketTransport. The seam for FaultySocket in the chaos
  /// suites.
  TransportFactory transport_factory;
};

/// Counters of one client's lifetime.
struct ClientStats {
  std::uint64_t frames_sent = 0;       ///< Frames handed to Send.
  std::uint64_t batches_sent = 0;      ///< FRAMES messages written.
  std::uint64_t connect_attempts = 0;  ///< Dial attempts made.
  std::uint64_t reconnects = 0;        ///< Healing reconnects that succeeded.
};

/// Self-healing stop-and-wait ingest client. Single-threaded by design:
/// all calls must come from one thread (the ingest thread of the
/// deployment).
class IngestClient {
 public:
  /// Stores the configuration; nothing is dialled yet.
  explicit IngestClient(const ClientConfig& config);

  /// Closes the connection without FIN (like Abort).
  ~IngestClient();

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  /// Dials the server (bounded retry with capped jittered backoff), sends
  /// HELLO with `vehicle_ids` and `resume`, and blocks for WELCOME. On
  /// success next_seq() holds the server's cursor: the first wire sequence
  /// number this client must send. The vehicle ids are retained for
  /// healing re-HELLOs.
  util::Status Connect(const std::vector<std::int32_t>& vehicle_ids,
                       bool resume = false);

  /// Connect carrying the HELLO fleet-order tail: `fleet_order[i]` is the
  /// fleet-wide registration index of `vehicle_ids[i]` (sharded sessions;
  /// see HelloMessage::fleet_order). Sizes must match.
  util::Status Connect(const std::vector<std::int32_t>& vehicle_ids,
                       const std::vector<std::uint32_t>& fleet_order,
                       bool resume);

  /// The next wire sequence number to send: the WELCOME cursor after
  /// Connect, then advancing with every Send.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Buffers one frame under the next wire sequence number; flushes
  /// implicitly when the batch is full. An implicit flush blocks for the
  /// batch's ACK (stop-and-wait) and heals like an explicit one.
  util::Status Send(const telemetry::SensorFrame& frame);

  /// Send carrying the frame's fleet-wide sequence number (the FRAMES
  /// fleet-seq tail; sharded sessions). A session must use either the
  /// plain Send or this form throughout, never a mix.
  util::Status Send(const telemetry::SensorFrame& frame,
                    std::uint64_t fleet_seq);

  /// Shard topology the server advertised in the last WELCOME; the
  /// default (unsharded) value until a Connect succeeded.
  const ShardMapInfo& shard_map() const { return shard_map_; }

  /// Sends the buffered partial batch (if any) and blocks until its ACK
  /// arrived, collecting NACKs on the way; transparently reconnects and
  /// resumes from the server's cursor on mid-stream transport failures.
  /// No-op on an empty buffer.
  util::Status Flush();

  /// Flushes, sends FIN and blocks for the final ACK (healing across
  /// failures like Flush; a retransmitted FIN after a reconnect is safe -
  /// the server counts a session's finish only once), then closes the
  /// connection in an orderly way.
  util::Status Finish();

  /// Simulated crash: closes the socket immediately - no flush, no FIN.
  /// The server keeps the session cursor; a new client with resume=true
  /// picks up where the last ACKed batch ended.
  void Abort();

  /// Runs a RANK query against the server's history log, collecting every
  /// RESULT page into `out`. Works on the live ingest connection (between
  /// batches - the stop-and-wait discipline leaves the stream quiet) or,
  /// when not connected, over a short-lived dedicated connection with no
  /// HELLO (queries are stateless). Queries do not heal: a transport
  /// failure or server ERROR is surfaced directly - re-issuing a read is
  /// the caller's one-line retry.
  util::Status QueryRank(const history::RankQuery& query,
                         history::RankResult* out);

  /// Runs a TIMELINE query; same connection and failure rules as QueryRank.
  util::Status QueryTimeline(const history::TimelineQuery& query,
                             history::TimelineResult* out);

  /// Runs a COMOVE query; same connection and failure rules as QueryRank.
  util::Status QueryComove(const history::ComoveQuery& query,
                           history::ComoveResult* out);

  /// Scrapes the server's metrics: sends an empty STATS request and decodes
  /// the STATS response into `out` (snapshot plus, on sharded deployments,
  /// the shard identity tail - shard id, shard count, hash seed, and the
  /// ports of every shard, from which a scraper can dial the rest of the
  /// fleet). Same connection and failure rules as QueryRank: works on the
  /// live ingest connection between batches or over a short-lived HELLO-less
  /// dial, and does not heal.
  util::Status QueryStats(StatsMessage* out);

  /// Cumulative ACK cursor: every wire seq below it was decided.
  std::uint64_t acked_through() const { return acked_through_; }

  /// Every NACK received so far (shed frames by wire sequence number).
  const std::vector<NackMessage>& nacks() const { return nacks_; }

  /// Counter snapshot.
  const ClientStats& stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Deadline bookkeeping of one logical operation: the total budget plus
  /// the healing-reconnect allowance.
  struct OpBudget {
    Clock::time_point total_deadline{};  ///< Zero when no total deadline.
    bool has_total = false;
    int reconnects_left = 0;
  };

  /// Opens the budget of one logical operation.
  OpBudget StartOp() const;

  /// Effective deadline of the next blocking wait: op_deadline_ms capped
  /// by what remains of the operation's total budget. Returns false when
  /// the total budget is already exhausted.
  bool NextWaitDeadline(const OpBudget& budget, int* deadline_ms) const;

  /// Capped exponential backoff with seeded jitter for retry `attempt`
  /// (0-based; attempt 0 has no wait).
  int BackoffDelayMs(int attempt);

  /// Dials + HELLOs + blocks for WELCOME within `budget`; on success the
  /// transport is live and acked_through_ holds the server's cursor
  /// (adopted into next_seq_ only when `adopt_cursor` - healing reconnects
  /// keep next_seq_, since [cursor, next_seq_) is the retained in-flight
  /// batch). `fatal` reports whether a failure should stop healing (server
  /// refused HELLO, total budget exhausted) or is worth another attempt.
  util::Status ConnectOnce(OpBudget* budget, bool resume, bool adopt_cursor,
                           bool* fatal);

  /// Sends raw bytes within the operation budget (counts as one wait).
  util::Status SendWithin(OpBudget* budget,
                          const std::vector<std::uint8_t>& bytes);

  /// Blocks for the next complete server message within one wait deadline.
  util::Status NextMessage(OpBudget* budget, WireMessage* out, bool* fatal);

  /// Sends (and on healing, rewinds + resends) inflight_ until its ACK.
  util::Status FlushInflight(OpBudget* budget);

  /// Blocks until the cursor covers `target`, collecting NACKs; fails on
  /// ERROR messages (fatal), EOF, transport errors or a missed deadline
  /// (recoverable). With `require_ack_message` an ACK covering `target`
  /// must actually arrive on this connection - cursor coverage inherited
  /// from a WELCOME is not enough (the FIN case).
  util::Status AwaitAck(OpBudget* budget, std::uint64_t target,
                        bool require_ack_message, bool* fatal);

  /// Reconnects under the operation budget and rewinds `inflight_` to the
  /// server's WELCOME cursor. Returns false (with `*status` set) when
  /// healing is no longer possible: budget or reconnect cap exhausted,
  /// or the server refused the resume.
  bool Heal(OpBudget* budget, util::Status* status);

  /// Sends one QUERY and collects its RESULT pages in order (dialling a
  /// dedicated HELLO-less connection first when none is live). The shared
  /// engine under the three Query* calls.
  util::Status RunQuery(const QueryMessage& query,
                        std::vector<ResultMessage>* pages);

  const ClientConfig config_;
  std::unique_ptr<Transport> transport_;
  MessageReader reader_;
  FramesMessage pending_;   ///< The batch being built.
  FramesMessage inflight_;  ///< The batch being flushed; retained for healing.
  std::vector<std::int32_t> vehicle_ids_;  ///< Retained for healing re-HELLOs.
  std::vector<std::uint32_t> fleet_order_;  ///< HELLO tail; parallel to ids.
  ShardMapInfo shard_map_;  ///< From the last WELCOME (unsharded default).
  bool connected_once_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t acked_through_ = 0;
  std::vector<NackMessage> nacks_;
  ClientStats stats_;
  util::Rng backoff_rng_;
};

}  // namespace navarchos::net

#endif  // NAVARCHOS_NET_INGEST_CLIENT_H_
