#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace navarchos::net {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

util::Status Socket::SendAll(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::Error(ErrnoText("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return util::Status();
}

Socket::RecvResult Socket::Recv(std::uint8_t* buffer, std::size_t capacity,
                                std::size_t* received, std::string* error) {
  while (true) {
    const ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n > 0) {
      *received = static_cast<std::size_t>(n);
      return RecvResult::kData;
    }
    if (n == 0) return RecvResult::kEof;
    if (errno == EINTR) continue;
    if (error != nullptr) *error = ErrnoText("recv");
    return RecvResult::kError;
  }
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status ConnectTcp(const std::string& host, std::uint16_t port,
                        Socket* out, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::Status::Error(ErrnoText("socket"));
  Socket socket(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return util::Status::Error("connect: invalid IPv4 address \"" + host + "\"");

  // Non-blocking connect + poll, so a blackholed host costs `timeout_ms`
  // instead of the kernel's multi-minute SYN retry budget.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    return util::Status::Error(ErrnoText("fcntl"));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS && errno != EINTR)
      return util::Status::Error(ErrnoText("connect"));
    pollfd pfd{fd, POLLOUT, 0};
    while (true) {
      const int n = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
      if (n > 0) break;
      if (n == 0)
        return util::Status::Error("connect to " + host + ":" +
                                   std::to_string(port) + " timed out after " +
                                   std::to_string(timeout_ms) + "ms");
      if (errno != EINTR) return util::Status::Error(ErrnoText("poll"));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0)
      return util::Status::Error(ErrnoText("getsockopt"));
    if (so_error != 0)
      return util::Status::Error(std::string("connect: ") +
                                 std::strerror(so_error));
  }
  // Back to blocking mode: Socket's SendAll/Recv contract is blocking.
  if (::fcntl(fd, F_SETFL, flags) != 0)
    return util::Status::Error(ErrnoText("fcntl"));

  // Batches are already sized for the wire; disable Nagle so a flushed
  // partial batch (and every ACK) leaves immediately.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  *out = std::move(socket);
  return util::Status();
}

util::Status Listener::Bind(const std::string& address, std::uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::Status::Error(ErrnoText("socket"));

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::Error("bind: invalid IPv4 address \"" + address + "\"");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const util::Status status = util::Status::Error(ErrnoText("bind"));
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const util::Status status = util::Status::Error(ErrnoText("listen"));
    ::close(fd);
    return status;
  }

  // Read back the bound port (the kernel's pick when asked for port 0).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const util::Status status = util::Status::Error(ErrnoText("getsockname"));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return util::Status();
}

util::Status Listener::Accept(Socket* out) {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = Socket(fd);
      return util::Status();
    }
    if (errno == EINTR) continue;
    return util::Status::Error(ErrnoText("accept"));
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace navarchos::net
