#include "net/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.h"

namespace navarchos::net {

namespace {

/// Sleep slice used when a fault must present "no progress" on a
/// descriptor that may well be poll-ready: long enough that a deadline
/// loop cannot spin hot, short enough not to distort small test deadlines.
constexpr std::chrono::milliseconds kNoProgressNap(1);

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShortRead: return "short_read";
    case FaultKind::kShortWrite: return "short_write";
    case FaultKind::kInterrupt: return "interrupt";
    case FaultKind::kStall: return "stall";
    case FaultKind::kReset: return "reset";
    case FaultKind::kHalfOpen: return "half_open";
  }
  return "unknown";
}

bool FaultScript::Inactive() const {
  return read_chunk == 0 && write_chunk == 0 && interrupt_every == 0 &&
         stall_every == 0 && reset_after_bytes == 0 &&
         half_open_after_bytes == 0;
}

std::string FaultScript::Describe() const {
  if (Inactive()) return "clean";
  std::string out;
  const auto append = [&out](const std::string& part) {
    if (!out.empty()) out += ' ';
    out += part;
  };
  if (read_chunk > 0) append("short_read(" + std::to_string(read_chunk) + ")");
  if (write_chunk > 0)
    append("short_write(" + std::to_string(write_chunk) + ")");
  if (interrupt_every > 0)
    append("interrupt_every(" + std::to_string(interrupt_every) + ")");
  if (stall_every > 0)
    append("stall_every(" + std::to_string(stall_every) + "," +
           std::to_string(stall_ms) + "ms)");
  if (reset_after_bytes > 0)
    append("reset@" + std::to_string(reset_after_bytes));
  if (half_open_after_bytes > 0)
    append("half_open@" + std::to_string(half_open_after_bytes));
  return out;
}

std::size_t FaultManifest::CountOf(FaultKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [kind](const FaultEvent& e) { return e.kind == kind; }));
}

FaultInjector::FaultInjector(std::vector<FaultScript> scripts)
    : scripts_(std::move(scripts)) {}

TransportFactory FaultInjector::Factory() {
  return [this](Socket socket) -> std::unique_ptr<Transport> {
    FaultScript script;
    int connection = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      connection = next_connection_++;
      if (static_cast<std::size_t>(connection) < scripts_.size())
        script = scripts_[static_cast<std::size_t>(connection)];
    }
    auto inner = MakeSocketTransport(std::move(socket));
    if (script.Inactive()) return inner;
    return std::make_unique<FaultySocket>(std::move(inner), script, connection,
                                          this);
  };
}

FaultManifest FaultInjector::manifest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_;
}

int FaultInjector::connections_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_connection_;
}

void FaultInjector::Record(const FaultEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  manifest_.events.push_back(event);
}

FaultySocket::FaultySocket(std::unique_ptr<Transport> inner,
                           const FaultScript& script, int connection,
                           FaultInjector* recorder)
    : inner_(std::move(inner)),
      script_(script),
      connection_(connection),
      recorder_(recorder) {}

void FaultySocket::RecordOnce(bool* flag, FaultKind kind) {
  if (*flag) return;
  *flag = true;
  if (recorder_ != nullptr)
    recorder_->Record(FaultEvent{connection_, kind, bytes_});
}

bool FaultySocket::PreOp(IoStatus* status, std::string* error) {
  if (reset_) {
    if (error != nullptr) *error = "injected connection reset (replayed)";
    *status = IoStatus::kError;
    return false;
  }
  ++ops_;
  if (script_.interrupt_every > 0 &&
      ops_ % static_cast<std::uint64_t>(script_.interrupt_every) == 0) {
    if (recorder_ != nullptr)
      recorder_->Record(FaultEvent{connection_, FaultKind::kInterrupt, bytes_});
    // Nap so a poll loop retrying a ready-but-interrupted descriptor
    // cannot spin hot; progress resumes on the next call.
    std::this_thread::sleep_for(kNoProgressNap);
    *status = IoStatus::kWouldBlock;
    return false;
  }
  if (script_.stall_every > 0 &&
      ops_ % static_cast<std::uint64_t>(script_.stall_every) == 0) {
    if (recorder_ != nullptr)
      recorder_->Record(FaultEvent{connection_, FaultKind::kStall, bytes_});
    std::this_thread::sleep_for(std::chrono::milliseconds(script_.stall_ms));
  }
  if (script_.reset_after_bytes > 0 && bytes_ >= script_.reset_after_bytes) {
    reset_ = true;
    if (recorder_ != nullptr)
      recorder_->Record(FaultEvent{connection_, FaultKind::kReset, bytes_});
    inner_->Close();
    if (error != nullptr) *error = "injected connection reset";
    *status = IoStatus::kError;
    return false;
  }
  if (script_.half_open_after_bytes > 0 &&
      bytes_ >= script_.half_open_after_bytes) {
    RecordOnce(&recorded_half_open_, FaultKind::kHalfOpen);
    half_open_ = true;
  }
  return true;
}

std::size_t FaultySocket::CapToResetBoundary(std::size_t want) const {
  std::uint64_t cap = want;
  if (script_.reset_after_bytes > 0)
    cap = std::min<std::uint64_t>(cap, script_.reset_after_bytes - bytes_);
  if (script_.half_open_after_bytes > 0 && !half_open_)
    cap = std::min<std::uint64_t>(cap, script_.half_open_after_bytes - bytes_);
  return static_cast<std::size_t>(cap);
}

IoStatus FaultySocket::Read(std::uint8_t* buffer, std::size_t capacity,
                            std::size_t* received, std::string* error) {
  IoStatus gate = IoStatus::kOk;
  if (!PreOp(&gate, error)) return gate;
  if (half_open_) {
    // Silent death: the peer's bytes never arrive and EOF never comes.
    std::this_thread::sleep_for(kNoProgressNap);
    return IoStatus::kWouldBlock;
  }
  std::size_t want = capacity;
  if (script_.read_chunk > 0 && want > script_.read_chunk) {
    RecordOnce(&recorded_short_read_, FaultKind::kShortRead);
    want = script_.read_chunk;
  }
  want = CapToResetBoundary(want);
  const IoStatus status = inner_->Read(buffer, want, received, error);
  if (status == IoStatus::kOk) bytes_ += *received;
  return status;
}

IoStatus FaultySocket::Write(const std::uint8_t* data, std::size_t size,
                             std::size_t* written, std::string* error) {
  IoStatus gate = IoStatus::kOk;
  if (!PreOp(&gate, error)) return gate;
  if (half_open_) {
    // Silent death: pretend the bytes left, so only a missing response
    // (per-op deadline, idle reaping) can expose the dead link.
    *written = size;
    return IoStatus::kOk;
  }
  std::size_t want = size;
  if (script_.write_chunk > 0 && want > script_.write_chunk) {
    RecordOnce(&recorded_short_write_, FaultKind::kShortWrite);
    want = script_.write_chunk;
  }
  want = CapToResetBoundary(want);
  const IoStatus status = inner_->Write(data, want, written, error);
  if (status == IoStatus::kOk) bytes_ += *written;
  return status;
}

std::vector<FaultScript> SeededFaultScripts(std::uint64_t seed, int count) {
  util::Rng rng(seed);
  std::vector<FaultScript> scripts;
  scripts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FaultScript script;
    switch (rng.UniformInt(0, 3)) {
      case 0:  // reset at a varied cumulative offset
        script.reset_after_bytes =
            static_cast<std::uint64_t>(rng.UniformInt(1, 8192));
        break;
      case 1:  // short-IO regime, possibly with a later reset
        script.read_chunk = static_cast<std::size_t>(rng.UniformInt(1, 7));
        script.write_chunk = static_cast<std::size_t>(rng.UniformInt(1, 7));
        if (rng.Bernoulli(0.5))
          script.reset_after_bytes =
              static_cast<std::uint64_t>(rng.UniformInt(64, 16384));
        break;
      case 2:  // EINTR storm
        script.interrupt_every = static_cast<int>(rng.UniformInt(2, 5));
        break;
      default:  // stalls (kept short: they cost wall-clock, not correctness)
        script.stall_every = static_cast<int>(rng.UniformInt(3, 9));
        script.stall_ms = static_cast<int>(rng.UniformInt(1, 4));
        break;
    }
    scripts.push_back(script);
  }
  return scripts;
}

}  // namespace navarchos::net
