#include "net/transport.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

namespace navarchos::net {

namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

SocketTransport::SocketTransport(Socket socket) : socket_(std::move(socket)) {
  if (socket_.valid()) {
    const int flags = ::fcntl(socket_.fd(), F_GETFL, 0);
    if (flags >= 0) ::fcntl(socket_.fd(), F_SETFL, flags | O_NONBLOCK);
  }
}

IoStatus SocketTransport::Read(std::uint8_t* buffer, std::size_t capacity,
                               std::size_t* received, std::string* error) {
  while (true) {
    const ssize_t n = ::recv(socket_.fd(), buffer, capacity, 0);
    if (n > 0) {
      *received = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (error != nullptr) *error = ErrnoText("recv");
    return IoStatus::kError;
  }
}

IoStatus SocketTransport::Write(const std::uint8_t* data, std::size_t size,
                                std::size_t* written, std::string* error) {
  while (true) {
    const ssize_t n = ::send(socket_.fd(), data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      *written = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    if (error != nullptr) *error = ErrnoText("send");
    return IoStatus::kError;
  }
}

std::unique_ptr<Transport> MakeSocketTransport(Socket socket) {
  return std::make_unique<SocketTransport>(std::move(socket));
}

bool WaitReady(const Transport& transport, bool for_write, int deadline_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (true) {
    int timeout = -1;
    if (deadline_ms > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return false;
      timeout = static_cast<int>(left.count());
    }
    pollfd pfd{transport.fd(), static_cast<short>(for_write ? POLLOUT : POLLIN),
               0};
    const int n = ::poll(&pfd, 1, timeout);
    if (n > 0) return true;
    if (n == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

util::Status SendAllWithin(Transport* transport, const std::uint8_t* data,
                           std::size_t size, int deadline_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  std::size_t sent = 0;
  while (sent < size) {
    std::size_t written = 0;
    std::string error;
    const IoStatus status =
        transport->Write(data + sent, size - sent, &written, &error);
    switch (status) {
      case IoStatus::kOk:
        sent += written;
        continue;
      case IoStatus::kWouldBlock: {
        int remaining_ms = 0;  // 0 = wait forever
        if (deadline_ms > 0) {
          const auto elapsed =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  Clock::now() - start);
          remaining_ms = deadline_ms - static_cast<int>(elapsed.count());
          if (remaining_ms <= 0)
            return util::Status::Error("send deadline exceeded");
        }
        if (!WaitReady(*transport, /*for_write=*/true, remaining_ms) &&
            deadline_ms > 0)
          return util::Status::Error("send deadline exceeded");
        continue;
      }
      case IoStatus::kEof:
        return util::Status::Error("connection closed during send");
      case IoStatus::kError:
        return util::Status::Error(error);
    }
  }
  return util::Status();
}

}  // namespace navarchos::net
