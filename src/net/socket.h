// Thin RAII wrappers over POSIX TCP sockets, shared by the ingest server
// and client. Deliberately minimal: blocking send with full-write
// semantics, a tri-state receive that distinguishes orderly EOF from
// transport errors, and a loopback-first listener with ephemeral-port
// support (bind port 0, read the kernel's choice back). All sends use
// MSG_NOSIGNAL so a peer that died mid-stream surfaces as EPIPE, never as
// a process-killing SIGPIPE.
#ifndef NAVARCHOS_NET_SOCKET_H_
#define NAVARCHOS_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

/// \file
/// \brief RAII TCP socket, connect helper and listener used by the network
/// ingest front end.

namespace navarchos::net {

/// Owning wrapper around one connected TCP socket file descriptor.
class Socket {
 public:
  /// An invalid (unconnected) socket.
  Socket() = default;

  /// Adopts ownership of `fd` (-1 for invalid).
  explicit Socket(int fd) : fd_(fd) {}

  /// Closes the descriptor if still open.
  ~Socket() { Close(); }

  /// Moves ownership of the descriptor; the source becomes invalid.
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

  /// Move-assigns, closing any descriptor currently held.
  Socket& operator=(Socket&& other) noexcept;

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// The raw descriptor (-1 when invalid).
  int fd() const { return fd_; }

  /// True while a descriptor is held.
  bool valid() const { return fd_ >= 0; }

  /// Blocking full write: loops over partial writes and EINTR until every
  /// byte is sent. MSG_NOSIGNAL: a dead peer yields an error Status.
  util::Status SendAll(const std::uint8_t* data, std::size_t size);

  /// Outcome of one Recv call.
  enum class RecvResult {
    kData,   ///< `*received` bytes were read into the buffer.
    kEof,    ///< The peer closed the connection in an orderly way.
    kError,  ///< Transport error; `*error` holds errno text.
  };

  /// Blocking read of up to `capacity` bytes. Retries EINTR; connection
  /// resets report kError with the errno string in `*error`.
  RecvResult Recv(std::uint8_t* buffer, std::size_t capacity,
                  std::size_t* received, std::string* error);

  /// Closes the descriptor now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// Dials `host`:`port` (numeric IPv4 host, e.g. "127.0.0.1"). Returns the
/// connected socket in `*out` or an error Status naming the failure.
/// `timeout_ms` bounds the connect itself (non-blocking connect + poll):
/// a blackholed host fails with a timeout error after that long instead of
/// blocking for the kernel default (minutes). 0 waits without limit. The
/// returned socket is in blocking mode either way.
util::Status ConnectTcp(const std::string& host, std::uint16_t port,
                        Socket* out, int timeout_ms = 0);

/// Listening TCP socket bound to one address.
class Listener {
 public:
  /// An unbound listener.
  Listener() = default;

  /// Closes the listening descriptor if open.
  ~Listener() { Close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds `address`:`port` (port 0 picks an ephemeral port; read it back
  /// with port()) and starts listening. SO_REUSEADDR is set so restarts do
  /// not trip over TIME_WAIT.
  util::Status Bind(const std::string& address, std::uint16_t port);

  /// Port actually bound (the kernel's choice when Bind was given 0).
  std::uint16_t port() const { return port_; }

  /// The listening descriptor (-1 when unbound); poll on this for accepts.
  int fd() const { return fd_; }

  /// Accepts one pending connection into `*out`. Call after the listening
  /// descriptor polled readable.
  util::Status Accept(Socket* out);

  /// Closes the listening descriptor (idempotent).
  void Close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace navarchos::net

#endif  // NAVARCHOS_NET_SOCKET_H_
