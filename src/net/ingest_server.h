// Poll-based TCP ingest front end of the streaming fleet service.
//
// IngestServer accepts connections on one listening socket, reassembles
// wire messages per connection, and feeds decoded SensorFrames into a
// borrowed service::FleetService - turning the in-process ingest API into
// a network-facing one without changing any monitoring semantics.
//
// Determinism: the server runs ONE serving thread, so all admissions
// happen in wire-arrival order - exactly the single-ingest-thread
// deployment the FleetService determinism contract is defined over. A
// fleet streamed over loopback therefore produces output bit-identical to
// the in-process run at any worker thread count.
//
// Backpressure: when a vehicle's lane is full under kBlock, the Ingest
// call blocks the serving thread; the server stops reading, the kernel
// socket buffers fill, and the client's send stalls - lane backpressure
// becomes TCP backpressure with no extra machinery. Under kReject the
// shed is surfaced immediately as a NACK carrying the frame's wire
// sequence number, so the client can attribute every lost frame.
//
// Self-defence against hostile peers: all outbound traffic goes through a
// per-connection bounded non-blocking queue, so a client that never reads
// can no longer wedge the serving thread inside a blocking send - once its
// queue exceeds max_outbound_bytes it is disconnected as a slow consumer.
// Poll-driven idle deadlines reap connections whose peers died half-open
// (no FIN, no RST, just silence), releasing their session bindings for a
// clean reconnect; session retention GC expires abandoned cursors so
// sessions_ cannot grow without bound. Every defence is observable:
// ServerStats counts slow-consumer disconnects, idle reaps and expired
// sessions exactly.
//
// Resume: sessions are keyed by the HELLO session id and survive
// disconnects. The server tracks the next undecided wire sequence number
// per session; a reconnecting client is WELCOMEd with that cursor and
// re-sends from there, while anything below the cursor (overlap from a
// cut batch) is skipped as a duplicate - every frame is admitted exactly
// once, wherever the previous connection died.
#ifndef NAVARCHOS_NET_INGEST_SERVER_H_
#define NAVARCHOS_NET_INGEST_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "history/history_service.h"
#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "service/fleet_service.h"
#include "util/status.h"

/// \file
/// \brief IngestServer: the poll-based TCP acceptor that feeds a
/// FleetService, with NACK shed reporting, TCP-level backpressure,
/// per-session resume cursors, bounded outbound queues (slow-consumer
/// disconnection), idle reaping of half-open peers and session GC.

namespace navarchos::net {

/// Configuration of an ingest server.
struct ServerConfig {
  /// Address to bind; loopback by default (the quickstart deployment).
  std::string bind_address = "127.0.0.1";
  /// Port to bind; 0 picks an ephemeral port (read it back with port()).
  std::uint16_t port = 0;
  /// Connections above this are accepted and immediately refused with an
  /// ERROR message.
  std::size_t max_connections = 64;
  /// Bound on one connection's queued-but-unsent outbound bytes. A peer
  /// that stops reading while the server still owes it ACKs/NACKs crosses
  /// this bound and is disconnected as a slow consumer instead of wedging
  /// the serving thread in a blocking send.
  std::size_t max_outbound_bytes = 256 * 1024;
  /// >0: connections with no transport activity (no bytes in, no flush
  /// progress out) for this long are reaped - the only way a silently
  /// dead half-open peer ever frees its connection and session binding.
  /// 0 disables reaping.
  int idle_timeout_ms = 0;
  /// >0: sessions that are unbound (no live connection) for this long are
  /// garbage-collected, cursor included, and counted in sessions_expired.
  /// Must exceed the longest disconnect a client may RESUME across: a
  /// client resuming an expired session restarts from cursor 0. 0 keeps
  /// sessions forever.
  int session_retention_ms = 0;
  /// Wraps each accepted socket in a Transport; null uses the plain
  /// non-blocking SocketTransport. The seam for FaultySocket in the chaos
  /// suites.
  TransportFactory transport_factory;
  /// History log served for QUERY messages (borrowed; must outlive the
  /// server). Null refuses every QUERY with a clean protocol ERROR - the
  /// front end then serves ingest only.
  history::HistoryService* history = nullptr;
  /// Sharded serving only: called from the serving thread for each vehicle
  /// a HELLO registers with a declared fleet-wide registration index (the
  /// HELLO fleet-order tail). The shard fleet aggregator uses it to place
  /// the vehicle in the fleet-wide flush order. When the peer sent no tail
  /// (a pre-shard-map client) the shard-local lane index is reported
  /// instead - the identity mapping, correct on the single-shard fleets
  /// such peers are limited to. Null ignores registrations entirely.
  std::function<void(std::int32_t vehicle_id, std::uint32_t fleet_order)>
      registration_hook;
  /// Sharded serving only: called from the serving thread for each ADMITTED
  /// frame, with the shard-local admission seq and the fleet-wide sequence
  /// number from the FRAMES fleet-seq tail - or, when the peer sent no
  /// tail (a pre-shard-map client), the local seq itself: the identity
  /// mapping, correct on the single-shard fleets such peers are limited
  /// to. The shard fleet aggregator uses it to merge per-shard ordered
  /// streams back into the fleet-wide total order. Duplicates below the
  /// resume cursor and shed frames are never reported. Null ignores
  /// admissions entirely.
  std::function<void(std::int32_t vehicle_id, std::uint64_t local_seq,
                     std::uint64_t fleet_seq)>
      admission_hook;
};

/// Counters of one server's lifetime; exact snapshots at any time.
///
/// Reset semantics: counters survive Stop()/Start() cycles and the served
/// service's Drain(); they are zeroed only by constructing a fresh server.
/// The values are views over `server.*` counters in the served service's
/// obs::MetricsRegistry - the single source of truth, so a wire-scraped
/// StatsSnapshot and this struct can never disagree.
///
/// Scrape self-invisibility (what makes a post-drain wire scrape equal the
/// in-process aggregate): `connections_accepted` counts a connection at
/// its first non-STATS message, not at accept time, so a scrape-only dial
/// is never counted; `stats_served` is incremented after the snapshot it
/// answers with was taken; and the session byte counters exclude
/// QUERY/RESULT/STATS traffic entirely.
struct ServerStats {
  /// Connections that spoke at least one non-STATS message (see above; a
  /// connection refused over max_connections is not counted either).
  std::uint64_t connections_accepted = 0;
  std::uint64_t sessions_started = 0;      ///< Distinct HELLO session ids.
  std::uint64_t resumes = 0;               ///< HELLOs onto a known session.
  std::uint64_t frames_received = 0;       ///< Frames decoded off the wire.
  std::uint64_t frames_admitted = 0;       ///< Accepted by the service.
  std::uint64_t frames_shed = 0;           ///< NACKed back to the client.
  std::uint64_t duplicates_skipped = 0;    ///< Below a resume cursor.
  std::uint64_t protocol_errors = 0;       ///< Connections dropped on ERROR.
  std::uint64_t slow_consumer_disconnects = 0;  ///< Outbound bound exceeded.
  std::uint64_t idle_reaps = 0;            ///< Idle-deadline disconnections.
  std::uint64_t sessions_expired = 0;      ///< Retention-GCed sessions.
  std::uint64_t queries_served = 0;        ///< QUERYs answered with RESULTs.
  std::uint64_t stats_served = 0;          ///< STATS scrapes answered.
  /// Framed bytes of session-path messages (HELLO/FRAMES/FIN/ERROR in,
  /// WELCOME/ACK/NACK/ERROR out), frame overhead included. QUERY/RESULT
  /// and STATS traffic is excluded so reads never perturb the counters
  /// they report.
  std::uint64_t session_bytes_in = 0;
  std::uint64_t session_bytes_out = 0;
};

/// TCP front end feeding one FleetService. Lifecycle:
///
/// \code
///   service::FleetService svc(config);
///   net::IngestServer server(&svc, {});
///   NAVARCHOS_CHECK(server.Start().ok());
///   ... clients stream; server.WaitForFinishedSessions(1) ...
///   server.Stop();
///   svc.Drain();
/// \endcode
///
/// Threading: Start spawns the single serving thread; Start/Stop/stats and
/// the waits may be called from any other thread. The served FleetService
/// must outlive the server and is fed only from the serving thread.
class IngestServer {
 public:
  /// Binds nothing yet; `service` is borrowed and must outlive the server.
  IngestServer(service::FleetService* service, const ServerConfig& config);

  /// Stops the serving thread (if running) and closes every socket.
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds the configured address and spawns the serving thread. Errors
  /// (address in use, invalid address) are returned, not thrown.
  util::Status Start();

  /// Wakes the serving thread, joins it, and closes all sockets. Returns
  /// promptly even when the serving thread is blocked inside a kBlock-lane
  /// Ingest: the stop flag is polled per admitted frame, so the thread
  /// abandons the remaining backlog (those frames stay below the resume
  /// cursor and are simply re-requested later). Sessions' cursors are kept
  /// (a later Start on the same server object resumes them). Idempotent.
  void Stop();

  /// Port actually bound (meaningful after a successful Start).
  std::uint16_t port() const;

  /// Installs the shard topology this server advertises in every WELCOME.
  /// A shard group sets it after all shards bound their listeners (the map
  /// needs every port); until then WELCOMEs advertise the unsharded
  /// default. Thread-safe against the serving thread.
  void set_shard_map(const ShardMapInfo& map);

  /// Installs the shard id this server reports in STATS response tails
  /// (meaningful only alongside a sharded set_shard_map; 0, the default,
  /// is what an unsharded server reports). Thread-safe.
  void set_shard_id(std::uint32_t shard_id);

  /// Counter snapshot; thread-safe at any time.
  ServerStats stats() const;

  /// Number of sessions that ended with FIN so far.
  std::uint64_t finished_sessions() const;

  /// Blocks until at least `count` sessions finished with FIN, or until
  /// `timeout_ms` elapsed (0 waits forever). Returns whether the count was
  /// reached.
  bool WaitForFinishedSessions(std::uint64_t count, std::int64_t timeout_ms = 0);

 private:
  using Clock = std::chrono::steady_clock;

  /// One client session, keyed by HELLO session id; survives disconnects.
  struct Session {
    std::uint64_t next_expected = 0;  ///< First undecided wire seq.
    std::uint64_t sheds = 0;          ///< NACKs sent so far.
    bool finished = false;            ///< FIN received.
    /// A live connection currently owns this session. A second HELLO for a
    /// bound session is refused - two connections interleaving one cursor
    /// would break the exactly-once admission contract.
    bool bound = false;
    /// When the session last lost its connection; the retention GC clock.
    Clock::time_point last_unbound{};
  };

  /// One live connection and its reassembly state.
  struct Connection {
    std::unique_ptr<Transport> transport;
    MessageReader reader;
    Session* session = nullptr;  ///< Set by HELLO; owns session->bound.
    /// Queued-but-unsent outbound bytes ([outbound_off, outbound.size())).
    std::vector<std::uint8_t> outbound;
    std::size_t outbound_off = 0;
    bool draining = false;  ///< Graceful close: flush outbound, read no more.
    bool closing = false;   ///< Marked for removal after this cycle.
    /// Already counted in `server.connections_accepted` (lazily, at the
    /// connection's first non-STATS message - scrape-only dials stay
    /// invisible to the counters they read).
    bool counted_accept = false;
    Clock::time_point last_activity{};  ///< Last byte moved either way.

    /// Unsent outbound bytes still owed to the peer.
    std::size_t OutboundPending() const { return outbound.size() - outbound_off; }

    /// Unbinds the session on destruction (covers Stop(), where live
    /// connections are dropped without passing through a close path).
    ~Connection() {
      if (session != nullptr) {
        session->bound = false;
        session->last_unbound = Clock::now();
      }
    }
  };

  /// Serving-thread main loop: poll over wake pipe + listener + conns.
  void Serve();

  /// Handles readable bytes on `conn`; returns false when the connection
  /// must be closed gracefully (protocol error, FIN).
  bool HandleReadable(Connection* conn);

  /// Dispatches one reassembled message; returns false to close.
  bool HandleMessage(Connection* conn, const WireMessage& message);

  /// Runs a decoded QUERY against the configured history service and
  /// queues its paginated RESULT pages; returns false to close.
  bool HandleQuery(Connection* conn, const QueryMessage& query);

  /// Answers a STATS request: snapshots the served service's registry and
  /// queues the response (with the shard identity tail when sharded). The
  /// scrape counter is bumped only after the snapshot was taken, so a
  /// scrape never sees itself. Returns false to close.
  bool HandleStats(Connection* conn, const WireMessage& message);

  /// Queues `bytes` for non-blocking delivery to `conn`, flushing
  /// opportunistically; disconnects the peer as a slow consumer when its
  /// pending outbound crosses the configured bound.
  void QueueBytes(Connection* conn, const std::vector<std::uint8_t>& bytes);

  /// Writes as much pending outbound as the transport accepts right now.
  void FlushOutbound(Connection* conn);

  /// Graceful close: release the session binding, stop reading, keep the
  /// connection until its outbound (final ACK / ERROR) drained.
  void CloseGracefully(Connection* conn);

  /// Hard close: release the session binding and drop the connection at
  /// the end of this poll cycle, owed bytes included.
  void CloseNow(Connection* conn);

  /// Releases `conn`'s session binding (idempotent), stamping the
  /// session's retention clock.
  void UnbindSession(Connection* conn);

  /// Sends an ERROR frame (best effort) and counts the violation.
  void FailConnection(Connection* conn, const std::string& message);

  /// Poll timeout honouring the next idle/retention deadline (-1 when
  /// neither defence is enabled).
  int PollTimeoutMs() const;

  /// Reaps idle connections and expires unbound sessions past retention.
  void ReapIdleAndExpireSessions();

  service::FleetService* const service_;
  const ServerConfig config_;

  Listener listener_;
  std::thread thread_;
  int wake_pipe_[2] = {-1, -1};  ///< Self-pipe waking poll() for Stop().
  bool running_ = false;         ///< Guarded by mu_.
  /// Stop() latch, polled lock-free per admitted frame so the serving
  /// thread leaves even mid-backlog under kBlock lane backpressure.
  std::atomic<bool> stop_requested_{false};

  mutable std::mutex mu_;
  std::condition_variable finished_cv_;
  ShardMapInfo shard_map_;            ///< Advertised in WELCOME; by mu_.
  std::uint32_t shard_id_ = 0;        ///< Reported in STATS tails; by mu_.
  std::uint64_t finished_sessions_ = 0;  ///< Guarded by mu_.

  /// The `server.*` counters, registered in the served service's registry
  /// at construction (the single source of truth behind stats()). Two
  /// servers fronting one service would share and therefore aggregate
  /// these - by design, the registry is per service.
  struct Counters {
    obs::Counter* connections_accepted = nullptr;
    obs::Counter* sessions_started = nullptr;
    obs::Counter* resumes = nullptr;
    obs::Counter* frames_received = nullptr;
    obs::Counter* frames_admitted = nullptr;
    obs::Counter* frames_shed = nullptr;
    obs::Counter* duplicates_skipped = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* slow_consumer_disconnects = nullptr;
    obs::Counter* idle_reaps = nullptr;
    obs::Counter* sessions_expired = nullptr;
    obs::Counter* queries_served = nullptr;
    obs::Counter* stats_served = nullptr;
    obs::Counter* session_bytes_in = nullptr;
    obs::Counter* session_bytes_out = nullptr;
  };
  Counters counters_;

  /// Sessions by id; touched only by the serving thread while it runs,
  /// and by Start/Stop while it does not.
  std::map<std::string, Session> sessions_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace navarchos::net

#endif  // NAVARCHOS_NET_INGEST_SERVER_H_
