#include "runtime/thread_pool.h"

#include <algorithm>

namespace navarchos::runtime {
namespace {

/// Identifies the pool worker executing the current thread, if any, so that
/// reentrant submissions land on the submitting worker's own queue.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};

thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const std::size_t count = static_cast<std::size_t>(std::max(1, threads));
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::AttachMetrics(obs::MetricsRegistry* registry) {
  // Histogram first: a task may observe tasks_posted_ != null and expect
  // the histogram to be there too, so publish in dependency order.
  task_latency_us_.store(registry->histogram("pool.task_us"),
                         std::memory_order_release);
  tasks_executed_.store(registry->counter("pool.tasks_executed"),
                        std::memory_order_release);
  tasks_posted_.store(registry->counter("pool.tasks_posted"),
                      std::memory_order_release);
}

void ThreadPool::RunTask(std::function<void()>& task) {
  obs::Histogram* latency =
      task_latency_us_.load(std::memory_order_acquire);
  if (latency == nullptr) {
    task();
    return;
  }
  const std::uint64_t start = obs::MonotonicMicros();
  task();
  latency->Record(obs::MonotonicMicros() - start);
  if (obs::Counter* executed =
          tasks_executed_.load(std::memory_order_acquire);
      executed != nullptr)
    executed->Increment();
}

void ThreadPool::Post(std::function<void()> task) {
  if (obs::Counter* posted = tasks_posted_.load(std::memory_order_acquire);
      posted != nullptr)
    posted->Increment();
  std::size_t target;
  if (tls_worker.pool == this) {
    target = tls_worker.index;  // Reentrant: keep subtasks on our own queue.
  } else {
    std::lock_guard<std::mutex> lock(wake_mu_);
    target = round_robin_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::PopTask(std::size_t self, std::function<void()>* task) {
  // Own queue front first: a single worker preserves submission order.
  if (self < queues_.size()) {
    std::lock_guard<std::mutex> lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      *task = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of the other queues.
  for (std::size_t offset = 1; offset <= queues_.size(); ++offset) {
    const std::size_t victim = (self + offset) % queues_.size();
    if (victim == self) continue;
    std::lock_guard<std::mutex> lock(queues_[victim]->mu);
    if (!queues_[victim]->tasks.empty()) {
      *task = std::move(queues_[victim]->tasks.back());
      queues_[victim]->tasks.pop_back();
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  const std::size_t self =
      tls_worker.pool == this ? tls_worker.index : queues_.size();
  if (!PopTask(self, &task)) return false;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    --pending_;
    ++executing_;
  }
  RunTask(task);
  FinishTask();
  return true;
}

void ThreadPool::FinishTask() {
  std::lock_guard<std::mutex> lock(wake_mu_);
  if (--executing_ == 0 && pending_ <= 0) idle_cv_.notify_all();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this]() { return pending_ <= 0 && executing_ == 0; });
}

void ThreadPool::WorkerLoop(std::size_t index) {
  tls_worker = WorkerIdentity{this, index};
  while (true) {
    std::function<void()> task;
    if (PopTask(index, &task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        --pending_;
        ++executing_;
      }
      RunTask(task);
      FinishTask();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this]() { return stop_ || pending_ > 0; });
    // Drain everything still queued before honouring shutdown: tasks posted
    // before the destructor ran must execute, not vanish.
    if (stop_ && pending_ <= 0) return;
  }
}

}  // namespace navarchos::runtime
