// Deterministic data-parallel primitives over ThreadPool.
//
// ParallelFor/ParallelMap split an index range over workers that claim
// indices from a shared atomic counter (work stealing at item granularity),
// and results are always collected by index - never by completion order -
// so the output is bit-identical at any thread count. The serial path
// (threads == 1, or fewer than two items) runs the body inline on the
// calling thread without spawning anything: the exact pre-runtime code path.
//
// Stream discipline for callers: any randomness inside a parallel body must
// come from an Rng forked per index (util::Rng::Fork(stream), stream derived
// from the index alone), never from a generator shared across indices.
#ifndef NAVARCHOS_RUNTIME_PARALLEL_H_
#define NAVARCHOS_RUNTIME_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/runtime_config.h"
#include "runtime/thread_pool.h"

/// \file
/// \brief ParallelFor/ParallelMap, the deterministic data-parallel
/// primitives (index-claimed work, index-aligned reduction, inline serial
/// path at threads == 1).

namespace navarchos::runtime {

/// Invokes `body(i)` for every i in [0, n). Indices are claimed dynamically
/// by up to config.ResolveThreads() threads (the calling thread included),
/// so long items do not serialise behind short ones. Blocks until every
/// index completed. If any invocation throws, one of the exceptions is
/// rethrown here after all indices finished.
void ParallelFor(const RuntimeConfig& config, std::size_t n,
                 const std::function<void(std::size_t)>& body);

/// ParallelFor over an existing pool; the calling thread participates.
/// Safe to call from inside a pool task (the caller then helps execute).
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& body);

/// Maps [0, n) through `fn`, collecting results into an index-aligned
/// vector (deterministic ordered reduction). T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> ParallelMap(const RuntimeConfig& config, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(config, n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace navarchos::runtime

#endif  // NAVARCHOS_RUNTIME_PARALLEL_H_
