// Execution-runtime configuration plumbed through the hot layers.
//
// Every parallelised entry point (telemetry::GenerateFleet, core::RunFleet,
// eval::RunGrid) accepts a RuntimeConfig and guarantees the *determinism
// invariant*: the returned data is bit-identical at any thread count. The
// thread count only changes wall-clock time (and wall-clock measurement
// fields such as CellResult::runtime_seconds), never results.
#ifndef NAVARCHOS_RUNTIME_RUNTIME_CONFIG_H_
#define NAVARCHOS_RUNTIME_RUNTIME_CONFIG_H_

/// \file
/// \brief RuntimeConfig, the thread-count knob plumbed through every
/// parallelised entry point; results are bit-identical at any value.

/// \namespace navarchos
/// \brief Root namespace of the Navarchos-PdM reproduction.

/// \namespace navarchos::runtime
/// \brief Deterministic parallel execution runtime: thread pool, data
/// parallel primitives, bounded queues and their configuration. Every
/// construct preserves the determinism invariant - outputs are
/// bit-identical at any thread count.

namespace navarchos::runtime {

/// Knobs of the parallel execution runtime.
struct RuntimeConfig {
  /// Worker threads for parallel regions.
  ///   0  = one per hardware thread (std::thread::hardware_concurrency);
  ///   1  = strictly serial: parallel primitives run inline on the calling
  ///        thread, spawning nothing (the exact pre-runtime code path);
  ///   N  = at most N threads (capped by the work-item count).
  int threads = 1;

  /// Thread count with 0 resolved to the hardware concurrency. Always >= 1.
  int ResolveThreads() const;

  /// A strictly serial runtime (the library default).
  static RuntimeConfig Serial() { return RuntimeConfig{1}; }

  /// One thread per hardware thread.
  static RuntimeConfig AllCores() { return RuntimeConfig{0}; }
};

}  // namespace navarchos::runtime

#endif  // NAVARCHOS_RUNTIME_RUNTIME_CONFIG_H_
