#include "runtime/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace navarchos::runtime {
namespace {

void SerialFor(std::size_t n, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < n; ++i) body(i);
}

}  // namespace

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || n <= 1) {
    SerialFor(n, body);
    return;
  }

  // Shared driver state: workers and the caller claim indices off `next`.
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  // Helpers posted to the pool; the caller is an additional, uncounted
  // driver. The loop is complete when every helper exited AND the caller's
  // own drive exhausted the index range (a helper only exits once the range
  // is exhausted, so active == 0 implies no index is still in flight).
  std::size_t active = std::min(pool->size(), n - 1);

  auto drive = [&]() {
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= n) return;
      try {
        body(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const std::size_t helpers = active;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->Post([&]() {
      drive();
      std::lock_guard<std::mutex> lock(mu);
      if (--active == 0) done_cv.notify_all();
    });
  }

  drive();  // The caller works too instead of blocking idle.

  // Help with anything still queued before blocking. In particular our own
  // helper tasks: when this ParallelFor runs inside a pool task (nested
  // parallelism on a shared pool) the caller occupies a worker, and
  // blocking on it while helpers wait in its queue would deadlock. Once
  // TryRunOneTask finds nothing, every helper has been popped (all were
  // posted before drive() began), so a plain wait is safe.
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu);
      if (active == 0) break;
    }
    if (!pool->TryRunOneTask()) {
      std::unique_lock<std::mutex> lock(mu);
      done_cv.wait(lock, [&]() { return active == 0; });
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu);
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(const RuntimeConfig& config, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  const std::size_t threads =
      std::min(static_cast<std::size_t>(config.ResolveThreads()), n);
  if (threads <= 1) {
    SerialFor(n, body);  // Strictly serial: nothing is spawned.
    return;
  }
  // The caller participates, so the pool only needs threads - 1 workers.
  ThreadPool pool(static_cast<int>(threads) - 1);
  ParallelFor(&pool, n, body);
}

}  // namespace navarchos::runtime
