// Bounded FIFO queue with blocking and rejecting backpressure: the ingest
// primitive under the streaming fleet service's per-vehicle lanes.
//
// Mutex + condition-variable implementation, deliberately simple: one lane
// carries one vehicle's frames (single producer, single pump consumer at a
// time), so lock contention is negligible next to monitor work, and the
// blocking semantics are exactly what backpressure needs - a full queue
// makes the producer wait (kBlock) or hands it an immediate refusal
// (TryPush, for kReject policies) instead of growing without bound.
//
// Shutdown protocol: Close() refuses all further pushes while Pop/TryPop
// keep draining whatever was accepted before the close - an accepted item
// is never lost. Pop returns false only when the queue is closed AND empty.
#ifndef NAVARCHOS_RUNTIME_BOUNDED_QUEUE_H_
#define NAVARCHOS_RUNTIME_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/check.h"

/// \file
/// \brief BoundedQueue, the blocking/rejecting bounded FIFO under the
/// streaming service's per-vehicle ingest lanes.

namespace navarchos::runtime {

/// Thread-safe bounded FIFO queue with backpressure and drain-on-close.
///
/// All members may be called concurrently from any number of producer and
/// consumer threads; FIFO order is global (items pop in exactly the order
/// their pushes were admitted).
template <typename T>
class BoundedQueue {
 public:
  /// Creates a queue admitting at most `capacity` buffered items
  /// (`capacity` must be >= 1).
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    NAVARCHOS_CHECK(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push: waits while the queue is full. Returns true when the
  /// item was admitted, false when the queue was closed (the item is
  /// dropped; closed queues admit nothing).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this]() { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: admits the item only if the queue has space and is
  /// open; otherwise returns false immediately (rejection backpressure).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: waits while the queue is empty and open. Returns true
  /// with the oldest item in `*out`, or false once the queue is closed and
  /// fully drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this]() { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop: returns true with the oldest item in `*out`, false
  /// when nothing is currently buffered (whether open or closed).
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue: all current and future pushes fail, blocked pushers
  /// wake with false, and consumers drain the remaining items before Pop
  /// reports exhaustion. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// True once Close() has been called.
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Number of items currently buffered.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// True when nothing is currently buffered.
  bool Empty() const { return size() == 0; }

  /// Maximum number of buffered items.
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace navarchos::runtime

#endif  // NAVARCHOS_RUNTIME_BOUNDED_QUEUE_H_
