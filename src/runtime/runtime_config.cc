#include "runtime/runtime_config.h"

#include <thread>

namespace navarchos::runtime {

int RuntimeConfig::ResolveThreads() const {
  if (threads > 0) return threads;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

}  // namespace navarchos::runtime
