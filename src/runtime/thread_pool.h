// Work-stealing thread pool: the execution engine under ParallelFor/Map.
//
// Each worker owns a deque. Submissions from outside the pool are
// distributed round-robin; submissions from inside a worker (reentrant
// submission, e.g. a task spawning subtasks) go to the submitting worker's
// own queue. Owners pop from the front of their queue - a single-worker
// pool therefore executes tasks in submission order - while idle workers
// steal from the back of a victim's queue, so imbalanced task durations
// (one grid cell running 100x longer than another) still saturate the pool.
//
// The pool itself is completion-order agnostic; determinism is layered on
// top by ParallelFor/ParallelMap, which assign results to index-aligned
// slots and never reduce in completion order.
#ifndef NAVARCHOS_RUNTIME_THREAD_POOL_H_
#define NAVARCHOS_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

/// \file
/// \brief ThreadPool, the fixed-size work-stealing pool under ParallelFor,
/// ParallelMap and the streaming service's lane pumps.

namespace navarchos::runtime {

/// Fixed-size work-stealing thread pool.
///
/// Thread-safe: Submit/Post may be called concurrently from any thread,
/// including from tasks already running on the pool. The destructor drains
/// every queued task before joining the workers.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  /// Signals shutdown, drains all still-queued tasks, joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task.
  void Post(std::function<void()> task);

  /// Enqueues a task and returns a future for its result. Exceptions thrown
  /// by the task are captured and rethrown by future.get().
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    Post([packaged]() { (*packaged)(); });
    return future;
  }

  /// Runs one queued task on the calling thread if any is available.
  /// Lets a thread blocked on pool work help instead of idling; safe to
  /// call from inside a task (reentrant).
  bool TryRunOneTask();

  /// Blocks until the pool is idle: no task queued and none executing.
  /// Tasks posted by still-running tasks are waited for too (the pool only
  /// counts as idle once the whole cascade has finished), which is what a
  /// graceful service drain needs. Must not be called from inside a pool
  /// task (it would wait for itself).
  void WaitIdle();

  /// Registers the pool's metrics in `registry` and starts reporting:
  /// `pool.tasks_posted` / `pool.tasks_executed` counters and the
  /// `pool.task_us` task-latency histogram. Observe-only - nothing in the
  /// pool's scheduling reads these. Call once, before tasks are posted
  /// (typically by whoever owns both the pool and the registry); the
  /// registry must outlive the pool.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(std::size_t index);
  /// Pops a task: front of `self`'s queue first, then steals from the back
  /// of the other queues. `self` == size() means "not a worker".
  bool PopTask(std::size_t self, std::function<void()>* task);
  /// Marks one popped task finished and wakes WaitIdle when the pool drains.
  void FinishTask();

  /// Runs `task`, timing it into the attached histogram (when any).
  void RunTask(std::function<void()>& task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  /// Observability (null until AttachMetrics): cached metric pointers, so
  /// the per-task cost is two relaxed adds and one clock read.
  std::atomic<obs::Counter*> tasks_posted_{nullptr};
  std::atomic<obs::Counter*> tasks_executed_{nullptr};
  std::atomic<obs::Histogram*> task_latency_us_{nullptr};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;  ///< Signalled when the pool goes idle.
  std::int64_t pending_ = 0;    ///< Queued, not yet popped (guarded by wake_mu_).
  std::int64_t executing_ = 0;  ///< Popped, still running (guarded by wake_mu_).
  bool stop_ = false;           ///< Guarded by wake_mu_.
  std::size_t round_robin_ = 0;  ///< Guarded by wake_mu_.
};

}  // namespace navarchos::runtime

#endif  // NAVARCHOS_RUNTIME_THREAD_POOL_H_
