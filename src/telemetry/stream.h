// Interleaved fleet streams: the wire format of the streaming service layer.
//
// The batch pipeline walks each vehicle's records and events separately;
// a live deployment sees ONE multiplexed feed in which frames from many
// vehicles arrive interleaved by time. SensorFrame is that feed's unit (a
// telemetry record or a fleet event, tagged), and the replayer functions
// below turn a recorded FleetDataset into the exact frame sequence a live
// ingest would deliver - optionally pushed through the PR-1 CorruptionModel
// first, so corruption studies compose with the streaming service.
#ifndef NAVARCHOS_TELEMETRY_STREAM_H_
#define NAVARCHOS_TELEMETRY_STREAM_H_

#include <cstdint>
#include <vector>

#include "telemetry/corruption.h"
#include "telemetry/fleet.h"
#include "telemetry/types.h"

/// \file
/// \brief SensorFrame (the unit of a multiplexed live fleet feed) and the
/// deterministic stream replayer that flattens a recorded FleetDataset into
/// the frame sequence a live ingest would deliver.

namespace navarchos::telemetry {

/// One frame of a multiplexed fleet feed: either a telemetry record or a
/// fleet event, tagged by kind. Exactly one of `record`/`event` is
/// meaningful, selected by `kind`.
struct SensorFrame {
  /// Discriminator of the frame payload.
  enum class Kind : int {
    kRecord = 0,  ///< `record` carries a telemetry Record.
    kEvent = 1,   ///< `event` carries a FleetEvent.
  };

  /// Which payload member is valid.
  Kind kind = Kind::kRecord;
  /// The telemetry record; meaningful when `kind == Kind::kRecord`.
  Record record;
  /// The fleet event; meaningful when `kind == Kind::kEvent`.
  FleetEvent event;

  /// Wraps a telemetry record into a frame.
  static SensorFrame OfRecord(Record r);

  /// Wraps a fleet event into a frame.
  static SensorFrame OfEvent(FleetEvent e);

  /// Vehicle the frame belongs to (routing key of the service layer).
  std::int32_t vehicle_id() const {
    return kind == Kind::kRecord ? record.vehicle_id : event.vehicle_id;
  }

  /// Nominal timestamp of the payload. Note that a corrupted stream is in
  /// *delivery* order, so timestamps may run backwards locally.
  Minute timestamp() const {
    return kind == Kind::kRecord ? record.timestamp : event.timestamp;
  }
};

/// Flattens one vehicle's history into its frame sequence: records and
/// events merged by timestamp with events first on ties (a same-minute
/// service resets Ref before the next measurement arrives) - the exact
/// delivery order the batch runner feeds a VehicleMonitor, so replaying the
/// stream through `VehicleMonitor::OnFrame` reproduces `core::RunFleet`
/// bit-for-bit.
std::vector<SensorFrame> MakeVehicleStream(const VehicleHistory& vehicle);

/// Interleaves every vehicle of `fleet` into one multiplexed feed: a k-way
/// merge that repeatedly emits the front frame of the vehicle whose head
/// timestamp is smallest (ties broken by fleet vehicle index). Per-vehicle
/// delivery order is always preserved - even when a vehicle's own stream is
/// locally out of order (corrupted input) - so the merge is deterministic
/// and composes with CorruptionModel delivery perturbations.
std::vector<SensorFrame> InterleaveFleetStream(const FleetDataset& fleet);

/// Same interleaving with each vehicle's records first pushed through
/// `model` (events are untouched - corruption is a telemetry-transport
/// phenomenon). Injected corruptions are appended to `manifest` when
/// non-null, in fleet vehicle order, exactly as
/// `CorruptionModel::CorruptFleet` records them.
std::vector<SensorFrame> InterleaveFleetStream(const FleetDataset& fleet,
                                               const CorruptionModel& model,
                                               CorruptionManifest* manifest = nullptr);

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_STREAM_H_
