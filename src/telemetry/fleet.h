// Fleet generation: the simulated stand-in for the proprietary Navarchos
// dataset (paper §1-2).
//
// Reproduced structure:
//  * 40 vehicles monitored for one year at one record per operating minute
//    (~1.5M records at paper scale);
//  * only 26 vehicles "report": their service/repair events reach the FMS;
//    the other 14 have events in reality but none recorded (setting40 noise);
//  * 9 recorded repair (failure) events on 9 distinct reporting vehicles;
//  * a handful of hidden failures on non-reporting vehicles ("there may
//    exist actual failures unknown to us");
//  * ~121 recorded events of interest overall (services, repairs, other);
//  * DTCs that mostly fail to anticipate repairs (paper Fig. 1);
//  * occasional sensor-faulty records and stationary minutes that the
//    pipeline must filter out.
#ifndef NAVARCHOS_TELEMETRY_FLEET_H_
#define NAVARCHOS_TELEMETRY_FLEET_H_

#include <cstdint>
#include <vector>

#include "runtime/runtime_config.h"
#include "telemetry/faults.h"
#include "telemetry/types.h"
#include "telemetry/vehicle.h"
#include "telemetry/weather.h"

namespace navarchos::telemetry {

/// Knobs of the fleet simulation.
struct FleetConfig {
  int num_vehicles = 40;
  int num_reporting = 26;          ///< Vehicles whose events are recorded.
  int num_recorded_failures = 9;   ///< Repair events visible to the FMS.
  int num_hidden_failures = 2;     ///< Failures on non-reporting vehicles.
  int days = 365;
  int fault_lead_days = 30;        ///< Degradation window before each repair.
  double service_interval_days = 75.0;   ///< Mean days between services.
  double service_record_prob = 0.85;     ///< P(recorded | reporting vehicle).
  double other_events_per_vehicle = 1.5; ///< Mean misc. recorded events.
  double sensor_fault_rate = 0.0015;     ///< P(corrupt record).
  double dtc_rate_per_day = 0.010;       ///< Baseline random pending-DTC rate.
  std::uint64_t seed = 42;
  WeatherConfig weather;

  /// Paper-scale preset: 40 vehicles, 365 days (~1.5M records).
  static FleetConfig PaperScale();

  /// Reduced preset for fast benches/tests: 150 days (~0.6M records).
  static FleetConfig BenchScale();

  /// Tiny preset for unit tests: 8 vehicles, 60 days.
  static FleetConfig TestScale();
};

/// Everything simulated for one vehicle.
struct VehicleHistory {
  VehicleSpec spec;
  bool reporting = true;                ///< Events reach the FMS platform.
  std::vector<Record> records;          ///< Time-ordered operating minutes.
  std::vector<FleetEvent> events;       ///< Time-ordered, incl. unrecorded.
  std::vector<FaultInstance> faults;    ///< Ground-truth degradations.

  /// Events visible to the platform (recorded == true), time-ordered.
  std::vector<FleetEvent> RecordedEvents() const;

  /// Timestamps of recorded repair events (the evaluation targets).
  std::vector<Minute> RecordedRepairTimes() const;

  /// Timestamps of all repairs, recorded or not (diagnostics only).
  std::vector<Minute> TrueRepairTimes() const;
};

/// A generated fleet.
struct FleetDataset {
  FleetConfig config;
  std::vector<VehicleHistory> vehicles;

  /// Total record count across vehicles.
  std::size_t TotalRecords() const;

  /// Count of recorded events across vehicles.
  std::size_t TotalRecordedEvents() const;

  /// Restriction to reporting vehicles: the paper's setting26.
  FleetDataset ReportingSubset() const;

  /// Fraction of records lying within `horizon_days` before a recorded
  /// repair of their vehicle (the paper reports 3.6% / 1.9% for 30/15 days).
  double FailureStateFraction(int horizon_days) const;
};

/// Generates a fleet deterministically from `config.seed`.
///
/// Vehicles are synthesised in parallel on `runtime.threads` workers; each
/// vehicle draws from its own forked Rng stream (master.Fork(100 + v)), so
/// the dataset is bit-identical at any thread count. The single-argument
/// overload runs strictly serially.
FleetDataset GenerateFleet(const FleetConfig& config,
                           const runtime::RuntimeConfig& runtime);
FleetDataset GenerateFleet(const FleetConfig& config);

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_FLEET_H_
