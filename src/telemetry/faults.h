// Fault and degradation modelling.
//
// The central modelling decision of this reproduction: faults are expressed
// as perturbations of the *couplings* between signals, not as level shifts.
// A failing thermostat changes how coolantTemp co-moves with speed; a
// drifting MAF sensor breaks the rpm*map -> MAF relation; an intake leak
// distorts the rpm <-> map relation. This is precisely the structure the
// paper's correlation transform detects and what raw-value distances miss,
// so the simulator exercises the same mechanism the paper observed on the
// proprietary Navarchos fleet.
#ifndef NAVARCHOS_TELEMETRY_FAULTS_H_
#define NAVARCHOS_TELEMETRY_FAULTS_H_

#include <span>
#include <string>
#include <vector>

#include "telemetry/types.h"
#include "util/rng.h"

namespace navarchos::telemetry {

/// Fault families simulated in the fleet.
enum class FaultType : int {
  kThermostatStuckOpen = 0,  ///< Coolant regulation lost; temp follows load/airflow.
  kMafSensorDrift = 1,       ///< MAF reading gain drifts and gets noisy.
  kIntakeLeak = 2,           ///< Unmetered air: MAP offset at low load.
  kCoolantRestriction = 3,   ///< Radiator clog: coolant overshoots with load.
  kInjectorDegradation = 4,  ///< Misfire-like rpm instability and torque loss.
};

/// Number of fault families.
inline constexpr int kNumFaultTypes = 5;

/// Display name of a fault family.
const char* FaultTypeName(FaultType type);

/// Instantaneous effect of active faults on the engine model, already scaled
/// by severity. All members are zero in a healthy vehicle.
struct FaultEffects {
  double thermostat_open = 0.0;   ///< [0,1] loss of coolant regulation.
  double maf_gain_delta = 0.0;    ///< Fractional MAF reading drift (+/-).
  double maf_noise_frac = 0.0;    ///< Extra multiplicative MAF noise.
  double map_leak_kpa = 0.0;      ///< Manifold pressure offset at low load.
  double coolant_load_gain = 0.0; ///< Extra coolant deg C per unit load.
  double rpm_noise_frac = 0.0;    ///< Extra multiplicative rpm noise.
  double combustion_loss = 0.0;   ///< [0,1) torque loss (raises load for a speed).

  /// Accumulates another effect set (faults are additive at this level).
  void Add(const FaultEffects& other);
};

/// One fault: a degradation that ramps up over a lead window and ends with a
/// repair event (or runs to the end of monitoring when never repaired).
struct FaultInstance {
  int fault_id = 0;
  std::int32_t vehicle_id = 0;
  FaultType type = FaultType::kThermostatStuckOpen;
  Minute onset = 0;        ///< Severity starts ramping here.
  Minute repair_time = 0;  ///< Severity peaks here; zero afterwards.
  double peak_severity = 1.0;

  /// Smooth severity in [0, peak]: 0 before onset, smoothstep ramp up to the
  /// repair time, 0 after (the repair fixes the fault).
  double SeverityAt(Minute t) const;
};

/// Effects of a single fault at severity `s`.
FaultEffects EffectsOf(FaultType type, double severity);

/// Combined effect of all faults of one vehicle at time `t`.
FaultEffects CombinedEffectsAt(std::span<const FaultInstance> faults, Minute t);

/// Draws a fault type (uniformly) and a peak severity for a new fault.
FaultInstance SampleFault(int fault_id, std::int32_t vehicle_id, Minute repair_time,
                          int lead_days, util::Rng& rng);

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_FAULTS_H_
