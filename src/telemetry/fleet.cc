#include "telemetry/fleet.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "runtime/parallel.h"
#include "telemetry/driving_cycle.h"
#include "telemetry/engine_model.h"
#include "util/check.h"

namespace navarchos::telemetry {

FleetConfig FleetConfig::PaperScale() { return FleetConfig{}; }

FleetConfig FleetConfig::BenchScale() {
  FleetConfig config;
  config.days = 150;
  config.service_interval_days = 45.0;
  return config;
}

FleetConfig FleetConfig::TestScale() {
  FleetConfig config;
  config.num_vehicles = 8;
  config.num_reporting = 6;
  config.num_recorded_failures = 2;
  config.num_hidden_failures = 1;
  config.days = 60;
  config.fault_lead_days = 14;
  config.service_interval_days = 20.0;
  return config;
}

std::vector<FleetEvent> VehicleHistory::RecordedEvents() const {
  std::vector<FleetEvent> out;
  for (const FleetEvent& event : events)
    if (event.recorded) out.push_back(event);
  return out;
}

std::vector<Minute> VehicleHistory::RecordedRepairTimes() const {
  std::vector<Minute> out;
  for (const FleetEvent& event : events)
    if (event.recorded && event.type == EventType::kRepair) out.push_back(event.timestamp);
  return out;
}

std::vector<Minute> VehicleHistory::TrueRepairTimes() const {
  std::vector<Minute> out;
  for (const FleetEvent& event : events)
    if (event.type == EventType::kRepair) out.push_back(event.timestamp);
  return out;
}

std::size_t FleetDataset::TotalRecords() const {
  std::size_t total = 0;
  for (const auto& vehicle : vehicles) total += vehicle.records.size();
  return total;
}

std::size_t FleetDataset::TotalRecordedEvents() const {
  std::size_t total = 0;
  for (const auto& vehicle : vehicles) total += vehicle.RecordedEvents().size();
  return total;
}

FleetDataset FleetDataset::ReportingSubset() const {
  FleetDataset subset;
  subset.config = config;
  for (const auto& vehicle : vehicles)
    if (vehicle.reporting) subset.vehicles.push_back(vehicle);
  return subset;
}

double FleetDataset::FailureStateFraction(int horizon_days) const {
  const Minute horizon = static_cast<Minute>(horizon_days) * kMinutesPerDay;
  std::size_t in_failure_state = 0;
  std::size_t total = 0;
  for (const auto& vehicle : vehicles) {
    const auto repairs = vehicle.RecordedRepairTimes();
    total += vehicle.records.size();
    for (const Record& record : vehicle.records) {
      for (Minute repair : repairs) {
        if (record.timestamp <= repair && record.timestamp > repair - horizon) {
          ++in_failure_state;
          break;
        }
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(in_failure_state) /
                                static_cast<double>(total);
}

namespace {

/// Plans service events for one vehicle. Services happen regardless of
/// reporting status; recording is decided separately.
std::vector<Minute> PlanServiceTimes(const FleetConfig& config, util::Rng& rng) {
  std::vector<Minute> services;
  double day = rng.Uniform(10.0, config.service_interval_days);
  while (day < static_cast<double>(config.days) - 2.0) {
    services.push_back(static_cast<Minute>(day) * kMinutesPerDay +
                       rng.UniformInt(9 * 60, 17 * 60));
    day += config.service_interval_days * rng.Uniform(0.7, 1.3);
  }
  return services;
}

/// A real OBD-II style DTC code for event realism.
std::string SampleDtcCode(util::Rng& rng) {
  static const char* kCodes[] = {"P0101", "P0113", "P0128", "P0171", "P0300",
                                 "P0325", "P0420", "P0442", "P0455", "P0507"};
  return kCodes[rng.UniformInt(0, 9)];
}

/// DTC behaviour archetypes reproducing paper Fig. 1: DTCs mostly do NOT
/// anticipate repairs.
enum class DtcStyle {
  kQuiet,          ///< Almost no DTCs (Fig. 1 vehicles 2/3).
  kNoisyAfterFix,  ///< Burst of stored DTCs long after a repair (vehicle 1).
  kRandom,         ///< Sporadic pending DTCs uncorrelated with anything.
  kPredictive,     ///< Rare: a DTC shortly before the failure (vehicle 4).
};

void EmitDtcs(const FleetConfig& config, const VehicleHistory& vehicle, DtcStyle style,
              std::vector<FleetEvent>* events, util::Rng& rng) {
  const Minute end = static_cast<Minute>(config.days) * kMinutesPerDay;
  auto emit = [&](Minute t, EventType type) {
    if (t < 0 || t >= end) return;
    FleetEvent event;
    event.vehicle_id = vehicle.spec.id;
    event.timestamp = t;
    event.type = type;
    event.code = SampleDtcCode(rng);
    event.recorded = true;  // DTCs arrive over OBD for every vehicle.
    events->push_back(event);
  };

  // Baseline sporadic pending codes.
  const double rate = config.dtc_rate_per_day *
                      (style == DtcStyle::kRandom ? 3.0 : style == DtcStyle::kQuiet ? 0.15 : 1.0);
  double day = rng.Exponential(std::max(1e-9, rate));
  while (day < static_cast<double>(config.days)) {
    emit(static_cast<Minute>(day * kMinutesPerDay), EventType::kDtcPending);
    day += rng.Exponential(std::max(1e-9, rate));
  }

  if (style == DtcStyle::kNoisyAfterFix) {
    // Stored codes streaming for weeks after each repair without any new
    // failure (an ECU left in a confused state).
    for (Minute repair : vehicle.TrueRepairTimes()) {
      const int burst = static_cast<int>(rng.UniformInt(5, 12));
      for (int i = 0; i < burst; ++i) {
        emit(repair + rng.UniformInt(3, 60) * kMinutesPerDay, EventType::kDtcStored);
      }
    }
  }
  if (style == DtcStyle::kPredictive) {
    for (Minute repair : vehicle.TrueRepairTimes()) {
      emit(repair - rng.UniformInt(2, 12) * kMinutesPerDay, EventType::kDtcStored);
    }
  }
}

/// Corrupts a record the way flaky OBD readers do: stuck error constants or
/// a dropped channel.
void CorruptRecord(Record* record, util::Rng& rng) {
  switch (rng.UniformInt(0, 3)) {
    case 0:  // classic -40 C sensor dropout
      record->pids[static_cast<int>(Pid::kIntakeTemp)] = -40.0;
      break;
    case 1:  // MAF saturated error value
      record->pids[static_cast<int>(Pid::kMafAirFlowRate)] = 655.35;
      break;
    case 2:  // coolant sensor open circuit
      record->pids[static_cast<int>(Pid::kCoolantTemp)] = -40.0;
      break;
    default:  // speed dropout while the engine runs
      record->pids[static_cast<int>(Pid::kSpeed)] = 0.0;
      record->pids[static_cast<int>(Pid::kRpm)] = 8191.0;  // OBD max
      break;
  }
}

/// Synthesises one vehicle's events, DTC stream, faults, and telemetry.
/// Pure function of its inputs: every random draw comes from `rng` (the
/// vehicle's private fork of the fleet master), so vehicles can be built
/// concurrently in any order. `fault_id` is the vehicle's preassigned
/// ground-truth fault id (-1 when the vehicle does not fail).
void SynthesiseVehicle(const FleetConfig& config, const WeatherModel& weather,
                       const VehicleSpec& spec, bool is_reporting, bool fails,
                       int fault_id, VehicleHistory& vehicle, util::Rng rng) {
  const int v = spec.id;
  vehicle.spec = spec;
  vehicle.reporting = is_reporting;

  // --- Events: services, repair (if failing), other. ---
  for (Minute service_time : PlanServiceTimes(config, rng)) {
    FleetEvent event;
    event.vehicle_id = v;
    event.timestamp = service_time;
    event.type = EventType::kService;
    event.code = "standard_service";
    event.recorded = vehicle.reporting && rng.Bernoulli(config.service_record_prob);
    vehicle.events.push_back(event);
  }
  if (fails) {
    // Repair date late enough for a reference profile to exist first, but
    // clamped so very short simulations stay valid.
    const int latest_day = std::max(2, config.days - 3);
    const int min_day = std::min(
        std::max(config.fault_lead_days + 20, config.days / 3), latest_day);
    const Minute repair_time =
        static_cast<Minute>(rng.UniformInt(min_day, latest_day)) * kMinutesPerDay +
        rng.UniformInt(8 * 60, 18 * 60);
    FaultInstance fault = SampleFault(fault_id, v, repair_time,
                                      config.fault_lead_days, rng);
    vehicle.faults.push_back(fault);
    FleetEvent event;
    event.vehicle_id = v;
    event.timestamp = repair_time;
    event.type = EventType::kRepair;
    event.code = FaultTypeName(fault.type);
    event.recorded = vehicle.reporting;
    event.fault_id = fault.fault_id;
    vehicle.events.push_back(event);
  }
  if (vehicle.reporting) {
    const int extra = static_cast<int>(
        rng.UniformInt(0, static_cast<std::int64_t>(2.0 * config.other_events_per_vehicle)));
    for (int i = 0; i < extra; ++i) {
      FleetEvent event;
      event.vehicle_id = v;
      event.timestamp = rng.UniformInt(5, config.days - 1) * kMinutesPerDay +
                        rng.UniformInt(8 * 60, 18 * 60);
      event.type = EventType::kOther;
      event.code = "misc_event";
      event.recorded = true;
      vehicle.events.push_back(event);
    }
  }

  // --- DTC stream (paper Fig. 1 archetypes). ---
  const DtcStyle style = static_cast<DtcStyle>(
      rng.Categorical({0.45, 0.20, 0.25, 0.10}));
  EmitDtcs(config, vehicle, style, &vehicle.events, rng);

  std::sort(vehicle.events.begin(), vehicle.events.end(),
            [](const FleetEvent& a, const FleetEvent& b) {
              return a.timestamp < b.timestamp;
            });

  // --- Telemetry records. ---
  DrivingCycle cycle(vehicle.spec);
  EngineModel engine(vehicle.spec);
  const std::vector<UsageRegime> regimes = SampleRegimeSequence(config.days, rng);
  vehicle.records.reserve(static_cast<std::size_t>(
      config.days * vehicle.spec.daily_operating_minutes * 1.2));
  for (int day = 0; day < config.days; ++day) {
    const RegimeEffect regime = ApplyRegime(
        vehicle.spec.ride_mix, regimes[static_cast<std::size_t>(day)]);
    for (const Ride& ride :
         cycle.PlanDay(day, rng, &regime.mix, regime.activity_multiplier)) {
      engine.StartRide(ride.start, weather.AmbientAt(ride.start));
      const auto trace = cycle.Realise(ride, rng);
      for (int m = 0; m < ride.duration_min; ++m) {
        const Minute t = ride.start + m;
        const FaultEffects effects = CombinedEffectsAt(vehicle.faults, t);
        Record record;
        record.vehicle_id = v;
        record.timestamp = t;
        record.pids = engine.Step(t, trace[static_cast<std::size_t>(m)],
                                  weather.AmbientAt(t), effects, rng);
        if (rng.Bernoulli(config.sensor_fault_rate)) CorruptRecord(&record, rng);
        vehicle.records.push_back(record);
      }
    }
  }
}

}  // namespace

FleetDataset GenerateFleet(const FleetConfig& config,
                           const runtime::RuntimeConfig& runtime) {
  NAVARCHOS_CHECK(config.num_vehicles > 0);
  NAVARCHOS_CHECK(config.num_reporting <= config.num_vehicles);
  NAVARCHOS_CHECK(config.num_recorded_failures <= config.num_reporting);
  NAVARCHOS_CHECK(config.num_hidden_failures <=
                  config.num_vehicles - config.num_reporting);

  util::Rng master(config.seed);
  FleetDataset dataset;
  dataset.config = config;

  util::Rng spec_rng = master.Fork(1);
  std::vector<VehicleSpec> specs = SampleFleetSpecs(config.num_vehicles, spec_rng);

  util::Rng weather_rng = master.Fork(2);
  const WeatherModel weather(config.weather, config.days, weather_rng);

  // Choose which vehicles report and which fail.
  std::vector<int> ids(static_cast<std::size_t>(config.num_vehicles));
  std::iota(ids.begin(), ids.end(), 0);
  util::Rng assign_rng = master.Fork(3);
  assign_rng.Shuffle(ids);
  std::vector<bool> reporting(static_cast<std::size_t>(config.num_vehicles), false);
  for (int i = 0; i < config.num_reporting; ++i) reporting[static_cast<std::size_t>(ids[i])] = true;

  std::vector<int> reporting_ids, silent_ids;
  for (int v = 0; v < config.num_vehicles; ++v)
    (reporting[static_cast<std::size_t>(v)] ? reporting_ids : silent_ids).push_back(v);
  assign_rng.Shuffle(reporting_ids);
  assign_rng.Shuffle(silent_ids);

  std::vector<bool> fails(static_cast<std::size_t>(config.num_vehicles), false);
  for (int i = 0; i < config.num_recorded_failures; ++i)
    fails[static_cast<std::size_t>(reporting_ids[static_cast<std::size_t>(i)])] = true;
  for (int i = 0; i < config.num_hidden_failures && i < static_cast<int>(silent_ids.size()); ++i)
    fails[static_cast<std::size_t>(silent_ids[static_cast<std::size_t>(i)])] = true;

  // Fault ids are assigned by vehicle index (the serial order), so they can
  // be precomputed here and vehicles synthesised in any order.
  std::vector<int> fault_ids(static_cast<std::size_t>(config.num_vehicles), -1);
  int next_fault_id = 0;
  for (int v = 0; v < config.num_vehicles; ++v)
    if (fails[static_cast<std::size_t>(v)]) fault_ids[static_cast<std::size_t>(v)] = next_fault_id++;

  // Per-vehicle synthesis: causally independent given the shared fleet-level
  // state above (specs, weather, assignments), with all randomness coming
  // from the vehicle's private Fork(100 + v) stream. Bit-identical at any
  // thread count.
  dataset.vehicles.resize(static_cast<std::size_t>(config.num_vehicles));
  runtime::ParallelFor(
      runtime, static_cast<std::size_t>(config.num_vehicles),
      [&](std::size_t v) {
        SynthesiseVehicle(config, weather, specs[v], reporting[v], fails[v],
                          fault_ids[v], dataset.vehicles[v],
                          master.Fork(100 + static_cast<std::uint64_t>(v)));
      });
  return dataset;
}

FleetDataset GenerateFleet(const FleetConfig& config) {
  return GenerateFleet(config, runtime::RuntimeConfig::Serial());
}

}  // namespace navarchos::telemetry
