// Ambient weather model.
//
// The paper highlights "driving behavior and weather volatility" as the main
// nuisance factors that defeat raw-signal anomaly detection. WeatherModel
// provides a seasonal + diurnal + autocorrelated-noise ambient temperature
// so that intakeTemp and cold-start coolant behaviour drift over the year
// without any fault being present.
#ifndef NAVARCHOS_TELEMETRY_WEATHER_H_
#define NAVARCHOS_TELEMETRY_WEATHER_H_

#include <vector>

#include "telemetry/types.h"
#include "util/rng.h"

namespace navarchos::telemetry {

/// Configuration of the climate at the fleet's operating region.
struct WeatherConfig {
  double annual_mean_c = 17.0;       ///< Yearly mean temperature [deg C].
  double seasonal_amplitude_c = 10.0;///< Summer-winter half swing [deg C].
  double diurnal_amplitude_c = 5.0;  ///< Day-night half swing [deg C].
  double weather_noise_c = 3.0;      ///< Std-dev of day-level weather systems.
  double noise_persistence = 0.85;   ///< AR(1) coefficient of day-level noise.
  int coldest_day_of_year = 25;      ///< Day index of the seasonal minimum.
};

/// Deterministic ambient temperature series, precomputed per day.
class WeatherModel {
 public:
  /// Builds the day-level weather for `days` days using `rng`.
  WeatherModel(const WeatherConfig& config, int days, util::Rng& rng);

  /// Ambient temperature at an absolute minute timestamp [deg C].
  double AmbientAt(Minute t) const;

  /// Day-level mean temperature (no diurnal component) [deg C].
  double DailyMean(std::int64_t day) const;

  /// Number of simulated days.
  int days() const { return static_cast<int>(daily_anomaly_.size()); }

 private:
  WeatherConfig config_;
  std::vector<double> daily_anomaly_;  ///< AR(1) weather-system offsets.
};

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_WEATHER_H_
