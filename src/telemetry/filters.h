// Record filtering (paper §3.2): "before we transform the data, we first
// filter out records that correspond to the stationary state of the vehicle
// and sensor faulty data".
#ifndef NAVARCHOS_TELEMETRY_FILTERS_H_
#define NAVARCHOS_TELEMETRY_FILTERS_H_

#include <vector>

#include "telemetry/types.h"

namespace navarchos::telemetry {

/// True when the vehicle is effectively parked or idling (speed below the
/// moving threshold): such minutes carry no drivetrain information.
bool IsStationary(const Record& record);

/// True when any PID is outside its physically plausible range, which is how
/// OBD dropouts and stuck sensors manifest (-40 C readings, MAF 655.35, rpm
/// pegged at 8191 with zero speed, ...).
bool IsSensorFaulty(const Record& record);

/// True when a record survives both filters.
bool IsUsable(const Record& record);

/// Copies the usable records, preserving order.
std::vector<Record> FilterRecords(const std::vector<Record>& records);

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_FILTERS_H_
