// Record filtering (paper §3.2): "before we transform the data, we first
// filter out records that correspond to the stationary state of the vehicle
// and sensor faulty data".
#ifndef NAVARCHOS_TELEMETRY_FILTERS_H_
#define NAVARCHOS_TELEMETRY_FILTERS_H_

#include <vector>

#include "telemetry/types.h"

namespace navarchos::telemetry {

/// True when any PID of the record is NaN or infinite (partial PID coverage,
/// transport corruption). Non-finite values compare false against every
/// range bound, so they need an explicit check.
bool HasNonFinite(const Record& record);

/// True when the vehicle is effectively parked or idling (speed below the
/// moving threshold): such minutes carry no drivetrain information.
bool IsStationary(const Record& record);

/// True when any PID is non-finite or outside its physically plausible
/// range, which is how OBD dropouts and stuck sensors manifest (-40 C
/// readings, MAF 655.35, rpm pegged at 8191 with zero speed, NaN from a
/// channel that stopped reporting, ...).
bool IsSensorFaulty(const Record& record);

/// True when a record survives both filters.
bool IsUsable(const Record& record);

/// Copies the usable records, preserving order.
std::vector<Record> FilterRecords(const std::vector<Record>& records);

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_FILTERS_H_
