// Vehicle specifications.
//
// The paper's fleet mixes vehicle models and usage profiles; §2 shows that
// several clusters of the raw data correspond to single vehicles or usage
// types. VehicleSpec carries exactly the parameters that create this
// heterogeneity: drivetrain gearing, engine displacement, thermal behaviour
// and the vehicle's mixture of ride types.
#ifndef NAVARCHOS_TELEMETRY_VEHICLE_H_
#define NAVARCHOS_TELEMETRY_VEHICLE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace navarchos::telemetry {

/// Ride types a vehicle can perform in one operating block.
enum class RideType : int {
  kUrban = 0,     ///< Stop-and-go, low speed.
  kRegional = 1,  ///< Mixed roads, medium speed.
  kHighway = 2,   ///< Long rides, sustained high speed.
};

/// Number of ride types.
inline constexpr int kNumRideTypes = 3;

/// Vehicle model families present in the simulated fleet.
enum class VehicleModel : int {
  kCompact = 0,   ///< Small petrol car; high rpm per km/h, fast warm-up.
  kSedan = 1,     ///< Mid-size car.
  kVan = 2,       ///< Light commercial van; heavy, slow warm-up.
  kPickup = 3,    ///< Utility pickup; large displacement.
};

/// Number of vehicle model families.
inline constexpr int kNumVehicleModels = 4;

/// Display name of a model family.
const char* VehicleModelName(VehicleModel model);

/// Static physical description of one vehicle.
struct VehicleSpec {
  std::int32_t id = 0;
  VehicleModel model = VehicleModel::kSedan;

  // Drivetrain: engine rpm at speed v is roughly
  //   rpm = idle + v * (ratio_base + ratio_low / (v + ratio_knee))
  // which captures low gears at low speed and the top-gear cruise ratio.
  double idle_rpm = 800.0;        ///< Idle engine speed [rpm].
  double ratio_base = 21.0;       ///< Top-gear rpm per km/h.
  double ratio_low = 900.0;       ///< Low-gear enrichment numerator.
  double ratio_knee = 18.0;       ///< Speed scale of gear transition [km/h].

  // Engine breathing: MAF follows the speed-density relation
  //   maf [g/s] ~ ve * displacement * rpm * map / (R * T_intake)
  double displacement_l = 1.6;    ///< Engine displacement [litres].
  double volumetric_eff = 0.85;   ///< Mean volumetric efficiency.

  // Thermal model.
  double thermostat_c = 90.0;     ///< Regulated coolant temperature [deg C].
  double warmup_tau_min = 5.0;    ///< First-order warm-up time constant [min].
  double mass_factor = 1.0;       ///< Load scale (heavier = more load).

  // Usage profile: mixture over ride types; sums to 1.
  std::array<double, kNumRideTypes> ride_mix{0.5, 0.35, 0.15};
  double daily_operating_minutes = 105.0;  ///< Mean operating minutes per day.

  /// Human-readable identifier like "v07(van)".
  std::string DisplayName() const;
};

/// Samples a plausible fleet of `count` vehicles with heterogeneous models
/// and usage mixes (deterministic given `rng`).
std::vector<VehicleSpec> SampleFleetSpecs(int count, util::Rng& rng);

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_VEHICLE_H_
