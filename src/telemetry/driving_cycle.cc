#include "telemetry/driving_cycle.h"

#include <algorithm>
#include <cmath>

namespace navarchos::telemetry {
namespace {

struct RideTypeParams {
  double mean_speed;   ///< Target cruise speed [km/h].
  double speed_sd;     ///< Minute-to-minute volatility.
  double stop_prob;    ///< Probability of initiating a stop each minute.
  double max_speed;    ///< Speed ceiling [km/h].
  int min_duration;    ///< Shortest ride [min].
  int max_duration;    ///< Longest ride [min].
};

RideTypeParams ParamsFor(RideType type) {
  switch (type) {
    case RideType::kUrban: return {32.0, 9.0, 0.16, 65.0, 8, 45};
    case RideType::kRegional: return {68.0, 10.0, 0.04, 100.0, 20, 80};
    case RideType::kHighway: return {102.0, 7.0, 0.01, 130.0, 35, 150};
  }
  return {32.0, 9.0, 0.16, 65.0, 8, 45};
}

}  // namespace

double TypicalSpeed(RideType type) { return ParamsFor(type).mean_speed; }

std::vector<UsageRegime> SampleRegimeSequence(int days, util::Rng& rng) {
  std::vector<UsageRegime> regimes(static_cast<std::size_t>(days), UsageRegime::kNormal);
  UsageRegime state = UsageRegime::kNormal;
  for (auto& regime : regimes) {
    if (!rng.Bernoulli(0.90)) {
      // Transition: mostly back to normal, occasionally to a special regime.
      state = static_cast<UsageRegime>(rng.Categorical({0.5, 0.2, 0.2, 0.1}));
    }
    regime = state;
  }
  return regimes;
}

RegimeEffect ApplyRegime(const std::array<double, kNumRideTypes>& base_mix,
                         UsageRegime regime) {
  RegimeEffect effect;
  effect.mix = base_mix;
  switch (regime) {
    case UsageRegime::kNormal:
      break;
    case UsageRegime::kUrbanHeavy:
      effect.mix = {0.75, 0.20, 0.05};
      effect.activity_multiplier = 0.9;
      break;
    case UsageRegime::kLongHaul:
      effect.mix = {0.18, 0.37, 0.45};
      effect.activity_multiplier = 1.5;
      break;
    case UsageRegime::kQuiet:
      effect.activity_multiplier = 0.35;
      break;
  }
  return effect;
}

std::vector<Ride> DrivingCycle::PlanDay(
    std::int64_t day, util::Rng& rng,
    const std::array<double, kNumRideTypes>* mix_override, double activity) const {
  const std::array<double, kNumRideTypes>& mix =
      mix_override != nullptr ? *mix_override : spec_.ride_mix;
  std::vector<Ride> rides;
  const bool weekend = (day % 7 == 5) || (day % 7 == 6);
  double budget = spec_.daily_operating_minutes * activity * rng.Uniform(0.6, 1.4);
  if (weekend) budget *= 0.35;
  if (rng.Bernoulli(weekend ? 0.35 : 0.05)) return rides;  // idle day

  // Operating window 06:00 - 22:00.
  Minute cursor = day * kMinutesPerDay + 6 * 60 + rng.UniformInt(0, 90);
  const Minute day_end = day * kMinutesPerDay + 22 * 60;
  while (budget > 6.0 && cursor < day_end) {
    const auto type = static_cast<RideType>(rng.Categorical(
        {mix[0], mix[1], mix[2]}));
    const RideTypeParams params = ParamsFor(type);
    int duration = static_cast<int>(
        rng.UniformInt(params.min_duration, params.max_duration));
    duration = std::min(duration, static_cast<int>(budget));
    duration = std::min(duration, static_cast<int>(day_end - cursor));
    if (duration < 5) break;
    rides.push_back({cursor, duration, type});
    budget -= duration;
    // Parking gap between rides; long gaps cool the engine for a cold start.
    cursor += duration + rng.UniformInt(25, 240);
  }
  return rides;
}

std::vector<DrivingMinute> DrivingCycle::Realise(const Ride& ride, util::Rng& rng) const {
  const RideTypeParams params = ParamsFor(ride.type);
  std::vector<DrivingMinute> trace(static_cast<std::size_t>(ride.duration_min));

  // Per-ride driver style and payload: a cautious driver short-shifts, a
  // loaded van needs more throttle everywhere. These vary ride to ride and
  // put a noise floor under the drivetrain correlations.
  const double ride_gear_style = rng.Uniform(0.92, 1.12);
  const double ride_load_offset = rng.Gaussian(0.0, 0.045);

  double speed = 0.0;
  double grade = 0.0;
  double gear_hunt = 1.0;
  int stop_left = 0;
  for (int m = 0; m < ride.duration_min; ++m) {
    const double prev = speed;
    if (stop_left > 0) {
      // Held at a stop (traffic light, loading...).
      --stop_left;
      speed = 0.0;
    } else if (rng.Bernoulli(params.stop_prob) && m > 1 &&
               m < ride.duration_min - 2) {
      stop_left = static_cast<int>(rng.UniformInt(0, 2));
      speed = 0.0;
    } else {
      // Mean-reverting walk toward the cruise speed.
      const double pull = 0.35 * (params.mean_speed - speed);
      speed += pull + rng.Gaussian(0.0, params.speed_sd);
      speed = std::clamp(speed, 0.0, params.max_speed);
      // Ease in/out at ride boundaries.
      if (m == 0) speed = std::min(speed, params.mean_speed * 0.5);
      if (m == ride.duration_min - 1) speed *= 0.4;
    }
    grade = 0.7 * grade + rng.Gaussian(0.0, 0.2);
    grade = std::clamp(grade, -1.0, 1.0);
    // Gear hunting: an AR(1) multiplier around the ride's base gear style,
    // stronger at urban speeds where shifts are frequent.
    const double hunt_sd = speed < 55.0 ? 0.05 : 0.02;
    gear_hunt = 1.0 + 0.6 * (gear_hunt - 1.0) + rng.Gaussian(0.0, hunt_sd);
    gear_hunt = std::clamp(gear_hunt, 0.85, 1.25);
    DrivingMinute& minute = trace[static_cast<std::size_t>(m)];
    minute.speed_kmh = speed;
    minute.accel_kmh_min = speed - prev;
    minute.grade = grade;
    minute.gear_style = ride_gear_style * gear_hunt;
    minute.load_offset = ride_load_offset;
  }
  return trace;
}

}  // namespace navarchos::telemetry
