#include "telemetry/weather.h"

#include <cmath>

#include "util/check.h"

namespace navarchos::telemetry {

WeatherModel::WeatherModel(const WeatherConfig& config, int days, util::Rng& rng)
    : config_(config) {
  NAVARCHOS_CHECK(days > 0);
  daily_anomaly_.resize(static_cast<std::size_t>(days));
  double state = 0.0;
  const double innovation_sd =
      config.weather_noise_c * std::sqrt(1.0 - config.noise_persistence * config.noise_persistence);
  for (auto& anomaly : daily_anomaly_) {
    state = config.noise_persistence * state + rng.Gaussian(0.0, innovation_sd);
    anomaly = state;
  }
}

double WeatherModel::DailyMean(std::int64_t day) const {
  const std::int64_t clamped =
      std::min<std::int64_t>(std::max<std::int64_t>(day, 0),
                             static_cast<std::int64_t>(daily_anomaly_.size()) - 1);
  const double phase =
      2.0 * M_PI * (static_cast<double>(day - config_.coldest_day_of_year) / 365.25);
  return config_.annual_mean_c - config_.seasonal_amplitude_c * std::cos(phase) +
         daily_anomaly_[static_cast<std::size_t>(clamped)];
}

double WeatherModel::AmbientAt(Minute t) const {
  const std::int64_t day = DayOf(t);
  const double minute_of_day = static_cast<double>(t % kMinutesPerDay);
  // Diurnal swing: coldest ~05:00, warmest ~15:00.
  const double phase = 2.0 * M_PI * (minute_of_day - 5.0 * 60.0) / 1440.0;
  return DailyMean(day) - config_.diurnal_amplitude_c * std::cos(phase);
}

}  // namespace navarchos::telemetry
