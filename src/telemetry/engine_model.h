// Engine signal synthesis: maps kinematics + weather + faults to the six
// OBD-II PIDs.
//
// The model is intentionally first-principles-shaped rather than curve-fit:
//  * rpm follows speed through a gear-dependent ratio,
//  * MAP follows engine load (drag + acceleration + grade + mass),
//  * MAF follows the speed-density relation ve * disp * rpm * MAP / T_intake,
//  * coolant temperature is a first-order thermal system regulated by the
//    thermostat, with cold starts after long parking gaps,
//  * intake temperature tracks ambient plus low-speed heat soak.
// These couplings are what the correlation transform measures; fault effects
// perturb them (see telemetry/faults.h).
#ifndef NAVARCHOS_TELEMETRY_ENGINE_MODEL_H_
#define NAVARCHOS_TELEMETRY_ENGINE_MODEL_H_

#include "telemetry/driving_cycle.h"
#include "telemetry/faults.h"
#include "telemetry/types.h"
#include "telemetry/vehicle.h"
#include "util/rng.h"

namespace navarchos::telemetry {

/// Stateful per-vehicle signal generator. One instance per vehicle; call
/// StartRide at each ignition, then Step once per operating minute.
class EngineModel {
 public:
  explicit EngineModel(const VehicleSpec& spec);

  /// Signals ignition at time `t`. Cools the engine toward ambient according
  /// to the parking gap since the previous ride.
  void StartRide(Minute t, double ambient_c);

  /// Produces the PID vector for one operating minute.
  PidVector Step(Minute t, const DrivingMinute& driving, double ambient_c,
                 const FaultEffects& faults, util::Rng& rng);

  /// Current coolant temperature [deg C] (exposed for tests).
  double coolant_c() const { return coolant_c_; }

  /// Engine load in [0, 1] implied by a kinematic state (exposed for tests).
  double LoadOf(const DrivingMinute& driving, const FaultEffects& faults) const;

 private:
  VehicleSpec spec_;
  double coolant_c_ = 15.0;
  Minute last_active_ = -1;
};

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_ENGINE_MODEL_H_
