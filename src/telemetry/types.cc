#include "telemetry/types.h"

namespace navarchos::telemetry {

const char* PidName(Pid pid) {
  switch (pid) {
    case Pid::kRpm: return "rpm";
    case Pid::kSpeed: return "speed";
    case Pid::kCoolantTemp: return "coolantTemp";
    case Pid::kIntakeTemp: return "intakeTemp";
    case Pid::kMapIntake: return "mapIntake";
    case Pid::kMafAirFlowRate: return "MAFairFlowRate";
  }
  return "unknown";
}

const char* PidName(int index) { return PidName(static_cast<Pid>(index)); }

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kDtcPending: return "dtc_pending";
    case EventType::kDtcStored: return "dtc_stored";
    case EventType::kService: return "service";
    case EventType::kRepair: return "repair";
    case EventType::kOther: return "other";
  }
  return "unknown";
}

}  // namespace navarchos::telemetry
