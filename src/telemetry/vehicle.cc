#include "telemetry/vehicle.h"

#include <cstdio>

#include "util/check.h"

namespace navarchos::telemetry {

const char* VehicleModelName(VehicleModel model) {
  switch (model) {
    case VehicleModel::kCompact: return "compact";
    case VehicleModel::kSedan: return "sedan";
    case VehicleModel::kVan: return "van";
    case VehicleModel::kPickup: return "pickup";
  }
  return "unknown";
}

std::string VehicleSpec::DisplayName() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "v%02d(%s)", id, VehicleModelName(model));
  return buf;
}

namespace {

VehicleSpec BaseSpecFor(VehicleModel model) {
  VehicleSpec spec;
  spec.model = model;
  switch (model) {
    case VehicleModel::kCompact:
      spec.idle_rpm = 850.0;
      spec.ratio_base = 25.0;
      spec.ratio_low = 1000.0;
      spec.ratio_knee = 16.0;
      spec.displacement_l = 1.2;
      spec.thermostat_c = 92.0;
      spec.warmup_tau_min = 4.0;
      spec.mass_factor = 0.85;
      break;
    case VehicleModel::kSedan:
      spec.idle_rpm = 780.0;
      spec.ratio_base = 21.0;
      spec.ratio_low = 900.0;
      spec.ratio_knee = 18.0;
      spec.displacement_l = 1.8;
      spec.thermostat_c = 90.0;
      spec.warmup_tau_min = 5.0;
      spec.mass_factor = 1.0;
      break;
    case VehicleModel::kVan:
      spec.idle_rpm = 750.0;
      spec.ratio_base = 19.0;
      spec.ratio_low = 850.0;
      spec.ratio_knee = 20.0;
      spec.displacement_l = 2.2;
      spec.thermostat_c = 88.0;
      spec.warmup_tau_min = 7.0;
      spec.mass_factor = 1.35;
      break;
    case VehicleModel::kPickup:
      spec.idle_rpm = 720.0;
      spec.ratio_base = 18.0;
      spec.ratio_low = 800.0;
      spec.ratio_knee = 22.0;
      spec.displacement_l = 2.8;
      spec.thermostat_c = 87.0;
      spec.warmup_tau_min = 7.5;
      spec.mass_factor = 1.5;
      break;
  }
  return spec;
}

std::array<double, kNumRideTypes> SampleRideMix(util::Rng& rng) {
  // Draw a usage archetype, then jitter. Archetypes reproduce the paper's
  // cluster structure: mostly-urban vehicles, mixed vehicles, long-haul ones,
  // and "extremely small rides" vehicles.
  std::array<double, kNumRideTypes> mix{};
  switch (rng.UniformInt(0, 3)) {
    case 0: mix = {0.75, 0.20, 0.05}; break;  // urban
    case 1: mix = {0.45, 0.40, 0.15}; break;  // mixed
    case 2: mix = {0.15, 0.40, 0.45}; break;  // long-haul
    default: mix = {0.90, 0.10, 0.00}; break; // short-hop
  }
  double total = 0.0;
  for (double& w : mix) {
    w = std::max(0.0, w + rng.Gaussian(0.0, 0.04));
    total += w;
  }
  for (double& w : mix) w /= total;
  return mix;
}

}  // namespace

std::vector<VehicleSpec> SampleFleetSpecs(int count, util::Rng& rng) {
  NAVARCHOS_CHECK(count > 0);
  std::vector<VehicleSpec> fleet;
  fleet.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto model = static_cast<VehicleModel>(
        rng.Categorical({0.30, 0.35, 0.20, 0.15}));
    VehicleSpec spec = BaseSpecFor(model);
    spec.id = i;
    // Per-unit manufacturing/wear spread so no two vehicles are identical.
    spec.idle_rpm *= rng.Uniform(0.96, 1.04);
    spec.ratio_base *= rng.Uniform(0.95, 1.05);
    spec.displacement_l *= rng.Uniform(0.97, 1.03);
    spec.thermostat_c += rng.Gaussian(0.0, 0.8);
    spec.warmup_tau_min *= rng.Uniform(0.9, 1.1);
    spec.ride_mix = SampleRideMix(rng);
    spec.daily_operating_minutes = rng.Uniform(70.0, 140.0);
    fleet.push_back(spec);
  }
  return fleet;
}

}  // namespace navarchos::telemetry
