// Telemetry corruption injection (robustness harness).
//
// The paper's central constraint is *partial information*: real OBD-II fleet
// streams arrive with connectivity dropouts, stuck sensors, duplicated and
// out-of-order deliveries, and channels that simply stop reporting. The
// simulator emits a clean, ordered, complete stream; CorruptionModel perturbs
// such a stream with the realistic failure modes above - each at an
// independent, seeded rate - and records every injected corruption in a
// manifest, so the monitor's DataQualityReport and the detection metrics can
// be evaluated against ground truth as corruption severity scales
// (bench/robustness_sweep).
#ifndef NAVARCHOS_TELEMETRY_CORRUPTION_H_
#define NAVARCHOS_TELEMETRY_CORRUPTION_H_

#include <cstdint>
#include <vector>

#include "telemetry/fleet.h"
#include "telemetry/types.h"

namespace navarchos::telemetry {

/// The failure modes the corruption layer can inject.
enum class CorruptionKind : int {
  kDropout = 0,     ///< Connectivity burst: the record never arrives.
  kStuckAt = 1,     ///< One channel frozen at its last value for a run.
  kNanChannel = 2,  ///< One channel reported as NaN (partial PID coverage).
  kSpike = 3,       ///< Transient outlier on one channel.
  kClip = 4,        ///< One channel saturated at its ADC ceiling.
  kDuplicate = 5,   ///< The record is delivered twice.
  kClockSkew = 6,   ///< Bounded clock skew: delivered late, out of order.
};

/// Display name of a corruption kind ("dropout", "stuck_at", ...).
const char* CorruptionKindName(CorruptionKind kind);

/// Number of corruption kinds.
inline constexpr int kNumCorruptionKinds = 7;

/// Rates and shapes of the injected failure modes. All rates are per-record
/// probabilities (for the bursty modes: the expected *fraction of records
/// affected*, so scaling a rate scales the affected volume linearly). A
/// default-constructed config injects nothing.
struct CorruptionConfig {
  /// Fraction of records lost to connectivity dropout bursts.
  double dropout_rate = 0.0;
  /// Mean burst length in records (geometric-ish, >= 1).
  double dropout_mean_run = 12.0;
  /// Fraction of records with one channel frozen at its previous value.
  double stuck_rate = 0.0;
  /// Mean stuck-run length in records (>= 1).
  double stuck_mean_run = 8.0;
  /// Fraction of records with one channel replaced by NaN.
  double nan_rate = 0.0;
  /// Fraction of records with a transient outlier spike on one channel.
  double spike_rate = 0.0;
  /// Spike amplitude as a multiple of the current channel value.
  double spike_scale = 4.0;
  /// Fraction of records with one channel clamped to its saturation ceiling.
  double clip_rate = 0.0;
  /// Fraction of records delivered twice (immediate re-delivery).
  double duplicate_rate = 0.0;
  /// Fraction of records delivered late (out of order).
  double skew_rate = 0.0;
  /// Maximum lateness in minutes of a skewed delivery.
  int max_skew_minutes = 3;
  /// Seed of the corruption stream; forked per vehicle so corruption of one
  /// vehicle is independent of fleet composition.
  std::uint64_t seed = 20240501;

  /// True when every rate is zero: corruption is a byte-identical passthrough.
  bool Inactive() const;

  /// The issue's "moderate" preset: 2% dropout, 1% stuck-at, 0.5% NaN
  /// channel, skew bounded by 3 minutes, plus light duplicates/spikes/clips.
  static CorruptionConfig Moderate();

  /// This config with every rate multiplied by `severity` (clamped to
  /// [0, 0.95] per rate); shapes (run lengths, skew bound) are unchanged.
  CorruptionConfig Scaled(double severity) const;
};

/// One injected corruption, attributed to the original (pre-corruption)
/// record.
struct CorruptionEntry {
  std::int32_t vehicle_id = 0;
  Minute timestamp = 0;
  CorruptionKind kind = CorruptionKind::kDropout;
  int channel = -1;  ///< Affected PID channel, -1 for whole-record modes.
};

/// Ground truth of everything a CorruptionModel injected.
struct CorruptionManifest {
  std::vector<CorruptionEntry> entries;

  /// Number of injected corruptions of `kind`.
  std::size_t CountOf(CorruptionKind kind) const;

  /// Total injected corruptions.
  std::size_t Total() const { return entries.size(); }
};

/// Seeded, configurable corruption injector. Stateless across calls: the
/// same config applied to the same stream always produces the same corrupted
/// stream and manifest.
class CorruptionModel {
 public:
  explicit CorruptionModel(const CorruptionConfig& config);

  /// Corrupts one vehicle's time-ordered record stream. The returned stream
  /// is in *delivery order* (skewed records appear late, duplicates appear
  /// twice); with an inactive config the input is returned unchanged.
  /// Appends every injected corruption to `manifest` when non-null.
  std::vector<Record> CorruptStream(const std::vector<Record>& records,
                                    CorruptionManifest* manifest = nullptr) const;

  /// Corrupts every vehicle's records of `fleet` (events, faults and specs
  /// are untouched - corruption is a telemetry-transport phenomenon).
  FleetDataset CorruptFleet(const FleetDataset& fleet,
                            CorruptionManifest* manifest = nullptr) const;

  const CorruptionConfig& config() const { return config_; }

 private:
  CorruptionConfig config_;
};

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_CORRUPTION_H_
