// Core data model of the fleet telemetry domain.
//
// Mirrors the paper's setting: six OBD-II Parameter-ID (PID) signals sampled
// once per operating minute, plus a partially recorded event stream of
// services, repairs and Diagnostic Trouble Codes (DTCs).
#ifndef NAVARCHOS_TELEMETRY_TYPES_H_
#define NAVARCHOS_TELEMETRY_TYPES_H_

#include <array>
#include <cstdint>
#include <string>

namespace navarchos::telemetry {

/// Minutes since the fleet monitoring epoch (start of the simulated year).
using Minute = std::int64_t;

/// Minutes in one day.
inline constexpr Minute kMinutesPerDay = 24 * 60;

/// Converts a timestamp to a day index since the epoch.
inline std::int64_t DayOf(Minute t) { return t / kMinutesPerDay; }

/// The six OBD-II PID signals collected by the FMS platform (paper §1).
enum class Pid : int {
  kRpm = 0,             ///< Engine speed [rpm].
  kSpeed = 1,           ///< Vehicle speed [km/h].
  kCoolantTemp = 2,     ///< Engine coolant temperature [deg C].
  kIntakeTemp = 3,      ///< Intake manifold air temperature [deg C].
  kMapIntake = 4,       ///< Manifold absolute pressure [kPa].
  kMafAirFlowRate = 5,  ///< Mass air flow rate [g/s].
};

/// Number of PID channels.
inline constexpr int kNumPids = 6;

/// Short display name of a PID channel ("rpm", "speed", ...).
const char* PidName(Pid pid);

/// Short display name by channel index.
const char* PidName(int index);

/// One multivariate sensor reading (all six PIDs at one minute).
using PidVector = std::array<double, kNumPids>;

/// One telemetry record: a vehicle's PID vector at a timestamp.
struct Record {
  std::int32_t vehicle_id = 0;
  Minute timestamp = 0;
  PidVector pids{};
};

/// Types of fleet events (paper §1: services, repairs, DTC pending/stored).
enum class EventType : int {
  kDtcPending = 0,  ///< Malfunction seen once, not repeating.
  kDtcStored = 1,   ///< Repeating malfunction code.
  kService = 2,     ///< Standard periodic maintenance.
  kRepair = 3,      ///< Urgent non-periodic repair after a failure.
  kOther = 4,       ///< Other recorded event of interest (tyres, inspection...).
};

/// Display name of an event type.
const char* EventTypeName(EventType type);

/// A maintenance or diagnostic event attached to a vehicle.
///
/// `recorded` models the paper's partial information: events always happen in
/// the simulated world, but only recorded ones are visible to the detector
/// and the evaluation (ground truth retains everything for diagnostics).
struct FleetEvent {
  std::int32_t vehicle_id = 0;
  Minute timestamp = 0;
  EventType type = EventType::kOther;
  std::string code;      ///< DTC code or free-text event description.
  bool recorded = true;  ///< Visible to the FMS platform.
  int fault_id = -1;     ///< Index of the underlying fault, -1 if none.
};

/// True for event types that signify completed maintenance (service or
/// repair) and therefore justify resetting the healthy reference profile.
inline bool IsMaintenanceEvent(EventType type) {
  return type == EventType::kService || type == EventType::kRepair;
}

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_TYPES_H_
