// Driving-cycle generation: when a vehicle operates and how fast it moves.
//
// Produces per-minute speed profiles for rides of three types (urban,
// regional, highway). Usage volatility — the paper's main nuisance factor —
// comes from each vehicle's ride-type mixture plus day-to-day randomness in
// ride counts and lengths.
#ifndef NAVARCHOS_TELEMETRY_DRIVING_CYCLE_H_
#define NAVARCHOS_TELEMETRY_DRIVING_CYCLE_H_

#include <vector>

#include "telemetry/types.h"
#include "telemetry/vehicle.h"
#include "util/rng.h"

namespace navarchos::telemetry {

/// One planned operating block of a vehicle.
struct Ride {
  Minute start = 0;        ///< Absolute start minute.
  int duration_min = 0;    ///< Ride length in minutes.
  RideType type = RideType::kUrban;
};

/// Per-minute kinematic state inside a ride.
struct DrivingMinute {
  double speed_kmh = 0.0;     ///< Vehicle speed.
  double accel_kmh_min = 0.0; ///< Speed change vs the previous minute.
  double grade = 0.0;         ///< Road grade proxy in [-1, 1] (hills).
  /// Driver gear-choice factor: multiplies the rpm/speed ratio. Real drivers
  /// hold different gears at the same speed, which keeps the rpm~speed
  /// correlation from being deterministic.
  double gear_style = 1.0;
  /// Payload/headwind load offset for this minute (added to engine load).
  double load_offset = 0.0;
};

/// Plans and realises rides for one vehicle.
class DrivingCycle {
 public:
  explicit DrivingCycle(const VehicleSpec& spec) : spec_(spec) {}

  /// Plans the rides of one day: count, start times, types and durations are
  /// drawn from the vehicle's usage profile. Rides never overlap and fit in
  /// the day. Weekends (day % 7 in {5,6}) see reduced activity.
  /// `mix_override`, when non-null, replaces the vehicle's base ride mix for
  /// this day, and `activity` scales the day's operating budget
  /// (usage-regime modulation, see UsageRegime).
  std::vector<Ride> PlanDay(std::int64_t day, util::Rng& rng,
                            const std::array<double, kNumRideTypes>* mix_override =
                                nullptr,
                            double activity = 1.0) const;

  /// Realises a ride as a per-minute speed trace. Urban rides include
  /// full stops (speed 0, filtered out downstream as stationary records).
  std::vector<DrivingMinute> Realise(const Ride& ride, util::Rng& rng) const;

 private:
  VehicleSpec spec_;
};

/// Mean cruising speed of a ride type [km/h].
double TypicalSpeed(RideType type);

/// Multi-day usage regimes: real vehicles switch between stretches of
/// different use (a delivery week downtown, a long-haul week, a quiet week).
/// This is the paper's main nuisance factor - "the use of a particular
/// vehicle in the fleet may vary compared to ... its past usage" - and it is
/// what makes raw/mean-aggregated features drift while correlations stay
/// put.
enum class UsageRegime : int {
  kNormal = 0,    ///< The vehicle's base ride mix.
  kUrbanHeavy = 1,///< Mostly short urban rides.
  kLongHaul = 2,  ///< Highway-dominated stretches.
  kQuiet = 3,     ///< Sharply reduced usage.
};

/// Markov regime sequence for `days` days (stay-probability ~0.85/day).
std::vector<UsageRegime> SampleRegimeSequence(int days, util::Rng& rng);

/// The effective ride mix of a regime given the vehicle's base mix, plus an
/// activity multiplier for the day's operating budget.
struct RegimeEffect {
  std::array<double, kNumRideTypes> mix;
  double activity_multiplier = 1.0;
};
RegimeEffect ApplyRegime(const std::array<double, kNumRideTypes>& base_mix,
                         UsageRegime regime);

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_DRIVING_CYCLE_H_
