#include "telemetry/corruption.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/rng.h"

namespace navarchos::telemetry {
namespace {

// Saturation ceilings per channel (where an ADC or CAN scaling pegs): the
// classic OBD artefacts are MAF 655.35 g/s and rpm 8191.75, above the
// plausible-range filter so clipped records are detectably corrupt.
constexpr double kSaturation[kNumPids] = {
    8191.75,  // rpm
    255.0,    // speed
    215.0,    // coolantTemp
    215.0,    // intakeTemp
    255.0,    // mapIntake
    655.35,   // MAFairFlowRate
};

/// Geometric-ish run length with the given mean, always >= 1.
int RunLength(util::Rng& rng, double mean_run) {
  const double draw = rng.Exponential(1.0 / std::max(1.0, mean_run));
  return std::max(1, static_cast<int>(std::lround(draw)));
}

/// Probability of *starting* a run per record so that the expected fraction
/// of affected records is `rate` for runs of mean length `mean_run`.
double StartProbability(double rate, double mean_run) {
  return std::clamp(rate / std::max(1.0, mean_run), 0.0, 1.0);
}

}  // namespace

const char* CorruptionKindName(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kDropout: return "dropout";
    case CorruptionKind::kStuckAt: return "stuck_at";
    case CorruptionKind::kNanChannel: return "nan_channel";
    case CorruptionKind::kSpike: return "spike";
    case CorruptionKind::kClip: return "clip";
    case CorruptionKind::kDuplicate: return "duplicate";
    case CorruptionKind::kClockSkew: return "clock_skew";
  }
  return "unknown";
}

bool CorruptionConfig::Inactive() const {
  return dropout_rate <= 0.0 && stuck_rate <= 0.0 && nan_rate <= 0.0 &&
         spike_rate <= 0.0 && clip_rate <= 0.0 && duplicate_rate <= 0.0 &&
         skew_rate <= 0.0;
}

CorruptionConfig CorruptionConfig::Moderate() {
  CorruptionConfig config;
  config.dropout_rate = 0.02;
  config.stuck_rate = 0.01;
  config.nan_rate = 0.005;
  config.spike_rate = 0.002;
  config.clip_rate = 0.002;
  config.duplicate_rate = 0.005;
  config.skew_rate = 0.01;
  config.max_skew_minutes = 3;
  return config;
}

CorruptionConfig CorruptionConfig::Scaled(double severity) const {
  NAVARCHOS_CHECK(severity >= 0.0);
  CorruptionConfig scaled = *this;
  const auto scale = [severity](double rate) {
    return std::clamp(rate * severity, 0.0, 0.95);
  };
  scaled.dropout_rate = scale(dropout_rate);
  scaled.stuck_rate = scale(stuck_rate);
  scaled.nan_rate = scale(nan_rate);
  scaled.spike_rate = scale(spike_rate);
  scaled.clip_rate = scale(clip_rate);
  scaled.duplicate_rate = scale(duplicate_rate);
  scaled.skew_rate = scale(skew_rate);
  return scaled;
}

std::size_t CorruptionManifest::CountOf(CorruptionKind kind) const {
  std::size_t count = 0;
  for (const auto& entry : entries)
    if (entry.kind == kind) ++count;
  return count;
}

CorruptionModel::CorruptionModel(const CorruptionConfig& config)
    : config_(config) {}

std::vector<Record> CorruptionModel::CorruptStream(
    const std::vector<Record>& records, CorruptionManifest* manifest) const {
  if (config_.Inactive() || records.empty()) return records;

  const std::int32_t vehicle_id = records.front().vehicle_id;
  util::Rng rng =
      util::Rng(config_.seed).Fork(static_cast<std::uint64_t>(vehicle_id) + 1);

  const auto add = [&](const Record& record, CorruptionKind kind, int channel) {
    if (manifest == nullptr) return;
    CorruptionEntry entry;
    entry.vehicle_id = record.vehicle_id;
    entry.timestamp = record.timestamp;
    entry.kind = kind;
    entry.channel = channel;
    manifest->entries.push_back(entry);
  };

  // Pass 1: dropout and in-place value corruptions, in stream order. Each
  // surviving record gets a delivery key; skewed records sort after every
  // on-time record of their delayed delivery minute.
  struct Delivery {
    Record record;
    std::int64_t key;  ///< 2 * delivery minute (+1 when skewed).
  };
  std::vector<Delivery> deliveries;
  deliveries.reserve(records.size());

  const double dropout_start =
      StartProbability(config_.dropout_rate, config_.dropout_mean_run);
  const double stuck_start =
      StartProbability(config_.stuck_rate, config_.stuck_mean_run);
  int dropout_left = 0;
  int stuck_left = 0;
  int stuck_channel = -1;
  double stuck_value = 0.0;

  for (const Record& in : records) {
    if (dropout_left == 0 && rng.Bernoulli(dropout_start))
      dropout_left = RunLength(rng, config_.dropout_mean_run);
    if (dropout_left > 0) {
      --dropout_left;
      add(in, CorruptionKind::kDropout, -1);
      continue;
    }

    Record out = in;
    if (stuck_left == 0 && rng.Bernoulli(stuck_start)) {
      stuck_left = RunLength(rng, config_.stuck_mean_run);
      stuck_channel = static_cast<int>(rng.UniformInt(0, kNumPids - 1));
      stuck_value = out.pids[static_cast<std::size_t>(stuck_channel)];
    }
    if (stuck_left > 0) {
      --stuck_left;
      out.pids[static_cast<std::size_t>(stuck_channel)] = stuck_value;
      add(in, CorruptionKind::kStuckAt, stuck_channel);
    }
    if (rng.Bernoulli(config_.nan_rate)) {
      const int channel = static_cast<int>(rng.UniformInt(0, kNumPids - 1));
      out.pids[static_cast<std::size_t>(channel)] =
          std::numeric_limits<double>::quiet_NaN();
      add(in, CorruptionKind::kNanChannel, channel);
    }
    if (rng.Bernoulli(config_.spike_rate)) {
      const int channel = static_cast<int>(rng.UniformInt(0, kNumPids - 1));
      auto& value = out.pids[static_cast<std::size_t>(channel)];
      value *= 1.0 + config_.spike_scale * rng.Uniform();
      add(in, CorruptionKind::kSpike, channel);
    }
    if (rng.Bernoulli(config_.clip_rate)) {
      const int channel = static_cast<int>(rng.UniformInt(0, kNumPids - 1));
      out.pids[static_cast<std::size_t>(channel)] =
          kSaturation[static_cast<std::size_t>(channel)];
      add(in, CorruptionKind::kClip, channel);
    }

    Delivery delivery;
    delivery.record = out;
    delivery.key = 2 * out.timestamp;
    if (rng.Bernoulli(config_.skew_rate)) {
      const std::int64_t skew =
          rng.UniformInt(1, std::max(1, config_.max_skew_minutes));
      delivery.key = 2 * (out.timestamp + skew) + 1;
      add(in, CorruptionKind::kClockSkew, -1);
    }
    deliveries.push_back(std::move(delivery));
  }

  // Pass 2: delivery order. stable_sort keeps on-time records in stream
  // order; a skewed record lands after every on-time record up to its
  // delayed minute (the +1 key breaks the tie towards lateness).
  std::stable_sort(deliveries.begin(), deliveries.end(),
                   [](const Delivery& a, const Delivery& b) { return a.key < b.key; });

  // Pass 3: duplicated deliveries (immediate re-delivery, the common
  // transport-retry artefact).
  std::vector<Record> out;
  out.reserve(deliveries.size());
  for (const Delivery& delivery : deliveries) {
    out.push_back(delivery.record);
    if (rng.Bernoulli(config_.duplicate_rate)) {
      out.push_back(delivery.record);
      add(delivery.record, CorruptionKind::kDuplicate, -1);
    }
  }
  return out;
}

FleetDataset CorruptionModel::CorruptFleet(const FleetDataset& fleet,
                                           CorruptionManifest* manifest) const {
  if (config_.Inactive()) return fleet;
  FleetDataset corrupted;
  corrupted.config = fleet.config;
  corrupted.vehicles.reserve(fleet.vehicles.size());
  for (const auto& vehicle : fleet.vehicles) {
    VehicleHistory history = vehicle;
    history.records = CorruptStream(vehicle.records, manifest);
    corrupted.vehicles.push_back(std::move(history));
  }
  return corrupted;
}

}  // namespace navarchos::telemetry
