#include "telemetry/stream.h"

#include <utility>

namespace navarchos::telemetry {
namespace {

/// Merges one vehicle's delivery-ordered records with its time-ordered
/// events: the vehicle stream is consumed front-to-front, events winning
/// ties, which preserves record delivery order even when it is locally out
/// of timestamp order (corrupted transport).
std::vector<SensorFrame> MergeVehicle(const std::vector<Record>& records,
                                      const std::vector<FleetEvent>& events) {
  std::vector<SensorFrame> stream;
  stream.reserve(records.size() + events.size());
  std::size_t ri = 0, ei = 0;
  while (ri < records.size() || ei < events.size()) {
    const bool take_event =
        ei < events.size() &&
        (ri >= records.size() || events[ei].timestamp <= records[ri].timestamp);
    if (take_event) {
      stream.push_back(SensorFrame::OfEvent(events[ei++]));
    } else {
      stream.push_back(SensorFrame::OfRecord(records[ri++]));
    }
  }
  return stream;
}

std::vector<SensorFrame> Interleave(std::vector<std::vector<SensorFrame>> streams) {
  std::size_t total = 0;
  for (const auto& stream : streams) total += stream.size();
  std::vector<SensorFrame> merged;
  merged.reserve(total);

  // K-way merge on the head frames. Picking the smallest head timestamp
  // (lowest vehicle index on ties) never reorders within a vehicle, so a
  // locally out-of-order corrupted stream stays in its delivery order - a
  // late frame is simply emitted when it reaches the front of its lane.
  std::vector<std::size_t> cursor(streams.size(), 0);
  while (merged.size() < total) {
    std::size_t best = streams.size();
    for (std::size_t v = 0; v < streams.size(); ++v) {
      if (cursor[v] >= streams[v].size()) continue;
      if (best == streams.size() ||
          streams[v][cursor[v]].timestamp() < streams[best][cursor[best]].timestamp()) {
        best = v;
      }
    }
    merged.push_back(std::move(streams[best][cursor[best]++]));
  }
  return merged;
}

}  // namespace

SensorFrame SensorFrame::OfRecord(Record r) {
  SensorFrame frame;
  frame.kind = Kind::kRecord;
  frame.record = std::move(r);
  return frame;
}

SensorFrame SensorFrame::OfEvent(FleetEvent e) {
  SensorFrame frame;
  frame.kind = Kind::kEvent;
  frame.event = std::move(e);
  return frame;
}

std::vector<SensorFrame> MakeVehicleStream(const VehicleHistory& vehicle) {
  return MergeVehicle(vehicle.records, vehicle.events);
}

std::vector<SensorFrame> InterleaveFleetStream(const FleetDataset& fleet) {
  std::vector<std::vector<SensorFrame>> streams;
  streams.reserve(fleet.vehicles.size());
  for (const VehicleHistory& vehicle : fleet.vehicles)
    streams.push_back(MakeVehicleStream(vehicle));
  return Interleave(std::move(streams));
}

std::vector<SensorFrame> InterleaveFleetStream(const FleetDataset& fleet,
                                               const CorruptionModel& model,
                                               CorruptionManifest* manifest) {
  std::vector<std::vector<SensorFrame>> streams;
  streams.reserve(fleet.vehicles.size());
  for (const VehicleHistory& vehicle : fleet.vehicles) {
    const std::vector<Record> corrupted = model.CorruptStream(vehicle.records, manifest);
    streams.push_back(MergeVehicle(corrupted, vehicle.events));
  }
  return Interleave(std::move(streams));
}

}  // namespace navarchos::telemetry
