#include "telemetry/io.h"

#include <charconv>
#include <map>
#include <string>
#include <system_error>

#include "util/csv.h"

namespace navarchos::telemetry {
namespace {

EventType EventTypeByName(const std::string& name) {
  for (int t = 0; t <= 4; ++t) {
    const auto type = static_cast<EventType>(t);
    if (name == EventTypeName(type)) return type;
  }
  return EventType::kOther;
}

/// Outcome of parsing one numeric cell.
enum class Parse { kOk, kMalformed, kOutOfRange };

template <typename T>
Parse ParseNumber(const std::string& cell, T* out) {
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto result = std::from_chars(begin, end, *out);
  if (result.ec == std::errc::result_out_of_range) return Parse::kOutOfRange;
  if (result.ec != std::errc() || result.ptr != end) return Parse::kMalformed;
  return Parse::kOk;
}

/// "file.csv:12: ..." error for a 0-based data-row index (header is line 1).
util::Status RowError(const std::string& file, std::size_t row,
                      const std::string& what) {
  return util::Status::Error(file + ":" + std::to_string(row + 2) + ": " + what);
}

}  // namespace

util::Status WriteFleetCsv(const std::string& prefix, const FleetDataset& fleet) {
  util::CsvDocument records;
  records.header = {"vehicle_id", "timestamp_min"};
  for (int pid = 0; pid < kNumPids; ++pid) records.header.emplace_back(PidName(pid));
  for (const auto& vehicle : fleet.vehicles) {
    for (const Record& record : vehicle.records) {
      std::vector<std::string> row{std::to_string(record.vehicle_id),
                                   std::to_string(record.timestamp)};
      for (int pid = 0; pid < kNumPids; ++pid) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f",
                      record.pids[static_cast<std::size_t>(pid)]);
        row.emplace_back(buf);
      }
      records.rows.push_back(std::move(row));
    }
  }
  util::Status status = util::WriteCsv(prefix + "_records.csv", records);
  if (!status.ok()) return status;

  util::CsvDocument events;
  events.header = {"vehicle_id", "timestamp_min", "type", "code", "recorded"};
  for (const auto& vehicle : fleet.vehicles) {
    for (const FleetEvent& event : vehicle.events) {
      events.rows.push_back({std::to_string(event.vehicle_id),
                             std::to_string(event.timestamp),
                             EventTypeName(event.type), event.code,
                             event.recorded ? "1" : "0"});
    }
  }
  return util::WriteCsv(prefix + "_events.csv", events);
}

util::Status ReadFleetCsv(const std::string& prefix, FleetDataset* fleet,
                          FleetCsvStats* stats) {
  const std::string records_file = prefix + "_records.csv";
  const std::string events_file = prefix + "_events.csv";
  util::CsvDocument records;
  util::Status status = util::ReadCsv(records_file, &records);
  if (!status.ok()) return status;
  util::CsvDocument events;
  status = util::ReadCsv(events_file, &events);
  if (!status.ok()) return status;

  FleetCsvStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = FleetCsvStats();

  std::map<std::int32_t, VehicleHistory> vehicles;
  for (std::size_t r = 0; r < records.rows.size(); ++r) {
    const auto& row = records.rows[r];
    if (row.size() != static_cast<std::size_t>(2 + kNumPids)) {
      return RowError(records_file, r,
                      "malformed record row: expected " +
                          std::to_string(2 + kNumPids) + " columns, got " +
                          std::to_string(row.size()));
    }
    Record record;
    bool out_of_range = false;
    Parse parse = ParseNumber(row[0], &record.vehicle_id);
    if (parse == Parse::kMalformed)
      return RowError(records_file, r, "unparsable vehicle_id '" + row[0] + "'");
    out_of_range |= parse == Parse::kOutOfRange;
    parse = ParseNumber(row[1], &record.timestamp);
    if (parse == Parse::kMalformed)
      return RowError(records_file, r, "unparsable timestamp_min '" + row[1] + "'");
    out_of_range |= parse == Parse::kOutOfRange;
    for (int pid = 0; pid < kNumPids; ++pid) {
      const auto& cell = row[static_cast<std::size_t>(2 + pid)];
      parse = ParseNumber(cell, &record.pids[static_cast<std::size_t>(pid)]);
      if (parse == Parse::kMalformed) {
        return RowError(records_file, r, std::string("unparsable ") +
                                             PidName(pid) + " '" + cell + "'");
      }
      out_of_range |= parse == Parse::kOutOfRange;
    }
    if (out_of_range) {
      ++stats->skipped_record_rows;
      continue;
    }
    ++stats->record_rows;
    auto& vehicle = vehicles[record.vehicle_id];
    vehicle.spec.id = record.vehicle_id;
    vehicle.records.push_back(record);
  }
  for (std::size_t r = 0; r < events.rows.size(); ++r) {
    const auto& row = events.rows[r];
    if (row.size() != 5) {
      return RowError(events_file, r, "malformed event row: expected 5 columns, got " +
                                          std::to_string(row.size()));
    }
    FleetEvent event;
    bool out_of_range = false;
    Parse parse = ParseNumber(row[0], &event.vehicle_id);
    if (parse == Parse::kMalformed)
      return RowError(events_file, r, "unparsable vehicle_id '" + row[0] + "'");
    out_of_range |= parse == Parse::kOutOfRange;
    parse = ParseNumber(row[1], &event.timestamp);
    if (parse == Parse::kMalformed)
      return RowError(events_file, r, "unparsable timestamp_min '" + row[1] + "'");
    out_of_range |= parse == Parse::kOutOfRange;
    if (out_of_range) {
      ++stats->skipped_event_rows;
      continue;
    }
    event.type = EventTypeByName(row[2]);
    event.code = row[3];
    event.recorded = row[4] == "1";
    ++stats->event_rows;
    auto& vehicle = vehicles[event.vehicle_id];
    vehicle.spec.id = event.vehicle_id;
    vehicle.events.push_back(event);
  }

  fleet->vehicles.clear();
  for (auto& [id, vehicle] : vehicles) {
    vehicle.reporting = false;
    for (const auto& event : vehicle.events)
      if (event.recorded && IsMaintenanceEvent(event.type)) vehicle.reporting = true;
    fleet->vehicles.push_back(std::move(vehicle));
  }
  return util::Status();
}

}  // namespace navarchos::telemetry
