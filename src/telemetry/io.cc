#include "telemetry/io.h"

#include <map>
#include <string>

#include "util/csv.h"

namespace navarchos::telemetry {
namespace {

EventType EventTypeByName(const std::string& name) {
  for (int t = 0; t <= 4; ++t) {
    const auto type = static_cast<EventType>(t);
    if (name == EventTypeName(type)) return type;
  }
  return EventType::kOther;
}

}  // namespace

util::Status WriteFleetCsv(const std::string& prefix, const FleetDataset& fleet) {
  util::CsvDocument records;
  records.header = {"vehicle_id", "timestamp_min"};
  for (int pid = 0; pid < kNumPids; ++pid) records.header.emplace_back(PidName(pid));
  for (const auto& vehicle : fleet.vehicles) {
    for (const Record& record : vehicle.records) {
      std::vector<std::string> row{std::to_string(record.vehicle_id),
                                   std::to_string(record.timestamp)};
      for (int pid = 0; pid < kNumPids; ++pid) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f",
                      record.pids[static_cast<std::size_t>(pid)]);
        row.emplace_back(buf);
      }
      records.rows.push_back(std::move(row));
    }
  }
  util::Status status = util::WriteCsv(prefix + "_records.csv", records);
  if (!status.ok()) return status;

  util::CsvDocument events;
  events.header = {"vehicle_id", "timestamp_min", "type", "code", "recorded"};
  for (const auto& vehicle : fleet.vehicles) {
    for (const FleetEvent& event : vehicle.events) {
      events.rows.push_back({std::to_string(event.vehicle_id),
                             std::to_string(event.timestamp),
                             EventTypeName(event.type), event.code,
                             event.recorded ? "1" : "0"});
    }
  }
  return util::WriteCsv(prefix + "_events.csv", events);
}

util::Status ReadFleetCsv(const std::string& prefix, FleetDataset* fleet) {
  util::CsvDocument records;
  util::Status status = util::ReadCsv(prefix + "_records.csv", &records);
  if (!status.ok()) return status;
  util::CsvDocument events;
  status = util::ReadCsv(prefix + "_events.csv", &events);
  if (!status.ok()) return status;

  std::map<std::int32_t, VehicleHistory> vehicles;
  for (const auto& row : records.rows) {
    if (row.size() < static_cast<std::size_t>(2 + kNumPids))
      return util::Status::Error("malformed record row");
    Record record;
    record.vehicle_id = std::stoi(row[0]);
    record.timestamp = std::stoll(row[1]);
    for (int pid = 0; pid < kNumPids; ++pid)
      record.pids[static_cast<std::size_t>(pid)] =
          std::stod(row[static_cast<std::size_t>(2 + pid)]);
    auto& vehicle = vehicles[record.vehicle_id];
    vehicle.spec.id = record.vehicle_id;
    vehicle.records.push_back(record);
  }
  for (const auto& row : events.rows) {
    if (row.size() < 5) return util::Status::Error("malformed event row");
    FleetEvent event;
    event.vehicle_id = std::stoi(row[0]);
    event.timestamp = std::stoll(row[1]);
    event.type = EventTypeByName(row[2]);
    event.code = row[3];
    event.recorded = row[4] == "1";
    auto& vehicle = vehicles[event.vehicle_id];
    vehicle.spec.id = event.vehicle_id;
    vehicle.events.push_back(event);
  }

  fleet->vehicles.clear();
  for (auto& [id, vehicle] : vehicles) {
    vehicle.reporting = false;
    for (const auto& event : vehicle.events)
      if (event.recorded && IsMaintenanceEvent(event.type)) vehicle.reporting = true;
    fleet->vehicles.push_back(std::move(vehicle));
  }
  return util::Status();
}

}  // namespace navarchos::telemetry
