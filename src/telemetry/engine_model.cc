#include "telemetry/engine_model.h"

#include <algorithm>
#include <cmath>

namespace navarchos::telemetry {
namespace {

/// Parking cool-down time constant [min]. Engine bays hold heat for hours:
/// a vehicle parked one hour keeps roughly three quarters of its coolant-ambient
/// gap, so intra-day rides mostly run at regulated temperature and only the
/// first ride of a day is a true cold start.
constexpr double kCooldownTauMin = 240.0;

/// Air density at reference conditions (100 kPa, 20 C) [g/L].
constexpr double kAirDensityRef = 1.19;

}  // namespace

EngineModel::EngineModel(const VehicleSpec& spec) : spec_(spec) {}

void EngineModel::StartRide(Minute t, double ambient_c) {
  if (last_active_ < 0) {
    coolant_c_ = ambient_c;
  } else {
    const double gap = static_cast<double>(std::max<Minute>(0, t - last_active_));
    const double decay = std::exp(-gap / kCooldownTauMin);
    coolant_c_ = ambient_c + (coolant_c_ - ambient_c) * decay;
  }
  last_active_ = t;
}

double EngineModel::LoadOf(const DrivingMinute& driving, const FaultEffects& faults) const {
  const double v = driving.speed_kmh;
  const double accel = std::max(0.0, driving.accel_kmh_min);
  const double uphill = std::max(0.0, driving.grade);
  double load = spec_.mass_factor *
                (0.14 + 0.0021 * v + 0.0000135 * v * v + 0.028 * accel + 0.16 * uphill);
  load += driving.load_offset;  // payload / headwind
  // A degraded engine needs more throttle (higher MAP) for the same motion.
  load /= std::max(0.1, 1.0 - faults.combustion_loss);
  return std::clamp(load, 0.08, 1.0);
}

PidVector EngineModel::Step(Minute t, const DrivingMinute& driving, double ambient_c,
                            const FaultEffects& faults, util::Rng& rng) {
  last_active_ = t;
  const double v = driving.speed_kmh;
  const double load = LoadOf(driving, faults);

  // --- rpm: gear-dependent ratio, enriched at low speed (low gears). ---
  double rpm;
  if (v < 2.0) {
    rpm = spec_.idle_rpm;
  } else {
    const double ratio = (spec_.ratio_base + spec_.ratio_low / (v + spec_.ratio_knee)) *
                         driving.gear_style;
    rpm = std::max(spec_.idle_rpm, v * ratio);
    // Downshift under acceleration demand.
    rpm *= 1.0 + 0.012 * std::max(0.0, driving.accel_kmh_min);
  }
  rpm *= 1.0 + rng.Gaussian(0.0, 0.015 + faults.rpm_noise_frac);
  rpm = std::max(500.0, rpm);

  // --- MAP: follows load; an intake leak lifts it at low load. ---
  double map_kpa = 28.0 + 65.0 * load;
  map_kpa += faults.map_leak_kpa * (1.0 - load);
  map_kpa += rng.Gaussian(0.0, 1.4);
  map_kpa = std::clamp(map_kpa, 22.0, 103.0);

  // --- Intake temperature: ambient + heat soak at low airflow. ---
  double intake_c = ambient_c + 8.0 + 6.0 * std::exp(-v / 40.0) +
                    rng.Gaussian(0.0, 1.2);

  // --- MAF: speed-density. A 4-stroke fills displacement/2 per revolution. --
  const double intake_k = intake_c + 273.15;
  double maf_true = spec_.volumetric_eff * (spec_.displacement_l / 2.0) *
                    (rpm / 60.0) * (map_kpa / 101.0) * kAirDensityRef *
                    (293.15 / intake_k);
  double maf = maf_true * (1.0 + faults.maf_gain_delta);
  maf *= 1.0 + rng.Gaussian(0.0, 0.02 + faults.maf_noise_frac);
  maf = std::max(0.5, maf);

  // --- Coolant: first-order relaxation toward a regulated target. ---
  const double regulated = spec_.thermostat_c + faults.coolant_load_gain * load +
                           2.5 * load;  // small healthy load sensitivity
  // With the thermostat stuck open, temperature equilibrates where heat input
  // balances airflow cooling: strongly dependent on speed and ambient.
  const double unregulated = ambient_c + 38.0 + 30.0 * load - 0.22 * v;
  const double target =
      (1.0 - faults.thermostat_open) * regulated + faults.thermostat_open * unregulated;
  const double alpha = 1.0 - std::exp(-1.0 / spec_.warmup_tau_min);
  coolant_c_ += (target - coolant_c_) * alpha + rng.Gaussian(0.0, 0.25);
  coolant_c_ = std::clamp(coolant_c_, ambient_c - 5.0, 125.0);

  PidVector pids;
  pids[static_cast<int>(Pid::kRpm)] = rpm;
  pids[static_cast<int>(Pid::kSpeed)] = v;
  pids[static_cast<int>(Pid::kCoolantTemp)] = coolant_c_;
  pids[static_cast<int>(Pid::kIntakeTemp)] = intake_c;
  pids[static_cast<int>(Pid::kMapIntake)] = map_kpa;
  pids[static_cast<int>(Pid::kMafAirFlowRate)] = maf;
  return pids;
}

}  // namespace navarchos::telemetry
