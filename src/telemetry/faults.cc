#include "telemetry/faults.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace navarchos::telemetry {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kThermostatStuckOpen: return "thermostat_stuck_open";
    case FaultType::kMafSensorDrift: return "maf_sensor_drift";
    case FaultType::kIntakeLeak: return "intake_leak";
    case FaultType::kCoolantRestriction: return "coolant_restriction";
    case FaultType::kInjectorDegradation: return "injector_degradation";
  }
  return "unknown";
}

void FaultEffects::Add(const FaultEffects& other) {
  thermostat_open = std::min(1.0, thermostat_open + other.thermostat_open);
  maf_gain_delta += other.maf_gain_delta;
  maf_noise_frac += other.maf_noise_frac;
  map_leak_kpa += other.map_leak_kpa;
  coolant_load_gain += other.coolant_load_gain;
  rpm_noise_frac += other.rpm_noise_frac;
  combustion_loss = std::min(0.9, combustion_loss + other.combustion_loss);
}

double FaultInstance::SeverityAt(Minute t) const {
  if (t < onset || t >= repair_time) return 0.0;
  const double span = static_cast<double>(repair_time - onset);
  if (span <= 0.0) return 0.0;
  const double x = static_cast<double>(t - onset) / span;
  // Smoothstep raised to an exponent < 1: degradation becomes noticeable
  // around a third of the way into the lead window, so some alarms precede
  // the repair by more than two weeks (the paper's PH=30 results dominate
  // its PH=15 ones).
  const double s = x * x * (3.0 - 2.0 * x);
  return peak_severity * std::pow(s, 0.55);
}

FaultEffects EffectsOf(FaultType type, double severity) {
  FaultEffects effects;
  if (severity <= 0.0) return effects;
  const double s = std::min(1.0, severity);
  switch (type) {
    case FaultType::kThermostatStuckOpen:
      effects.thermostat_open = 0.95 * s;
      break;
    case FaultType::kMafSensorDrift:
      // Correlations are scale-invariant, so a pure gain drift is invisible
      // to them (only XGBoost/TranAD see the level shift); the erratic
      // component is what breaks the rpm*map <-> MAF coupling.
      effects.maf_gain_delta = -0.25 * s;
      effects.maf_noise_frac = 0.45 * s;
      break;
    case FaultType::kIntakeLeak:
      effects.map_leak_kpa = 28.0 * s;
      effects.maf_gain_delta = -0.12 * s;  // unmetered air bypasses the MAF
      break;
    case FaultType::kCoolantRestriction:
      effects.coolant_load_gain = 70.0 * s;
      break;
    case FaultType::kInjectorDegradation:
      effects.rpm_noise_frac = 0.28 * s;
      effects.combustion_loss = 0.50 * s;
      break;
  }
  return effects;
}

FaultEffects CombinedEffectsAt(std::span<const FaultInstance> faults, Minute t) {
  FaultEffects combined;
  for (const FaultInstance& fault : faults)
    combined.Add(EffectsOf(fault.type, fault.SeverityAt(t)));
  return combined;
}

FaultInstance SampleFault(int fault_id, std::int32_t vehicle_id, Minute repair_time,
                          int lead_days, util::Rng& rng) {
  NAVARCHOS_CHECK(lead_days > 0);
  FaultInstance fault;
  fault.fault_id = fault_id;
  fault.vehicle_id = vehicle_id;
  fault.type = static_cast<FaultType>(rng.UniformInt(0, kNumFaultTypes - 1));
  fault.repair_time = repair_time;
  fault.onset = std::max<Minute>(0, repair_time - static_cast<Minute>(lead_days) *
                                        kMinutesPerDay);
  fault.peak_severity = rng.Uniform(0.85, 1.0);
  return fault;
}

}  // namespace navarchos::telemetry
