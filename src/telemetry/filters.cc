#include "telemetry/filters.h"

#include <cmath>

namespace navarchos::telemetry {
namespace {

constexpr double kMovingSpeedKmh = 3.0;

struct Range {
  double lo;
  double hi;
};

// Plausible operating envelope per PID channel.
constexpr Range kPlausible[kNumPids] = {
    {300.0, 7500.0},   // rpm
    {0.0, 220.0},      // speed
    {-30.0, 130.0},    // coolantTemp
    {-30.0, 80.0},     // intakeTemp
    {10.0, 110.0},     // mapIntake
    {0.1, 400.0},      // MAFairFlowRate
};

}  // namespace

bool HasNonFinite(const Record& record) {
  for (int i = 0; i < kNumPids; ++i)
    if (!std::isfinite(record.pids[static_cast<std::size_t>(i)])) return true;
  return false;
}

bool IsStationary(const Record& record) {
  return record.pids[static_cast<int>(Pid::kSpeed)] < kMovingSpeedKmh;
}

bool IsSensorFaulty(const Record& record) {
  for (int i = 0; i < kNumPids; ++i) {
    const double v = record.pids[static_cast<std::size_t>(i)];
    // NaN compares false against both bounds: reject non-finite explicitly.
    if (!std::isfinite(v) || v < kPlausible[i].lo || v > kPlausible[i].hi) return true;
  }
  // Inconsistent reading: engine racing while the vehicle reports no motion.
  if (record.pids[static_cast<int>(Pid::kRpm)] > 4000.0 &&
      record.pids[static_cast<int>(Pid::kSpeed)] < 1.0) {
    return true;
  }
  return false;
}

bool IsUsable(const Record& record) {
  return !IsStationary(record) && !IsSensorFaulty(record);
}

std::vector<Record> FilterRecords(const std::vector<Record>& records) {
  std::vector<Record> usable;
  usable.reserve(records.size());
  for (const Record& record : records)
    if (IsUsable(record)) usable.push_back(record);
  return usable;
}

}  // namespace navarchos::telemetry
