// Fleet dataset persistence.
//
// Exports a generated fleet to two CSV files (records + events) in the shape
// a real FMS backend would produce, and re-imports them. Lets downstream
// users run the pipeline on their own OBD-II dumps by matching the format,
// and makes simulated fleets inspectable with standard tools.
#ifndef NAVARCHOS_TELEMETRY_IO_H_
#define NAVARCHOS_TELEMETRY_IO_H_

#include <string>

#include "telemetry/fleet.h"
#include "util/status.h"

namespace navarchos::telemetry {

/// Writes `fleet` as `<prefix>_records.csv` (vehicle_id, timestamp_min, six
/// PID columns) and `<prefix>_events.csv` (vehicle_id, timestamp_min, type,
/// code, recorded). Ground-truth fault metadata is NOT exported - the files
/// contain exactly what a real platform would have.
util::Status WriteFleetCsv(const std::string& prefix, const FleetDataset& fleet);

/// Row-level outcomes of one ReadFleetCsv call.
struct FleetCsvStats {
  std::size_t record_rows = 0;          ///< Record rows accepted.
  std::size_t event_rows = 0;           ///< Event rows accepted.
  std::size_t skipped_record_rows = 0;  ///< Rows with out-of-range values.
  std::size_t skipped_event_rows = 0;   ///< Rows with out-of-range values.
};

/// Reads the two CSV files back into a FleetDataset. Vehicle specs and
/// ground-truth faults are absent (defaults / empty); `reporting` is inferred
/// as "has at least one recorded maintenance event", matching the paper's
/// setting26 definition.
///
/// Tolerates CRLF line endings and a missing trailing newline. Structurally
/// malformed rows (wrong column count, unparsable numbers) fail with the
/// file name and line number in the Status message; rows whose numbers parse
/// but overflow their type are skipped and counted in `stats` instead of
/// aborting the import. Non-finite PID values ("nan") are imported verbatim -
/// the pipeline's filters classify them downstream.
util::Status ReadFleetCsv(const std::string& prefix, FleetDataset* fleet,
                          FleetCsvStats* stats = nullptr);

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_IO_H_
