// Fleet dataset persistence.
//
// Exports a generated fleet to two CSV files (records + events) in the shape
// a real FMS backend would produce, and re-imports them. Lets downstream
// users run the pipeline on their own OBD-II dumps by matching the format,
// and makes simulated fleets inspectable with standard tools.
#ifndef NAVARCHOS_TELEMETRY_IO_H_
#define NAVARCHOS_TELEMETRY_IO_H_

#include <string>

#include "telemetry/fleet.h"
#include "util/status.h"

namespace navarchos::telemetry {

/// Writes `fleet` as `<prefix>_records.csv` (vehicle_id, timestamp_min, six
/// PID columns) and `<prefix>_events.csv` (vehicle_id, timestamp_min, type,
/// code, recorded). Ground-truth fault metadata is NOT exported - the files
/// contain exactly what a real platform would have.
util::Status WriteFleetCsv(const std::string& prefix, const FleetDataset& fleet);

/// Reads the two CSV files back into a FleetDataset. Vehicle specs and
/// ground-truth faults are absent (defaults / empty); `reporting` is inferred
/// as "has at least one recorded maintenance event", matching the paper's
/// setting26 definition.
util::Status ReadFleetCsv(const std::string& prefix, FleetDataset* fleet);

}  // namespace navarchos::telemetry

#endif  // NAVARCHOS_TELEMETRY_IO_H_
