// Detector wrapper around the TranAD reconstruction model (paper §3.5).
//
// Fit() standardises the reference, slices it into overlapping windows and
// trains the network; Score() maintains a rolling window of the most recent
// samples and emits the reconstruction-based anomaly score. Until the first
// window fills, scores are 0 (no evidence).
#ifndef NAVARCHOS_DETECT_TRANAD_DETECTOR_H_
#define NAVARCHOS_DETECT_TRANAD_DETECTOR_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "detect/nn/tranad.h"
#include "transform/standardizer.h"

namespace navarchos::detect {

/// Reconstruction-error detector (single score channel).
class TranAdDetector : public Detector {
 public:
  explicit TranAdDetector(const nn::TranAdParams& params = {});

  std::string Name() const override { return "tranad"; }
  void Fit(const std::vector<std::vector<double>>& ref) override;
  std::vector<double> Score(const std::vector<double>& sample) override;
  std::size_t ScoreChannels() const override { return 1; }
  std::vector<std::string> ChannelNames() const override {
    return {"reconstruction_error"};
  }
  std::size_t MinReferenceSize() const override {
    return static_cast<std::size_t>(2 * params_.window);
  }
  void SaveState(persist::Encoder& encoder) const override;
  bool RestoreState(persist::Decoder& decoder) override;

 private:
  nn::TranAdParams params_;
  transform::Standardizer standardizer_;
  std::unique_ptr<nn::TranAdModel> model_;
  std::deque<std::vector<double>> rolling_window_;
};

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_TRANAD_DETECTOR_H_
