// Step 3 of the paper's framework: unsupervised deviation scoring.
//
// A Detector is fitted on the current reference profile (Ref) of one vehicle
// and then scores each new transformed sample. Detectors expose one or more
// *score channels*:
//  * closest-pair and XGBoost score each input feature separately (f
//    channels), which makes their alarms attributable to a feature;
//  * Grand and TranAD emit a single multivariate score (1 channel).
#ifndef NAVARCHOS_DETECT_DETECTOR_H_
#define NAVARCHOS_DETECT_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "persist/codec.h"

namespace navarchos::detect {

/// Unsupervised anomaly scorer fitted on a healthy reference sample.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Stable identifier ("closest_pair", "grand", "tranad", "xgboost").
  virtual std::string Name() const = 0;

  /// Fits the detector on the reference profile (rows of equal length,
  /// at least MinReferenceSize() of them). May be called repeatedly - each
  /// call discards the previous state (dynamic reference rebuilding).
  virtual void Fit(const std::vector<std::vector<double>>& ref) = 0;

  /// Scores one sample. Returns ScoreChannels() non-negative scores; higher
  /// means more anomalous. Stateful detectors (Grand's martingale) update
  /// their internal state, so call exactly once per streamed sample.
  virtual std::vector<double> Score(const std::vector<double>& sample) = 0;

  /// Number of score channels (fixed after Fit).
  virtual std::size_t ScoreChannels() const = 0;

  /// Channel labels for alarm explanations (feature names when channels map
  /// to features, {"score"} for single-channel detectors).
  virtual std::vector<std::string> ChannelNames() const = 0;

  /// Smallest reference size the detector can be fitted on.
  virtual std::size_t MinReferenceSize() const { return 8; }

  /// Optional: anomaly scores of the fitted reference samples themselves,
  /// each computed against the reference with a temporal exclusion zone of
  /// `exclusion_radius` samples around it. Because consecutive sliding-window
  /// samples overlap, plain leave-one-out distances are near zero; the
  /// exclusion zone yields honest "novel healthy sample" scores spanning the
  /// whole reference period, which enriches threshold calibration. Returns
  /// empty when the detector does not support it.
  virtual std::vector<std::vector<double>> SelfCalibrationScores(
      int exclusion_radius) const {
    (void)exclusion_radius;
    return {};
  }

  /// True when the detector's scores are bounded in [0, 1] (paper: Grand is
  /// the only such technique and is thresholded with a constant instead of
  /// the self-tuning rule).
  virtual bool ScoresAreProbabilities() const { return false; }

  /// Serialises everything Score() depends on - fitted parameters, model
  /// weights, streaming state (rolling windows, martingales, RNG positions) -
  /// so that a restored detector scores the remaining stream bit-identically
  /// to the uninterrupted one. Optimiser scratch (gradients, Adam moments) is
  /// deliberately excluded: Fit() always rebuilds models from scratch with
  /// detector-owned seeds, so inference state fully determines the future.
  virtual void SaveState(persist::Encoder& encoder) const { (void)encoder; }

  /// Restores state written by SaveState into a freshly constructed detector
  /// of the same kind and parameters. Returns false (leaving the decoder
  /// failed) on malformed input.
  virtual bool RestoreState(persist::Decoder& decoder) {
    (void)decoder;
    return true;
  }
};

/// The four technique choices evaluated in the paper, plus two extensions
/// from its related-work discussion (§5): the isolation forest of Khan et
/// al. 2019 and the MLP regression scheme of Massaro et al. 2020.
enum class DetectorKind : int {
  kClosestPair = 0,
  kGrand = 1,
  kTranAd = 2,
  kXgBoost = 3,
  kIsolationForest = 4,
  kMlp = 5,
  kKnnDistance = 6,  ///< Plain multivariate kNN distance (section-2 baseline).
};

/// Display name of a detector kind.
const char* DetectorKindName(DetectorKind kind);

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_DETECTOR_H_
