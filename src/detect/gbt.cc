#include "detect/gbt.h"

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace navarchos::detect {
namespace {

/// XGBoost structure score of a node given gradient/hessian sums.
double StructureScore(double grad_sum, double hess_sum, double reg_lambda) {
  return grad_sum * grad_sum / (hess_sum + reg_lambda);
}

struct SplitCandidate {
  double gain = 0.0;
  int feature = -1;
  double threshold = 0.0;
};

}  // namespace

GbtRegressor::GbtRegressor(const GbtParams& params) : params_(params) {
  NAVARCHOS_CHECK(params_.num_trees >= 1);
  NAVARCHOS_CHECK(params_.max_depth >= 1);
  NAVARCHOS_CHECK(params_.learning_rate > 0.0);
  NAVARCHOS_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0);
  NAVARCHOS_CHECK(params_.colsample > 0.0 && params_.colsample <= 1.0);
}

double GbtRegressor::Tree::Predict(std::span<const double> row) const {
  int node = 0;
  while (nodes[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes[static_cast<std::size_t>(node)];
    node = row[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<std::size_t>(node)].value;
}

void GbtRegressor::Fit(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& y) {
  NAVARCHOS_CHECK(!x.empty());
  NAVARCHOS_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  const std::size_t dims = x.front().size();
  for (const auto& row : x) NAVARCHOS_CHECK(row.size() == dims);

  trees_.clear();
  base_score_ = util::Mean(y);
  std::vector<double> pred(n, base_score_);
  util::Rng rng(params_.seed);

  for (int t = 0; t < params_.num_trees; ++t) {
    // Squared loss: g = pred - y, h = 1.
    std::vector<double> grad(n), hess(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) grad[i] = pred[i] - y[i];

    // Row subsample for this tree.
    std::vector<int> rows;
    rows.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      if (params_.subsample >= 1.0 || rng.Bernoulli(params_.subsample))
        rows.push_back(static_cast<int>(i));
    if (rows.size() < 4) {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), 0);
    }

    // Column subsample for this tree.
    std::vector<int> columns;
    for (std::size_t d = 0; d < dims; ++d)
      if (params_.colsample >= 1.0 || rng.Bernoulli(params_.colsample))
        columns.push_back(static_cast<int>(d));
    if (columns.empty()) columns.push_back(static_cast<int>(rng.UniformInt(
        0, static_cast<std::int64_t>(dims) - 1)));

    Tree tree;
    // Recursive exact-greedy construction over (node, rows, depth).
    struct Frame {
      int node;
      std::vector<int> rows;
      int depth;
    };
    tree.nodes.push_back({});
    std::vector<Frame> stack;
    stack.push_back({0, rows, 0});

    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();

      double grad_sum = 0.0, hess_sum = 0.0;
      for (int i : frame.rows) {
        grad_sum += grad[static_cast<std::size_t>(i)];
        hess_sum += hess[static_cast<std::size_t>(i)];
      }

      auto make_leaf = [&]() {
        Node& leaf = tree.nodes[static_cast<std::size_t>(frame.node)];
        leaf.feature = -1;
        leaf.value = -params_.learning_rate * grad_sum / (hess_sum + params_.reg_lambda);
      };

      if (frame.depth >= params_.max_depth ||
          hess_sum < 2.0 * params_.min_child_weight || frame.rows.size() < 4) {
        make_leaf();
        continue;
      }

      // Exact greedy split search over the sampled columns.
      SplitCandidate best;
      const double parent_score = StructureScore(grad_sum, hess_sum, params_.reg_lambda);
      std::vector<std::pair<double, int>> sorted_rows;
      sorted_rows.reserve(frame.rows.size());
      for (int feature : columns) {
        sorted_rows.clear();
        for (int i : frame.rows)
          sorted_rows.emplace_back(x[static_cast<std::size_t>(i)][static_cast<std::size_t>(feature)], i);
        std::sort(sorted_rows.begin(), sorted_rows.end());

        double left_grad = 0.0, left_hess = 0.0;
        for (std::size_t pos = 0; pos + 1 < sorted_rows.size(); ++pos) {
          const int i = sorted_rows[pos].second;
          left_grad += grad[static_cast<std::size_t>(i)];
          left_hess += hess[static_cast<std::size_t>(i)];
          // Can't split between equal feature values.
          if (sorted_rows[pos].first == sorted_rows[pos + 1].first) continue;
          const double right_grad = grad_sum - left_grad;
          const double right_hess = hess_sum - left_hess;
          if (left_hess < params_.min_child_weight ||
              right_hess < params_.min_child_weight) {
            continue;
          }
          const double gain =
              0.5 * (StructureScore(left_grad, left_hess, params_.reg_lambda) +
                     StructureScore(right_grad, right_hess, params_.reg_lambda) -
                     parent_score) -
              params_.gamma;
          if (gain > best.gain) {
            best.gain = gain;
            best.feature = feature;
            best.threshold = 0.5 * (sorted_rows[pos].first + sorted_rows[pos + 1].first);
          }
        }
      }

      if (best.feature < 0) {
        make_leaf();
        continue;
      }

      std::vector<int> left_rows, right_rows;
      for (int i : frame.rows) {
        const double v = x[static_cast<std::size_t>(i)][static_cast<std::size_t>(best.feature)];
        (v < best.threshold ? left_rows : right_rows).push_back(i);
      }

      // Reserve both children before taking any reference: push_back can
      // reallocate the node vector.
      const int left_id = static_cast<int>(tree.nodes.size());
      const int right_id = left_id + 1;
      tree.nodes.push_back({});
      tree.nodes.push_back({});
      Node& node = tree.nodes[static_cast<std::size_t>(frame.node)];
      node.feature = best.feature;
      node.threshold = best.threshold;
      node.left = left_id;
      node.right = right_id;
      stack.push_back({left_id, std::move(left_rows), frame.depth + 1});
      stack.push_back({right_id, std::move(right_rows), frame.depth + 1});
    }

    // Update predictions with the new tree.
    for (std::size_t i = 0; i < n; ++i) pred[i] += tree.Predict(x[i]);
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

std::string GbtRegressor::Serialise() const {
  NAVARCHOS_CHECK(fitted_);
  std::string out = "gbt v1\n";
  char line[128];
  std::snprintf(line, sizeof(line), "base %.17g\n", base_score_);
  out += line;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    std::snprintf(line, sizeof(line), "tree %zu %zu\n", t, trees_[t].nodes.size());
    out += line;
    for (const Node& node : trees_[t].nodes) {
      std::snprintf(line, sizeof(line), "%d %.17g %d %d %.17g\n", node.feature,
                    node.threshold, node.left, node.right, node.value);
      out += line;
    }
  }
  return out;
}

bool GbtRegressor::Deserialise(const std::string& text) {
  fitted_ = false;
  trees_.clear();
  std::size_t pos = 0;
  auto next_line = [&]() {
    if (pos >= text.size()) return std::string();
    const std::size_t end = text.find('\n', pos);
    const std::string line =
        text.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
    pos = end == std::string::npos ? text.size() : end + 1;
    return line;
  };
  if (next_line() != "gbt v1") return false;
  {
    const std::string line = next_line();
    if (std::sscanf(line.c_str(), "base %lg", &base_score_) != 1) return false;
  }
  while (pos < text.size()) {
    std::size_t index = 0, count = 0;
    const std::string header = next_line();
    if (header.empty()) break;
    if (std::sscanf(header.c_str(), "tree %zu %zu", &index, &count) != 2) return false;
    Tree tree;
    tree.nodes.reserve(count);
    for (std::size_t n = 0; n < count; ++n) {
      Node node;
      const std::string line = next_line();
      if (std::sscanf(line.c_str(), "%d %lg %d %d %lg", &node.feature,
                      &node.threshold, &node.left, &node.right, &node.value) != 5) {
        return false;
      }
      tree.nodes.push_back(node);
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  return true;
}

double GbtRegressor::Predict(std::span<const double> row) const {
  NAVARCHOS_CHECK(fitted_);
  double out = base_score_;
  for (const Tree& tree : trees_) out += tree.Predict(row);
  return out;
}

}  // namespace navarchos::detect
