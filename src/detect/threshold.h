// Alarm thresholding.
//
// Implements the self-tuning rule of Giannoulidis et al. (SIGKDD Explor.
// 2022) adopted by the paper (§3.3): per score channel,
//   threshold = mean(healthy scores) + factor * std(healthy scores)
// calibrated on a small held-out portion of the reference data, with the
// same factor shared across vehicles. A constant-threshold policy covers
// Grand, whose scores are probabilities.
#ifndef NAVARCHOS_DETECT_THRESHOLD_H_
#define NAVARCHOS_DETECT_THRESHOLD_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "persist/codec.h"

namespace navarchos::detect {

/// How alarms are derived from scores.
///
/// The paper adopts the mean + factor * std self-tuning rule of Giannoulidis
/// et al. (SIGKDD Explorations 2022); that work also studies alternatives,
/// two of which are implemented here for the thresholding ablation bench:
/// a robust median + factor * MAD rule and a max-of-healthy rule.
struct ThresholdConfig {
  enum class Kind {
    kSelfTuning,  ///< mean + factor * std (the paper's choice).
    kMedianMad,   ///< median + factor * 1.4826 * MAD (outlier-robust).
    kMaxHealthy,  ///< factor * max(healthy scores), factor ~ 1-2.
    kConstant,    ///< fixed value (probability-valued scores).
  };
  Kind kind = Kind::kSelfTuning;
  /// Multiplier; its meaning depends on `kind` (see above).
  double factor = 4.0;
  /// Constant: fixed threshold (used for probability-valued scores).
  double constant = 0.6;
  /// Operating minutes of out-of-sample scores collected right after each
  /// fit, used purely to calibrate the thresholds ("a small portion of
  /// healthy data", paper §3.3). Scoring the period immediately after a
  /// maintenance event - the data most plausibly healthy - gives the
  /// threshold a realistic view of day-to-day score variability (usage
  /// regimes, weather) that held-out reference slices cannot provide when
  /// windows overlap. Time-based so per-record transforms (raw, delta) get
  /// the same calibration horizon as the windowed ones.
  double burn_in_minutes = 960.0;

  /// Resolved burn-in sample count for an emission stride of
  /// `stride_records` records per sample.
  int ResolveBurnIn(int stride_records) const;
  /// Windowed persistence: an alarm requires a score channel to violate its
  /// threshold on at least `persistence_fraction` of the samples emitted
  /// over the last `persistence_minutes` of vehicle operation. Sustained
  /// degradations (the detection target) violate for weeks, while an odd
  /// ride or a short usage shift only perturbs a day or two of windows;
  /// duration - not amplitude - is what separates the two, so persistence is
  /// the main precision lever. Expressing it in operating minutes keeps the
  /// rule comparable across transforms with different emission rates
  /// (per-record raw/delta vs windowed correlation/mean).
  double persistence_minutes = 400.0;
  double persistence_fraction = 0.7;

  /// Resolved sample counts for an emission stride of `stride_records`
  /// records per sample: {window_samples, min_violations}.
  std::pair<int, int> ResolvePersistence(int stride_records) const;
};

/// Per-channel windowed-persistence state. Feed one violation bitmap per
/// scored sample; Fires() reports channels whose recent violation count
/// reached the configured minimum.
class PersistenceTracker {
 public:
  PersistenceTracker(int window, int min_count, std::size_t channels);

  /// Records one sample's violation flags and returns, per channel, whether
  /// the persistence condition holds now.
  std::vector<bool> Update(const std::vector<bool>& violations);

  /// Clears all history (reference rebuild).
  void Reset();

  /// Serialises the ring buffers and cursors (not the configuration, which
  /// the owner reconstructs from its own config).
  void Save(persist::Encoder& encoder) const;

  /// Restores state saved by Save() into a tracker constructed with the same
  /// window/min_count/channels. Returns false on malformed input.
  bool Restore(persist::Decoder& decoder);

 private:
  int window_;
  int min_count_;
  std::size_t channels_;
  std::vector<std::vector<bool>> history_;  ///< Ring buffer per channel.
  std::vector<int> counts_;
  int cursor_ = 0;
  int filled_ = 0;
};

/// Per-channel thresholds with violation lookup.
class ThresholdPolicy {
 public:
  /// Builds self-tuning thresholds from healthy calibration scores: one row
  /// per calibrated sample, one column per score channel.
  static ThresholdPolicy SelfTuning(const std::vector<std::vector<double>>& healthy_scores,
                                    double factor);

  /// Builds a constant threshold shared by all `channels` channels.
  static ThresholdPolicy Constant(double value, std::size_t channels);

  /// Wraps precomputed per-channel thresholds.
  static ThresholdPolicy Explicit(std::vector<double> thresholds);

  /// Index of the most-violating channel of `scores` (largest excess over
  /// its threshold), or std::nullopt when no channel violates.
  std::optional<std::size_t> Violation(const std::vector<double>& scores) const;

  /// Per-channel thresholds.
  const std::vector<double>& thresholds() const { return thresholds_; }

 private:
  std::vector<double> thresholds_;
};

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_THRESHOLD_H_
