#include "detect/grand.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::detect {

const char* GrandNcmName(GrandNcm ncm) {
  switch (ncm) {
    case GrandNcm::kMedian: return "median";
    case GrandNcm::kKnn: return "knn";
    case GrandNcm::kLof: return "lof";
  }
  return "unknown";
}

GrandDetector::GrandDetector(const GrandConfig& config) : config_(config) {
  NAVARCHOS_CHECK(config_.epsilon > 0.0 && config_.epsilon < 1.0);
  NAVARCHOS_CHECK(config_.k >= 1);
}

std::size_t GrandDetector::MinReferenceSize() const {
  return static_cast<std::size_t>(config_.k) + 2;
}

void GrandDetector::Fit(const std::vector<std::vector<double>>& ref) {
  NAVARCHOS_CHECK(ref.size() >= MinReferenceSize());
  standardizer_.Fit(ref);
  ref_standardized_ = standardizer_.ApplyAll(ref);
  BuildDerived();
  log_martingale_ = 0.0;
  last_p_value_ = 1.0;
}

void GrandDetector::BuildDerived() {
  const std::size_t dims = ref_standardized_.front().size();
  median_.resize(dims);
  {
    std::vector<double> column(ref_standardized_.size());
    for (std::size_t d = 0; d < dims; ++d) {
      for (std::size_t i = 0; i < ref_standardized_.size(); ++i)
        column[i] = ref_standardized_[i][d];
      median_[d] = util::Median(column);
    }
  }

  knn_.reset();
  lof_.reset();
  if (config_.ncm == GrandNcm::kKnn) {
    knn_ = std::make_unique<neighbors::KnnIndex>(ref_standardized_);
  } else if (config_.ncm == GrandNcm::kLof) {
    lof_ = std::make_unique<neighbors::LofModel>(ref_standardized_, config_.k);
  }

  // Strangeness of each reference sample against Ref (self excluded where
  // the NCM allows), sorted for O(log n) p-value lookups.
  ref_strangeness_sorted_.clear();
  ref_strangeness_sorted_.reserve(ref_standardized_.size());
  for (std::size_t i = 0; i < ref_standardized_.size(); ++i) {
    double s = 0.0;
    switch (config_.ncm) {
      case GrandNcm::kMedian:
        s = util::EuclideanDistance(ref_standardized_[i], median_);
        break;
      case GrandNcm::kKnn: {
        const auto hits =
            knn_->Query(ref_standardized_[i], config_.k, static_cast<std::ptrdiff_t>(i));
        double sum = 0.0;
        for (const auto& hit : hits) sum += hit.distance;
        s = sum / static_cast<double>(hits.size());
        break;
      }
      case GrandNcm::kLof:
        // FitScores excludes self by construction.
        s = 0.0;  // filled below in one batch
        break;
    }
    ref_strangeness_sorted_.push_back(s);
  }
  if (config_.ncm == GrandNcm::kLof) ref_strangeness_sorted_ = lof_->FitScores();
  std::sort(ref_strangeness_sorted_.begin(), ref_strangeness_sorted_.end());
}

void GrandDetector::SaveState(persist::Encoder& encoder) const {
  // The median, kNN index, LOF model and sorted reference strangeness are
  // deterministic functions of the standardized reference, so only that
  // reference travels in the snapshot; RestoreState rebuilds the rest.
  standardizer_.Save(encoder);
  encoder.PutDoubleMat(ref_standardized_);
  encoder.PutDouble(log_martingale_);
  encoder.PutDouble(last_p_value_);
  const util::RngState rng = tie_rng_.SaveState();
  for (std::uint64_t word : rng.words) encoder.PutU64(word);
  encoder.PutBool(rng.has_spare_gaussian);
  encoder.PutDouble(rng.spare_gaussian);
}

bool GrandDetector::RestoreState(persist::Decoder& decoder) {
  if (!standardizer_.Restore(decoder)) return false;
  ref_standardized_ = decoder.GetDoubleMat();
  log_martingale_ = decoder.GetDouble();
  last_p_value_ = decoder.GetDouble();
  util::RngState rng;
  for (std::uint64_t& word : rng.words) word = decoder.GetU64();
  rng.has_spare_gaussian = decoder.GetBool();
  rng.spare_gaussian = decoder.GetDouble();
  if (!decoder.ok()) return false;
  if (!ref_standardized_.empty()) {
    if (ref_standardized_.size() < MinReferenceSize()) {
      decoder.Fail("grand reference smaller than minimum");
      return false;
    }
    const std::size_t dims = ref_standardized_.front().size();
    for (const auto& row : ref_standardized_) {
      if (row.size() != dims || dims == 0) {
        decoder.Fail("grand ragged standardized reference");
        return false;
      }
    }
    BuildDerived();
  }
  tie_rng_.RestoreState(rng);
  return true;
}

double GrandDetector::Strangeness(const std::vector<double>& standardized) const {
  switch (config_.ncm) {
    case GrandNcm::kMedian:
      return util::EuclideanDistance(standardized, median_);
    case GrandNcm::kKnn: {
      const auto hits = knn_->Query(standardized, config_.k);
      double sum = 0.0;
      for (const auto& hit : hits) sum += hit.distance;
      return sum / static_cast<double>(hits.size());
    }
    case GrandNcm::kLof:
      return lof_->Score(standardized);
  }
  return 0.0;
}

std::vector<double> GrandDetector::Score(const std::vector<double>& sample) {
  NAVARCHOS_CHECK(!ref_strangeness_sorted_.empty());
  const std::vector<double> standardized = standardizer_.Apply(sample);
  const double s = Strangeness(standardized);

  // Smoothed conformal p-value:
  //   p = (#{s_i > s} + theta * (#{s_i == s} + 1)) / (n + 1)
  const auto& sorted = ref_strangeness_sorted_;
  const double n = static_cast<double>(sorted.size());
  const std::size_t greater =
      sorted.end() - std::upper_bound(sorted.begin(), sorted.end(), s);
  const std::size_t equal =
      std::upper_bound(sorted.begin(), sorted.end(), s) -
      std::lower_bound(sorted.begin(), sorted.end(), s);
  const double theta = tie_rng_.Uniform();
  double p = (static_cast<double>(greater) + theta * (static_cast<double>(equal) + 1.0)) /
             (n + 1.0);
  p = std::clamp(p, 1.0 / (n + 1.0), 1.0);
  last_p_value_ = p;

  // Martingale update. Power: M *= epsilon * p^(epsilon - 1). Mixture:
  // integrate the power betting function over epsilon in (0, 1), which
  // avoids committing to one exponent (Dai & Bouguelia 2020); the integral
  // of e * p^(e-1) d e has the closed form (p - 1 - ln p * p) / (ln p)^2
  // ... approximated here by a midpoint quadrature over a small epsilon
  // grid, which is numerically robust for p near 1.
  double increment;
  if (config_.martingale == GrandMartingale::kPower) {
    increment = std::log(config_.epsilon) + (config_.epsilon - 1.0) * std::log(p);
  } else {
    double bet = 0.0;
    constexpr int kGrid = 8;
    for (int i = 0; i < kGrid; ++i) {
      const double epsilon = (i + 0.5) / kGrid;
      bet += epsilon * std::pow(p, epsilon - 1.0);
    }
    increment = std::log(bet / kGrid);
  }
  log_martingale_ += increment;
  if (config_.clamp_martingale && log_martingale_ < 0.0) log_martingale_ = 0.0;

  // Normalise to [0, 1): M / (M + 1), with the exponent capped for safety.
  // A neutral martingale (M = 1) maps to 0.5; sustained deviations approach 1.
  const double m = std::exp(std::min(log_martingale_, 500.0));
  return {m / (m + 1.0)};
}

}  // namespace navarchos::detect
