// Grand inductive deviation detection (paper §3.4).
//
// Follows Rognvaldsson et al. (DMKD 2018) in the "self" strategy the paper
// uses: normality is defined by a reference period of the *same* vehicle
// rather than the rest of the fleet. The pipeline is
//   1. a non-conformity measure (NCM) turns a sample into a strangeness
//      value relative to Ref: distance to the Ref median, average kNN
//      distance within Ref, or LOF against Ref;
//   2. the strangeness is converted to a conformal p-value against the
//      strangeness distribution of Ref itself;
//   3. consecutive p-values feed an exchangeability power martingale (Dai &
//      Bouguelia, 2020): sustained small p-values grow the martingale, and
//      the emitted deviation score is the martingale normalised to [0, 1).
// The deviation score is thresholded with a constant (the paper's protocol
// for Grand, the only technique with probability-like scores).
#ifndef NAVARCHOS_DETECT_GRAND_H_
#define NAVARCHOS_DETECT_GRAND_H_

#include <memory>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "neighbors/lof.h"
#include "transform/standardizer.h"
#include "util/rng.h"

namespace navarchos::detect {

/// Non-conformity measures supported by Grand.
enum class GrandNcm : int {
  kMedian = 0,  ///< Distance to the feature-wise median of Ref.
  kKnn = 1,     ///< Average distance to the k nearest neighbours in Ref.
  kLof = 2,     ///< Local outlier factor against Ref.
};

/// Display name of an NCM.
const char* GrandNcmName(GrandNcm ncm);

/// Martingale variants for the exchangeability test (Dai & Bouguelia 2020).
enum class GrandMartingale : int {
  kPower = 0,    ///< M *= epsilon * p^(epsilon-1) for a fixed epsilon.
  kMixture = 1,  ///< Integral of the power martingale over epsilon in (0,1).
};

/// Configuration of the Grand detector.
struct GrandConfig {
  GrandNcm ncm = GrandNcm::kKnn;
  GrandMartingale martingale = GrandMartingale::kPower;
  int k = 10;               ///< Neighbourhood size for kNN / LOF.
  double epsilon = 0.92;    ///< Power-martingale betting exponent in (0, 1).
  /// The martingale's log value is clamped at 0 from below so that long
  /// healthy stretches cannot build "credit" that masks later deviations.
  bool clamp_martingale = true;
};

/// Grand inductive anomaly detector (single score channel in [0, 1)).
class GrandDetector : public Detector {
 public:
  explicit GrandDetector(const GrandConfig& config = {});

  std::string Name() const override { return "grand"; }
  void Fit(const std::vector<std::vector<double>>& ref) override;
  std::vector<double> Score(const std::vector<double>& sample) override;
  std::size_t ScoreChannels() const override { return 1; }
  std::vector<std::string> ChannelNames() const override { return {"deviation"}; }
  bool ScoresAreProbabilities() const override { return true; }
  std::size_t MinReferenceSize() const override;

  /// Conformal p-value of the last scored sample (for tests/diagnostics).
  double last_p_value() const { return last_p_value_; }

  void SaveState(persist::Encoder& encoder) const override;
  bool RestoreState(persist::Decoder& decoder) override;

 private:
  double Strangeness(const std::vector<double>& standardized) const;

  /// Deterministically recomputes median_, knn_, lof_ and
  /// ref_strangeness_sorted_ from ref_standardized_ (shared by Fit and
  /// RestoreState, so snapshots only need to carry the reference).
  void BuildDerived();

  GrandConfig config_;
  transform::Standardizer standardizer_;
  std::vector<std::vector<double>> ref_standardized_;
  std::vector<double> ref_strangeness_sorted_;
  std::vector<double> median_;
  std::unique_ptr<neighbors::LofModel> lof_;
  std::unique_ptr<neighbors::KnnIndex> knn_;
  double log_martingale_ = 0.0;
  double last_p_value_ = 1.0;
  util::Rng tie_rng_{0xC0FFEE};  ///< Deterministic tie-breaking stream.
};

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_GRAND_H_
