// Closest-pair detection (paper §3.3): the technique the paper ultimately
// adopts.
//
// Each input feature is monitored separately: the anomaly score of feature j
// for a new sample is the distance from the sample's j-th value to its
// closest value among the reference profile's j-th column. Alarms therefore
// come with the triggering feature attached ("coolantTemp~speed correlation
// drifted"), which the paper highlights as an explainability advantage.
#ifndef NAVARCHOS_DETECT_CLOSEST_PAIR_H_
#define NAVARCHOS_DETECT_CLOSEST_PAIR_H_

#include <string>
#include <vector>

#include "detect/detector.h"

namespace navarchos::detect {

/// Per-feature nearest-neighbour distance detector.
class ClosestPairDetector : public Detector {
 public:
  /// `feature_names` labels the score channels; may be empty, in which case
  /// channels are named f0, f1, ...
  explicit ClosestPairDetector(std::vector<std::string> feature_names = {});

  std::string Name() const override { return "closest_pair"; }
  void Fit(const std::vector<std::vector<double>>& ref) override;
  std::vector<double> Score(const std::vector<double>& sample) override;
  std::size_t ScoreChannels() const override { return columns_.size(); }
  std::vector<std::string> ChannelNames() const override;
  std::vector<std::vector<double>> SelfCalibrationScores(
      int exclusion_radius) const override;
  void SaveState(persist::Encoder& encoder) const override;
  bool RestoreState(persist::Decoder& decoder) override;

 private:
  std::vector<std::string> feature_names_;
  /// Reference values per feature, sorted ascending for O(log n) lookup.
  std::vector<std::vector<double>> columns_;
  /// Reference values per feature in original (temporal) order, kept for
  /// leave-block-out self-calibration.
  std::vector<std::vector<double>> columns_temporal_;
};

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_CLOSEST_PAIR_H_
