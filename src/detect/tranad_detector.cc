#include "detect/tranad_detector.h"

#include "util/check.h"

namespace navarchos::detect {

TranAdDetector::TranAdDetector(const nn::TranAdParams& params) : params_(params) {}

void TranAdDetector::Fit(const std::vector<std::vector<double>>& ref) {
  NAVARCHOS_CHECK(ref.size() >= MinReferenceSize());
  standardizer_.Fit(ref);
  const auto z = standardizer_.ApplyAll(ref);
  const int dims = static_cast<int>(z.front().size());
  const int window = params_.window;

  std::vector<nn::Matrix> windows;
  windows.reserve(z.size() - static_cast<std::size_t>(window) + 1);
  for (std::size_t start = 0; start + static_cast<std::size_t>(window) <= z.size();
       ++start) {
    nn::Matrix w(static_cast<std::size_t>(window), static_cast<std::size_t>(dims));
    for (int r = 0; r < window; ++r)
      for (int c = 0; c < dims; ++c)
        w.At(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
            z[start + static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
    windows.push_back(std::move(w));
  }

  model_ = std::make_unique<nn::TranAdModel>(dims, params_);
  model_->Train(windows);
  rolling_window_.clear();
}

std::vector<double> TranAdDetector::Score(const std::vector<double>& sample) {
  NAVARCHOS_CHECK(model_ != nullptr);
  rolling_window_.push_back(standardizer_.Apply(sample));
  if (rolling_window_.size() > static_cast<std::size_t>(params_.window))
    rolling_window_.pop_front();
  if (rolling_window_.size() < static_cast<std::size_t>(params_.window)) return {0.0};

  const int dims = static_cast<int>(rolling_window_.front().size());
  nn::Matrix window(static_cast<std::size_t>(params_.window),
                    static_cast<std::size_t>(dims));
  for (int r = 0; r < params_.window; ++r)
    for (int c = 0; c < dims; ++c)
      window.At(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          rolling_window_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  return {model_->Score(window)};
}

void TranAdDetector::SaveState(persist::Encoder& encoder) const {
  standardizer_.Save(encoder);
  encoder.PutBool(model_ != nullptr);
  if (model_ != nullptr) {
    encoder.PutI32(static_cast<std::int32_t>(standardizer_.mean().size()));
    model_->Save(encoder);
  }
  // The rolling window is live streaming state: scores after a restore must
  // see the same recent samples the uninterrupted run would have.
  encoder.PutU64(rolling_window_.size());
  for (const auto& row : rolling_window_) encoder.PutDoubleVec(row);
}

bool TranAdDetector::RestoreState(persist::Decoder& decoder) {
  if (!standardizer_.Restore(decoder)) return false;
  model_.reset();
  if (decoder.GetBool()) {
    const std::int32_t dims = decoder.GetI32();
    if (!decoder.ok()) return false;
    if (dims < 1 || static_cast<std::size_t>(dims) != standardizer_.mean().size()) {
      decoder.Fail("tranad feature dimension mismatch");
      return false;
    }
    model_ = std::make_unique<nn::TranAdModel>(dims, params_);
    if (!model_->Restore(decoder)) return false;
  }
  const std::uint64_t rows = decoder.GetU64();
  if (!decoder.ok() || rows > static_cast<std::uint64_t>(params_.window)) {
    decoder.Fail("tranad rolling window out of bounds");
    return false;
  }
  rolling_window_.clear();
  for (std::uint64_t i = 0; i < rows; ++i) {
    rolling_window_.push_back(decoder.GetDoubleVec());
    if (!decoder.ok()) return false;
    if (rolling_window_.back().size() != standardizer_.mean().size()) {
      decoder.Fail("tranad rolling-window row width mismatch");
      return false;
    }
  }
  return true;
}

}  // namespace navarchos::detect
