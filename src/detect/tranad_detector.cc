#include "detect/tranad_detector.h"

#include "util/check.h"

namespace navarchos::detect {

TranAdDetector::TranAdDetector(const nn::TranAdParams& params) : params_(params) {}

void TranAdDetector::Fit(const std::vector<std::vector<double>>& ref) {
  NAVARCHOS_CHECK(ref.size() >= MinReferenceSize());
  standardizer_.Fit(ref);
  const auto z = standardizer_.ApplyAll(ref);
  const int dims = static_cast<int>(z.front().size());
  const int window = params_.window;

  std::vector<nn::Matrix> windows;
  windows.reserve(z.size() - static_cast<std::size_t>(window) + 1);
  for (std::size_t start = 0; start + static_cast<std::size_t>(window) <= z.size();
       ++start) {
    nn::Matrix w(static_cast<std::size_t>(window), static_cast<std::size_t>(dims));
    for (int r = 0; r < window; ++r)
      for (int c = 0; c < dims; ++c)
        w.At(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
            z[start + static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
    windows.push_back(std::move(w));
  }

  model_ = std::make_unique<nn::TranAdModel>(dims, params_);
  model_->Train(windows);
  rolling_window_.clear();
}

std::vector<double> TranAdDetector::Score(const std::vector<double>& sample) {
  NAVARCHOS_CHECK(model_ != nullptr);
  rolling_window_.push_back(standardizer_.Apply(sample));
  if (rolling_window_.size() > static_cast<std::size_t>(params_.window))
    rolling_window_.pop_front();
  if (rolling_window_.size() < static_cast<std::size_t>(params_.window)) return {0.0};

  const int dims = static_cast<int>(rolling_window_.front().size());
  nn::Matrix window(static_cast<std::size_t>(params_.window),
                    static_cast<std::size_t>(dims));
  for (int r = 0; r < params_.window; ++r)
    for (int c = 0; c < dims; ++c)
      window.At(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          rolling_window_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  return {model_->Score(window)};
}

}  // namespace navarchos::detect
