#include "detect/mlp_detector.h"

#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace navarchos::detect {

MlpDetector::MlpDetector(const MlpParams& params, std::vector<std::string> feature_names)
    : params_(params), feature_names_(std::move(feature_names)) {
  NAVARCHOS_CHECK(params_.hidden >= 1);
  NAVARCHOS_CHECK(params_.epochs >= 1);
}

std::vector<double> MlpDetector::InputsExcluding(const std::vector<double>& sample,
                                                 std::size_t excluded) {
  std::vector<double> row;
  row.reserve(sample.size() - 1);
  for (std::size_t d = 0; d < sample.size(); ++d)
    if (d != excluded) row.push_back(sample[d]);
  return row;
}

double MlpDetector::Predict(Model& model, const std::vector<double>& inputs) const {
  nn::Matrix x(1, inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) x.At(0, i) = inputs[i];
  const nn::Matrix hidden = model.relu->Forward(model.layer1->Forward(x));
  return model.layer2->Forward(hidden).At(0, 0);
}

void MlpDetector::Fit(const std::vector<std::vector<double>>& ref) {
  NAVARCHOS_CHECK(ref.size() >= MinReferenceSize());
  const std::size_t dims = ref.front().size();
  NAVARCHOS_CHECK(dims >= 2);
  standardizer_.Fit(ref);
  const auto z = standardizer_.ApplyAll(ref);

  models_.clear();
  models_.resize(dims);
  util::Rng init_rng(params_.seed);
  util::Rng shuffle_rng(params_.seed ^ 0xABCDu);
  for (std::size_t target = 0; target < dims; ++target) {
    Model& model = models_[target];
    model.layer1 = std::make_unique<nn::Linear>(static_cast<int>(dims) - 1,
                                                params_.hidden, init_rng);
    model.relu = std::make_unique<nn::Relu>();
    model.layer2 = std::make_unique<nn::Linear>(params_.hidden, 1, init_rng);

    std::vector<std::size_t> order(z.size());
    std::iota(order.begin(), order.end(), 0);
    for (int epoch = 0; epoch < params_.epochs; ++epoch) {
      shuffle_rng.Shuffle(order);
      for (std::size_t i : order) {
        const std::vector<double> inputs = InputsExcluding(z[i], target);
        nn::Matrix x(1, inputs.size());
        for (std::size_t d = 0; d < inputs.size(); ++d) x.At(0, d) = inputs[d];

        model.layer1->ZeroGrad();
        model.layer2->ZeroGrad();
        const nn::Matrix h = model.relu->Forward(model.layer1->Forward(x));
        const nn::Matrix y = model.layer2->Forward(h);
        nn::Matrix target_value(1, 1);
        target_value.At(0, 0) = z[i][target];
        const nn::Matrix grad = nn::MseGrad(y, target_value, 1.0);
        model.layer1->Backward(model.relu->Backward(model.layer2->Backward(grad)));
        ++model.steps;
        model.layer1->AdamStep(model.steps, params_.lr);
        model.layer2->AdamStep(model.steps, params_.lr);
      }
    }
  }
}

std::vector<double> MlpDetector::Score(const std::vector<double>& sample) {
  NAVARCHOS_CHECK(!models_.empty());
  const std::vector<double> z = standardizer_.Apply(sample);
  std::vector<double> scores(models_.size());
  for (std::size_t target = 0; target < models_.size(); ++target) {
    const double prediction = Predict(models_[target], InputsExcluding(z, target));
    scores[target] = std::fabs(prediction - z[target]);
  }
  return scores;
}

void MlpDetector::SaveState(persist::Encoder& encoder) const {
  // Score() only runs forwards, so the trained layer weights are the whole
  // inference state; gradients and Adam moments stay out of the snapshot.
  standardizer_.Save(encoder);
  encoder.PutU64(models_.size());
  for (const Model& model : models_) {
    model.layer1->Save(encoder);
    model.layer2->Save(encoder);
    encoder.PutI32(model.steps);
  }
}

bool MlpDetector::RestoreState(persist::Decoder& decoder) {
  if (!standardizer_.Restore(decoder)) return false;
  const std::uint64_t count = decoder.GetU64();
  if (!decoder.ok() || count > decoder.remaining() / 8) {
    decoder.Fail("mlp model count out of bounds");
    return false;
  }
  if (count > 0 && (count < 2 || count != standardizer_.mean().size())) {
    decoder.Fail("mlp model count does not match feature count");
    return false;
  }
  models_.clear();
  models_.resize(static_cast<std::size_t>(count));
  // Architecture is rebuilt from the saved dimensionality; the dummy init
  // draws are overwritten by the restored weights immediately after.
  util::Rng init_rng(params_.seed);
  for (Model& model : models_) {
    model.layer1 = std::make_unique<nn::Linear>(static_cast<int>(count) - 1,
                                                params_.hidden, init_rng);
    model.relu = std::make_unique<nn::Relu>();
    model.layer2 = std::make_unique<nn::Linear>(params_.hidden, 1, init_rng);
    if (!model.layer1->Restore(decoder) || !model.layer2->Restore(decoder))
      return false;
    model.steps = decoder.GetI32();
  }
  return decoder.ok();
}

std::vector<std::string> MlpDetector::ChannelNames() const {
  if (!feature_names_.empty()) return feature_names_;
  std::vector<std::string> names;
  for (std::size_t d = 0; d < models_.size(); ++d)
    names.push_back("f" + std::to_string(d));
  return names;
}

}  // namespace navarchos::detect
