#include "detect/knn_distance.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::detect {

KnnDistanceDetector::KnnDistanceDetector(int k) : k_(k) { NAVARCHOS_CHECK(k_ >= 1); }

void KnnDistanceDetector::Fit(const std::vector<std::vector<double>>& ref) {
  NAVARCHOS_CHECK(ref.size() >= MinReferenceSize());
  standardizer_.Fit(ref);
  reference_ = standardizer_.ApplyAll(ref);
  index_ = std::make_unique<neighbors::KnnIndex>(reference_);
}

double KnnDistanceDetector::MeanNeighbourDistance(std::span<const double> standardized,
                                                  std::ptrdiff_t exclude_lo,
                                                  std::ptrdiff_t exclude_hi) const {
  // Linear scan with a temporal exclusion interval (used by self-
  // calibration; live queries exclude nothing).
  std::vector<double> distances;
  distances.reserve(reference_.size());
  for (std::size_t i = 0; i < reference_.size(); ++i) {
    const auto index = static_cast<std::ptrdiff_t>(i);
    if (index >= exclude_lo && index <= exclude_hi) continue;
    distances.push_back(util::EuclideanDistance(reference_[i], standardized));
  }
  if (distances.empty()) return 0.0;
  const std::size_t take = std::min<std::size_t>(static_cast<std::size_t>(k_),
                                                 distances.size());
  std::nth_element(distances.begin(),
                   distances.begin() + static_cast<std::ptrdiff_t>(take - 1),
                   distances.end());
  double total = 0.0;
  for (std::size_t i = 0; i < take; ++i) total += distances[i];
  return total / static_cast<double>(take);
}

std::vector<double> KnnDistanceDetector::Score(const std::vector<double>& sample) {
  NAVARCHOS_CHECK(index_ != nullptr);
  const std::vector<double> z = standardizer_.Apply(sample);
  const auto hits = index_->Query(z, k_);
  double total = 0.0;
  for (const auto& hit : hits) total += hit.distance;
  return {total / static_cast<double>(hits.size())};
}

std::vector<std::vector<double>> KnnDistanceDetector::SelfCalibrationScores(
    int exclusion_radius) const {
  if (reference_.empty()) return {};
  std::vector<std::vector<double>> scores;
  scores.reserve(reference_.size());
  for (std::size_t i = 0; i < reference_.size(); ++i) {
    const auto index = static_cast<std::ptrdiff_t>(i);
    scores.push_back({MeanNeighbourDistance(reference_[i], index - exclusion_radius,
                                            index + exclusion_radius)});
  }
  return scores;
}

void KnnDistanceDetector::SaveState(persist::Encoder& encoder) const {
  // The index is a deterministic function of the standardised reference.
  standardizer_.Save(encoder);
  encoder.PutDoubleMat(reference_);
}

bool KnnDistanceDetector::RestoreState(persist::Decoder& decoder) {
  if (!standardizer_.Restore(decoder)) return false;
  reference_ = decoder.GetDoubleMat();
  if (!decoder.ok()) return false;
  index_.reset();
  if (!reference_.empty()) {
    if (reference_.size() < MinReferenceSize()) {
      decoder.Fail("knn_distance reference smaller than minimum");
      return false;
    }
    const std::size_t dims = reference_.front().size();
    for (const auto& row : reference_) {
      if (row.size() != dims || dims == 0) {
        decoder.Fail("knn_distance ragged reference");
        return false;
      }
    }
    index_ = std::make_unique<neighbors::KnnIndex>(reference_);
  }
  return true;
}

}  // namespace navarchos::detect
