#include "detect/nn/layers.h"

#include <cmath>

#include "util/check.h"

namespace navarchos::detect::nn {

void AdamUpdate(std::vector<double>& params, std::vector<double>& grads,
                AdamBuffers& buffers, int step, double lr, double beta1,
                double beta2, double eps) {
  NAVARCHOS_CHECK(params.size() == grads.size());
  if (buffers.m.size() != params.size()) {
    buffers.m.assign(params.size(), 0.0);
    buffers.v.assign(params.size(), 0.0);
  }
  const double bc1 = 1.0 - std::pow(beta1, step);
  const double bc2 = 1.0 - std::pow(beta2, step);
  for (std::size_t i = 0; i < params.size(); ++i) {
    buffers.m[i] = beta1 * buffers.m[i] + (1.0 - beta1) * grads[i];
    buffers.v[i] = beta2 * buffers.v[i] + (1.0 - beta2) * grads[i] * grads[i];
    const double mhat = buffers.m[i] / bc1;
    const double vhat = buffers.v[i] / bc2;
    params[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

// ---------------------------------------------------------------- Linear --

Linear::Linear(int in_dim, int out_dim, util::Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  NAVARCHOS_CHECK(in_dim_ > 0 && out_dim_ > 0);
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim_ + out_dim_));
  w_.resize(static_cast<std::size_t>(in_dim_) * static_cast<std::size_t>(out_dim_));
  for (double& value : w_) value = rng.Gaussian(0.0, scale);
  b_.assign(static_cast<std::size_t>(out_dim_), 0.0);
  gw_.assign(w_.size(), 0.0);
  gb_.assign(b_.size(), 0.0);
}

Matrix Linear::Forward(const Matrix& x) {
  NAVARCHOS_CHECK(static_cast<int>(x.cols()) == in_dim_);
  cached_input_ = x;
  Matrix y(x.rows(), static_cast<std::size_t>(out_dim_));
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.Row(r);
    auto out = y.Row(r);
    for (int o = 0; o < out_dim_; ++o) out[static_cast<std::size_t>(o)] = b_[static_cast<std::size_t>(o)];
    for (int i = 0; i < in_dim_; ++i) {
      const double xi = row[static_cast<std::size_t>(i)];
      if (xi == 0.0) continue;
      const double* wrow = &w_[static_cast<std::size_t>(i) * static_cast<std::size_t>(out_dim_)];
      for (int o = 0; o < out_dim_; ++o) out[static_cast<std::size_t>(o)] += xi * wrow[o];
    }
  }
  return y;
}

Matrix Linear::Backward(const Matrix& grad_out) {
  NAVARCHOS_CHECK(static_cast<int>(grad_out.cols()) == out_dim_);
  NAVARCHOS_CHECK(grad_out.rows() == cached_input_.rows());
  Matrix grad_in(cached_input_.rows(), static_cast<std::size_t>(in_dim_));
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    const auto gout = grad_out.Row(r);
    const auto xin = cached_input_.Row(r);
    auto gin = grad_in.Row(r);
    for (int o = 0; o < out_dim_; ++o) gb_[static_cast<std::size_t>(o)] += gout[static_cast<std::size_t>(o)];
    for (int i = 0; i < in_dim_; ++i) {
      const double xi = xin[static_cast<std::size_t>(i)];
      double* gwrow = &gw_[static_cast<std::size_t>(i) * static_cast<std::size_t>(out_dim_)];
      const double* wrow = &w_[static_cast<std::size_t>(i) * static_cast<std::size_t>(out_dim_)];
      double acc = 0.0;
      for (int o = 0; o < out_dim_; ++o) {
        const double g = gout[static_cast<std::size_t>(o)];
        gwrow[o] += xi * g;
        acc += wrow[o] * g;
      }
      gin[static_cast<std::size_t>(i)] = acc;
    }
  }
  return grad_in;
}

void Linear::ZeroGrad() {
  std::fill(gw_.begin(), gw_.end(), 0.0);
  std::fill(gb_.begin(), gb_.end(), 0.0);
}

void Linear::AdamStep(int step, double lr) {
  AdamUpdate(w_, gw_, adam_w_, step, lr);
  AdamUpdate(b_, gb_, adam_b_, step, lr);
}

void Linear::Save(persist::Encoder& encoder) const {
  encoder.PutDoubleVec(w_);
  encoder.PutDoubleVec(b_);
}

bool Linear::Restore(persist::Decoder& decoder) {
  const std::vector<double> w = decoder.GetDoubleVec();
  const std::vector<double> b = decoder.GetDoubleVec();
  if (!decoder.ok()) return false;
  if (w.size() != w_.size() || b.size() != b_.size()) {
    decoder.Fail("linear layer shape mismatch");
    return false;
  }
  w_ = w;
  b_ = b;
  return true;
}

// ------------------------------------------------------------------ Relu --

Matrix Relu::Forward(const Matrix& x) {
  cached_input_ = x;
  Matrix y = x;
  for (double& value : y.Data())
    if (value < 0.0) value = 0.0;
  return y;
}

Matrix Relu::Backward(const Matrix& grad_out) {
  Matrix grad_in = grad_out;
  auto gin = grad_in.Data();
  const auto xin = cached_input_.Data();
  for (std::size_t i = 0; i < gin.size(); ++i)
    if (xin[i] <= 0.0) gin[i] = 0.0;
  return grad_in;
}

// ------------------------------------------------------------- LayerNorm --

LayerNorm::LayerNorm(int dim) : dim_(dim) {
  NAVARCHOS_CHECK(dim_ > 0);
  gamma_.assign(static_cast<std::size_t>(dim_), 1.0);
  beta_.assign(static_cast<std::size_t>(dim_), 0.0);
  g_gamma_.assign(gamma_.size(), 0.0);
  g_beta_.assign(beta_.size(), 0.0);
}

Matrix LayerNorm::Forward(const Matrix& x) {
  NAVARCHOS_CHECK(static_cast<int>(x.cols()) == dim_);
  cached_norm_ = Matrix(x.rows(), x.cols());
  cached_inv_sd_.resize(x.rows());
  Matrix y(x.rows(), x.cols());
  const double dn = static_cast<double>(dim_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.Row(r);
    double mean = 0.0;
    for (double value : row) mean += value;
    mean /= dn;
    double variance = 0.0;
    for (double value : row) variance += (value - mean) * (value - mean);
    variance /= dn;
    const double inv_sd = 1.0 / std::sqrt(variance + 1e-6);
    cached_inv_sd_[r] = inv_sd;
    auto norm = cached_norm_.Row(r);
    auto out = y.Row(r);
    for (int c = 0; c < dim_; ++c) {
      norm[static_cast<std::size_t>(c)] = (row[static_cast<std::size_t>(c)] - mean) * inv_sd;
      out[static_cast<std::size_t>(c)] =
          norm[static_cast<std::size_t>(c)] * gamma_[static_cast<std::size_t>(c)] +
          beta_[static_cast<std::size_t>(c)];
    }
  }
  return y;
}

Matrix LayerNorm::Backward(const Matrix& grad_out) {
  NAVARCHOS_CHECK(grad_out.rows() == cached_norm_.rows());
  Matrix grad_in(grad_out.rows(), grad_out.cols());
  const double dn = static_cast<double>(dim_);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    const auto gout = grad_out.Row(r);
    const auto norm = cached_norm_.Row(r);
    auto gin = grad_in.Row(r);
    // d/dnorm and the two coupling sums of the layer-norm backward formula.
    double sum_gnorm = 0.0;
    double sum_gnorm_norm = 0.0;
    for (int c = 0; c < dim_; ++c) {
      const double gnorm = gout[static_cast<std::size_t>(c)] * gamma_[static_cast<std::size_t>(c)];
      sum_gnorm += gnorm;
      sum_gnorm_norm += gnorm * norm[static_cast<std::size_t>(c)];
      g_gamma_[static_cast<std::size_t>(c)] +=
          gout[static_cast<std::size_t>(c)] * norm[static_cast<std::size_t>(c)];
      g_beta_[static_cast<std::size_t>(c)] += gout[static_cast<std::size_t>(c)];
    }
    const double inv_sd = cached_inv_sd_[r];
    for (int c = 0; c < dim_; ++c) {
      const double gnorm = gout[static_cast<std::size_t>(c)] * gamma_[static_cast<std::size_t>(c)];
      gin[static_cast<std::size_t>(c)] =
          inv_sd * (gnorm - sum_gnorm / dn -
                    norm[static_cast<std::size_t>(c)] * sum_gnorm_norm / dn);
    }
  }
  return grad_in;
}

void LayerNorm::ZeroGrad() {
  std::fill(g_gamma_.begin(), g_gamma_.end(), 0.0);
  std::fill(g_beta_.begin(), g_beta_.end(), 0.0);
}

void LayerNorm::AdamStep(int step, double lr) {
  AdamUpdate(gamma_, g_gamma_, adam_gamma_, step, lr);
  AdamUpdate(beta_, g_beta_, adam_beta_, step, lr);
}

void LayerNorm::Save(persist::Encoder& encoder) const {
  encoder.PutDoubleVec(gamma_);
  encoder.PutDoubleVec(beta_);
}

bool LayerNorm::Restore(persist::Decoder& decoder) {
  const std::vector<double> gamma = decoder.GetDoubleVec();
  const std::vector<double> beta = decoder.GetDoubleVec();
  if (!decoder.ok()) return false;
  if (gamma.size() != gamma_.size() || beta.size() != beta_.size()) {
    decoder.Fail("layer-norm shape mismatch");
    return false;
  }
  gamma_ = gamma;
  beta_ = beta;
  return true;
}

// --------------------------------------------------------- SelfAttention --

SelfAttention::SelfAttention(int dim, util::Rng& rng)
    : dim_(dim),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {}

Matrix SelfAttention::Forward(const Matrix& x) {
  cached_q_ = wq_.Forward(x);
  cached_k_ = wk_.Forward(x);
  cached_v_ = wv_.Forward(x);
  const std::size_t length = x.rows();
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));

  cached_attn_ = Matrix(length, length);
  for (std::size_t i = 0; i < length; ++i) {
    double max_logit = -1e300;
    std::vector<double> logits(length);
    for (std::size_t j = 0; j < length; ++j) {
      double dot = 0.0;
      const auto qi = cached_q_.Row(i);
      const auto kj = cached_k_.Row(j);
      for (int c = 0; c < dim_; ++c)
        dot += qi[static_cast<std::size_t>(c)] * kj[static_cast<std::size_t>(c)];
      logits[j] = dot * scale;
      max_logit = std::max(max_logit, logits[j]);
    }
    double denom = 0.0;
    for (std::size_t j = 0; j < length; ++j) {
      logits[j] = std::exp(logits[j] - max_logit);
      denom += logits[j];
    }
    for (std::size_t j = 0; j < length; ++j) cached_attn_.At(i, j) = logits[j] / denom;
  }

  Matrix context = cached_attn_.MatMul(cached_v_);
  return wo_.Forward(context);
}

Matrix SelfAttention::Backward(const Matrix& grad_out) {
  const std::size_t length = cached_q_.rows();
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));

  const Matrix grad_context = wo_.Backward(grad_out);

  // dV = A^T dContext; dA = dContext V^T.
  Matrix grad_v = cached_attn_.Transposed().MatMul(grad_context);
  Matrix grad_attn = grad_context.MatMul(cached_v_.Transposed());

  // Softmax backward per row: dS_ij = A_ij (dA_ij - sum_k dA_ik A_ik).
  Matrix grad_scores(length, length);
  for (std::size_t i = 0; i < length; ++i) {
    double dot = 0.0;
    for (std::size_t j = 0; j < length; ++j)
      dot += grad_attn.At(i, j) * cached_attn_.At(i, j);
    for (std::size_t j = 0; j < length; ++j) {
      grad_scores.At(i, j) = cached_attn_.At(i, j) * (grad_attn.At(i, j) - dot);
    }
  }

  // dQ = dS K * scale; dK = dS^T Q * scale.
  Matrix grad_q = grad_scores.MatMul(cached_k_);
  Matrix grad_k = grad_scores.Transposed().MatMul(cached_q_);
  for (double& value : grad_q.Data()) value *= scale;
  for (double& value : grad_k.Data()) value *= scale;

  Matrix grad_x = wq_.Backward(grad_q);
  const Matrix grad_x_k = wk_.Backward(grad_k);
  const Matrix grad_x_v = wv_.Backward(grad_v);
  auto gx = grad_x.Data();
  const auto gk = grad_x_k.Data();
  const auto gv = grad_x_v.Data();
  for (std::size_t i = 0; i < gx.size(); ++i) gx[i] += gk[i] + gv[i];
  return grad_x;
}

void SelfAttention::ZeroGrad() {
  wq_.ZeroGrad();
  wk_.ZeroGrad();
  wv_.ZeroGrad();
  wo_.ZeroGrad();
}

void SelfAttention::AdamStep(int step, double lr) {
  wq_.AdamStep(step, lr);
  wk_.AdamStep(step, lr);
  wv_.AdamStep(step, lr);
  wo_.AdamStep(step, lr);
}

void SelfAttention::Save(persist::Encoder& encoder) const {
  wq_.Save(encoder);
  wk_.Save(encoder);
  wv_.Save(encoder);
  wo_.Save(encoder);
}

bool SelfAttention::Restore(persist::Decoder& decoder) {
  return wq_.Restore(decoder) && wk_.Restore(decoder) &&
         wv_.Restore(decoder) && wo_.Restore(decoder);
}

// --------------------------------------------------------------- Helpers --

Matrix SinusoidalPositionalEncoding(int length, int dim) {
  Matrix pe(static_cast<std::size_t>(length), static_cast<std::size_t>(dim));
  for (int pos = 0; pos < length; ++pos) {
    for (int i = 0; i < dim; ++i) {
      const double rate =
          std::pow(10000.0, -2.0 * static_cast<double>(i / 2) / static_cast<double>(dim));
      const double angle = static_cast<double>(pos) * rate;
      pe.At(static_cast<std::size_t>(pos), static_cast<std::size_t>(i)) =
          (i % 2 == 0) ? std::sin(angle) : std::cos(angle);
    }
  }
  return pe;
}

double MseLoss(const Matrix& prediction, const Matrix& target) {
  NAVARCHOS_CHECK(prediction.rows() == target.rows());
  NAVARCHOS_CHECK(prediction.cols() == target.cols());
  const auto p = prediction.Data();
  const auto t = target.Data();
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = p[i] - t[i];
    acc += d * d;
  }
  return acc / static_cast<double>(p.size());
}

Matrix MseGrad(const Matrix& prediction, const Matrix& target, double weight) {
  Matrix grad(prediction.rows(), prediction.cols());
  const auto p = prediction.Data();
  const auto t = target.Data();
  auto g = grad.Data();
  const double scale = 2.0 * weight / static_cast<double>(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) g[i] = scale * (p[i] - t[i]);
  return grad;
}

}  // namespace navarchos::detect::nn
