// Minimal neural-network layers with explicit backpropagation.
//
// Purpose-built for the TranAD reconstruction detector: dense layers, layer
// normalisation, ReLU, single-head self-attention and the Adam optimiser.
// All activations are util::Matrix with shape (sequence length x feature
// dim); batching is one window per step, which is ample for reference
// profiles of a few thousand samples.
//
// Each layer caches what its backward pass needs; call Forward, then
// Backward with the loss gradient, then AdamStep. Gradients accumulate
// until ZeroGrad().
#ifndef NAVARCHOS_DETECT_NN_LAYERS_H_
#define NAVARCHOS_DETECT_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "persist/codec.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace navarchos::detect::nn {

using util::Matrix;

/// Adam moment buffers for one parameter array.
struct AdamBuffers {
  std::vector<double> m;
  std::vector<double> v;
};

/// One Adam update: params -= lr * mhat / (sqrt(vhat) + eps).
/// `step` is the 1-based global step count (for bias correction).
void AdamUpdate(std::vector<double>& params, std::vector<double>& grads,
                AdamBuffers& buffers, int step, double lr,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

/// Fully connected layer: y = x W + b, with x of shape (L x in).
class Linear {
 public:
  Linear(int in_dim, int out_dim, util::Rng& rng);

  Matrix Forward(const Matrix& x);
  /// Accumulates weight/bias grads; returns dL/dx.
  Matrix Backward(const Matrix& grad_out);
  void ZeroGrad();
  void AdamStep(int step, double lr);

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

  /// Serialises the weights and bias (inference state only - gradients and
  /// Adam moments are training scratch that Fit rebuilds from scratch).
  void Save(persist::Encoder& encoder) const;

  /// Restores weights/bias saved by Save() into a layer constructed with the
  /// same dimensions; returns false (leaving the decoder failed) otherwise.
  bool Restore(persist::Decoder& decoder);

 private:
  int in_dim_;
  int out_dim_;
  std::vector<double> w_;   ///< (in x out), row-major.
  std::vector<double> b_;   ///< (out).
  std::vector<double> gw_;
  std::vector<double> gb_;
  AdamBuffers adam_w_;
  AdamBuffers adam_b_;
  Matrix cached_input_;
};

/// ReLU activation.
class Relu {
 public:
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);

 private:
  Matrix cached_input_;
};

/// Layer normalisation over the feature dimension of each row.
class LayerNorm {
 public:
  explicit LayerNorm(int dim);

  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);
  void ZeroGrad();
  void AdamStep(int step, double lr);

  /// Serialises gamma/beta (inference state only).
  void Save(persist::Encoder& encoder) const;

  /// Restores gamma/beta into a same-dimension layer.
  bool Restore(persist::Decoder& decoder);

 private:
  int dim_;
  std::vector<double> gamma_;
  std::vector<double> beta_;
  std::vector<double> g_gamma_;
  std::vector<double> g_beta_;
  AdamBuffers adam_gamma_;
  AdamBuffers adam_beta_;
  Matrix cached_norm_;        ///< Normalised input (before gamma/beta).
  std::vector<double> cached_inv_sd_;
};

/// Single-head scaled dot-product self-attention with output projection.
class SelfAttention {
 public:
  SelfAttention(int dim, util::Rng& rng);

  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);
  void ZeroGrad();
  void AdamStep(int step, double lr);

  /// Serialises the four projection layers (inference state only).
  void Save(persist::Encoder& encoder) const;

  /// Restores the projections into a same-dimension attention block.
  bool Restore(persist::Decoder& decoder);

 private:
  int dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  Matrix cached_q_;
  Matrix cached_k_;
  Matrix cached_v_;
  Matrix cached_attn_;  ///< Softmax attention weights (L x L).
};

/// Pre-computed sinusoidal positional encoding added to embeddings.
Matrix SinusoidalPositionalEncoding(int length, int dim);

/// Mean squared error between two equal-shape matrices.
double MseLoss(const Matrix& prediction, const Matrix& target);

/// Gradient of MseLoss w.r.t. `prediction`, scaled by `weight`.
Matrix MseGrad(const Matrix& prediction, const Matrix& target, double weight);

}  // namespace navarchos::detect::nn

#endif  // NAVARCHOS_DETECT_NN_LAYERS_H_
