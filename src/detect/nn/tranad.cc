#include "detect/nn/tranad.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace navarchos::detect::nn {
TranAdModel::TranAdModel(int feature_dim, const TranAdParams& params)
    : feature_dim_(feature_dim),
      params_(params),
      positional_(SinusoidalPositionalEncoding(params.window, params.d_model)),
      init_rng_(params.seed ^ 0x72616e4144ull),
      embed_(2 * feature_dim, params.d_model, init_rng_),
      attention_(params.d_model, init_rng_),
      norm1_(params.d_model),
      ffn1_(params.d_model, params.d_ff, init_rng_),
      ffn2_(params.d_ff, params.d_model, init_rng_),
      norm2_(params.d_model),
      decoder1_(params.d_model, feature_dim, init_rng_),
      decoder2_(params.d_model, feature_dim, init_rng_) {
  NAVARCHOS_CHECK(feature_dim_ > 0);
  NAVARCHOS_CHECK(params_.window >= 2);
}

Matrix TranAdModel::EncoderForward(const Matrix& window, const Matrix& focus) {
  NAVARCHOS_CHECK(static_cast<int>(window.rows()) == params_.window);
  NAVARCHOS_CHECK(static_cast<int>(window.cols()) == feature_dim_);

  // Concatenate window and focus score per position: TranAD's
  // self-conditioning input.
  Matrix input(window.rows(), static_cast<std::size_t>(2 * feature_dim_));
  for (std::size_t r = 0; r < window.rows(); ++r) {
    for (int c = 0; c < feature_dim_; ++c) {
      input.At(r, static_cast<std::size_t>(c)) = window.At(r, static_cast<std::size_t>(c));
      input.At(r, static_cast<std::size_t>(feature_dim_ + c)) =
          focus.At(r, static_cast<std::size_t>(c));
    }
  }

  cached_x_ = embed_.Forward(input);
  {
    auto x = cached_x_.Data();
    const auto pe = positional_.Data();
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += pe[i];
  }

  Matrix attn_out = attention_.Forward(cached_x_);
  {
    auto a = attn_out.Data();
    const auto x = cached_x_.Data();
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += x[i];
  }
  cached_x1_ = norm1_.Forward(attn_out);

  Matrix ffn_out = ffn2_.Forward(relu_.Forward(ffn1_.Forward(cached_x1_)));
  {
    auto f = ffn_out.Data();
    const auto x1 = cached_x1_.Data();
    for (std::size_t i = 0; i < f.size(); ++i) f[i] += x1[i];
  }
  return norm2_.Forward(ffn_out);
}

void TranAdModel::EncoderBackward(const Matrix& grad_hidden) {
  const Matrix g1 = norm2_.Backward(grad_hidden);
  Matrix grad_x1 = ffn1_.Backward(relu_.Backward(ffn2_.Backward(g1)));
  {
    auto gx1 = grad_x1.Data();
    const auto g = g1.Data();
    for (std::size_t i = 0; i < gx1.size(); ++i) gx1[i] += g[i];  // residual
  }
  const Matrix g2 = norm1_.Backward(grad_x1);
  Matrix grad_x = attention_.Backward(g2);
  {
    auto gx = grad_x.Data();
    const auto g = g2.Data();
    for (std::size_t i = 0; i < gx.size(); ++i) gx[i] += g[i];  // residual
  }
  embed_.Backward(grad_x);  // positional encoding is constant
}

TranAdModel::Outputs TranAdModel::ForwardPhase1(const Matrix& window) {
  const Matrix focus(window.rows(), window.cols(), 0.0);
  const Matrix hidden = EncoderForward(window, focus);
  Outputs outputs;
  outputs.o1 = decoder1_.Forward(hidden);
  outputs.o2_hat = decoder2_.Forward(hidden);
  return outputs;
}

Matrix TranAdModel::ForwardPhase2(const Matrix& window, const Matrix& focus) {
  const Matrix hidden = EncoderForward(window, focus);
  return decoder2_.Forward(hidden);
}

void TranAdModel::ZeroGrad() {
  embed_.ZeroGrad();
  attention_.ZeroGrad();
  norm1_.ZeroGrad();
  ffn1_.ZeroGrad();
  ffn2_.ZeroGrad();
  norm2_.ZeroGrad();
  decoder1_.ZeroGrad();
  decoder2_.ZeroGrad();
}

void TranAdModel::AdamStep() {
  ++adam_step_;
  embed_.AdamStep(adam_step_, params_.lr);
  attention_.AdamStep(adam_step_, params_.lr);
  norm1_.AdamStep(adam_step_, params_.lr);
  ffn1_.AdamStep(adam_step_, params_.lr);
  ffn2_.AdamStep(adam_step_, params_.lr);
  norm2_.AdamStep(adam_step_, params_.lr);
  decoder1_.AdamStep(adam_step_, params_.lr);
  decoder2_.AdamStep(adam_step_, params_.lr);
}

void TranAdModel::Save(persist::Encoder& encoder) const {
  embed_.Save(encoder);
  attention_.Save(encoder);
  norm1_.Save(encoder);
  ffn1_.Save(encoder);
  ffn2_.Save(encoder);
  norm2_.Save(encoder);
  decoder1_.Save(encoder);
  decoder2_.Save(encoder);
}

bool TranAdModel::Restore(persist::Decoder& decoder) {
  return embed_.Restore(decoder) && attention_.Restore(decoder) &&
         norm1_.Restore(decoder) && ffn1_.Restore(decoder) &&
         ffn2_.Restore(decoder) && norm2_.Restore(decoder) &&
         decoder1_.Restore(decoder) && decoder2_.Restore(decoder);
}

void TranAdModel::Train(const std::vector<Matrix>& windows) {
  NAVARCHOS_CHECK(!windows.empty());
  util::Rng shuffle_rng(params_.seed ^ 0x5u);

  std::vector<std::size_t> order(windows.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 1; epoch <= params_.epochs; ++epoch) {
    // Phase weight: starts near 1 (plain reconstruction), decays toward the
    // self-conditioned objective.
    const double w1 = std::pow(params_.phase_decay, epoch);
    shuffle_rng.Shuffle(order);
    const std::size_t batch = std::min<std::size_t>(
        order.size(), static_cast<std::size_t>(params_.max_windows_per_epoch));
    for (std::size_t b = 0; b < batch; ++b) {
      const Matrix& window = windows[order[b]];
      ZeroGrad();

      // ---- Phase 1 (focus = 0): both decoders reconstruct. ----
      const Outputs outputs = ForwardPhase1(window);
      const Matrix g_o1 = MseGrad(outputs.o1, window, w1);
      const Matrix g_o2_hat = MseGrad(outputs.o2_hat, window, w1);
      Matrix grad_hidden = decoder1_.Backward(g_o1);
      {
        const Matrix gh2 = decoder2_.Backward(g_o2_hat);
        auto gh = grad_hidden.Data();
        const auto g2 = gh2.Data();
        for (std::size_t i = 0; i < gh.size(); ++i) gh[i] += g2[i];
      }
      EncoderBackward(grad_hidden);

      // ---- Phase 2: focus = squared phase-1 error (stop-gradient). ----
      Matrix focus(window.rows(), window.cols());
      {
        auto f = focus.Data();
        const auto o1 = outputs.o1.Data();
        const auto w = window.Data();
        for (std::size_t i = 0; i < f.size(); ++i) {
          const double d = o1[i] - w[i];
          f[i] = d * d;
        }
      }
      const Matrix o2 = ForwardPhase2(window, focus);
      const Matrix g_o2 = MseGrad(o2, window, 1.0 - w1);
      EncoderBackward(decoder2_.Backward(g_o2));

      AdamStep();
    }
  }
}

double TranAdModel::Score(const Matrix& window) {
  const Outputs outputs = ForwardPhase1(window);
  Matrix focus(window.rows(), window.cols());
  {
    auto f = focus.Data();
    const auto o1 = outputs.o1.Data();
    const auto w = window.Data();
    for (std::size_t i = 0; i < f.size(); ++i) {
      const double d = o1[i] - w[i];
      f[i] = d * d;
    }
  }
  const Matrix o2 = ForwardPhase2(window, focus);
  return 0.5 * MseLoss(outputs.o1, window) + 0.5 * MseLoss(o2, window);
}

}  // namespace navarchos::detect::nn
