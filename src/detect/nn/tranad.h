// TranAD-style transformer reconstruction model (Tuli, Casale & Jennings,
// VLDB 2022), from scratch.
//
// Faithful ingredients: windowed multivariate input, sinusoidal positional
// encoding, a transformer encoder, *two* decoders and two-phase
// self-conditioned training - phase 2 feeds the squared phase-1
// reconstruction error back as a focus score. One deliberate simplification
// is documented in DESIGN.md: the GAN-style sign-flipped decoder objective
// is replaced by a jointly minimised weighted loss (the self-conditioning
// path, which drives the anomaly amplification TranAD is known for, is
// kept; the focus score is treated as constant in phase-2 backprop).
#ifndef NAVARCHOS_DETECT_NN_TRANAD_H_
#define NAVARCHOS_DETECT_NN_TRANAD_H_

#include <cstdint>
#include <vector>

#include "detect/nn/layers.h"

namespace navarchos::detect::nn {

/// TranAD hyper-parameters.
struct TranAdParams {
  int window = 10;        ///< Samples per input window.
  int d_model = 32;       ///< Transformer width.
  int d_ff = 64;          ///< Feed-forward hidden width.
  int epochs = 8;         ///< Training epochs ("small number of epochs").
  double lr = 1e-3;       ///< Adam learning rate.
  /// Phase-weight schedule: w(epoch) = pow(phase_decay, epoch), shifting
  /// emphasis from plain reconstruction to the self-conditioned phase.
  double phase_decay = 0.8;
  int max_windows_per_epoch = 400;  ///< Subsample cap for large references.
  std::uint64_t seed = 11;
};

/// The network: encoder shared between phases, two decoders.
class TranAdModel {
 public:
  /// `feature_dim` is the per-timestep input width.
  TranAdModel(int feature_dim, const TranAdParams& params);

  /// Trains on reference windows; each element of `windows` has shape
  /// (window x feature_dim) already standardised.
  void Train(const std::vector<Matrix>& windows);

  /// Anomaly score of one window: mean of the phase-1 and phase-2 (self-
  /// conditioned) reconstruction MSE, as in TranAD inference.
  double Score(const Matrix& window);

  const TranAdParams& params() const { return params_; }

  /// Serialises all layer weights (inference state only; Train rebuilds the
  /// optimiser state from scratch).
  void Save(persist::Encoder& encoder) const;

  /// Restores the weights into a model constructed with the same
  /// feature_dim and params.
  bool Restore(persist::Decoder& decoder);

 private:
  struct Outputs {
    Matrix o1;
    Matrix o2_hat;
  };

  /// Phase-1 forward: focus = 0; caches layer state for backward.
  Outputs ForwardPhase1(const Matrix& window);

  /// Phase-2 forward: focus = squared phase-1 error; only decoder 2 output.
  Matrix ForwardPhase2(const Matrix& window, const Matrix& focus);

  /// Encoder forward from the concatenated (window | focus) input.
  Matrix EncoderForward(const Matrix& window, const Matrix& focus);

  /// Encoder backward; returns nothing (gradients accumulate in layers).
  void EncoderBackward(const Matrix& grad_hidden);

  void ZeroGrad();
  void AdamStep();

  int feature_dim_;
  TranAdParams params_;
  Matrix positional_;
  util::Rng init_rng_;  ///< Declared before the layers: init order matters.

  Linear embed_;
  SelfAttention attention_;
  LayerNorm norm1_;
  Linear ffn1_;
  Relu relu_;
  Linear ffn2_;
  LayerNorm norm2_;
  Linear decoder1_;
  Linear decoder2_;

  // Residual caches for the encoder backward pass.
  Matrix cached_x_;    ///< Embedded input + positional encoding.
  Matrix cached_x1_;   ///< After first residual + norm.

  int adam_step_ = 0;
};

}  // namespace navarchos::detect::nn

#endif  // NAVARCHOS_DETECT_NN_TRANAD_H_
