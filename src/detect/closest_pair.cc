#include "detect/closest_pair.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace navarchos::detect {

ClosestPairDetector::ClosestPairDetector(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {}

void ClosestPairDetector::Fit(const std::vector<std::vector<double>>& ref) {
  NAVARCHOS_CHECK(ref.size() >= MinReferenceSize());
  const std::size_t dims = ref.front().size();
  columns_.assign(dims, {});
  for (auto& column : columns_) column.reserve(ref.size());
  for (const auto& sample : ref) {
    NAVARCHOS_CHECK(sample.size() == dims);
    for (std::size_t d = 0; d < dims; ++d) columns_[d].push_back(sample[d]);
  }
  columns_temporal_ = columns_;
  for (auto& column : columns_) std::sort(column.begin(), column.end());
}

std::vector<std::vector<double>> ClosestPairDetector::SelfCalibrationScores(
    int exclusion_radius) const {
  NAVARCHOS_CHECK(exclusion_radius >= 0);
  if (columns_temporal_.empty()) return {};
  const std::size_t n = columns_temporal_.front().size();
  const std::size_t dims = columns_temporal_.size();
  std::vector<std::vector<double>> scores(n, std::vector<double>(dims, 0.0));
  for (std::size_t d = 0; d < dims; ++d) {
    const auto& column = columns_temporal_[d];
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < n; ++j) {
        const auto gap = static_cast<std::ptrdiff_t>(i) - static_cast<std::ptrdiff_t>(j);
        if (std::abs(gap) <= exclusion_radius) continue;
        best = std::min(best, std::fabs(column[j] - column[i]));
      }
      scores[i][d] = std::isfinite(best) ? best : 0.0;
    }
  }
  return scores;
}

std::vector<double> ClosestPairDetector::Score(const std::vector<double>& sample) {
  NAVARCHOS_CHECK(!columns_.empty());
  NAVARCHOS_CHECK(sample.size() == columns_.size());
  std::vector<double> scores(sample.size());
  for (std::size_t d = 0; d < sample.size(); ++d) {
    const auto& column = columns_[d];
    const auto it = std::lower_bound(column.begin(), column.end(), sample[d]);
    double best = std::numeric_limits<double>::infinity();
    if (it != column.end()) best = std::min(best, std::fabs(*it - sample[d]));
    if (it != column.begin()) best = std::min(best, std::fabs(*(it - 1) - sample[d]));
    scores[d] = best;
  }
  return scores;
}

void ClosestPairDetector::SaveState(persist::Encoder& encoder) const {
  // The sorted columns are a deterministic function of the temporal ones, so
  // only the temporal order is stored.
  encoder.PutDoubleMat(columns_temporal_);
}

bool ClosestPairDetector::RestoreState(persist::Decoder& decoder) {
  columns_temporal_ = decoder.GetDoubleMat();
  if (!decoder.ok()) return false;
  const std::size_t n = columns_temporal_.empty() ? 0 : columns_temporal_.front().size();
  for (const auto& column : columns_temporal_) {
    if (column.size() != n) {
      decoder.Fail("closest_pair ragged reference columns");
      return false;
    }
  }
  columns_ = columns_temporal_;
  for (auto& column : columns_) std::sort(column.begin(), column.end());
  return true;
}

std::vector<std::string> ClosestPairDetector::ChannelNames() const {
  if (!feature_names_.empty()) return feature_names_;
  std::vector<std::string> names;
  for (std::size_t d = 0; d < columns_.size(); ++d)
    names.push_back("f" + std::to_string(d));
  return names;
}

}  // namespace navarchos::detect
