#include "detect/xgb_detector.h"

#include <cmath>

#include "util/check.h"

namespace navarchos::detect {

XgbDetector::XgbDetector(const GbtParams& params, std::vector<std::string> feature_names)
    : params_(params), feature_names_(std::move(feature_names)) {}

std::vector<double> XgbDetector::InputsExcluding(const std::vector<double>& sample,
                                                 std::size_t excluded) {
  std::vector<double> row;
  row.reserve(sample.size() - 1);
  for (std::size_t d = 0; d < sample.size(); ++d)
    if (d != excluded) row.push_back(sample[d]);
  return row;
}

void XgbDetector::Fit(const std::vector<std::vector<double>>& ref) {
  NAVARCHOS_CHECK(ref.size() >= MinReferenceSize());
  const std::size_t dims = ref.front().size();
  NAVARCHOS_CHECK(dims >= 2);

  // Standardise so per-channel errors share a scale (keeps the self-tuning
  // threshold meaningful across heterogeneous physical units).
  standardizer_.Fit(ref);
  const auto z = standardizer_.ApplyAll(ref);

  models_.clear();
  models_.reserve(dims);
  for (std::size_t target = 0; target < dims; ++target) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(z.size());
    y.reserve(z.size());
    for (const auto& sample : z) {
      x.push_back(InputsExcluding(sample, target));
      y.push_back(sample[target]);
    }
    GbtParams params = params_;
    params.seed = params_.seed + target;  // decorrelate per-target subsampling
    GbtRegressor model(params);
    model.Fit(x, y);
    models_.push_back(std::move(model));
  }
}

std::vector<double> XgbDetector::Score(const std::vector<double>& sample) {
  NAVARCHOS_CHECK(!models_.empty());
  const std::vector<double> z = standardizer_.Apply(sample);
  std::vector<double> scores(models_.size());
  for (std::size_t target = 0; target < models_.size(); ++target) {
    const std::vector<double> row = InputsExcluding(z, target);
    scores[target] = std::fabs(models_[target].Predict(row) - z[target]);
  }
  return scores;
}

void XgbDetector::SaveState(persist::Encoder& encoder) const {
  // Per-target models travel in GbtRegressor's lossless (%.17g) text format.
  standardizer_.Save(encoder);
  encoder.PutU64(models_.size());
  for (const GbtRegressor& model : models_) encoder.PutString(model.Serialise());
}

bool XgbDetector::RestoreState(persist::Decoder& decoder) {
  if (!standardizer_.Restore(decoder)) return false;
  const std::uint64_t count = decoder.GetU64();
  // Each serialised model costs at least its 8-byte length prefix.
  if (!decoder.ok() || count > decoder.remaining() / 8) {
    decoder.Fail("xgboost model count out of bounds");
    return false;
  }
  models_.clear();
  for (std::uint64_t target = 0; target < count; ++target) {
    const std::string text = decoder.GetString();
    if (!decoder.ok()) return false;
    GbtParams params = params_;
    params.seed = params_.seed + target;
    GbtRegressor model(params);
    if (!model.Deserialise(text)) {
      decoder.Fail("xgboost model " + std::to_string(target) + " malformed");
      return false;
    }
    models_.push_back(std::move(model));
  }
  return true;
}

std::vector<std::string> XgbDetector::ChannelNames() const {
  if (!feature_names_.empty()) return feature_names_;
  std::vector<std::string> names;
  for (std::size_t d = 0; d < models_.size(); ++d)
    names.push_back("f" + std::to_string(d));
  return names;
}

}  // namespace navarchos::detect
