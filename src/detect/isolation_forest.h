// Isolation Forest (Liu, Ting & Zhou, 2008), from scratch.
//
// The paper's related work (§5, Khan et al. 2019) uses isolation forests for
// unsupervised anomaly detection in aerial vehicles and notes that "such a
// method could become an option for the third step in our framework". This
// implementation makes that option concrete: fitted on the reference
// profile, it scores samples by their mean isolation depth across an
// ensemble of random trees, normalised to the standard (0, 1) anomaly score
// where values near 1 indicate anomalies.
#ifndef NAVARCHOS_DETECT_ISOLATION_FOREST_H_
#define NAVARCHOS_DETECT_ISOLATION_FOREST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "transform/standardizer.h"
#include "util/rng.h"

namespace navarchos::detect {

/// Isolation-forest hyper-parameters (defaults follow the original paper).
struct IsolationForestParams {
  int num_trees = 100;
  int subsample = 64;          ///< Points per tree (psi).
  std::uint64_t seed = 17;
};

/// Unsupervised isolation-based detector (single score channel in (0, 1)).
class IsolationForestDetector : public Detector {
 public:
  explicit IsolationForestDetector(const IsolationForestParams& params = {});

  std::string Name() const override { return "isolation_forest"; }
  void Fit(const std::vector<std::vector<double>>& ref) override;
  std::vector<double> Score(const std::vector<double>& sample) override;
  std::size_t ScoreChannels() const override { return 1; }
  std::vector<std::string> ChannelNames() const override { return {"isolation"}; }
  bool ScoresAreProbabilities() const override { return true; }
  std::size_t MinReferenceSize() const override { return 16; }
  void SaveState(persist::Encoder& encoder) const override;
  bool RestoreState(persist::Decoder& decoder) override;

 private:
  struct Node {
    int feature = -1;        ///< -1 marks an external (leaf) node.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int size = 0;            ///< Points isolated at this external node.
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  /// Recursive tree construction over point indices.
  int BuildNode(Tree& tree, const std::vector<std::vector<double>>& points,
                std::vector<int>& indices, int begin, int end, int depth,
                int depth_limit, util::Rng& rng);

  /// Path length of `sample` in `tree`, with the standard c(size) adjustment
  /// at external nodes.
  double PathLength(const Tree& tree, const std::vector<double>& sample) const;

  IsolationForestParams params_;
  transform::Standardizer standardizer_;
  std::vector<Tree> trees_;
  double expected_path_ = 1.0;  ///< c(subsample): normalisation constant.
};

/// Average unsuccessful-search path length c(n) of a BST with n points.
double AveragePathLength(int n);

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_ISOLATION_FOREST_H_
