// XGBoost-based regression detector (paper §3.6).
//
// Trains one boosted-tree regressor per input feature on the reference
// profile, each predicting its target feature from the remaining ones. At
// inference, the absolute prediction error of model j is the anomaly score
// of channel j - so alarms are attributable to the feature whose
// relationship with the others broke, mirroring the paper's explainability
// note.
#ifndef NAVARCHOS_DETECT_XGB_DETECTOR_H_
#define NAVARCHOS_DETECT_XGB_DETECTOR_H_

#include <string>
#include <vector>

#include "detect/detector.h"
#include "detect/gbt.h"
#include "transform/standardizer.h"

namespace navarchos::detect {

/// Per-feature regression-error detector built on GbtRegressor.
class XgbDetector : public Detector {
 public:
  /// `feature_names` labels the score channels (optional).
  explicit XgbDetector(const GbtParams& params = {},
                       std::vector<std::string> feature_names = {});

  std::string Name() const override { return "xgboost"; }
  void Fit(const std::vector<std::vector<double>>& ref) override;
  std::vector<double> Score(const std::vector<double>& sample) override;
  std::size_t ScoreChannels() const override { return models_.size(); }
  std::vector<std::string> ChannelNames() const override;
  std::size_t MinReferenceSize() const override { return 16; }
  void SaveState(persist::Encoder& encoder) const override;
  bool RestoreState(persist::Decoder& decoder) override;

 private:
  /// Builds the model-j input row: all features except j.
  static std::vector<double> InputsExcluding(const std::vector<double>& sample,
                                             std::size_t excluded);

  GbtParams params_;
  std::vector<std::string> feature_names_;
  std::vector<GbtRegressor> models_;
  transform::Standardizer standardizer_;
};

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_XGB_DETECTOR_H_
