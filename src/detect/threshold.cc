#include "detect/threshold.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::detect {

int ThresholdConfig::ResolveBurnIn(int stride_records) const {
  NAVARCHOS_CHECK(stride_records >= 1);
  return std::clamp(static_cast<int>(std::lround(burn_in_minutes / stride_records)),
                    4, 4000);
}

std::pair<int, int> ThresholdConfig::ResolvePersistence(int stride_records) const {
  NAVARCHOS_CHECK(stride_records >= 1);
  NAVARCHOS_CHECK(persistence_fraction > 0.0 && persistence_fraction <= 1.0);
  const int window = std::clamp(
      static_cast<int>(std::lround(persistence_minutes / stride_records)), 4, 4000);
  const int min_violations = std::max(
      1, static_cast<int>(std::ceil(persistence_fraction * window)));
  return {window, min_violations};
}

ThresholdPolicy ThresholdPolicy::SelfTuning(
    const std::vector<std::vector<double>>& healthy_scores, double factor) {
  NAVARCHOS_CHECK(!healthy_scores.empty());
  const std::size_t channels = healthy_scores.front().size();
  ThresholdPolicy policy;
  policy.thresholds_.resize(channels);
  std::vector<double> column(healthy_scores.size());
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t i = 0; i < healthy_scores.size(); ++i) {
      NAVARCHOS_CHECK(healthy_scores[i].size() == channels);
      column[i] = healthy_scores[i][c];
    }
    const double mean = util::Mean(column);
    const double sd = util::StdDev(column);
    policy.thresholds_[c] = mean + factor * sd;
  }
  return policy;
}

ThresholdPolicy ThresholdPolicy::Constant(double value, std::size_t channels) {
  NAVARCHOS_CHECK(channels >= 1);
  ThresholdPolicy policy;
  policy.thresholds_.assign(channels, value);
  return policy;
}

PersistenceTracker::PersistenceTracker(int window, int min_count, std::size_t channels)
    : window_(window), min_count_(min_count), channels_(channels) {
  NAVARCHOS_CHECK(window_ >= 1);
  NAVARCHOS_CHECK(min_count_ >= 1 && min_count_ <= window_);
  Reset();
}

void PersistenceTracker::Reset() {
  history_.assign(channels_, std::vector<bool>(static_cast<std::size_t>(window_), false));
  counts_.assign(channels_, 0);
  cursor_ = 0;
  filled_ = 0;
}

void PersistenceTracker::Save(persist::Encoder& encoder) const {
  encoder.PutI32(cursor_);
  encoder.PutI32(filled_);
  for (const auto& ring : history_)
    for (bool bit : ring) encoder.PutBool(bit);
}

bool PersistenceTracker::Restore(persist::Decoder& decoder) {
  const std::int32_t cursor = decoder.GetI32();
  const std::int32_t filled = decoder.GetI32();
  if (!decoder.ok()) return false;
  if (cursor < 0 || cursor >= window_ || filled < 0 || filled > window_) {
    decoder.Fail("persistence cursor out of range");
    return false;
  }
  Reset();
  cursor_ = cursor;
  filled_ = filled;
  for (std::size_t c = 0; c < channels_; ++c) {
    auto& ring = history_[c];
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const bool bit = decoder.GetBool();
      ring[i] = bit;
      if (bit) ++counts_[c];  // counts are derived from the rings
    }
  }
  return decoder.ok();
}

std::vector<bool> PersistenceTracker::Update(const std::vector<bool>& violations) {
  NAVARCHOS_CHECK(violations.size() == channels_);
  std::vector<bool> fires(channels_, false);
  for (std::size_t c = 0; c < channels_; ++c) {
    auto& ring = history_[c];
    const std::size_t pos = static_cast<std::size_t>(cursor_);
    if (ring[pos]) --counts_[c];
    ring[pos] = violations[c];
    if (violations[c]) ++counts_[c];
    fires[c] = counts_[c] >= min_count_;
  }
  cursor_ = (cursor_ + 1) % window_;
  if (filled_ < window_) ++filled_;
  return fires;
}

ThresholdPolicy ThresholdPolicy::Explicit(std::vector<double> thresholds) {
  NAVARCHOS_CHECK(!thresholds.empty());
  ThresholdPolicy policy;
  policy.thresholds_ = std::move(thresholds);
  return policy;
}

std::optional<std::size_t> ThresholdPolicy::Violation(
    const std::vector<double>& scores) const {
  NAVARCHOS_CHECK(scores.size() == thresholds_.size());
  std::optional<std::size_t> worst;
  double worst_excess = 0.0;
  for (std::size_t c = 0; c < scores.size(); ++c) {
    const double excess = scores[c] - thresholds_[c];
    if (excess > 0.0 && (!worst || excess > worst_excess)) {
      worst = c;
      worst_excess = excess;
    }
  }
  return worst;
}

}  // namespace navarchos::detect
