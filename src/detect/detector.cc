#include "detect/detector.h"

namespace navarchos::detect {

const char* DetectorKindName(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kClosestPair: return "closest_pair";
    case DetectorKind::kGrand: return "grand";
    case DetectorKind::kTranAd: return "tranad";
    case DetectorKind::kXgBoost: return "xgboost";
    case DetectorKind::kIsolationForest: return "isolation_forest";
    case DetectorKind::kMlp: return "mlp";
    case DetectorKind::kKnnDistance: return "knn_distance";
  }
  return "unknown";
}

}  // namespace navarchos::detect
