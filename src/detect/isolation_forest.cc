#include "detect/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace navarchos::detect {

double AveragePathLength(int n) {
  if (n <= 1) return 0.0;
  const double dn = static_cast<double>(n);
  const double harmonic = std::log(dn - 1.0) + 0.5772156649015329;  // H(n-1)
  return 2.0 * harmonic - 2.0 * (dn - 1.0) / dn;
}

IsolationForestDetector::IsolationForestDetector(const IsolationForestParams& params)
    : params_(params) {
  NAVARCHOS_CHECK(params_.num_trees >= 1);
  NAVARCHOS_CHECK(params_.subsample >= 2);
}

int IsolationForestDetector::BuildNode(Tree& tree,
                                       const std::vector<std::vector<double>>& points,
                                       std::vector<int>& indices, int begin, int end,
                                       int depth, int depth_limit, util::Rng& rng) {
  const int node_id = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back({});
  const int count = end - begin;
  if (count <= 1 || depth >= depth_limit) {
    tree.nodes[static_cast<std::size_t>(node_id)].size = count;
    return node_id;
  }

  // Pick a feature with spread, then a split point within its range.
  const std::size_t dims = points.front().size();
  int feature = -1;
  double lo = 0.0, hi = 0.0;
  for (int attempt = 0; attempt < 8 && feature < 0; ++attempt) {
    const int candidate =
        static_cast<int>(rng.UniformInt(0, static_cast<std::int64_t>(dims) - 1));
    lo = hi = points[static_cast<std::size_t>(indices[static_cast<std::size_t>(begin)])]
                    [static_cast<std::size_t>(candidate)];
    for (int i = begin + 1; i < end; ++i) {
      const double v = points[static_cast<std::size_t>(indices[static_cast<std::size_t>(i)])]
                             [static_cast<std::size_t>(candidate)];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi > lo) feature = candidate;
  }
  if (feature < 0) {  // all candidate features constant in this node
    tree.nodes[static_cast<std::size_t>(node_id)].size = count;
    return node_id;
  }
  const double threshold = rng.Uniform(lo, hi);

  // Partition indices in place.
  int mid = begin;
  for (int i = begin; i < end; ++i) {
    const double v = points[static_cast<std::size_t>(indices[static_cast<std::size_t>(i)])]
                           [static_cast<std::size_t>(feature)];
    if (v < threshold) std::swap(indices[static_cast<std::size_t>(i)],
                                 indices[static_cast<std::size_t>(mid++)]);
  }
  if (mid == begin || mid == end) {  // degenerate split (ties at threshold)
    tree.nodes[static_cast<std::size_t>(node_id)].size = count;
    return node_id;
  }

  const int left = BuildNode(tree, points, indices, begin, mid, depth + 1,
                             depth_limit, rng);
  const int right = BuildNode(tree, points, indices, mid, end, depth + 1,
                              depth_limit, rng);
  Node& node = tree.nodes[static_cast<std::size_t>(node_id)];
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

void IsolationForestDetector::Fit(const std::vector<std::vector<double>>& ref) {
  NAVARCHOS_CHECK(ref.size() >= MinReferenceSize());
  standardizer_.Fit(ref);
  const auto z = standardizer_.ApplyAll(ref);

  const int psi = std::min<int>(params_.subsample, static_cast<int>(z.size()));
  const int depth_limit =
      static_cast<int>(std::ceil(std::log2(std::max(2, psi)))) + 2;
  expected_path_ = AveragePathLength(psi);

  util::Rng rng(params_.seed);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(params_.num_trees));
  std::vector<int> all(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) all[i] = static_cast<int>(i);
  for (int t = 0; t < params_.num_trees; ++t) {
    // Subsample without replacement.
    std::vector<int> indices = all;
    rng.Shuffle(indices);
    indices.resize(static_cast<std::size_t>(psi));
    Tree tree;
    BuildNode(tree, z, indices, 0, psi, 0, depth_limit, rng);
    trees_.push_back(std::move(tree));
  }
}

double IsolationForestDetector::PathLength(const Tree& tree,
                                           const std::vector<double>& sample) const {
  int node_id = 0;
  double depth = 0.0;
  while (true) {
    const Node& node = tree.nodes[static_cast<std::size_t>(node_id)];
    if (node.feature < 0) return depth + AveragePathLength(node.size);
    node_id = sample[static_cast<std::size_t>(node.feature)] < node.threshold
                  ? node.left
                  : node.right;
    depth += 1.0;
  }
}

std::vector<double> IsolationForestDetector::Score(const std::vector<double>& sample) {
  NAVARCHOS_CHECK(!trees_.empty());
  const std::vector<double> z = standardizer_.Apply(sample);
  double total = 0.0;
  for (const Tree& tree : trees_) total += PathLength(tree, z);
  const double mean_path = total / static_cast<double>(trees_.size());
  return {std::pow(2.0, -mean_path / std::max(1e-9, expected_path_))};
}

}  // namespace navarchos::detect
