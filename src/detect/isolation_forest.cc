#include "detect/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace navarchos::detect {

double AveragePathLength(int n) {
  if (n <= 1) return 0.0;
  const double dn = static_cast<double>(n);
  const double harmonic = std::log(dn - 1.0) + 0.5772156649015329;  // H(n-1)
  return 2.0 * harmonic - 2.0 * (dn - 1.0) / dn;
}

IsolationForestDetector::IsolationForestDetector(const IsolationForestParams& params)
    : params_(params) {
  NAVARCHOS_CHECK(params_.num_trees >= 1);
  NAVARCHOS_CHECK(params_.subsample >= 2);
}

int IsolationForestDetector::BuildNode(Tree& tree,
                                       const std::vector<std::vector<double>>& points,
                                       std::vector<int>& indices, int begin, int end,
                                       int depth, int depth_limit, util::Rng& rng) {
  const int node_id = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back({});
  const int count = end - begin;
  if (count <= 1 || depth >= depth_limit) {
    tree.nodes[static_cast<std::size_t>(node_id)].size = count;
    return node_id;
  }

  // Pick a feature with spread, then a split point within its range.
  const std::size_t dims = points.front().size();
  int feature = -1;
  double lo = 0.0, hi = 0.0;
  for (int attempt = 0; attempt < 8 && feature < 0; ++attempt) {
    const int candidate =
        static_cast<int>(rng.UniformInt(0, static_cast<std::int64_t>(dims) - 1));
    lo = hi = points[static_cast<std::size_t>(indices[static_cast<std::size_t>(begin)])]
                    [static_cast<std::size_t>(candidate)];
    for (int i = begin + 1; i < end; ++i) {
      const double v = points[static_cast<std::size_t>(indices[static_cast<std::size_t>(i)])]
                             [static_cast<std::size_t>(candidate)];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi > lo) feature = candidate;
  }
  if (feature < 0) {  // all candidate features constant in this node
    tree.nodes[static_cast<std::size_t>(node_id)].size = count;
    return node_id;
  }
  const double threshold = rng.Uniform(lo, hi);

  // Partition indices in place.
  int mid = begin;
  for (int i = begin; i < end; ++i) {
    const double v = points[static_cast<std::size_t>(indices[static_cast<std::size_t>(i)])]
                           [static_cast<std::size_t>(feature)];
    if (v < threshold) std::swap(indices[static_cast<std::size_t>(i)],
                                 indices[static_cast<std::size_t>(mid++)]);
  }
  if (mid == begin || mid == end) {  // degenerate split (ties at threshold)
    tree.nodes[static_cast<std::size_t>(node_id)].size = count;
    return node_id;
  }

  const int left = BuildNode(tree, points, indices, begin, mid, depth + 1,
                             depth_limit, rng);
  const int right = BuildNode(tree, points, indices, mid, end, depth + 1,
                              depth_limit, rng);
  Node& node = tree.nodes[static_cast<std::size_t>(node_id)];
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

void IsolationForestDetector::Fit(const std::vector<std::vector<double>>& ref) {
  NAVARCHOS_CHECK(ref.size() >= MinReferenceSize());
  standardizer_.Fit(ref);
  const auto z = standardizer_.ApplyAll(ref);

  const int psi = std::min<int>(params_.subsample, static_cast<int>(z.size()));
  const int depth_limit =
      static_cast<int>(std::ceil(std::log2(std::max(2, psi)))) + 2;
  expected_path_ = AveragePathLength(psi);

  util::Rng rng(params_.seed);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(params_.num_trees));
  std::vector<int> all(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) all[i] = static_cast<int>(i);
  for (int t = 0; t < params_.num_trees; ++t) {
    // Subsample without replacement.
    std::vector<int> indices = all;
    rng.Shuffle(indices);
    indices.resize(static_cast<std::size_t>(psi));
    Tree tree;
    BuildNode(tree, z, indices, 0, psi, 0, depth_limit, rng);
    trees_.push_back(std::move(tree));
  }
}

void IsolationForestDetector::SaveState(persist::Encoder& encoder) const {
  standardizer_.Save(encoder);
  encoder.PutDouble(expected_path_);
  encoder.PutU64(trees_.size());
  for (const Tree& tree : trees_) {
    encoder.PutU64(tree.nodes.size());
    for (const Node& node : tree.nodes) {
      encoder.PutI32(node.feature);
      encoder.PutDouble(node.threshold);
      encoder.PutI32(node.left);
      encoder.PutI32(node.right);
      encoder.PutI32(node.size);
    }
  }
}

bool IsolationForestDetector::RestoreState(persist::Decoder& decoder) {
  if (!standardizer_.Restore(decoder)) return false;
  expected_path_ = decoder.GetDouble();
  const std::uint64_t tree_count = decoder.GetU64();
  // Each tree costs at least its 8-byte node count; reject absurd counts
  // before allocating.
  if (!decoder.ok() || tree_count > decoder.remaining() / 8) {
    decoder.Fail("isolation_forest tree count out of bounds");
    return false;
  }
  trees_.assign(static_cast<std::size_t>(tree_count), Tree{});
  for (Tree& tree : trees_) {
    const std::uint64_t node_count = decoder.GetU64();
    // Each node occupies 24 encoded bytes.
    if (!decoder.ok() || node_count > decoder.remaining() / 24) {
      decoder.Fail("isolation_forest node count out of bounds");
      return false;
    }
    tree.nodes.assign(static_cast<std::size_t>(node_count), Node{});
    for (Node& node : tree.nodes) {
      node.feature = decoder.GetI32();
      node.threshold = decoder.GetDouble();
      node.left = decoder.GetI32();
      node.right = decoder.GetI32();
      node.size = decoder.GetI32();
    }
    if (!decoder.ok()) return false;
    // Validate child links: trees are built preorder, so internal nodes must
    // point strictly forward - this both bounds PathLength's walk and rules
    // out cycles in corrupted input.
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
      const Node& node = tree.nodes[i];
      if (node.feature < 0) continue;
      if (node.feature >= static_cast<int>(standardizer_.mean().size())) {
        decoder.Fail("isolation_forest split feature out of range");
        return false;
      }
      const int limit = static_cast<int>(tree.nodes.size());
      if (node.left <= static_cast<int>(i) || node.left >= limit ||
          node.right <= static_cast<int>(i) || node.right >= limit) {
        decoder.Fail("isolation_forest invalid tree links");
        return false;
      }
    }
  }
  return decoder.ok();
}

double IsolationForestDetector::PathLength(const Tree& tree,
                                           const std::vector<double>& sample) const {
  int node_id = 0;
  double depth = 0.0;
  while (true) {
    const Node& node = tree.nodes[static_cast<std::size_t>(node_id)];
    if (node.feature < 0) return depth + AveragePathLength(node.size);
    node_id = sample[static_cast<std::size_t>(node.feature)] < node.threshold
                  ? node.left
                  : node.right;
    depth += 1.0;
  }
}

std::vector<double> IsolationForestDetector::Score(const std::vector<double>& sample) {
  NAVARCHOS_CHECK(!trees_.empty());
  const std::vector<double> z = standardizer_.Apply(sample);
  double total = 0.0;
  for (const Tree& tree : trees_) total += PathLength(tree, z);
  const double mean_path = total / static_cast<double>(trees_.size());
  return {std::pow(2.0, -mean_path / std::max(1e-9, expected_path_))};
}

}  // namespace navarchos::detect
