#include "detect/factory.h"

#include "detect/closest_pair.h"
#include "detect/tranad_detector.h"
#include "detect/xgb_detector.h"
#include "util/check.h"

namespace navarchos::detect {

std::unique_ptr<Detector> MakeDetector(DetectorKind kind,
                                       const DetectorOptions& options) {
  switch (kind) {
    case DetectorKind::kClosestPair:
      return std::make_unique<ClosestPairDetector>(options.feature_names);
    case DetectorKind::kGrand:
      return std::make_unique<GrandDetector>(options.grand);
    case DetectorKind::kTranAd:
      return std::make_unique<TranAdDetector>(options.tranad);
    case DetectorKind::kXgBoost:
      return std::make_unique<XgbDetector>(options.gbt, options.feature_names);
    case DetectorKind::kIsolationForest:
      return std::make_unique<IsolationForestDetector>(options.isolation_forest);
    case DetectorKind::kMlp:
      return std::make_unique<MlpDetector>(options.mlp, options.feature_names);
    case DetectorKind::kKnnDistance:
      return std::make_unique<KnnDistanceDetector>(options.knn_distance_k);
  }
  NAVARCHOS_CHECK(false);
  return nullptr;
}

}  // namespace navarchos::detect
