// Gradient-boosted regression trees, from scratch.
//
// A compact reimplementation of the XGBoost training algorithm (Chen &
// Guestrin, KDD 2016) specialised to squared-error regression: second-order
// gain with L2 leaf regularisation, exact greedy splits, shrinkage, row
// subsampling and column subsampling. This is the model behind the paper's
// "XGBoost" technique (§3.6).
#ifndef NAVARCHOS_DETECT_GBT_H_
#define NAVARCHOS_DETECT_GBT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace navarchos::detect {

/// Training hyper-parameters (defaults follow common XGBoost practice for
/// small tabular datasets).
struct GbtParams {
  int num_trees = 60;
  int max_depth = 4;
  double learning_rate = 0.15;
  double reg_lambda = 1.0;        ///< L2 penalty on leaf weights.
  double gamma = 0.0;             ///< Minimum gain to accept a split.
  double min_child_weight = 2.0;  ///< Minimum hessian sum per child.
  double subsample = 0.8;         ///< Row subsampling per tree.
  double colsample = 1.0;         ///< Column subsampling per tree.
  std::uint64_t seed = 7;         ///< Subsampling determinism.
};

/// Boosted-tree regressor for squared error.
class GbtRegressor {
 public:
  explicit GbtRegressor(const GbtParams& params = {});

  /// Fits on feature rows `x` (equal length >= 1) and targets `y`.
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  /// Predicts a single row (must match the fitted dimensionality).
  double Predict(std::span<const double> row) const;

  /// Number of trees actually grown (can be < num_trees if boosting stalls).
  std::size_t tree_count() const { return trees_.size(); }

  /// True after a successful Fit.
  bool fitted() const { return fitted_; }

  /// Serialises the fitted model to a line-oriented text format (base score,
  /// then one line per node: tree index, feature, threshold, children,
  /// value). Stable across platforms; requires fitted().
  std::string Serialise() const;

  /// Reconstructs a model from Serialise() output. Returns false (leaving
  /// the model unfitted) on malformed input.
  bool Deserialise(const std::string& text);

 private:
  struct Node {
    int feature = -1;         ///< Split feature; -1 marks a leaf.
    double threshold = 0.0;   ///< Goes left when row[feature] < threshold.
    int left = -1;
    int right = -1;
    double value = 0.0;       ///< Leaf weight (already shrunk).
  };
  struct Tree {
    std::vector<Node> nodes;
    double Predict(std::span<const double> row) const;
  };

  GbtParams params_;
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
  bool fitted_ = false;
};

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_GBT_H_
