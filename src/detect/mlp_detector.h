// MLP regression detector, after Massaro et al. (IoT 2020), discussed in the
// paper's related work (§5): a multi-layer perceptron is trained on healthy
// data to regress one signal from the others; the prediction loss acts as
// the anomaly score. This implementation generalises the scheme the way the
// paper's XGBoost instantiation does - one regressor per feature, so alarms
// remain feature-attributable - and reuses the library's neural layers.
#ifndef NAVARCHOS_DETECT_MLP_DETECTOR_H_
#define NAVARCHOS_DETECT_MLP_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "detect/nn/layers.h"
#include "transform/standardizer.h"

namespace navarchos::detect {

/// MLP hyper-parameters.
struct MlpParams {
  int hidden = 32;
  int epochs = 40;
  double lr = 2e-3;
  std::uint64_t seed = 23;
};

/// Per-feature MLP regression-error detector.
class MlpDetector : public Detector {
 public:
  explicit MlpDetector(const MlpParams& params = {},
                       std::vector<std::string> feature_names = {});

  std::string Name() const override { return "mlp"; }
  void Fit(const std::vector<std::vector<double>>& ref) override;
  std::vector<double> Score(const std::vector<double>& sample) override;
  std::size_t ScoreChannels() const override { return models_.size(); }
  std::vector<std::string> ChannelNames() const override;
  std::size_t MinReferenceSize() const override { return 16; }
  void SaveState(persist::Encoder& encoder) const override;
  bool RestoreState(persist::Decoder& decoder) override;

 private:
  /// One two-layer regressor: in -> hidden -> 1.
  struct Model {
    std::unique_ptr<nn::Linear> layer1;
    std::unique_ptr<nn::Relu> relu;
    std::unique_ptr<nn::Linear> layer2;
    int steps = 0;
  };

  static std::vector<double> InputsExcluding(const std::vector<double>& sample,
                                             std::size_t excluded);
  double Predict(Model& model, const std::vector<double>& inputs) const;

  MlpParams params_;
  std::vector<std::string> feature_names_;
  std::vector<Model> models_;
  transform::Standardizer standardizer_;
};

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_MLP_DETECTOR_H_
