// Multivariate kNN-distance detector: the "simple distance-based technique"
// the paper's §2 exploration shows failing on raw data. Included as the
// honest straw-man baseline - its score is the mean Euclidean distance from
// the (standardised) sample to its k nearest neighbours in Ref, thresholded
// with the same self-tuning rule as the other detectors.
#ifndef NAVARCHOS_DETECT_KNN_DISTANCE_H_
#define NAVARCHOS_DETECT_KNN_DISTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "neighbors/knn.h"
#include "transform/standardizer.h"

namespace navarchos::detect {

/// Mean-kNN-distance detector (single score channel).
class KnnDistanceDetector : public Detector {
 public:
  explicit KnnDistanceDetector(int k = 5);

  std::string Name() const override { return "knn_distance"; }
  void Fit(const std::vector<std::vector<double>>& ref) override;
  std::vector<double> Score(const std::vector<double>& sample) override;
  std::size_t ScoreChannels() const override { return 1; }
  std::vector<std::string> ChannelNames() const override { return {"knn_distance"}; }
  std::size_t MinReferenceSize() const override {
    return static_cast<std::size_t>(k_) + 2;
  }
  std::vector<std::vector<double>> SelfCalibrationScores(
      int exclusion_radius) const override;
  void SaveState(persist::Encoder& encoder) const override;
  bool RestoreState(persist::Decoder& decoder) override;

 private:
  double MeanNeighbourDistance(std::span<const double> standardized,
                               std::ptrdiff_t exclude_lo,
                               std::ptrdiff_t exclude_hi) const;

  int k_;
  transform::Standardizer standardizer_;
  std::vector<std::vector<double>> reference_;  ///< Standardised, time order.
  std::unique_ptr<neighbors::KnnIndex> index_;
};

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_KNN_DISTANCE_H_
