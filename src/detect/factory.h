// Detector construction by kind, with per-kind default configurations.
#ifndef NAVARCHOS_DETECT_FACTORY_H_
#define NAVARCHOS_DETECT_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "detect/gbt.h"
#include "detect/grand.h"
#include "detect/isolation_forest.h"
#include "detect/knn_distance.h"
#include "detect/mlp_detector.h"
#include "detect/nn/tranad.h"

namespace navarchos::detect {

/// Configuration bundle for MakeDetector.
struct DetectorOptions {
  GrandConfig grand;
  GbtParams gbt;
  nn::TranAdParams tranad;
  IsolationForestParams isolation_forest;
  MlpParams mlp;
  int knn_distance_k = 5;
  /// Channel labels for the feature-attributed detectors.
  std::vector<std::string> feature_names;
};

/// Creates a detector of the requested kind.
std::unique_ptr<Detector> MakeDetector(DetectorKind kind,
                                       const DetectorOptions& options = {});

}  // namespace navarchos::detect

#endif  // NAVARCHOS_DETECT_FACTORY_H_
