#include "core/fleet_runner.h"

#include <algorithm>

#include "runtime/parallel.h"

namespace navarchos::core {

std::vector<Alarm> FleetRunResult::AlarmsAt(double factor_or_constant) const {
  std::vector<Alarm> all;
  for (std::size_t v = 0; v < scored_samples.size(); ++v) {
    auto vehicle_alarms = AlarmsForThreshold(scored_samples[v], calibrations[v],
                                             factor_or_constant, persistence_window,
                                             persistence_min, channel_names,
                                             threshold_kind);
    all.insert(all.end(), vehicle_alarms.begin(), vehicle_alarms.end());
  }
  return all;
}

DataQualityReport FleetRunResult::TotalQuality() const {
  DataQualityReport total;
  total.vehicle_id = -1;
  for (const DataQualityReport& report : quality) total.Add(report);
  return total;
}

FleetRunResult RunFleet(const telemetry::FleetDataset& fleet,
                        const MonitorConfig& config,
                        const runtime::RuntimeConfig& runtime) {
  FleetRunResult result;
  const auto [pw, pm] = config.threshold.ResolvePersistence(
      transform::EffectiveStride(config.transform, config.transform_options));
  result.persistence_window = pw;
  result.persistence_min = pm;
  result.threshold_kind = config.threshold.kind;
  result.scored_samples.resize(fleet.vehicles.size());
  result.calibrations.resize(fleet.vehicles.size());
  result.quality.resize(fleet.vehicles.size());
  result.ensemble_stats.resize(fleet.vehicles.size());

  // One monitor per vehicle, each writing only its own index-aligned slots;
  // alarms land in a per-vehicle vector and are concatenated in vehicle
  // order after the barrier, so the result is identical at any thread count.
  std::vector<std::vector<Alarm>> vehicle_alarms(fleet.vehicles.size());
  std::vector<std::vector<std::string>> vehicle_channel_names(fleet.vehicles.size());
  runtime::ParallelFor(runtime, fleet.vehicles.size(), [&](std::size_t v) {
    const telemetry::VehicleHistory& vehicle = fleet.vehicles[v];
    VehicleMonitor monitor(vehicle.spec.id, config);
    std::vector<Alarm>& alarms = vehicle_alarms[v];

    // Replay the vehicle's frame sequence through the streaming stepping
    // API (records and events merged by timestamp, events first on ties so
    // a same-minute service resets Ref before the next measurement).
    // Record delivery order is preserved as-is: the monitor's ingest guard,
    // not the runner, is responsible for resequencing corrupted streams.
    // This is the same code path the streaming service drives frame by
    // frame, which is what makes replay-equals-live checkable at all.
    for (const telemetry::SensorFrame& frame : telemetry::MakeVehicleStream(vehicle))
      for (Alarm& alarm : monitor.OnFrame(frame)) alarms.push_back(std::move(alarm));
    for (auto& alarm : monitor.Flush()) alarms.push_back(std::move(alarm));

    result.scored_samples[v] = monitor.scored_samples();
    result.calibrations[v] = monitor.calibrations();
    result.quality[v] = monitor.quality();
    result.ensemble_stats[v] = monitor.ensemble_stats();
    vehicle_channel_names[v] = monitor.channel_names();
  });

  for (std::vector<Alarm>& alarms : vehicle_alarms)
    for (Alarm& alarm : alarms) result.alarms.push_back(std::move(alarm));
  for (std::vector<std::string>& names : vehicle_channel_names) {
    if (!names.empty()) {
      result.channel_names = std::move(names);
      break;
    }
  }
  return result;
}

FleetRunResult RunFleet(const telemetry::FleetDataset& fleet,
                        const MonitorConfig& config) {
  return RunFleet(fleet, config, runtime::RuntimeConfig::Serial());
}

}  // namespace navarchos::core
