#include "core/monitor.h"

#include <algorithm>
#include <cmath>

#include "telemetry/filters.h"
#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::core {

std::size_t MonitorConfig::ResolveProfileLength() const {
  const int stride = transform::EffectiveStride(transform, transform_options);
  const double samples = profile_minutes / static_cast<double>(stride);
  return static_cast<std::size_t>(std::clamp(samples, 16.0, 8000.0));
}

double CalibrationStats::ThresholdOf(std::size_t c,
                                     detect::ThresholdConfig::Kind kind,
                                     double factor_or_constant) const {
  if (constant_threshold) return factor_or_constant;
  switch (kind) {
    case detect::ThresholdConfig::Kind::kSelfTuning:
      return mean[c] + factor_or_constant * stddev[c];
    case detect::ThresholdConfig::Kind::kMedianMad:
      // 1.4826 makes the MAD a consistent sigma estimator under normality.
      return median[c] + factor_or_constant * 1.4826 * mad[c];
    case detect::ThresholdConfig::Kind::kMaxHealthy:
      return factor_or_constant * max[c];
    case detect::ThresholdConfig::Kind::kConstant:
      return factor_or_constant;
  }
  return factor_or_constant;
}

VehicleMonitor::VehicleMonitor(std::int32_t vehicle_id, const MonitorConfig& config)
    : vehicle_id_(vehicle_id), config_(config) {
  transformer_ = transform::MakeTransformer(config_.transform, config_.transform_options);
  detect::DetectorOptions options = config_.detector_options;
  if (options.feature_names.empty()) options.feature_names = transformer_->FeatureNames();
  detector_ = detect::MakeDetector(config_.detector, options);
  profile_length_ = config_.ResolveProfileLength();
  NAVARCHOS_CHECK(profile_length_ >= detector_->MinReferenceSize());
}

void VehicleMonitor::ResetReference() {
  reference_.clear();
  calibration_scores_.clear();
  fitted_ = false;
  calibrating_ = false;
  persistence_.reset();
  // The raw-data buffer restarts as well: the paper discards the old data
  // when a new reference is triggered.
  transformer_->Reset();
}

void VehicleMonitor::OnEvent(const telemetry::FleetEvent& event) {
  if (!event.recorded) return;  // invisible to the FMS platform
  const bool triggers =
      (event.type == telemetry::EventType::kService && config_.reset_on_service) ||
      (event.type == telemetry::EventType::kRepair && config_.reset_on_repair);
  if (triggers) ResetReference();
}

void VehicleMonitor::FitOnReference() {
  detector_->Fit(reference_);
  channel_names_ = detector_->ChannelNames();
  calibration_scores_.clear();
  fitted_ = true;
  calibrating_ = true;
  ++fit_count_;
}

void VehicleMonitor::FinishCalibration() {
  // Thresholds from two sources of honestly out-of-sample healthy scores:
  //  * burn-in scores of the period right after the maintenance event (the
  //    data most plausibly healthy), and
  //  * leave-block-out scores of the reference samples themselves, which
  //    span the full reference period's variability (usage regimes,
  //    weather) where the detector supports them.
  std::vector<std::vector<double>> calib = calibration_scores_;
  const int exclusion =
      std::max(1, config_.transform_options.window / config_.transform_options.stride);
  for (auto& row : detector_->SelfCalibrationScores(exclusion))
    calib.push_back(std::move(row));

  CalibrationStats stats;
  stats.constant_threshold = detector_->ScoresAreProbabilities();
  const std::size_t channels = detector_->ScoreChannels();
  stats.mean.assign(channels, 0.0);
  stats.stddev.assign(channels, 0.0);
  stats.median.assign(channels, 0.0);
  stats.mad.assign(channels, 0.0);
  stats.max.assign(channels, 0.0);
  std::vector<double> column(calib.size());
  std::vector<double> deviations(calib.size());
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t i = 0; i < calib.size(); ++i) column[i] = calib[i][c];
    stats.mean[c] = util::Mean(column);
    stats.stddev[c] = util::StdDev(column);
    stats.median[c] = util::Median(column);
    for (std::size_t i = 0; i < column.size(); ++i)
      deviations[i] = std::fabs(column[i] - stats.median[c]);
    stats.mad[c] = util::Median(deviations);
    stats.max[c] = util::Max(column);
  }

  std::vector<double> thresholds(channels);
  const double factor_or_constant = detector_->ScoresAreProbabilities()
                                        ? config_.threshold.constant
                                        : config_.threshold.factor;
  for (std::size_t c = 0; c < channels; ++c)
    thresholds[c] = stats.ThresholdOf(c, config_.threshold.kind, factor_or_constant);
  policy_ = detect::ThresholdPolicy::Explicit(std::move(thresholds));
  calibrations_.push_back(std::move(stats));
  calibrating_ = false;
}

std::optional<Alarm> VehicleMonitor::OnRecord(const telemetry::Record& record) {
  if (!telemetry::IsUsable(record)) return std::nullopt;
  auto sample = transformer_->Collect(record);
  if (!sample) return std::nullopt;

  if (!fitted_) {
    reference_.push_back(std::move(sample->features));
    if (reference_.size() >= profile_length_) FitOnReference();
    return std::nullopt;
  }

  if (calibrating_) {
    calibration_scores_.push_back(detector_->Score(sample->features));
    const int burn_in = config_.threshold.ResolveBurnIn(
        transform::EffectiveStride(config_.transform, config_.transform_options));
    if (calibration_scores_.size() >= static_cast<std::size_t>(burn_in)) {
      FinishCalibration();
    }
    return std::nullopt;
  }

  ScoredSample scored;
  scored.vehicle_id = vehicle_id_;
  scored.timestamp = sample->timestamp;
  scored.scores = detector_->Score(sample->features);
  scored.calibration_index = static_cast<int>(calibrations_.size()) - 1;
  scored_samples_.push_back(scored);

  // Windowed persistence: only channels violating on most recent samples
  // raise an alarm (see ThresholdConfig).
  if (persistence_ == nullptr) {
    const auto [window, min_violations] = config_.threshold.ResolvePersistence(
        transform::EffectiveStride(config_.transform, config_.transform_options));
    persistence_ = std::make_unique<detect::PersistenceTracker>(
        window, min_violations, scored.scores.size());
  }
  const auto& thresholds = policy_.thresholds();
  std::vector<bool> violations(scored.scores.size());
  for (std::size_t c = 0; c < scored.scores.size(); ++c)
    violations[c] = scored.scores[c] > thresholds[c];
  const std::vector<bool> fires = persistence_->Update(violations);

  std::optional<std::size_t> worst;
  double worst_excess = 0.0;
  for (std::size_t c = 0; c < scored.scores.size(); ++c) {
    // Alarm only while the channel is both persistently and currently in
    // violation (no trailing alarms after the scores recover).
    if (!fires[c] || !violations[c]) continue;
    const double excess = scored.scores[c] - thresholds[c];
    if (!worst || excess > worst_excess) {
      worst = c;
      worst_excess = excess;
    }
  }
  if (!worst) return std::nullopt;
  Alarm alarm;
  alarm.vehicle_id = vehicle_id_;
  alarm.timestamp = sample->timestamp;
  alarm.channel = *worst;
  alarm.channel_name = *worst < channel_names_.size()
                           ? channel_names_[*worst]
                           : "ch" + std::to_string(*worst);
  alarm.score = scored.scores[*worst];
  alarm.threshold = thresholds[*worst];
  return alarm;
}

std::vector<Alarm> AlarmsForThreshold(const std::vector<ScoredSample>& samples,
                                      const std::vector<CalibrationStats>& calibrations,
                                      double factor_or_constant,
                                      int persistence_window, int persistence_min,
                                      const std::vector<std::string>& channel_names,
                                      detect::ThresholdConfig::Kind kind) {
  std::vector<Alarm> alarms;
  std::unique_ptr<detect::PersistenceTracker> tracker;
  int active_cycle = -1;
  for (const ScoredSample& sample : samples) {
    NAVARCHOS_CHECK(sample.calibration_index >= 0);
    if (sample.calibration_index != active_cycle || tracker == nullptr) {
      active_cycle = sample.calibration_index;
      tracker = std::make_unique<detect::PersistenceTracker>(
          persistence_window, persistence_min, sample.scores.size());
    }
    const CalibrationStats& stats =
        calibrations[static_cast<std::size_t>(sample.calibration_index)];
    std::vector<bool> violations(sample.scores.size());
    std::vector<double> thresholds(sample.scores.size());
    for (std::size_t c = 0; c < sample.scores.size(); ++c) {
      thresholds[c] = stats.ThresholdOf(c, kind, factor_or_constant);
      violations[c] = sample.scores[c] > thresholds[c];
    }
    const std::vector<bool> fires = tracker->Update(violations);
    std::optional<std::size_t> worst;
    double worst_excess = 0.0;
    double worst_threshold = 0.0;
    for (std::size_t c = 0; c < sample.scores.size(); ++c) {
      if (!fires[c] || !violations[c]) continue;
      const double excess = sample.scores[c] - thresholds[c];
      if (!worst || excess > worst_excess) {
        worst = c;
        worst_excess = excess;
        worst_threshold = thresholds[c];
      }
    }
    if (!worst) continue;
    Alarm alarm;
    alarm.vehicle_id = sample.vehicle_id;
    alarm.timestamp = sample.timestamp;
    alarm.channel = *worst;
    alarm.channel_name = *worst < channel_names.size() ? channel_names[*worst]
                                                       : "ch" + std::to_string(*worst);
    alarm.score = sample.scores[*worst];
    alarm.threshold = worst_threshold;
    alarms.push_back(std::move(alarm));
  }
  return alarms;
}

}  // namespace navarchos::core
