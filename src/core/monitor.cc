#include "core/monitor.h"

#include <algorithm>
#include <cmath>

#include "telemetry/filters.h"
#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::core {

std::size_t MonitorConfig::ResolveProfileLength() const {
  const int stride = transform::EffectiveStride(transform, transform_options);
  const double samples = profile_minutes / static_cast<double>(stride);
  return static_cast<std::size_t>(std::clamp(samples, 16.0, 8000.0));
}

double CalibrationStats::ThresholdOf(std::size_t c,
                                     detect::ThresholdConfig::Kind kind,
                                     double factor_or_constant) const {
  if (constant_threshold) return factor_or_constant;
  switch (kind) {
    case detect::ThresholdConfig::Kind::kSelfTuning:
      return mean[c] + factor_or_constant * stddev[c];
    case detect::ThresholdConfig::Kind::kMedianMad:
      // 1.4826 makes the MAD a consistent sigma estimator under normality.
      return median[c] + factor_or_constant * 1.4826 * mad[c];
    case detect::ThresholdConfig::Kind::kMaxHealthy:
      return factor_or_constant * max[c];
    case detect::ThresholdConfig::Kind::kConstant:
      return factor_or_constant;
  }
  return factor_or_constant;
}

std::size_t DataQualityReport::RecordsDropped() const {
  return duplicates_dropped + late_dropped + non_finite_dropped +
         stationary_dropped + sensor_faulty_dropped + stuck_run_dropped;
}

void DataQualityReport::Add(const DataQualityReport& other) {
  records_seen += other.records_seen;
  duplicates_dropped += other.duplicates_dropped;
  reordered_recovered += other.reordered_recovered;
  late_dropped += other.late_dropped;
  non_finite_dropped += other.non_finite_dropped;
  stationary_dropped += other.stationary_dropped;
  sensor_faulty_dropped += other.sensor_faulty_dropped;
  stuck_run_records += other.stuck_run_records;
  stuck_run_dropped += other.stuck_run_dropped;
  non_finite_features_dropped += other.non_finite_features_dropped;
  non_finite_scores_dropped += other.non_finite_scores_dropped;
  quarantine_events += other.quarantine_events;
}

VehicleMonitor::VehicleMonitor(std::int32_t vehicle_id, const MonitorConfig& config)
    : vehicle_id_(vehicle_id), config_(config) {
  transformer_ = transform::MakeTransformer(config_.transform, config_.transform_options);
  detect::DetectorOptions options = config_.detector_options;
  if (options.feature_names.empty()) options.feature_names = transformer_->FeatureNames();
  detector_ = detect::MakeDetector(config_.detector, options);
  Initialise();
}

VehicleMonitor::VehicleMonitor(std::int32_t vehicle_id, const MonitorConfig& config,
                               std::unique_ptr<transform::Transformer> transformer,
                               std::unique_ptr<detect::Detector> detector)
    : vehicle_id_(vehicle_id), config_(config) {
  NAVARCHOS_CHECK(transformer != nullptr && detector != nullptr);
  transformer_ = std::move(transformer);
  detector_ = std::move(detector);
  Initialise();
}

void VehicleMonitor::Initialise() {
  profile_length_ = config_.ResolveProfileLength();
  NAVARCHOS_CHECK(profile_length_ >= detector_->MinReferenceSize());
  NAVARCHOS_CHECK(config_.ingest.reorder_capacity >= 0);
  quality_.vehicle_id = vehicle_id_;
  if (config_.ensemble.enabled) {
    ensemble::EnsembleRuntime runtime;
    runtime.detector = config_.detector;
    runtime.detector_options = config_.detector_options;
    if (runtime.detector_options.feature_names.empty())
      runtime.detector_options.feature_names = transformer_->FeatureNames();
    runtime.threshold = config_.threshold;
    runtime.exclusion_radius = std::max(
        1, config_.transform_options.window / config_.transform_options.stride);
    runtime.window = config_.ensemble.window > 0
                         ? static_cast<std::size_t>(config_.ensemble.window)
                         : profile_length_;
    ensemble_ =
        std::make_unique<ensemble::RollingEnsemble>(config_.ensemble, runtime);
  }
}

void VehicleMonitor::set_background_pool(runtime::ThreadPool* pool) {
  if (ensemble_ != nullptr) ensemble_->set_pool(pool);
}

void VehicleMonitor::set_retrain_histogram(obs::Histogram* histogram) {
  if (ensemble_ != nullptr) ensemble_->set_retrain_histogram(histogram);
}

ensemble::EnsembleStats VehicleMonitor::ensemble_stats() const {
  return ensemble_ != nullptr ? ensemble_->stats() : ensemble::EnsembleStats();
}

std::size_t VehicleMonitor::ensemble_bytes() const {
  return ensemble_ != nullptr ? ensemble_->EncodedBytes() : 0;
}

void VehicleMonitor::ResetReference() {
  reference_.clear();
  calibration_scores_.clear();
  fitted_ = false;
  calibrating_ = false;
  quarantined_ = false;
  persistence_.reset();
  // The raw-data buffer restarts as well: the paper discards the old data
  // when a new reference is triggered.
  transformer_->Reset();
  // Ensemble members trained on pre-maintenance data are no longer a
  // healthy reference; the ensemble rebuilds from the new cycle's stream.
  if (ensemble_ != nullptr) ensemble_->Reset();
}

std::vector<Alarm> VehicleMonitor::OnEvent(const telemetry::FleetEvent& event) {
  if (!event.recorded) return {};  // invisible to the FMS platform
  const bool triggers =
      (event.type == telemetry::EventType::kService && config_.reset_on_service) ||
      (event.type == telemetry::EventType::kRepair && config_.reset_on_repair);
  if (!triggers) return {};
  // Buffered records precede the event in stream time: release them into the
  // closing cycle before discarding it.
  std::vector<Alarm> alarms = Flush();
  ResetReference();
  return alarms;
}

std::vector<Alarm> VehicleMonitor::OnFrame(const telemetry::SensorFrame& frame) {
  if (frame.kind == telemetry::SensorFrame::Kind::kEvent) return OnEvent(frame.event);
  std::vector<Alarm> alarms;
  if (auto alarm = OnRecord(frame.record)) alarms.push_back(std::move(*alarm));
  return alarms;
}

std::vector<Alarm> VehicleMonitor::Flush() {
  std::vector<Alarm> alarms;
  while (!reorder_buffer_.empty()) {
    if (auto alarm = ReleaseOldest()) alarms.push_back(std::move(*alarm));
  }
  return alarms;
}

std::optional<Alarm> VehicleMonitor::ReleaseOldest() {
  telemetry::Record record = std::move(reorder_buffer_.front());
  reorder_buffer_.pop_front();
  watermark_ = record.timestamp;
  has_released_ = true;
  recent_released_.push_back(record);
  const std::size_t ring_size =
      static_cast<std::size_t>(std::max(4, 4 * config_.ingest.reorder_capacity));
  while (recent_released_.size() > ring_size) recent_released_.pop_front();
  return ProcessRecord(record);
}

void VehicleMonitor::FitOnReference() {
  detector_->Fit(reference_);
  channel_names_ = detector_->ChannelNames();
  calibration_scores_.clear();
  fitted_ = true;
  calibrating_ = true;
  ++fit_count_;
}

namespace {

bool AllFinite(const std::vector<double>& values) {
  for (double value : values)
    if (!std::isfinite(value)) return false;
  return true;
}

}  // namespace

void VehicleMonitor::FinishCalibration() {
  // Thresholds from two sources of honestly out-of-sample healthy scores:
  //  * burn-in scores of the period right after the maintenance event (the
  //    data most plausibly healthy), and
  //  * leave-block-out scores of the reference samples themselves, which
  //    span the full reference period's variability (usage regimes,
  //    weather) where the detector supports them.
  std::vector<std::vector<double>> calib = calibration_scores_;
  const int exclusion =
      std::max(1, config_.transform_options.window / config_.transform_options.stride);
  for (auto& row : detector_->SelfCalibrationScores(exclusion))
    calib.push_back(std::move(row));

  CalibrationStats stats;
  stats.constant_threshold = detector_->ScoresAreProbabilities();
  const std::size_t channels = detector_->ScoreChannels();
  stats.mean.assign(channels, 0.0);
  stats.stddev.assign(channels, 0.0);
  stats.median.assign(channels, 0.0);
  stats.mad.assign(channels, 0.0);
  stats.max.assign(channels, 0.0);
  std::vector<double> column(calib.size());
  std::vector<double> deviations(calib.size());
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t i = 0; i < calib.size(); ++i) column[i] = calib[i][c];
    stats.mean[c] = util::Mean(column);
    stats.stddev[c] = util::StdDev(column);
    stats.median[c] = util::Median(column);
    for (std::size_t i = 0; i < column.size(); ++i)
      deviations[i] = std::fabs(column[i] - stats.median[c]);
    stats.mad[c] = util::Median(deviations);
    stats.max[c] = util::Max(column);
  }

  // A detector whose calibration statistics come out non-finite cannot
  // self-tune a trustworthy threshold: quarantine this reference cycle
  // (suppress alarms, discard the calibration) and wait for the next
  // maintenance reset to re-fit.
  if (!AllFinite(stats.mean) || !AllFinite(stats.stddev) ||
      !AllFinite(stats.median) || !AllFinite(stats.mad) || !AllFinite(stats.max)) {
    quarantined_ = true;
    calibrating_ = false;
    calibration_scores_.clear();
    ++quality_.quarantine_events;
    return;
  }

  std::vector<double> thresholds(channels);
  const double factor_or_constant = detector_->ScoresAreProbabilities()
                                        ? config_.threshold.constant
                                        : config_.threshold.factor;
  for (std::size_t c = 0; c < channels; ++c)
    thresholds[c] = stats.ThresholdOf(c, config_.threshold.kind, factor_or_constant);
  policy_ = detect::ThresholdPolicy::Explicit(std::move(thresholds));
  calibrations_.push_back(std::move(stats));
  calibrating_ = false;
}

std::optional<Alarm> VehicleMonitor::OnRecord(const telemetry::Record& record) {
  ++quality_.records_seen;
  if (!config_.ingest.enabled) return ProcessRecord(record);

  // Duplicate delivery: same timestamp AND identical payload as a record
  // still buffered or recently released (equal timestamps with differing
  // payloads are legitimate, e.g. sub-minute bursts, and pass through).
  const auto duplicates = [&record](const telemetry::Record& seen) {
    return seen.timestamp == record.timestamp && seen.pids == record.pids;
  };
  for (auto it = reorder_buffer_.rbegin(); it != reorder_buffer_.rend(); ++it) {
    if (it->timestamp < record.timestamp) break;
    if (duplicates(*it)) {
      ++quality_.duplicates_dropped;
      return std::nullopt;
    }
  }
  if (has_released_ && record.timestamp <= watermark_) {
    for (const auto& seen : recent_released_) {
      if (duplicates(seen)) {
        ++quality_.duplicates_dropped;
        return std::nullopt;
      }
    }
    if (record.timestamp < watermark_) {
      // Arrived after newer records were already released: beyond repair.
      ++quality_.late_dropped;
      return std::nullopt;
    }
  }

  // Resequence: insert in timestamp order (arrival order on ties).
  const telemetry::Minute newest =
      reorder_buffer_.empty() ? watermark_ : reorder_buffer_.back().timestamp;
  if ((has_released_ || !reorder_buffer_.empty()) && record.timestamp < newest)
    ++quality_.reordered_recovered;
  const auto position = std::upper_bound(
      reorder_buffer_.begin(), reorder_buffer_.end(), record,
      [](const telemetry::Record& a, const telemetry::Record& b) {
        return a.timestamp < b.timestamp;
      });
  reorder_buffer_.insert(position, record);

  std::optional<Alarm> alarm;
  while (reorder_buffer_.size() >
         static_cast<std::size_t>(config_.ingest.reorder_capacity)) {
    auto released = ReleaseOldest();
    if (released && !alarm) alarm = std::move(released);
  }
  return alarm;
}

std::optional<Alarm> VehicleMonitor::ProcessRecord(const telemetry::Record& record) {
  // Non-finite readings are classified before the range filter: NaN compares
  // false against every bound, so they would otherwise masquerade as usable.
  for (double value : record.pids) {
    if (!std::isfinite(value)) {
      ++quality_.non_finite_dropped;
      return std::nullopt;
    }
  }
  if (telemetry::IsStationary(record)) {
    ++quality_.stationary_dropped;
    return std::nullopt;
  }
  if (telemetry::IsSensorFaulty(record)) {
    ++quality_.sensor_faulty_dropped;
    return std::nullopt;
  }

  // Stuck-sensor runs: a channel repeating the exact same value across
  // consecutive usable records. Always counted; dropping is opt-in.
  bool in_stuck_run = false;
  if (config_.ingest.stuck_run_length > 0) {
    if (has_stuck_previous_) {
      for (int c = 0; c < telemetry::kNumPids; ++c) {
        const auto channel = static_cast<std::size_t>(c);
        if (record.pids[channel] == stuck_previous_[channel]) {
          if (++stuck_run_[channel] >= config_.ingest.stuck_run_length)
            in_stuck_run = true;
        } else {
          stuck_run_[channel] = 1;
        }
      }
    } else {
      stuck_run_.fill(1);
    }
    stuck_previous_ = record.pids;
    has_stuck_previous_ = true;
    if (in_stuck_run) {
      ++quality_.stuck_run_records;
      if (config_.ingest.drop_stuck_runs) {
        ++quality_.stuck_run_dropped;
        return std::nullopt;
      }
    }
  }

  auto sample = transformer_->Collect(record);
  if (!sample) return std::nullopt;
  if (!AllFinite(sample->features)) {
    ++quality_.non_finite_features_dropped;
    return std::nullopt;
  }

  // The rolling ensemble sees every usable sample - including the ones
  // still building the primary reference - so its members' windows and its
  // retrain schedule are pure functions of the stream.
  ensemble::Verdict verdict;
  if (ensemble_ != nullptr) verdict = ensemble_->OnSample(sample->features);

  if (!fitted_) {
    reference_.push_back(std::move(sample->features));
    if (reference_.size() >= profile_length_) FitOnReference();
    return std::nullopt;
  }

  // A quarantined cycle scores nothing until a maintenance reset re-fits.
  if (quarantined_) return std::nullopt;

  if (calibrating_) {
    std::vector<double> scores = detector_->Score(sample->features);
    if (!AllFinite(scores)) {
      // The detector cannot be trusted on this reference: quarantine the
      // cycle instead of folding NaN/Inf into the self-tuning thresholds.
      quarantined_ = true;
      calibrating_ = false;
      calibration_scores_.clear();
      ++quality_.quarantine_events;
      return std::nullopt;
    }
    calibration_scores_.push_back(std::move(scores));
    const int burn_in = config_.threshold.ResolveBurnIn(
        transform::EffectiveStride(config_.transform, config_.transform_options));
    if (calibration_scores_.size() >= static_cast<std::size_t>(burn_in)) {
      FinishCalibration();
    }
    return std::nullopt;
  }

  ScoredSample scored;
  scored.vehicle_id = vehicle_id_;
  scored.timestamp = sample->timestamp;
  scored.scores = detector_->Score(sample->features);
  if (!AllFinite(scored.scores)) {
    ++quality_.non_finite_scores_dropped;
    return std::nullopt;
  }
  scored.calibration_index = static_cast<int>(calibrations_.size()) - 1;
  if (ensemble_ != nullptr) {
    scored.votes = verdict.votes;
    scored.ensemble_live = verdict.live;
  }
  scored_samples_.push_back(scored);

  // Windowed persistence: only channels violating on most recent samples
  // raise an alarm (see ThresholdConfig).
  if (persistence_ == nullptr) {
    const auto [window, min_violations] = config_.threshold.ResolvePersistence(
        transform::EffectiveStride(config_.transform, config_.transform_options));
    persistence_ = std::make_unique<detect::PersistenceTracker>(
        window, min_violations, scored.scores.size());
  }
  const auto& thresholds = policy_.thresholds();
  std::vector<bool> violations(scored.scores.size());
  for (std::size_t c = 0; c < scored.scores.size(); ++c)
    violations[c] = scored.scores[c] > thresholds[c];
  const std::vector<bool> fires = persistence_->Update(violations);

  std::optional<std::size_t> worst;
  double worst_excess = 0.0;
  for (std::size_t c = 0; c < scored.scores.size(); ++c) {
    // Alarm only while the channel is both persistently and currently in
    // violation (no trailing alarms after the scores recover).
    if (!fires[c] || !violations[c]) continue;
    const double excess = scored.scores[c] - thresholds[c];
    if (!worst || excess > worst_excess) {
      worst = c;
      worst_excess = excess;
    }
  }
  if (!worst) return std::nullopt;
  // Consensus gate: the primary detector's alarm candidate passes only
  // when at least M live ensemble members independently agree the sample
  // is anomalous (a bootstrapping ensemble with no members abstains).
  if (ensemble_ != nullptr && !verdict.pass) {
    ensemble_->RecordSuppressedAlarm();
    return std::nullopt;
  }
  Alarm alarm;
  alarm.vehicle_id = vehicle_id_;
  alarm.timestamp = sample->timestamp;
  alarm.channel = *worst;
  alarm.channel_name = *worst < channel_names_.size()
                           ? channel_names_[*worst]
                           : "ch" + std::to_string(*worst);
  alarm.score = scored.scores[*worst];
  alarm.threshold = thresholds[*worst];
  return alarm;
}

namespace {

// Monitor chunk-payload layout version; bumped on any change below.
// Version 2 added the scored samples' consensus votes/live fields and the
// trailing rolling-ensemble state.
constexpr std::uint32_t kMonitorStateVersion = 2;

void SaveRecord(persist::Encoder& encoder, const telemetry::Record& record) {
  encoder.PutI32(record.vehicle_id);
  encoder.PutI64(record.timestamp);
  for (double value : record.pids) encoder.PutDouble(value);
}

telemetry::Record RestoreRecord(persist::Decoder& decoder) {
  telemetry::Record record;
  record.vehicle_id = decoder.GetI32();
  record.timestamp = decoder.GetI64();
  for (double& value : record.pids) value = decoder.GetDouble();
  return record;
}

void SaveQuality(persist::Encoder& encoder, const DataQualityReport& quality) {
  encoder.PutI32(quality.vehicle_id);
  encoder.PutU64(quality.records_seen);
  encoder.PutU64(quality.duplicates_dropped);
  encoder.PutU64(quality.reordered_recovered);
  encoder.PutU64(quality.late_dropped);
  encoder.PutU64(quality.non_finite_dropped);
  encoder.PutU64(quality.stationary_dropped);
  encoder.PutU64(quality.sensor_faulty_dropped);
  encoder.PutU64(quality.stuck_run_records);
  encoder.PutU64(quality.stuck_run_dropped);
  encoder.PutU64(quality.non_finite_features_dropped);
  encoder.PutU64(quality.non_finite_scores_dropped);
  encoder.PutU64(quality.quarantine_events);
}

DataQualityReport RestoreQuality(persist::Decoder& decoder) {
  DataQualityReport quality;
  quality.vehicle_id = decoder.GetI32();
  quality.records_seen = decoder.GetU64();
  quality.duplicates_dropped = decoder.GetU64();
  quality.reordered_recovered = decoder.GetU64();
  quality.late_dropped = decoder.GetU64();
  quality.non_finite_dropped = decoder.GetU64();
  quality.stationary_dropped = decoder.GetU64();
  quality.sensor_faulty_dropped = decoder.GetU64();
  quality.stuck_run_records = decoder.GetU64();
  quality.stuck_run_dropped = decoder.GetU64();
  quality.non_finite_features_dropped = decoder.GetU64();
  quality.non_finite_scores_dropped = decoder.GetU64();
  quality.quarantine_events = decoder.GetU64();
  return quality;
}

}  // namespace

void VehicleMonitor::Save(persist::Encoder& encoder) const {
  encoder.PutU32(kMonitorStateVersion);
  // Fingerprint: enough to reject a snapshot taken under a different
  // configuration before any state is interpreted.
  encoder.PutI32(vehicle_id_);
  encoder.PutString(transformer_->Name());
  encoder.PutString(detector_->Name());
  encoder.PutU64(profile_length_);

  transformer_->SaveState(encoder);
  detector_->SaveState(encoder);

  encoder.PutDoubleMat(reference_);
  encoder.PutDoubleMat(calibration_scores_);
  encoder.PutBool(fitted_);
  encoder.PutBool(calibrating_);
  encoder.PutBool(quarantined_);
  encoder.PutI32(fit_count_);
  encoder.PutDoubleVec(policy_.thresholds());
  encoder.PutU64(channel_names_.size());
  for (const std::string& name : channel_names_) encoder.PutString(name);

  encoder.PutU64(calibrations_.size());
  for (const CalibrationStats& stats : calibrations_) {
    encoder.PutDoubleVec(stats.mean);
    encoder.PutDoubleVec(stats.stddev);
    encoder.PutDoubleVec(stats.median);
    encoder.PutDoubleVec(stats.mad);
    encoder.PutDoubleVec(stats.max);
    encoder.PutBool(stats.constant_threshold);
  }

  encoder.PutU64(scored_samples_.size());
  for (const ScoredSample& sample : scored_samples_) {
    encoder.PutI32(sample.vehicle_id);
    encoder.PutI64(sample.timestamp);
    encoder.PutDoubleVec(sample.scores);
    encoder.PutI32(sample.calibration_index);
    encoder.PutI32(sample.votes);
    encoder.PutI32(sample.ensemble_live);
  }

  encoder.PutBool(persistence_ != nullptr);
  if (persistence_ != nullptr) {
    encoder.PutU64(policy_.thresholds().size());
    persistence_->Save(encoder);
  }

  SaveQuality(encoder, quality_);
  encoder.PutU64(reorder_buffer_.size());
  for (const auto& record : reorder_buffer_) SaveRecord(encoder, record);
  encoder.PutU64(recent_released_.size());
  for (const auto& record : recent_released_) SaveRecord(encoder, record);
  encoder.PutI64(watermark_);
  encoder.PutBool(has_released_);
  for (double value : stuck_previous_) encoder.PutDouble(value);
  for (int run : stuck_run_) encoder.PutI32(run);
  encoder.PutBool(has_stuck_previous_);

  encoder.PutBool(ensemble_ != nullptr);
  if (ensemble_ != nullptr) ensemble_->Save(encoder);
}

bool VehicleMonitor::Restore(persist::Decoder& decoder) {
  const std::uint32_t version = decoder.GetU32();
  if (decoder.ok() && version != kMonitorStateVersion) {
    decoder.Fail("unsupported monitor state version " + std::to_string(version));
    return false;
  }
  const std::int32_t vehicle_id = decoder.GetI32();
  const std::string transformer_name = decoder.GetString();
  const std::string detector_name = decoder.GetString();
  const std::uint64_t profile_length = decoder.GetU64();
  if (!decoder.ok()) return false;
  if (vehicle_id != vehicle_id_ || transformer_name != transformer_->Name() ||
      detector_name != detector_->Name() || profile_length != profile_length_) {
    decoder.Fail("monitor fingerprint mismatch: snapshot is for vehicle " +
                 std::to_string(vehicle_id) + "/" + transformer_name + "/" +
                 detector_name + ", this monitor is vehicle " +
                 std::to_string(vehicle_id_) + "/" + transformer_->Name() + "/" +
                 detector_->Name());
    return false;
  }

  if (!transformer_->RestoreState(decoder)) return false;
  if (!detector_->RestoreState(decoder)) return false;

  reference_ = decoder.GetDoubleMat();
  calibration_scores_ = decoder.GetDoubleMat();
  fitted_ = decoder.GetBool();
  calibrating_ = decoder.GetBool();
  quarantined_ = decoder.GetBool();
  fit_count_ = decoder.GetI32();
  // Empty thresholds = not yet calibrated (Explicit rejects empty vectors).
  std::vector<double> thresholds = decoder.GetDoubleVec();
  policy_ = thresholds.empty() ? detect::ThresholdPolicy()
                               : detect::ThresholdPolicy::Explicit(std::move(thresholds));
  const std::uint64_t name_count = decoder.GetU64();
  if (!decoder.ok() || name_count > decoder.remaining() / 8) {
    decoder.Fail("monitor channel-name count out of bounds");
    return false;
  }
  channel_names_.clear();
  for (std::uint64_t i = 0; i < name_count; ++i)
    channel_names_.push_back(decoder.GetString());

  const std::uint64_t calibration_count = decoder.GetU64();
  if (!decoder.ok() || calibration_count > decoder.remaining() / 41) {
    decoder.Fail("monitor calibration count out of bounds");
    return false;
  }
  calibrations_.clear();
  for (std::uint64_t i = 0; i < calibration_count; ++i) {
    CalibrationStats stats;
    stats.mean = decoder.GetDoubleVec();
    stats.stddev = decoder.GetDoubleVec();
    stats.median = decoder.GetDoubleVec();
    stats.mad = decoder.GetDoubleVec();
    stats.max = decoder.GetDoubleVec();
    stats.constant_threshold = decoder.GetBool();
    if (!decoder.ok()) return false;
    calibrations_.push_back(std::move(stats));
  }

  const std::uint64_t sample_count = decoder.GetU64();
  if (!decoder.ok() || sample_count > decoder.remaining() / 32) {
    decoder.Fail("monitor scored-sample count out of bounds");
    return false;
  }
  scored_samples_.clear();
  for (std::uint64_t i = 0; i < sample_count; ++i) {
    ScoredSample sample;
    sample.vehicle_id = decoder.GetI32();
    sample.timestamp = decoder.GetI64();
    sample.scores = decoder.GetDoubleVec();
    sample.calibration_index = decoder.GetI32();
    sample.votes = decoder.GetI32();
    sample.ensemble_live = decoder.GetI32();
    if (!decoder.ok()) return false;
    if (sample.calibration_index < 0 ||
        static_cast<std::size_t>(sample.calibration_index) >= calibrations_.size()) {
      decoder.Fail("monitor scored sample references unknown calibration");
      return false;
    }
    scored_samples_.push_back(std::move(sample));
  }

  persistence_.reset();
  if (decoder.GetBool()) {
    const std::uint64_t channels = decoder.GetU64();
    if (!decoder.ok()) return false;
    if (channels == 0 || channels != policy_.thresholds().size()) {
      decoder.Fail("monitor persistence channel count mismatch");
      return false;
    }
    const auto [window, min_violations] = config_.threshold.ResolvePersistence(
        transform::EffectiveStride(config_.transform, config_.transform_options));
    persistence_ = std::make_unique<detect::PersistenceTracker>(
        window, min_violations, static_cast<std::size_t>(channels));
    if (!persistence_->Restore(decoder)) return false;
  }

  quality_ = RestoreQuality(decoder);
  const std::uint64_t buffered = decoder.GetU64();
  if (!decoder.ok() ||
      buffered > static_cast<std::uint64_t>(config_.ingest.reorder_capacity) + 1) {
    decoder.Fail("monitor reorder buffer out of bounds");
    return false;
  }
  reorder_buffer_.clear();
  for (std::uint64_t i = 0; i < buffered; ++i)
    reorder_buffer_.push_back(RestoreRecord(decoder));
  const std::uint64_t released = decoder.GetU64();
  const std::uint64_t ring_size =
      static_cast<std::uint64_t>(std::max(4, 4 * config_.ingest.reorder_capacity));
  if (!decoder.ok() || released > ring_size) {
    decoder.Fail("monitor dedup ring out of bounds");
    return false;
  }
  recent_released_.clear();
  for (std::uint64_t i = 0; i < released; ++i)
    recent_released_.push_back(RestoreRecord(decoder));
  watermark_ = decoder.GetI64();
  has_released_ = decoder.GetBool();
  for (double& value : stuck_previous_) value = decoder.GetDouble();
  for (int& run : stuck_run_) run = decoder.GetI32();
  has_stuck_previous_ = decoder.GetBool();

  const bool has_ensemble = decoder.GetBool();
  if (!decoder.ok()) return false;
  if (has_ensemble != (ensemble_ != nullptr)) {
    decoder.Fail(has_ensemble
                     ? "snapshot carries an ensemble but this monitor's "
                       "ensemble is disabled"
                     : "this monitor expects an ensemble but the snapshot "
                       "has none");
    return false;
  }
  if (ensemble_ != nullptr && !ensemble_->Restore(decoder)) return false;
  return decoder.ok();
}

std::vector<Alarm> AlarmsForThreshold(const std::vector<ScoredSample>& samples,
                                      const std::vector<CalibrationStats>& calibrations,
                                      double factor_or_constant,
                                      int persistence_window, int persistence_min,
                                      const std::vector<std::string>& channel_names,
                                      detect::ThresholdConfig::Kind kind) {
  std::vector<Alarm> alarms;
  std::unique_ptr<detect::PersistenceTracker> tracker;
  int active_cycle = -1;
  for (const ScoredSample& sample : samples) {
    NAVARCHOS_CHECK(sample.calibration_index >= 0);
    if (sample.calibration_index != active_cycle || tracker == nullptr) {
      active_cycle = sample.calibration_index;
      tracker = std::make_unique<detect::PersistenceTracker>(
          persistence_window, persistence_min, sample.scores.size());
    }
    const CalibrationStats& stats =
        calibrations[static_cast<std::size_t>(sample.calibration_index)];
    std::vector<bool> violations(sample.scores.size());
    std::vector<double> thresholds(sample.scores.size());
    for (std::size_t c = 0; c < sample.scores.size(); ++c) {
      thresholds[c] = stats.ThresholdOf(c, kind, factor_or_constant);
      violations[c] = sample.scores[c] > thresholds[c];
    }
    const std::vector<bool> fires = tracker->Update(violations);
    std::optional<std::size_t> worst;
    double worst_excess = 0.0;
    double worst_threshold = 0.0;
    for (std::size_t c = 0; c < sample.scores.size(); ++c) {
      if (!fires[c] || !violations[c]) continue;
      const double excess = sample.scores[c] - thresholds[c];
      if (!worst || excess > worst_excess) {
        worst = c;
        worst_excess = excess;
        worst_threshold = thresholds[c];
      }
    }
    if (!worst) continue;
    Alarm alarm;
    alarm.vehicle_id = sample.vehicle_id;
    alarm.timestamp = sample.timestamp;
    alarm.channel = *worst;
    alarm.channel_name = *worst < channel_names.size() ? channel_names[*worst]
                                                       : "ch" + std::to_string(*worst);
    alarm.score = sample.scores[*worst];
    alarm.threshold = worst_threshold;
    alarms.push_back(std::move(alarm));
  }
  return alarms;
}

}  // namespace navarchos::core
