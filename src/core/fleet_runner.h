// Batch execution of the streaming monitor over a whole fleet.
//
// Replays each vehicle's records and recorded events in timestamp order
// through a VehicleMonitor, and collects alarms plus the full score traces
// needed for threshold sweeps and for the paper's per-vehicle plots.
#ifndef NAVARCHOS_CORE_FLEET_RUNNER_H_
#define NAVARCHOS_CORE_FLEET_RUNNER_H_

#include <vector>

#include "core/monitor.h"
#include "runtime/runtime_config.h"
#include "telemetry/fleet.h"

/// \file
/// \brief RunFleet, the batch fleet runner: replays every vehicle's frame
/// stream through a VehicleMonitor (in parallel, deterministically) and
/// collects FleetRunResult - alarms, score traces, calibrations and
/// data-quality reports.

namespace navarchos::core {

/// Result of running one framework instantiation over a fleet.
struct FleetRunResult {
  /// Alarms at the config's own threshold factor/constant.
  std::vector<Alarm> alarms;
  /// Score traces per vehicle (index-aligned with the input fleet).
  std::vector<std::vector<ScoredSample>> scored_samples;
  /// Calibration stats per vehicle.
  std::vector<std::vector<CalibrationStats>> calibrations;
  /// Ingest data-quality counters per vehicle (index-aligned with the fleet).
  std::vector<DataQualityReport> quality;
  /// Rolling-ensemble counters per vehicle (index-aligned with the fleet;
  /// all zero when the ensemble is disabled).
  std::vector<ensemble::EnsembleStats> ensemble_stats;
  /// Channel names (same for all vehicles).
  std::vector<std::string> channel_names;
  /// Resolved persistence window (samples) of the run, reused by AlarmsAt.
  int persistence_window = 20;
  /// Minimum violations within the window to raise an alarm.
  int persistence_min = 14;
  /// Threshold rule of the run, reused by AlarmsAt.
  detect::ThresholdConfig::Kind threshold_kind =
      detect::ThresholdConfig::Kind::kSelfTuning;

  /// Replays the recorded traces at a different threshold factor/constant.
  std::vector<Alarm> AlarmsAt(double factor_or_constant) const;

  /// Fleet-wide aggregation of the per-vehicle data-quality counters.
  DataQualityReport TotalQuality() const;
};

/// Runs `config` over every vehicle of `fleet`.
///
/// Vehicles are monitored in parallel on `runtime.threads` workers (one
/// VehicleMonitor per vehicle, results written to index-aligned slots and
/// alarms concatenated in vehicle order after the barrier), so the result
/// is bit-identical at any thread count. The two-argument overload runs
/// strictly serially.
FleetRunResult RunFleet(const telemetry::FleetDataset& fleet,
                        const MonitorConfig& config,
                        const runtime::RuntimeConfig& runtime);

/// Strictly serial RunFleet (runtime::RuntimeConfig::Serial()).
FleetRunResult RunFleet(const telemetry::FleetDataset& fleet,
                        const MonitorConfig& config);

}  // namespace navarchos::core

#endif  // NAVARCHOS_CORE_FLEET_RUNNER_H_
