// The complete solution (paper §4.2, Algorithm 1): a streaming per-vehicle
// monitor that
//   1. filters stationary / sensor-faulty records,
//   2. transforms the stream (step 1),
//   3. maintains a dynamic healthy reference profile Ref that is rebuilt
//      after every recorded maintenance event (step 2),
//   4. fits the chosen detector on Ref, calibrates thresholds on a held-out
//      slice, and scores subsequent samples (step 3).
//
// The monitor also exposes every scored sample with its calibration
// statistics, so evaluation sweeps over threshold factors can be replayed
// without re-fitting detectors (the factor only enters at comparison time).
#ifndef NAVARCHOS_CORE_MONITOR_H_
#define NAVARCHOS_CORE_MONITOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detect/factory.h"
#include "detect/threshold.h"
#include "telemetry/types.h"
#include "transform/transformer.h"

namespace navarchos::core {

/// Full configuration of a monitor (one framework instantiation).
struct MonitorConfig {
  transform::TransformKind transform = transform::TransformKind::kCorrelation;
  transform::TransformOptions transform_options;
  detect::DetectorKind detector = detect::DetectorKind::kClosestPair;
  detect::DetectorOptions detector_options;
  detect::ThresholdConfig threshold;
  /// Operating minutes of transformed samples forming the reference profile
  /// (resolved to a sample count through the transform's emission stride, so
  /// per-record and windowed transforms see the same reference horizon).
  double profile_minutes = 1200.0;

  /// Resolved reference length in samples for this config's transform.
  std::size_t ResolveProfileLength() const;
  /// Rebuild Ref on recorded service events (Table 3 ablation sets false).
  bool reset_on_service = true;
  /// Rebuild Ref on recorded repair events.
  bool reset_on_repair = true;
};

/// An alarm raised by the monitor, attributed to a score channel.
struct Alarm {
  std::int32_t vehicle_id = 0;
  telemetry::Minute timestamp = 0;
  std::size_t channel = 0;
  std::string channel_name;
  double score = 0.0;
  double threshold = 0.0;
};

/// Per-channel calibration statistics of one reference cycle.
struct CalibrationStats {
  std::vector<double> mean;
  std::vector<double> stddev;
  std::vector<double> median;
  std::vector<double> mad;  ///< Median absolute deviation.
  std::vector<double> max;
  bool constant_threshold = false;  ///< True for probability-score detectors.

  /// Threshold of channel `c` under the given rule and factor. Constant-
  /// threshold detectors ignore the rule and use the factor verbatim.
  double ThresholdOf(std::size_t c, detect::ThresholdConfig::Kind kind,
                     double factor_or_constant) const;
};

/// One scored live sample (kept for threshold-sweep replay and Fig. 8).
struct ScoredSample {
  std::int32_t vehicle_id = 0;
  telemetry::Minute timestamp = 0;
  std::vector<double> scores;
  int calibration_index = -1;  ///< Into VehicleMonitor::calibrations().
};

/// Streaming monitor for one vehicle (Algorithm 1).
class VehicleMonitor {
 public:
  VehicleMonitor(std::int32_t vehicle_id, const MonitorConfig& config);

  /// Feeds a recorded fleet event; maintenance events reset Ref.
  void OnEvent(const telemetry::FleetEvent& event);

  /// Feeds a telemetry record; returns an alarm when a threshold (at the
  /// config's factor/constant) is violated. Unusable records are ignored.
  std::optional<Alarm> OnRecord(const telemetry::Record& record);

  /// All live scored samples so far (excludes reference-building samples).
  const std::vector<ScoredSample>& scored_samples() const { return scored_samples_; }

  /// Calibration statistics per reference cycle.
  const std::vector<CalibrationStats>& calibrations() const { return calibrations_; }

  /// Score channel names of the underlying detector.
  const std::vector<std::string>& channel_names() const { return channel_names_; }

  /// Number of completed reference cycles (fits).
  int fit_count() const { return fit_count_; }

  /// True while the reference profile is still filling.
  bool collecting_reference() const { return !fitted_; }

 private:
  void ResetReference();
  void FitOnReference();
  void FinishCalibration();

  std::int32_t vehicle_id_;
  MonitorConfig config_;
  std::size_t profile_length_ = 0;
  std::unique_ptr<transform::Transformer> transformer_;
  std::unique_ptr<detect::Detector> detector_;
  std::vector<std::vector<double>> reference_;
  std::vector<std::vector<double>> calibration_scores_;  ///< Burn-in scores.
  bool fitted_ = false;
  bool calibrating_ = false;
  int fit_count_ = 0;
  detect::ThresholdPolicy policy_;
  std::unique_ptr<detect::PersistenceTracker> persistence_;
  std::vector<std::string> channel_names_;
  std::vector<CalibrationStats> calibrations_;
  std::vector<ScoredSample> scored_samples_;
};

/// Derives alarms from recorded score traces for an arbitrary threshold
/// factor (self-tuning detectors) or constant (probability detectors),
/// without re-running the pipeline. `samples` must belong to a single
/// vehicle in stream order (persistence is tracked across them; the streak
/// resets whenever the reference cycle changes). `channel_names` may be
/// empty.
std::vector<Alarm> AlarmsForThreshold(const std::vector<ScoredSample>& samples,
                                      const std::vector<CalibrationStats>& calibrations,
                                      double factor_or_constant,
                                      int persistence_window, int persistence_min,
                                      const std::vector<std::string>& channel_names,
                                      detect::ThresholdConfig::Kind kind =
                                          detect::ThresholdConfig::Kind::kSelfTuning);

}  // namespace navarchos::core

#endif  // NAVARCHOS_CORE_MONITOR_H_
