// The complete solution (paper §4.2, Algorithm 1): a streaming per-vehicle
// monitor that
//   0. guards the ingest against transport corruption (duplicate and
//      out-of-order deliveries, non-finite readings, stuck sensor runs),
//   1. filters stationary / sensor-faulty records,
//   2. transforms the stream (step 1),
//   3. maintains a dynamic healthy reference profile Ref that is rebuilt
//      after every recorded maintenance event (step 2),
//   4. fits the chosen detector on Ref, calibrates thresholds on a held-out
//      slice, and scores subsequent samples (step 3).
//
// The monitor also exposes every scored sample with its calibration
// statistics, so evaluation sweeps over threshold factors can be replayed
// without re-fitting detectors (the factor only enters at comparison time),
// and a DataQualityReport counting everything the ingest guard rejected.
#ifndef NAVARCHOS_CORE_MONITOR_H_
#define NAVARCHOS_CORE_MONITOR_H_

#include <array>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "detect/factory.h"
#include "detect/threshold.h"
#include "ensemble/ensemble.h"
#include "runtime/thread_pool.h"
#include "telemetry/stream.h"
#include "telemetry/types.h"
#include "transform/transformer.h"

/// \file
/// \brief Algorithm 1: the streaming per-vehicle monitor (ingest guard,
/// filters, transform, dynamic reference profile, detector scoring) and its
/// configuration, alarm, calibration and data-quality types.

/// \namespace navarchos::core
/// \brief The monitoring core: the per-vehicle streaming monitor
/// (Algorithm 1) and the batch fleet runner built on it.

namespace navarchos::core {

/// Ingest-guard knobs: how the monitor defends itself against corrupted
/// telemetry transport before any record reaches the pipeline.
struct IngestGuardConfig {
  /// Master switch. Disabled, records flow straight to the filters (the
  /// pre-hardening behaviour).
  bool enabled = true;
  /// Records buffered for out-of-order recovery. Deliveries are released in
  /// timestamp order with a latency of this many records; late records that
  /// still fit the buffer are resequenced, later ones are dropped. Covers
  /// clock skew up to roughly this many operating minutes.
  int reorder_capacity = 8;
  /// A channel repeating the exact same value for this many consecutive
  /// usable records counts as a stuck-sensor run. Clean simulated streams
  /// show exact-repeat runs up to 5 (speed clamping), so the default keeps a
  /// wide margin.
  int stuck_run_length = 30;
  /// Drop records inside detected stuck runs instead of only counting them.
  /// Off by default: a frozen channel is indistinguishable from a legitimate
  /// constant regime in synthetic streams, so dropping is an opt-in policy
  /// for corruption-hardened deployments (see bench/robustness_sweep).
  bool drop_stuck_runs = false;
};

/// Per-vehicle counters of everything the hardened ingest path rejected or
/// repaired. Totals are comparable against a CorruptionManifest when the
/// stream was corrupted by a CorruptionModel.
struct DataQualityReport {
  std::int32_t vehicle_id = 0;         ///< Vehicle the counters belong to.
  std::size_t records_seen = 0;        ///< All records offered to OnRecord.
  std::size_t duplicates_dropped = 0;  ///< Same timestamp + identical PIDs.
  std::size_t reordered_recovered = 0; ///< Late arrivals resequenced in-buffer.
  std::size_t late_dropped = 0;        ///< Arrived too late for the buffer.
  std::size_t non_finite_dropped = 0;  ///< Records carrying NaN/Inf PIDs.
  std::size_t stationary_dropped = 0;  ///< Parked/idling minutes (paper §3.2).
  std::size_t sensor_faulty_dropped = 0;  ///< Outside the plausible envelope.
  std::size_t stuck_run_records = 0;   ///< Records inside exact-repeat runs.
  std::size_t stuck_run_dropped = 0;   ///< Of those, dropped (opt-in policy).
  std::size_t non_finite_features_dropped = 0;  ///< Transform emitted NaN/Inf.
  std::size_t non_finite_scores_dropped = 0;    ///< Detector emitted NaN/Inf.
  std::size_t quarantine_events = 0;   ///< Reference cycles quarantined.

  /// Total records rejected before reaching the transform.
  std::size_t RecordsDropped() const;

  /// Accumulates another vehicle's counters (fleet aggregation).
  void Add(const DataQualityReport& other);
};

/// Full configuration of a monitor (one framework instantiation).
struct MonitorConfig {
  /// Ingest hardening against corrupted telemetry transport.
  IngestGuardConfig ingest;
  /// Data transformation of step 1 (paper §4.2).
  transform::TransformKind transform = transform::TransformKind::kCorrelation;
  /// Options of the transformation (window, stride, PID subset).
  transform::TransformOptions transform_options;
  /// Detection technique fitted on the reference profile (step 3).
  detect::DetectorKind detector = detect::DetectorKind::kClosestPair;
  /// Options of the detection technique.
  detect::DetectorOptions detector_options;
  /// Thresholding rule, factor and persistence configuration.
  detect::ThresholdConfig threshold;
  /// Operating minutes of transformed samples forming the reference profile
  /// (resolved to a sample count through the transform's emission stride, so
  /// per-record and windowed transforms see the same reference horizon).
  double profile_minutes = 1200.0;

  /// Opt-in rolling consensus ensemble: K staggered reference models
  /// retrained online, gating alarms on M-of-K agreement (src/ensemble).
  ensemble::EnsembleConfig ensemble;

  /// Resolved reference length in samples for this config's transform.
  std::size_t ResolveProfileLength() const;
  /// Rebuild Ref on recorded service events (Table 3 ablation sets false).
  bool reset_on_service = true;
  /// Rebuild Ref on recorded repair events.
  bool reset_on_repair = true;
};

/// An alarm raised by the monitor, attributed to a score channel.
struct Alarm {
  std::int32_t vehicle_id = 0;      ///< Vehicle that raised the alarm.
  telemetry::Minute timestamp = 0;  ///< Stream time of the violating sample.
  std::size_t channel = 0;          ///< Violating score channel index.
  std::string channel_name;         ///< Human-readable channel name.
  double score = 0.0;               ///< Score that crossed the threshold.
  double threshold = 0.0;           ///< Threshold in force at the violation.
};

/// Per-channel calibration statistics of one reference cycle.
struct CalibrationStats {
  std::vector<double> mean;    ///< Per-channel mean of the burn-in scores.
  std::vector<double> stddev;  ///< Per-channel standard deviation.
  std::vector<double> median;  ///< Per-channel median.
  std::vector<double> mad;     ///< Per-channel median absolute deviation.
  std::vector<double> max;     ///< Per-channel maximum.
  bool constant_threshold = false;  ///< True for probability-score detectors.

  /// Threshold of channel `c` under the given rule and factor. Constant-
  /// threshold detectors ignore the rule and use the factor verbatim.
  double ThresholdOf(std::size_t c, detect::ThresholdConfig::Kind kind,
                     double factor_or_constant) const;
};

/// One scored live sample (kept for threshold-sweep replay and Fig. 8).
struct ScoredSample {
  std::int32_t vehicle_id = 0;      ///< Vehicle the sample belongs to.
  telemetry::Minute timestamp = 0;  ///< Stream time of the sample.
  std::vector<double> scores;       ///< One score per detector channel.
  int calibration_index = -1;  ///< Into VehicleMonitor::calibrations().
  /// Consensus votes of the rolling ensemble for this sample (-1 when the
  /// ensemble is disabled).
  std::int32_t votes = -1;
  /// Live ensemble members that scored this sample (0 when disabled).
  std::int32_t ensemble_live = 0;
};

/// Streaming monitor for one vehicle (Algorithm 1).
class VehicleMonitor {
 public:
  /// Builds the monitor for `vehicle_id`, instantiating the transformer and
  /// detector named by `config`.
  VehicleMonitor(std::int32_t vehicle_id, const MonitorConfig& config);

  /// Dependency-injecting constructor: uses the given transformer/detector
  /// instead of building them from the config's kinds (testing seams and
  /// out-of-tree extensions). Both must be non-null.
  VehicleMonitor(std::int32_t vehicle_id, const MonitorConfig& config,
                 std::unique_ptr<transform::Transformer> transformer,
                 std::unique_ptr<detect::Detector> detector);

  /// Feeds a recorded fleet event; maintenance events reset Ref. Records
  /// still held in the reorder buffer are drained first (they precede the
  /// event in stream time); any alarms they raise are returned.
  std::vector<Alarm> OnEvent(const telemetry::FleetEvent& event);

  /// Feeds a telemetry record; returns an alarm when a threshold (at the
  /// config's factor/constant) is violated. Unusable records are ignored.
  /// With the ingest guard enabled, processing lags delivery by up to
  /// `ingest.reorder_capacity` records; call Flush() at end of stream.
  std::optional<Alarm> OnRecord(const telemetry::Record& record);

  /// Incremental stepping API for streaming feeds: dispatches one
  /// multiplexed-stream frame to OnRecord or OnEvent by its kind and
  /// returns whatever alarms it raised. Feeding a vehicle's frame sequence
  /// through OnFrame (plus a final Flush) is exactly equivalent to the
  /// batch runner's record/event walk - the streaming service and
  /// core::RunFleet share this code path.
  std::vector<Alarm> OnFrame(const telemetry::SensorFrame& frame);

  /// Drains the reorder buffer at end of stream, returning any alarms the
  /// remaining records raise. No-op when the ingest guard is disabled.
  std::vector<Alarm> Flush();

  /// All live scored samples so far (excludes reference-building samples).
  const std::vector<ScoredSample>& scored_samples() const { return scored_samples_; }

  /// Data-quality counters of everything the ingest path rejected so far.
  const DataQualityReport& quality() const { return quality_; }

  /// True while the current reference cycle is quarantined: the detector
  /// emitted non-finite scores during calibration, so its thresholds cannot
  /// be trusted. Alarms are suppressed until the next maintenance reset
  /// triggers a re-fit.
  bool quarantined() const { return quarantined_; }

  /// Calibration statistics per reference cycle.
  const std::vector<CalibrationStats>& calibrations() const { return calibrations_; }

  /// Score channel names of the underlying detector.
  const std::vector<std::string>& channel_names() const { return channel_names_; }

  /// Number of completed reference cycles (fits).
  int fit_count() const { return fit_count_; }

  /// Installs the pool the ensemble posts its background member fits to.
  /// Null (the default) runs fits inline at their activation point - same
  /// output, no overlap with ingest. No-op when the ensemble is disabled.
  void set_background_pool(runtime::ThreadPool* pool);

  /// Installs the histogram ensemble member-fit durations are recorded
  /// into (microseconds). Observe-only; the histogram must outlive the
  /// monitor. No-op when the ensemble is disabled.
  void set_retrain_histogram(obs::Histogram* histogram);

  /// The rolling consensus ensemble, or null when disabled.
  const ensemble::RollingEnsemble* consensus() const { return ensemble_.get(); }

  /// Ensemble lifetime counters (all zero when the ensemble is disabled).
  ensemble::EnsembleStats ensemble_stats() const;

  /// Encoded bytes of the ensemble state right now (0 when disabled): the
  /// bytes-per-vehicle metric of the memory-boundedness win condition.
  std::size_t ensemble_bytes() const;

  /// True while the reference profile is still filling.
  bool collecting_reference() const { return !fitted_; }

  /// Serialises the monitor's complete mutable state - ingest guard buffers,
  /// transform buffers, reference profile, detector state, calibrations,
  /// scored samples, persistence rings - prefixed with a fingerprint
  /// (transformer/detector names, profile length) that Restore validates.
  void Save(persist::Encoder& encoder) const;

  /// Restores state written by Save into a freshly constructed monitor with
  /// the same configuration. Returns false (leaving the decoder failed, with
  /// a message) on malformed input or a configuration mismatch; the monitor
  /// must not be used after a failed restore.
  bool Restore(persist::Decoder& decoder);

 private:
  void Initialise();
  void ResetReference();
  void FitOnReference();
  void FinishCalibration();
  /// The pre-guard pipeline: filter -> transform -> fit/calibrate/score.
  std::optional<Alarm> ProcessRecord(const telemetry::Record& record);
  /// Releases the oldest buffered record into ProcessRecord.
  std::optional<Alarm> ReleaseOldest();

  std::int32_t vehicle_id_;
  MonitorConfig config_;
  std::size_t profile_length_ = 0;
  std::unique_ptr<transform::Transformer> transformer_;
  std::unique_ptr<detect::Detector> detector_;
  std::vector<std::vector<double>> reference_;
  std::vector<std::vector<double>> calibration_scores_;  ///< Burn-in scores.
  bool fitted_ = false;
  bool calibrating_ = false;
  bool quarantined_ = false;
  int fit_count_ = 0;
  detect::ThresholdPolicy policy_;
  std::unique_ptr<detect::PersistenceTracker> persistence_;
  std::vector<std::string> channel_names_;
  std::vector<CalibrationStats> calibrations_;
  std::vector<ScoredSample> scored_samples_;
  std::unique_ptr<ensemble::RollingEnsemble> ensemble_;  ///< Null = disabled.

  // Ingest guard state (survives reference resets: stream time only moves
  // forward and the physical sensors do not renew at a service).
  DataQualityReport quality_;
  std::deque<telemetry::Record> reorder_buffer_;  ///< Sorted by timestamp.
  std::deque<telemetry::Record> recent_released_; ///< Dedup ring.
  telemetry::Minute watermark_ = std::numeric_limits<telemetry::Minute>::min();
  bool has_released_ = false;
  telemetry::PidVector stuck_previous_{};
  std::array<int, telemetry::kNumPids> stuck_run_{};
  bool has_stuck_previous_ = false;
};

/// Derives alarms from recorded score traces for an arbitrary threshold
/// factor (self-tuning detectors) or constant (probability detectors),
/// without re-running the pipeline. `samples` must belong to a single
/// vehicle in stream order (persistence is tracked across them; the streak
/// resets whenever the reference cycle changes). `channel_names` may be
/// empty.
std::vector<Alarm> AlarmsForThreshold(const std::vector<ScoredSample>& samples,
                                      const std::vector<CalibrationStats>& calibrations,
                                      double factor_or_constant,
                                      int persistence_window, int persistence_min,
                                      const std::vector<std::string>& channel_names,
                                      detect::ThresholdConfig::Kind kind =
                                          detect::ThresholdConfig::Kind::kSelfTuning);

}  // namespace navarchos::core

#endif  // NAVARCHOS_CORE_MONITOR_H_
