#include "stats/ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::stats {

FriedmanResult FriedmanTest(const util::Matrix& scores) {
  const std::size_t n = scores.rows();  // datasets (blocks)
  const std::size_t k = scores.cols();  // treatments
  NAVARCHOS_CHECK(n >= 2 && k >= 2);

  FriedmanResult result;
  result.mean_ranks.assign(k, 0.0);

  // Rank within each block. Higher score = better = lower rank number, so we
  // rank the negated scores with midrank tie handling.
  double tie_correction = 0.0;  // sum over blocks of sum(t^3 - t)
  for (std::size_t row = 0; row < n; ++row) {
    std::vector<double> negated(k);
    for (std::size_t j = 0; j < k; ++j) negated[j] = -scores.At(row, j);
    const std::vector<double> ranks = util::MidRanks(negated);
    for (std::size_t j = 0; j < k; ++j) result.mean_ranks[j] += ranks[j];

    // Tie sizes in this block.
    std::vector<double> sorted(negated);
    std::sort(sorted.begin(), sorted.end());
    std::size_t i = 0;
    while (i < k) {
      std::size_t j = i;
      while (j + 1 < k && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      tie_correction += t * t * t - t;
      i = j + 1;
    }
  }
  for (double& r : result.mean_ranks) r /= static_cast<double>(n);

  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  double rank_sq_sum = 0.0;
  for (double r : result.mean_ranks) {
    const double total_rank = r * dn;
    rank_sq_sum += total_rank * total_rank;
  }
  // Tie-corrected Friedman statistic (Conover's formulation).
  const double numerator =
      12.0 * rank_sq_sum - 3.0 * dn * dn * dk * (dk + 1.0) * (dk + 1.0);
  const double denominator = dn * dk * (dk + 1.0) - tie_correction / (dk - 1.0);
  if (denominator <= 0.0) {
    // All scores tied in every block: no evidence of any difference.
    result.statistic = 0.0;
    result.p_value = 1.0;
    return result;
  }
  result.statistic = numerator / denominator;
  if (result.statistic < 0.0) result.statistic = 0.0;
  result.p_value = util::ChiSquaredSurvival(result.statistic, static_cast<int>(k) - 1);
  return result;
}

WilcoxonResult WilcoxonSignedRank(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  NAVARCHOS_CHECK(x.size() == y.size());
  WilcoxonResult result;

  std::vector<double> abs_diffs;
  std::vector<int> signs;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    if (d == 0.0) continue;  // drop zero differences
    abs_diffs.push_back(std::fabs(d));
    signs.push_back(d > 0.0 ? 1 : -1);
  }
  const std::size_t n = abs_diffs.size();
  result.effective_n = static_cast<int>(n);
  if (n < 1) return result;  // inconclusive

  const std::vector<double> ranks = util::MidRanks(abs_diffs);
  double w_plus = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    if (signs[i] > 0) w_plus += ranks[i];
  result.statistic = w_plus;

  // Normal approximation with tie correction.
  const double dn = static_cast<double>(n);
  const double mean = dn * (dn + 1.0) / 4.0;
  double tie_term = 0.0;
  {
    std::vector<double> sorted(abs_diffs);
    std::sort(sorted.begin(), sorted.end());
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j + 1 < n && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      tie_term += t * t * t - t;
      i = j + 1;
    }
  }
  const double variance = dn * (dn + 1.0) * (2.0 * dn + 1.0) / 24.0 - tie_term / 48.0;
  if (variance <= 0.0) {
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction toward the mean.
  const double diff = w_plus - mean;
  const double corrected = diff - (diff > 0 ? 0.5 : diff < 0 ? -0.5 : 0.0);
  const double z = corrected / std::sqrt(variance);
  result.p_value = std::min(1.0, 2.0 * (1.0 - util::NormalCdf(std::fabs(z))));
  return result;
}

std::vector<double> HolmCorrection(const std::vector<double>& p_values) {
  const std::size_t m = p_values.size();
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return p_values[a] < p_values[b]; });
  std::vector<double> adjusted(m, 0.0);
  double running_max = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double scaled = static_cast<double>(m - i) * p_values[order[i]];
    running_max = std::max(running_max, std::min(1.0, scaled));
    adjusted[order[i]] = running_max;
  }
  return adjusted;
}

CriticalDifferenceResult AnalyzeRanks(const util::Matrix& scores,
                                      const std::vector<std::string>& names,
                                      double alpha) {
  const std::size_t k = scores.cols();
  NAVARCHOS_CHECK(names.size() == k);

  CriticalDifferenceResult result;
  result.names = names;
  result.alpha = alpha;
  result.friedman = FriedmanTest(scores);
  result.mean_ranks = result.friedman.mean_ranks;

  result.order.resize(k);
  std::iota(result.order.begin(), result.order.end(), 0);
  std::sort(result.order.begin(), result.order.end(), [&](std::size_t a, std::size_t b) {
    return result.mean_ranks[a] < result.mean_ranks[b];
  });

  // Pairwise Wilcoxon with Holm correction over all k*(k-1)/2 pairs.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<double> raw_p;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      pairs.emplace_back(i, j);
      raw_p.push_back(WilcoxonSignedRank(scores.Col(i), scores.Col(j)).p_value);
    }
  }
  const std::vector<double> holm = HolmCorrection(raw_p);
  result.adjusted_p.assign(k, std::vector<double>(k, 1.0));
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    result.adjusted_p[pairs[p].first][pairs[p].second] = holm[p];
    result.adjusted_p[pairs[p].second][pairs[p].first] = holm[p];
  }

  // Build maximal contiguous indistinguishable groups along the rank order:
  // the classic CD-diagram bars. A bar spans [a, b] in rank order when every
  // pair inside is not significantly different at alpha.
  auto indistinct = [&](std::size_t a, std::size_t b) {
    return result.adjusted_p[result.order[a]][result.order[b]] > alpha;
  };
  std::size_t covered_up_to = 0;  // end position of the widest group emitted so far
  for (std::size_t start = 0; start < k; ++start) {
    std::size_t end = start;
    while (end + 1 < k) {
      bool extendable = true;
      for (std::size_t inner = start; inner <= end && extendable; ++inner)
        extendable = indistinct(inner, end + 1);
      if (!extendable) break;
      ++end;
    }
    // Emit only maximal intervals: a group starting later with end <= a
    // previous group's end is fully contained in it.
    if (end > start && (result.groups.empty() || end > covered_up_to)) {
      std::vector<std::size_t> group;
      for (std::size_t i = start; i <= end; ++i) group.push_back(result.order[i]);
      result.groups.push_back(std::move(group));
      covered_up_to = end;
    }
  }
  return result;
}

std::string RenderCriticalDifferenceDiagram(const CriticalDifferenceResult& result,
                                            int width) {
  const std::size_t k = result.names.size();
  NAVARCHOS_CHECK(width >= 8 && k >= 2);
  std::ostringstream out;
  char head[96];
  std::snprintf(head, sizeof(head), "Friedman chi2=%.3f  p=%.4g  (alpha=%.2f)\n",
                result.friedman.statistic, result.friedman.p_value, result.alpha);
  out << head;

  const double dk = static_cast<double>(k);
  auto column_of = [&](double rank) {
    // Rank axis from 1 (left/best) to k (right/worst).
    const double frac = (rank - 1.0) / std::max(1.0, dk - 1.0);
    return static_cast<int>(frac * (width - 1) + 0.5);
  };

  // Axis line with integer-rank tick labels.
  out << std::string(static_cast<std::size_t>(width), '-') << "\n";
  std::string ticks(static_cast<std::size_t>(width), ' ');
  for (std::size_t r = 1; r <= k; ++r) {
    const int col = column_of(static_cast<double>(r));
    const std::string label = std::to_string(r);
    for (std::size_t i = 0; i < label.size() && col + static_cast<int>(i) < width; ++i)
      ticks[static_cast<std::size_t>(col) + i] = label[i];
  }
  out << ticks << "   (mean rank; 1 = best)\n";

  // One line per treatment in rank order.
  for (std::size_t pos = 0; pos < k; ++pos) {
    const std::size_t t = result.order[pos];
    const int col = column_of(result.mean_ranks[t]);
    std::string line(static_cast<std::size_t>(width), ' ');
    line[static_cast<std::size_t>(col)] = '*';
    char rank_buf[32];
    std::snprintf(rank_buf, sizeof(rank_buf), "%.2f", result.mean_ranks[t]);
    out << line << "  " << result.names[t] << " (rank " << rank_buf << ")\n";
  }

  // Connector bars: one line per indistinguishable group.
  for (const auto& group : result.groups) {
    int lo = width, hi = 0;
    for (std::size_t t : group) {
      lo = std::min(lo, column_of(result.mean_ranks[t]));
      hi = std::max(hi, column_of(result.mean_ranks[t]));
    }
    std::string line(static_cast<std::size_t>(width), ' ');
    for (int c = lo; c <= hi; ++c) line[static_cast<std::size_t>(c)] = '=';
    out << line << "  [";
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i) out << ", ";
      out << result.names[group[i]];
    }
    out << "] not significantly different\n";
  }
  return out.str();
}

}  // namespace navarchos::stats
