// Nonparametric multi-treatment comparison, in the style of the autorank
// package used by the paper: Friedman omnibus test followed by pairwise
// Wilcoxon signed-rank tests with Holm correction, summarised as a critical
// difference (CD) grouping of statistically indistinguishable treatments.
//
// Reproduces the statistical machinery behind the paper's Figures 6 and 7.
#ifndef NAVARCHOS_STATS_RANKING_H_
#define NAVARCHOS_STATS_RANKING_H_

#include <string>
#include <vector>

#include "util/matrix.h"

namespace navarchos::stats {

/// Result of the Friedman test over a datasets x treatments score matrix.
struct FriedmanResult {
  double statistic = 0.0;            ///< Chi-squared statistic (tie-corrected).
  double p_value = 1.0;              ///< Upper-tail chi-squared p-value.
  std::vector<double> mean_ranks;    ///< Mean rank per treatment (1 = best).
};

/// Friedman test. `scores` holds one row per dataset (experimental block) and
/// one column per treatment. Higher scores are better; rank 1 is assigned to
/// the highest score in a row (ties get midranks).
/// Requires at least 2 rows and 2 columns.
FriedmanResult FriedmanTest(const util::Matrix& scores);

/// Result of a two-sided Wilcoxon signed-rank test.
struct WilcoxonResult {
  double statistic = 0.0;  ///< W+ (sum of positive-signed ranks).
  double p_value = 1.0;    ///< Two-sided p (normal approx., tie-corrected).
  int effective_n = 0;     ///< Pairs with non-zero difference.
};

/// Paired two-sided Wilcoxon signed-rank test between equal-length samples.
/// Zero differences are dropped (Wilcoxon's original treatment). With fewer
/// than one non-zero difference the test is inconclusive (p = 1).
WilcoxonResult WilcoxonSignedRank(const std::vector<double>& x,
                                  const std::vector<double>& y);

/// Holm step-down correction. Returns adjusted p-values in the input order,
/// each clamped to [0, 1] and monotone in the Holm ordering.
std::vector<double> HolmCorrection(const std::vector<double>& p_values);

/// Full autorank-style analysis producing the data behind a CD diagram.
struct CriticalDifferenceResult {
  FriedmanResult friedman;
  std::vector<std::string> names;        ///< Treatment names, input order.
  std::vector<double> mean_ranks;        ///< Mean rank per treatment.
  std::vector<std::size_t> order;        ///< Treatment indices best -> worst.
  /// adjusted_p[i][j]: Holm-adjusted pairwise Wilcoxon p between treatments
  /// i and j (symmetric, diagonal = 1).
  std::vector<std::vector<double>> adjusted_p;
  /// Maximal groups of treatments that are pairwise indistinguishable at
  /// `alpha` (the horizontal bars of a CD diagram). Indices into `names`.
  std::vector<std::vector<std::size_t>> groups;
  double alpha = 0.05;
};

/// Runs Friedman + pairwise Wilcoxon/Holm over `scores` (rows = datasets,
/// cols = treatments, higher = better).
CriticalDifferenceResult AnalyzeRanks(const util::Matrix& scores,
                                      const std::vector<std::string>& names,
                                      double alpha = 0.05);

/// Renders a text critical-difference diagram: treatments on a rank axis with
/// connector bars for indistinguishable groups (text analogue of the paper's
/// Figures 6/7).
std::string RenderCriticalDifferenceDiagram(const CriticalDifferenceResult& result,
                                            int width = 72);

}  // namespace navarchos::stats

#endif  // NAVARCHOS_STATS_RANKING_H_
