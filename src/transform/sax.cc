#include "transform/sax.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::transform {

std::vector<double> GaussianBreakpoints(int alphabet) {
  NAVARCHOS_CHECK(alphabet >= 2);
  // Invert the standard normal CDF at i/alphabet via bisection (erfc-based
  // NormalCdf is available; precision needs are modest).
  std::vector<double> breakpoints;
  for (int i = 1; i < alphabet; ++i) {
    const double target = static_cast<double>(i) / alphabet;
    double lo = -8.0, hi = 8.0;
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (util::NormalCdf(mid) < target ? lo : hi) = mid;
    }
    breakpoints.push_back(0.5 * (lo + hi));
  }
  return breakpoints;
}

SaxTransform::SaxTransform(const TransformOptions& options, const SaxOptions& sax)
    : WindowedTransform(options), sax_(sax), breakpoints_(GaussianBreakpoints(sax.alphabet)) {
  NAVARCHOS_CHECK(sax_.segments >= 2);
  NAVARCHOS_CHECK(options.window >= sax_.segments);
}

std::vector<std::string> SaxTransform::FeatureNames() const {
  std::vector<std::string> names;
  for (int channel = 0; channel < telemetry::kNumPids; ++channel) {
    for (int s = 0; s < sax_.alphabet; ++s)
      names.push_back(std::string("sax_") + telemetry::PidName(channel) + "_u" +
                      std::to_string(s));
    for (int a = 0; a < sax_.alphabet; ++a)
      for (int b = 0; b < sax_.alphabet; ++b)
        names.push_back(std::string("sax_") + telemetry::PidName(channel) + "_b" +
                        std::to_string(a) + std::to_string(b));
  }
  return names;
}

std::vector<int> SaxTransform::Symbolise(const std::vector<double>& channel) const {
  NAVARCHOS_CHECK(static_cast<int>(channel.size()) >= sax_.segments);
  const double mean = util::Mean(channel);
  const double sd = std::max(1e-9, util::StdDev(channel));

  std::vector<int> symbols(static_cast<std::size_t>(sax_.segments));
  const double per_segment =
      static_cast<double>(channel.size()) / static_cast<double>(sax_.segments);
  for (int segment = 0; segment < sax_.segments; ++segment) {
    const std::size_t begin = static_cast<std::size_t>(segment * per_segment);
    const std::size_t end = std::max(
        begin + 1, static_cast<std::size_t>((segment + 1) * per_segment));
    double total = 0.0;
    for (std::size_t i = begin; i < end && i < channel.size(); ++i)
      total += (channel[i] - mean) / sd;
    const double paa = total / static_cast<double>(end - begin);
    int symbol = 0;
    while (symbol < static_cast<int>(breakpoints_.size()) &&
           paa > breakpoints_[static_cast<std::size_t>(symbol)]) {
      ++symbol;
    }
    symbols[static_cast<std::size_t>(segment)] = symbol;
  }
  return symbols;
}

std::vector<double> SaxTransform::ComputeFeatures() const {
  const int unigrams = sax_.alphabet;
  const int bigrams = sax_.alphabet * sax_.alphabet;
  std::vector<double> features(
      static_cast<std::size_t>(telemetry::kNumPids * (unigrams + bigrams)), 0.0);
  for (int channel = 0; channel < telemetry::kNumPids; ++channel) {
    const std::vector<int> symbols = Symbolise(Channel(channel));
    const std::size_t base =
        static_cast<std::size_t>(channel * (unigrams + bigrams));
    const double unigram_weight = 1.0 / static_cast<double>(symbols.size());
    const double bigram_weight =
        symbols.size() > 1 ? 1.0 / static_cast<double>(symbols.size() - 1) : 0.0;
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      features[base + static_cast<std::size_t>(symbols[i])] += unigram_weight;
      if (i > 0) {
        const int bigram = symbols[i - 1] * sax_.alphabet + symbols[i];
        features[base + static_cast<std::size_t>(unigrams + bigram)] += bigram_weight;
      }
    }
  }
  return features;
}

}  // namespace navarchos::transform
