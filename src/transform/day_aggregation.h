// Day-level aggregation used by the paper's data exploration (§2, Fig. 2):
// "an aggregation is performed using an one-day timespan, and calculating
// the mean and standard deviation of each of the PID measurements".
#ifndef NAVARCHOS_TRANSFORM_DAY_AGGREGATION_H_
#define NAVARCHOS_TRANSFORM_DAY_AGGREGATION_H_

#include <string>
#include <vector>

#include "telemetry/types.h"

namespace navarchos::transform {

/// One vehicle-day summary: mean and std-dev of each PID over the day's
/// usable records, plus distance driven (for cluster interpretation).
struct DaySummary {
  std::int32_t vehicle_id = 0;
  std::int64_t day = 0;
  std::vector<double> features;  ///< [mean x 6, std x 6].
  double km_driven = 0.0;
  int record_count = 0;
};

/// Feature names of DaySummary::features.
std::vector<std::string> DaySummaryFeatureNames();

/// Aggregates a vehicle's (filtered) records per day. Days with fewer than
/// `min_records` usable records are skipped as uninformative.
std::vector<DaySummary> AggregateByDay(std::int32_t vehicle_id,
                                       const std::vector<telemetry::Record>& records,
                                       int min_records = 20);

}  // namespace navarchos::transform

#endif  // NAVARCHOS_TRANSFORM_DAY_AGGREGATION_H_
