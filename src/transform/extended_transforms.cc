#include "transform/extended_transforms.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace navarchos::transform {

using telemetry::kNumPids;
using telemetry::PidName;

namespace {

struct Envelope {
  double lo;
  double hi;
};

// Fixed binning envelope per channel (matches telemetry/filters.cc ranges,
// trimmed to the common operating region).
constexpr Envelope kEnvelope[kNumPids] = {
    {500.0, 5000.0},  // rpm
    {0.0, 140.0},     // speed
    {0.0, 110.0},     // coolantTemp
    {-10.0, 60.0},    // intakeTemp
    {20.0, 105.0},    // mapIntake
    {0.0, 80.0},      // MAF
};

}  // namespace

HistogramTransform::HistogramTransform(const TransformOptions& options)
    : WindowedTransform(options), bins_(options.histogram_bins) {
  NAVARCHOS_CHECK(bins_ >= 2);
}

std::vector<std::string> HistogramTransform::FeatureNames() const {
  std::vector<std::string> names;
  for (int i = 0; i < kNumPids; ++i)
    for (int b = 0; b < bins_; ++b)
      names.push_back(std::string("hist_") + PidName(i) + "_b" + std::to_string(b));
  return names;
}

std::vector<double> HistogramTransform::ComputeFeatures() const {
  std::vector<double> features(static_cast<std::size_t>(kNumPids * bins_), 0.0);
  const double weight = 1.0 / static_cast<double>(window().size());
  for (const auto& pids : window()) {
    for (int i = 0; i < kNumPids; ++i) {
      const Envelope env = kEnvelope[i];
      double frac = (pids[static_cast<std::size_t>(i)] - env.lo) / (env.hi - env.lo);
      frac = std::clamp(frac, 0.0, 1.0 - 1e-12);
      const int bin = static_cast<int>(frac * bins_);
      features[static_cast<std::size_t>(i * bins_ + bin)] += weight;
    }
  }
  return features;
}

SpectralTransform::SpectralTransform(const TransformOptions& options)
    : WindowedTransform(options), bands_(options.spectral_bands) {
  NAVARCHOS_CHECK(bands_ >= 1);
}

std::vector<std::string> SpectralTransform::FeatureNames() const {
  std::vector<std::string> names;
  for (int i = 0; i < kNumPids; ++i)
    for (int b = 0; b < bands_; ++b)
      names.push_back(std::string("spec_") + PidName(i) + "_band" + std::to_string(b));
  return names;
}

std::vector<double> SpectralTransform::ComputeFeatures() const {
  const std::size_t n = window().size();
  std::vector<double> features;
  features.reserve(static_cast<std::size_t>(kNumPids * bands_));
  for (int i = 0; i < kNumPids; ++i) {
    const std::vector<double> x = Channel(i);
    // Naive DFT magnitudes for k = 1 .. n/2 (DC dropped). Window lengths are
    // a few hundred samples, so O(n^2) is acceptable and keeps the code
    // dependency-free.
    const std::size_t half = n / 2;
    std::vector<double> magnitude(half, 0.0);
    for (std::size_t k = 1; k <= half; ++k) {
      double re = 0.0, im = 0.0;
      const double w = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n);
      for (std::size_t t = 0; t < n; ++t) {
        re += x[t] * std::cos(w * static_cast<double>(t));
        im += x[t] * std::sin(w * static_cast<double>(t));
      }
      magnitude[k - 1] = std::sqrt(re * re + im * im);
    }
    // Log-spaced band boundaries over [1, half].
    double total = 1e-12;
    for (double m : magnitude) total += m;
    std::vector<double> band_energy(static_cast<std::size_t>(bands_), 0.0);
    for (std::size_t k = 0; k < magnitude.size(); ++k) {
      const double pos = std::log1p(static_cast<double>(k)) /
                         std::log1p(static_cast<double>(magnitude.size()));
      int band = static_cast<int>(pos * bands_);
      band = std::min(band, bands_ - 1);
      band_energy[static_cast<std::size_t>(band)] += magnitude[k];
    }
    for (double e : band_energy) features.push_back(e / total);
  }
  return features;
}

}  // namespace navarchos::transform
