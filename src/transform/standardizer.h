// Z-score standardisation fitted on a reference sample.
//
// The multivariate detectors (Grand, TranAD) compare samples with Euclidean
// geometry, so features of different physical units must be brought to a
// common scale. The standardiser is always fitted on the *reference* data
// only, never on the scored stream (no leakage).
#ifndef NAVARCHOS_TRANSFORM_STANDARDIZER_H_
#define NAVARCHOS_TRANSFORM_STANDARDIZER_H_

#include <vector>

#include "persist/codec.h"

namespace navarchos::transform {

/// Per-feature z-score scaler.
class Standardizer {
 public:
  /// Fits means and standard deviations on `samples` (rows of equal length).
  /// Features with (near-)zero variance get unit scale so they pass through
  /// centred but unscaled.
  void Fit(const std::vector<std::vector<double>>& samples);

  /// Transforms one sample in place-copy.
  std::vector<double> Apply(const std::vector<double>& sample) const;

  /// Transforms a batch.
  std::vector<std::vector<double>> ApplyAll(
      const std::vector<std::vector<double>>& samples) const;

  /// True after a successful Fit.
  bool fitted() const { return !mean_.empty(); }

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }

  /// Serialises the fitted means and scales (bit-exact).
  void Save(persist::Encoder& encoder) const;

  /// Restores means and scales saved by Save(); returns false (leaving the
  /// decoder failed) on malformed input.
  bool Restore(persist::Decoder& decoder);

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace navarchos::transform

#endif  // NAVARCHOS_TRANSFORM_STANDARDIZER_H_
