#include "transform/standardizer.h"

#include <cmath>

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::transform {

void Standardizer::Fit(const std::vector<std::vector<double>>& samples) {
  NAVARCHOS_CHECK(!samples.empty());
  const std::size_t dims = samples.front().size();
  mean_.assign(dims, 0.0);
  scale_.assign(dims, 1.0);
  std::vector<double> column(samples.size());
  for (std::size_t d = 0; d < dims; ++d) {
    for (std::size_t i = 0; i < samples.size(); ++i) {
      NAVARCHOS_CHECK(samples[i].size() == dims);
      column[i] = samples[i][d];
    }
    mean_[d] = util::Mean(column);
    const double sd = util::StdDev(column);
    scale_[d] = sd > 1e-9 ? sd : 1.0;
  }
}

std::vector<double> Standardizer::Apply(const std::vector<double>& sample) const {
  NAVARCHOS_CHECK(fitted());
  NAVARCHOS_CHECK(sample.size() == mean_.size());
  std::vector<double> out(sample.size());
  for (std::size_t d = 0; d < sample.size(); ++d)
    out[d] = (sample[d] - mean_[d]) / scale_[d];
  return out;
}

std::vector<std::vector<double>> Standardizer::ApplyAll(
    const std::vector<std::vector<double>>& samples) const {
  std::vector<std::vector<double>> out;
  out.reserve(samples.size());
  for (const auto& sample : samples) out.push_back(Apply(sample));
  return out;
}

void Standardizer::Save(persist::Encoder& encoder) const {
  encoder.PutDoubleVec(mean_);
  encoder.PutDoubleVec(scale_);
}

bool Standardizer::Restore(persist::Decoder& decoder) {
  mean_ = decoder.GetDoubleVec();
  scale_ = decoder.GetDoubleVec();
  if (decoder.ok() && mean_.size() != scale_.size())
    decoder.Fail("standardizer mean/scale size mismatch");
  return decoder.ok();
}

}  // namespace navarchos::transform
