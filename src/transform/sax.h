// Symbolic Aggregate approXimation (SAX) transform — the paper's future-work
// direction made concrete (§5: "discretizing the signal input and creating
// artificial events is an interesting direction for future research").
//
// Each window is reduced per channel by Piecewise Aggregate Approximation
// (PAA) to `segments` means, each mean is discretised into one of
// `alphabet` symbols via standard-normal breakpoints (z-scored within the
// window for level invariance), and the emitted features are the per-channel
// symbol-frequency histograms plus bigram transition frequencies — an
// "artificial event" stream in feature form that any step-3 detector can
// consume.
#ifndef NAVARCHOS_TRANSFORM_SAX_H_
#define NAVARCHOS_TRANSFORM_SAX_H_

#include <string>
#include <vector>

#include "transform/basic_transforms.h"

namespace navarchos::transform {

/// SAX options.
struct SaxOptions {
  int segments = 12;  ///< PAA segments per window.
  int alphabet = 4;   ///< Symbols per channel (gaussian breakpoints).
};

/// Windowed SAX transform: per channel, `alphabet` unigram frequencies plus
/// `alphabet`^2 bigram transition frequencies.
class SaxTransform : public WindowedTransform {
 public:
  SaxTransform(const TransformOptions& options, const SaxOptions& sax = {});

  std::string Name() const override { return "sax"; }
  std::vector<std::string> FeatureNames() const override;

  /// Discretises one channel of the current window (exposed for tests):
  /// z-scores the channel, averages into segments, maps each segment mean to
  /// a symbol in [0, alphabet).
  std::vector<int> Symbolise(const std::vector<double>& channel) const;

 protected:
  std::vector<double> ComputeFeatures() const override;

 private:
  SaxOptions sax_;
  std::vector<double> breakpoints_;  ///< alphabet - 1 gaussian quantiles.
};

/// Standard-normal breakpoints splitting the real line into `alphabet`
/// equiprobable regions (as in the original SAX paper).
std::vector<double> GaussianBreakpoints(int alphabet);

}  // namespace navarchos::transform

#endif  // NAVARCHOS_TRANSFORM_SAX_H_
