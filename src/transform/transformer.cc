#include "transform/transformer.h"

#include "transform/basic_transforms.h"
#include "transform/extended_transforms.h"
#include "transform/sax.h"
#include "util/check.h"

namespace navarchos::transform {

void Transformer::SaveState(persist::Encoder& encoder) const {
  (void)encoder;  // stateless by default
}

bool Transformer::RestoreState(persist::Decoder& decoder) {
  (void)decoder;  // stateless by default
  return true;
}

const char* TransformKindName(TransformKind kind) {
  switch (kind) {
    case TransformKind::kRaw: return "raw";
    case TransformKind::kDelta: return "delta";
    case TransformKind::kMeanAggregation: return "mean_agr";
    case TransformKind::kCorrelation: return "correlation";
    case TransformKind::kHistogram: return "histogram";
    case TransformKind::kSpectral: return "spectral";
    case TransformKind::kSax: return "sax";
  }
  return "unknown";
}

std::unique_ptr<Transformer> MakeTransformer(TransformKind kind,
                                             const TransformOptions& options) {
  switch (kind) {
    case TransformKind::kRaw:
      return std::make_unique<RawTransform>();
    case TransformKind::kDelta:
      return std::make_unique<DeltaTransform>();
    case TransformKind::kMeanAggregation:
      return std::make_unique<MeanAggregationTransform>(options);
    case TransformKind::kCorrelation:
      return std::make_unique<CorrelationTransform>(options);
    case TransformKind::kHistogram:
      return std::make_unique<HistogramTransform>(options);
    case TransformKind::kSpectral:
      return std::make_unique<SpectralTransform>(options);
    case TransformKind::kSax:
      return std::make_unique<SaxTransform>(options);
  }
  NAVARCHOS_CHECK(false);
  return nullptr;
}

int EffectiveStride(TransformKind kind, const TransformOptions& options) {
  switch (kind) {
    case TransformKind::kRaw:
    case TransformKind::kDelta:
      return 1;
    default:
      return options.stride;
  }
}

std::vector<TransformedSample> TransformAll(Transformer& transformer,
                                            const std::vector<telemetry::Record>& records) {
  std::vector<TransformedSample> samples;
  for (const telemetry::Record& record : records) {
    if (auto sample = transformer.Collect(record)) samples.push_back(std::move(*sample));
  }
  return samples;
}

}  // namespace navarchos::transform
