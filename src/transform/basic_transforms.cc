#include "transform/basic_transforms.h"

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::transform {

using telemetry::kNumPids;
using telemetry::PidName;

std::vector<std::string> RawTransform::FeatureNames() const {
  std::vector<std::string> names;
  for (int i = 0; i < kNumPids; ++i) names.emplace_back(PidName(i));
  return names;
}

std::optional<TransformedSample> RawTransform::Collect(const telemetry::Record& record) {
  TransformedSample sample;
  sample.timestamp = record.timestamp;
  sample.features.assign(record.pids.begin(), record.pids.end());
  return sample;
}

std::vector<std::string> DeltaTransform::FeatureNames() const {
  std::vector<std::string> names;
  for (int i = 0; i < kNumPids; ++i) names.push_back(std::string("d_") + PidName(i));
  return names;
}

std::optional<TransformedSample> DeltaTransform::Collect(const telemetry::Record& record) {
  if (!has_previous_) {
    previous_ = record.pids;
    has_previous_ = true;
    return std::nullopt;
  }
  TransformedSample sample;
  sample.timestamp = record.timestamp;
  sample.features.resize(kNumPids);
  for (int i = 0; i < kNumPids; ++i) {
    sample.features[static_cast<std::size_t>(i)] =
        record.pids[static_cast<std::size_t>(i)] - previous_[static_cast<std::size_t>(i)];
  }
  previous_ = record.pids;
  return sample;
}

void DeltaTransform::SaveState(persist::Encoder& encoder) const {
  encoder.PutBool(has_previous_);
  for (double value : previous_) encoder.PutDouble(value);
}

bool DeltaTransform::RestoreState(persist::Decoder& decoder) {
  has_previous_ = decoder.GetBool();
  for (double& value : previous_) value = decoder.GetDouble();
  return decoder.ok();
}

WindowedTransform::WindowedTransform(const TransformOptions& options)
    : options_(options) {
  NAVARCHOS_CHECK(options_.window >= 2);
  NAVARCHOS_CHECK(options_.stride >= 1);
}

void WindowedTransform::Reset() {
  window_.clear();
  since_last_emit_ = 0;
}

std::vector<double> WindowedTransform::Channel(int pid) const {
  std::vector<double> out;
  out.reserve(window_.size());
  for (const auto& pids : window_) out.push_back(pids[static_cast<std::size_t>(pid)]);
  return out;
}

std::optional<TransformedSample> WindowedTransform::Collect(
    const telemetry::Record& record) {
  window_.push_back(record.pids);
  if (window_.size() > static_cast<std::size_t>(options_.window)) window_.pop_front();
  if (window_.size() < static_cast<std::size_t>(options_.window)) return std::nullopt;

  // Emit on the first full window, then every `stride` records.
  const bool emit = (since_last_emit_ == 0);
  since_last_emit_ = (since_last_emit_ + 1) % options_.stride;
  if (!emit) return std::nullopt;

  TransformedSample sample;
  sample.timestamp = record.timestamp;
  sample.features = ComputeFeatures();
  return sample;
}

void WindowedTransform::SaveState(persist::Encoder& encoder) const {
  encoder.PutU64(window_.size());
  for (const auto& pids : window_)
    for (double value : pids) encoder.PutDouble(value);
  encoder.PutI32(since_last_emit_);
}

bool WindowedTransform::RestoreState(persist::Decoder& decoder) {
  const std::uint64_t count = decoder.GetU64();
  if (decoder.ok() && count > static_cast<std::uint64_t>(options_.window)) {
    decoder.Fail("window length " + std::to_string(count) +
                 " exceeds configured window " + std::to_string(options_.window));
  }
  if (!decoder.ok()) return false;
  window_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    telemetry::PidVector pids{};
    for (double& value : pids) value = decoder.GetDouble();
    window_.push_back(pids);
  }
  since_last_emit_ = decoder.GetI32();
  if (decoder.ok() && (since_last_emit_ < 0 || since_last_emit_ >= options_.stride))
    decoder.Fail("stride cursor " + std::to_string(since_last_emit_) + " out of range");
  return decoder.ok();
}

std::vector<std::string> MeanAggregationTransform::FeatureNames() const {
  std::vector<std::string> names;
  for (int i = 0; i < kNumPids; ++i) names.push_back(std::string("mean_") + PidName(i));
  return names;
}

std::vector<double> MeanAggregationTransform::ComputeFeatures() const {
  std::vector<double> features(kNumPids, 0.0);
  for (const auto& pids : window())
    for (int i = 0; i < kNumPids; ++i) features[static_cast<std::size_t>(i)] += pids[static_cast<std::size_t>(i)];
  for (double& f : features) f /= static_cast<double>(window().size());
  return features;
}

std::vector<std::string> CorrelationTransform::FeatureNames() const {
  std::vector<std::string> names;
  for (int i = 0; i < kNumPids; ++i)
    for (int j = i + 1; j < kNumPids; ++j)
      names.push_back(std::string(PidName(i)) + "~" + PidName(j));
  return names;
}

std::vector<double> CorrelationTransform::ComputeFeatures() const {
  std::vector<std::vector<double>> channels(kNumPids);
  for (int i = 0; i < kNumPids; ++i) channels[static_cast<std::size_t>(i)] = Channel(i);
  std::vector<double> features;
  features.reserve(CorrelationFeatureCount(kNumPids));
  for (int i = 0; i < kNumPids; ++i) {
    for (int j = i + 1; j < kNumPids; ++j) {
      features.push_back(util::PearsonCorrelation(channels[static_cast<std::size_t>(i)],
                                                  channels[static_cast<std::size_t>(j)]));
    }
  }
  return features;
}

}  // namespace navarchos::transform
