// Raw, delta and windowed mean/correlation transformations (paper §3.2).
#ifndef NAVARCHOS_TRANSFORM_BASIC_TRANSFORMS_H_
#define NAVARCHOS_TRANSFORM_BASIC_TRANSFORMS_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "transform/transformer.h"

namespace navarchos::transform {

/// Identity: emits the six PID values of every record.
class RawTransform : public Transformer {
 public:
  std::string Name() const override { return "raw"; }
  std::vector<std::string> FeatureNames() const override;
  std::optional<TransformedSample> Collect(const telemetry::Record& record) override;
  void Reset() override {}
};

/// First difference: emits current - previous per PID ("similar to
/// calculating a derivative of each measurement", §3.2).
class DeltaTransform : public Transformer {
 public:
  std::string Name() const override { return "delta"; }
  std::vector<std::string> FeatureNames() const override;
  std::optional<TransformedSample> Collect(const telemetry::Record& record) override;
  void Reset() override { has_previous_ = false; }
  void SaveState(persist::Encoder& encoder) const override;
  bool RestoreState(persist::Decoder& decoder) override;

 private:
  bool has_previous_ = false;
  telemetry::PidVector previous_{};
};

/// Shared sliding-window machinery for the windowed transforms.
class WindowedTransform : public Transformer {
 public:
  explicit WindowedTransform(const TransformOptions& options);

  std::optional<TransformedSample> Collect(const telemetry::Record& record) override;
  void Reset() override;
  void SaveState(persist::Encoder& encoder) const override;
  bool RestoreState(persist::Decoder& decoder) override;

 protected:
  /// Computes the feature vector from the full window (column-major access
  /// through window()).
  virtual std::vector<double> ComputeFeatures() const = 0;

  /// Window contents, oldest first.
  const std::deque<telemetry::PidVector>& window() const { return window_; }

  /// One PID channel of the window as a contiguous vector.
  std::vector<double> Channel(int pid) const;

  const TransformOptions& options() const { return options_; }

 private:
  TransformOptions options_;
  std::deque<telemetry::PidVector> window_;
  int since_last_emit_ = 0;
};

/// Per-window mean of each PID (paper's "mean aggregation").
class MeanAggregationTransform : public WindowedTransform {
 public:
  using WindowedTransform::WindowedTransform;
  std::string Name() const override { return "mean_agr"; }
  std::vector<std::string> FeatureNames() const override;

 protected:
  std::vector<double> ComputeFeatures() const override;
};

/// Pairwise Pearson correlations of the window: the f*(f-1)/2 upper-triangle
/// entries of the correlation matrix (paper's headline transformation).
class CorrelationTransform : public WindowedTransform {
 public:
  using WindowedTransform::WindowedTransform;
  std::string Name() const override { return "correlation"; }
  std::vector<std::string> FeatureNames() const override;

 protected:
  std::vector<double> ComputeFeatures() const override;
};

/// Number of correlation features for `f` input channels.
constexpr std::size_t CorrelationFeatureCount(std::size_t f) { return f * (f - 1) / 2; }

}  // namespace navarchos::transform

#endif  // NAVARCHOS_TRANSFORM_BASIC_TRANSFORMS_H_
