#include "transform/day_aggregation.h"

#include <map>

#include "util/statistics.h"

namespace navarchos::transform {

using telemetry::kNumPids;

std::vector<std::string> DaySummaryFeatureNames() {
  std::vector<std::string> names;
  for (int i = 0; i < kNumPids; ++i)
    names.push_back(std::string("mean_") + telemetry::PidName(i));
  for (int i = 0; i < kNumPids; ++i)
    names.push_back(std::string("std_") + telemetry::PidName(i));
  return names;
}

std::vector<DaySummary> AggregateByDay(std::int32_t vehicle_id,
                                       const std::vector<telemetry::Record>& records,
                                       int min_records) {
  std::map<std::int64_t, std::vector<const telemetry::Record*>> by_day;
  for (const telemetry::Record& record : records)
    by_day[telemetry::DayOf(record.timestamp)].push_back(&record);

  std::vector<DaySummary> summaries;
  for (const auto& [day, day_records] : by_day) {
    if (static_cast<int>(day_records.size()) < min_records) continue;
    DaySummary summary;
    summary.vehicle_id = vehicle_id;
    summary.day = day;
    summary.record_count = static_cast<int>(day_records.size());
    summary.features.resize(static_cast<std::size_t>(2 * kNumPids));
    for (int pid = 0; pid < kNumPids; ++pid) {
      std::vector<double> channel;
      channel.reserve(day_records.size());
      for (const telemetry::Record* record : day_records)
        channel.push_back(record->pids[static_cast<std::size_t>(pid)]);
      summary.features[static_cast<std::size_t>(pid)] = util::Mean(channel);
      summary.features[static_cast<std::size_t>(kNumPids + pid)] = util::StdDev(channel);
    }
    // Speed is km/h sampled per minute -> km driven = sum(speed) / 60.
    double km = 0.0;
    for (const telemetry::Record* record : day_records)
      km += record->pids[static_cast<int>(telemetry::Pid::kSpeed)] / 60.0;
    summary.km_driven = km;
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

}  // namespace navarchos::transform
