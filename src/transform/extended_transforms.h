// Extension transformations sketched in paper §3.1 ("frequency-domain
// transformation, histograms, and others") but not evaluated there. Included
// so the framework exploration can go beyond the paper's four options.
#ifndef NAVARCHOS_TRANSFORM_EXTENDED_TRANSFORMS_H_
#define NAVARCHOS_TRANSFORM_EXTENDED_TRANSFORMS_H_

#include <string>
#include <vector>

#include "transform/basic_transforms.h"

namespace navarchos::transform {

/// Per-channel normalised histogram over the window. Each PID contributes
/// `histogram_bins` features holding the fraction of window samples per bin;
/// bin edges are fixed per channel from its plausible operating envelope so
/// histograms are comparable across windows.
class HistogramTransform : public WindowedTransform {
 public:
  explicit HistogramTransform(const TransformOptions& options);
  std::string Name() const override { return "histogram"; }
  std::vector<std::string> FeatureNames() const override;

 protected:
  std::vector<double> ComputeFeatures() const override;

 private:
  int bins_;
};

/// Per-channel spectral band energies: magnitude of the window's DFT grouped
/// into `spectral_bands` log-spaced bands, normalised by total energy. The
/// DC component is dropped so the features capture signal *dynamics* rather
/// than level.
class SpectralTransform : public WindowedTransform {
 public:
  explicit SpectralTransform(const TransformOptions& options);
  std::string Name() const override { return "spectral"; }
  std::vector<std::string> FeatureNames() const override;

 protected:
  std::vector<double> ComputeFeatures() const override;

 private:
  int bands_;
};

}  // namespace navarchos::transform

#endif  // NAVARCHOS_TRANSFORM_EXTENDED_TRANSFORMS_H_
