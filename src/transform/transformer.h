// Step 1 of the paper's framework: data transformation.
//
// A Transformer consumes the filtered per-minute PID stream of one vehicle
// and emits feature vectors in a space where behavioural change is
// highlighted. The paper's Algorithm 1 uses the streaming protocol
//   transformer.collect(sample); if tran.ready(): x = tran.transform(sample)
// which Collect() expresses as an optional return.
#ifndef NAVARCHOS_TRANSFORM_TRANSFORMER_H_
#define NAVARCHOS_TRANSFORM_TRANSFORMER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "persist/codec.h"
#include "telemetry/types.h"

namespace navarchos::transform {

/// A transformed observation: the feature vector plus the timestamp of the
/// record that completed it (used to place alarms on the timeline).
struct TransformedSample {
  telemetry::Minute timestamp = 0;
  std::vector<double> features;
};

/// Streaming feature extractor for one vehicle's record stream.
///
/// Instances are stateful (sliding-window buffers); use one per vehicle and
/// call Reset() when a stream restarts. Thread-compatible, not thread-safe.
class Transformer {
 public:
  virtual ~Transformer() = default;

  /// Stable identifier ("correlation", "raw", ...).
  virtual std::string Name() const = 0;

  /// Names of the emitted features, fixed for the lifetime of the object.
  virtual std::vector<std::string> FeatureNames() const = 0;

  /// Dimensionality of emitted feature vectors.
  std::size_t FeatureCount() const { return FeatureNames().size(); }

  /// Consumes one (already filtered) record; returns a transformed sample
  /// once the internal buffer is ready, std::nullopt otherwise.
  virtual std::optional<TransformedSample> Collect(const telemetry::Record& record) = 0;

  /// Clears internal buffers.
  virtual void Reset() = 0;

  /// Serialises the mutable streaming state (window buffers, previous-sample
  /// caches) into `encoder`. Stateless transforms keep the default no-op.
  /// Configuration is not saved: restore targets a transformer freshly
  /// constructed with the same kind and options.
  virtual void SaveState(persist::Encoder& encoder) const;

  /// Restores state written by SaveState into a freshly constructed
  /// transformer of the same kind and options. Returns false (leaving the
  /// decoder failed) on malformed input.
  virtual bool RestoreState(persist::Decoder& decoder);
};

/// The transformation choices evaluated in the paper plus two extensions
/// mentioned in §3.1 ("frequency-domain transformation, histograms").
enum class TransformKind : int {
  kRaw = 0,
  kDelta = 1,
  kMeanAggregation = 2,
  kCorrelation = 3,
  kHistogram = 4,
  kSpectral = 5,
  kSax = 6,  ///< Future-work direction: discretised "artificial events".
};

/// Display name of a transformation kind.
const char* TransformKindName(TransformKind kind);

/// Options shared by the windowed transformations.
struct TransformOptions {
  /// Sliding-window length in operating minutes (records). Longer windows
  /// stabilise the correlation estimates against ride-mix volatility.
  int window = 300;
  /// Emission stride in records: a sample is emitted every `stride` records
  /// once the window is full.
  int stride = 20;
  /// Histogram bins per feature (histogram transform only).
  int histogram_bins = 8;
  /// Spectral bands per feature (spectral transform only).
  int spectral_bands = 4;
};

/// Creates a transformer of the requested kind.
std::unique_ptr<Transformer> MakeTransformer(TransformKind kind,
                                             const TransformOptions& options = {});

/// Emission stride in records of a transform kind: 1 for the per-record
/// transforms (raw, delta), options.stride for the windowed ones.
int EffectiveStride(TransformKind kind, const TransformOptions& options);

/// Runs a transformer over a whole record stream (batch convenience).
std::vector<TransformedSample> TransformAll(Transformer& transformer,
                                            const std::vector<telemetry::Record>& records);

}  // namespace navarchos::transform

#endif  // NAVARCHOS_TRANSFORM_TRANSFORMER_H_
