#include "neighbors/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::neighbors {

KnnIndex::KnnIndex(std::vector<std::vector<double>> points)
    : points_(std::move(points)) {
  NAVARCHOS_CHECK(!points_.empty());
  dims_ = points_.front().size();
  for (const auto& point : points_) NAVARCHOS_CHECK(point.size() == dims_);
}

std::vector<Neighbor> KnnIndex::Query(std::span<const double> query, int k,
                                      std::ptrdiff_t exclude) const {
  NAVARCHOS_CHECK(k >= 1);
  NAVARCHOS_CHECK(query.size() == dims_);
  // Max-heap of the best k candidates (by distance squared).
  std::vector<Neighbor> heap;
  heap.reserve(static_cast<std::size_t>(k) + 1);
  auto cmp = [](const Neighbor& a, const Neighbor& b) { return a.distance < b.distance; };
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (static_cast<std::ptrdiff_t>(i) == exclude) continue;
    const double d2 = util::SquaredDistance(points_[i], query);
    if (heap.size() < static_cast<std::size_t>(k)) {
      heap.push_back({i, d2});
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (d2 < heap.front().distance) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = {i, d2};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  for (Neighbor& n : heap) n.distance = std::sqrt(n.distance);
  return heap;
}

double KnnIndex::NearestDistance(std::span<const double> query,
                                 std::ptrdiff_t exclude) const {
  NAVARCHOS_CHECK(query.size() == dims_);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (static_cast<std::ptrdiff_t>(i) == exclude) continue;
    best = std::min(best, util::SquaredDistance(points_[i], query));
  }
  return std::sqrt(best);
}

}  // namespace navarchos::neighbors
