#include "neighbors/agglomerative.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "util/check.h"
#include "util/statistics.h"

namespace navarchos::neighbors {

Dendrogram AgglomerativeAverageLinkage(const std::vector<std::vector<double>>& points) {
  const std::size_t n = points.size();
  NAVARCHOS_CHECK(n >= 2);

  // Full square distance matrix: n ~ a few thousand day-points in this
  // domain, so n^2 doubles stay comfortably in memory. Double precision
  // matters: average-linkage merge order is sensitive to rounding, and the
  // NN-chain result must agree with exact-arithmetic implementations.
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = util::EuclideanDistance(points[i], points[j]);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }

  std::vector<bool> active(n, true);
  std::vector<std::int32_t> cluster_id(n);       // current dendrogram id per slot
  std::vector<std::int32_t> cluster_size(n, 1);  // leaves per slot
  std::iota(cluster_id.begin(), cluster_id.end(), 0);

  Dendrogram dendrogram;
  dendrogram.leaf_count = static_cast<int>(n);
  dendrogram.merges.reserve(n - 1);

  // Nearest-neighbour chain.
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;
  std::int32_t next_id = static_cast<std::int32_t>(n);

  auto nearest_of = [&](std::size_t a) {
    std::size_t best = a;
    double best_d = std::numeric_limits<double>::infinity();
    const double* row = &dist[a * n];
    for (std::size_t c = 0; c < n; ++c) {
      if (!active[c] || c == a) continue;
      if (row[c] < best_d || (row[c] == best_d && c < best)) {
        best_d = row[c];
        best = c;
      }
    }
    return best;
  };

  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t s = 0; s < n; ++s) {
        if (active[s]) {
          chain.push_back(s);
          break;
        }
      }
    }
    while (true) {
      const std::size_t a = chain.back();
      const std::size_t b = nearest_of(a);
      if (chain.size() >= 2 && b == chain[chain.size() - 2]) {
        // Reciprocal nearest neighbours: merge a and b into slot of min(a,b).
        chain.pop_back();
        chain.pop_back();
        const std::size_t keep = std::min(a, b);
        const std::size_t drop = std::max(a, b);
        const double merge_distance = dist[a * n + b];
        dendrogram.merges.push_back({cluster_id[keep], cluster_id[drop], merge_distance});
        // Lance-Williams update for average linkage:
        // d(x, keep+drop) = (n_keep d(x,keep) + n_drop d(x,drop)) / (n_keep+n_drop)
        const double wk = static_cast<double>(cluster_size[keep]);
        const double wd = static_cast<double>(cluster_size[drop]);
        const double wt = wk + wd;
        for (std::size_t c = 0; c < n; ++c) {
          if (!active[c] || c == keep || c == drop) continue;
          const double updated = (wk * dist[keep * n + c] + wd * dist[drop * n + c]) / wt;
          dist[keep * n + c] = updated;
          dist[c * n + keep] = updated;
        }
        active[drop] = false;
        cluster_size[keep] += cluster_size[drop];
        cluster_id[keep] = next_id++;
        --remaining;
        break;
      }
      chain.push_back(b);
    }
  }

  // The NN-chain discovers merges out of height order. Cutting the tree at
  // "the last k-1 merges" requires ascending merge distances, so sort the
  // merges by distance and relabel the intermediate cluster ids. Average
  // linkage is reducible (no inversions), hence every merge's children are
  // created at a distance no larger than the merge itself and the relabel
  // below always finds them already assigned.
  std::vector<std::size_t> order(dendrogram.merges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return dendrogram.merges[x].distance < dendrogram.merges[y].distance;
  });
  // old internal id (n + raw merge index) -> new internal id.
  std::vector<std::int32_t> new_id(2 * n - 1, -1);
  for (std::size_t i = 0; i < n; ++i) new_id[i] = static_cast<std::int32_t>(i);
  std::vector<Dendrogram::Merge> sorted;
  sorted.reserve(dendrogram.merges.size());
  std::int32_t next_sorted_id = static_cast<std::int32_t>(n);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const Dendrogram::Merge& raw = dendrogram.merges[order[rank]];
    const std::int32_t a = new_id[static_cast<std::size_t>(raw.a)];
    const std::int32_t b = new_id[static_cast<std::size_t>(raw.b)];
    NAVARCHOS_CHECK(a >= 0 && b >= 0);
    sorted.push_back({a, b, raw.distance});
    new_id[static_cast<std::size_t>(n) + order[rank]] = next_sorted_id++;
  }
  dendrogram.merges = std::move(sorted);
  return dendrogram;
}

std::vector<int> CutToClusters(const Dendrogram& dendrogram, int k) {
  const int n = dendrogram.leaf_count;
  NAVARCHOS_CHECK(k >= 1 && k <= n);

  // Union-find over dendrogram ids; apply the first n-k merges.
  const int total_ids = 2 * n - 1;
  std::vector<int> parent(static_cast<std::size_t>(total_ids));
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  const int merges_to_apply = n - k;
  for (int m = 0; m < merges_to_apply; ++m) {
    const auto& merge = dendrogram.merges[static_cast<std::size_t>(m)];
    const int created = n + m;
    parent[static_cast<std::size_t>(find(merge.a))] = created;
    parent[static_cast<std::size_t>(find(merge.b))] = created;
  }

  std::vector<int> labels(static_cast<std::size_t>(n), -1);
  std::vector<int> root_label(static_cast<std::size_t>(total_ids), -1);
  int next_label = 0;
  for (int leaf = 0; leaf < n; ++leaf) {
    const int root = find(leaf);
    if (root_label[static_cast<std::size_t>(root)] < 0)
      root_label[static_cast<std::size_t>(root)] = next_label++;
    labels[static_cast<std::size_t>(leaf)] = root_label[static_cast<std::size_t>(root)];
  }
  NAVARCHOS_CHECK(next_label == k);
  return labels;
}

}  // namespace navarchos::neighbors
