// Local Outlier Factor (Breunig et al., SIGMOD 2000).
//
// Used twice in the reproduction: (i) the §2 data exploration extracts the
// top-1% LOF outliers of the day-aggregated fleet data, and (ii) Grand's
// "lof" non-conformity measure scores samples against the reference profile.
#ifndef NAVARCHOS_NEIGHBORS_LOF_H_
#define NAVARCHOS_NEIGHBORS_LOF_H_

#include <span>
#include <vector>

#include "neighbors/knn.h"

namespace navarchos::neighbors {

/// LOF model fitted on a point set.
class LofModel {
 public:
  /// Fits on `points` with neighbourhood size `k`. Requires at least k+1
  /// points. Precomputes each fitted point's k-distance and local
  /// reachability density (lrd).
  LofModel(std::vector<std::vector<double>> points, int k);

  /// LOF score of an external query point (scored against the fitted set;
  /// the query never counts as its own neighbour). Scores near 1 mean
  /// inlier; substantially above 1 mean outlier.
  double Score(std::span<const double> query) const;

  /// LOF scores of the fitted points themselves (self excluded from each
  /// neighbourhood) - what sklearn calls negative_outlier_factor_, unsigned.
  std::vector<double> FitScores() const;

  int k() const { return k_; }
  std::size_t size() const { return index_.size(); }

 private:
  double LrdOfFitted(std::size_t i) const { return lrd_[i]; }

  KnnIndex index_;
  int k_;
  std::vector<double> k_distance_;                  ///< Per fitted point.
  std::vector<std::vector<Neighbor>> neighbors_;    ///< kNN of each fitted point.
  std::vector<double> lrd_;                         ///< Local reachability density.
};

}  // namespace navarchos::neighbors

#endif  // NAVARCHOS_NEIGHBORS_LOF_H_
