// Brute-force k-nearest-neighbour search.
//
// Reference profiles in this domain hold at most a few thousand samples, so
// an exact linear scan is both simplest and fastest in practice (no index
// build cost, cache-friendly flat storage).
#ifndef NAVARCHOS_NEIGHBORS_KNN_H_
#define NAVARCHOS_NEIGHBORS_KNN_H_

#include <span>
#include <vector>

namespace navarchos::neighbors {

/// A neighbour hit: index into the fitted point set plus Euclidean distance.
struct Neighbor {
  std::size_t index = 0;
  double distance = 0.0;
};

/// Exact kNN index over a fixed point set.
class KnnIndex {
 public:
  /// Takes ownership of `points` (rows of equal dimension, at least one row).
  explicit KnnIndex(std::vector<std::vector<double>> points);

  /// The `k` nearest points to `query`, ascending by distance. When
  /// `exclude` is non-negative, that point index is skipped (used to query
  /// neighbours of a fitted point without matching itself). Returns fewer
  /// than `k` hits when the point set is smaller.
  std::vector<Neighbor> Query(std::span<const double> query, int k,
                              std::ptrdiff_t exclude = -1) const;

  /// Distance from `query` to its single nearest point.
  double NearestDistance(std::span<const double> query,
                         std::ptrdiff_t exclude = -1) const;

  /// Number of fitted points.
  std::size_t size() const { return points_.size(); }

  /// Dimensionality of the fitted points.
  std::size_t dims() const { return dims_; }

  /// Read access to fitted point `i`.
  std::span<const double> Point(std::size_t i) const { return points_[i]; }

 private:
  std::vector<std::vector<double>> points_;
  std::size_t dims_ = 0;
};

}  // namespace navarchos::neighbors

#endif  // NAVARCHOS_NEIGHBORS_KNN_H_
