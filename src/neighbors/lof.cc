#include "neighbors/lof.h"

#include <algorithm>

#include "util/check.h"

namespace navarchos::neighbors {
namespace {

/// Guards divisions: densities can collapse to 0 when many points coincide.
constexpr double kMinDensity = 1e-12;

}  // namespace

LofModel::LofModel(std::vector<std::vector<double>> points, int k)
    : index_(std::move(points)), k_(k) {
  NAVARCHOS_CHECK(k_ >= 1);
  NAVARCHOS_CHECK(index_.size() > static_cast<std::size_t>(k_));

  const std::size_t n = index_.size();
  neighbors_.resize(n);
  k_distance_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    neighbors_[i] = index_.Query(index_.Point(i), k_, static_cast<std::ptrdiff_t>(i));
    k_distance_[i] = neighbors_[i].back().distance;
  }

  lrd_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (const Neighbor& o : neighbors_[i])
      reach_sum += std::max(k_distance_[o.index], o.distance);
    lrd_[i] = static_cast<double>(neighbors_[i].size()) / std::max(reach_sum, kMinDensity);
  }
}

double LofModel::Score(std::span<const double> query) const {
  const auto neighbors = index_.Query(query, k_);
  double reach_sum = 0.0;
  double lrd_sum = 0.0;
  for (const Neighbor& o : neighbors) {
    reach_sum += std::max(k_distance_[o.index], o.distance);
    lrd_sum += lrd_[o.index];
  }
  const double count = static_cast<double>(neighbors.size());
  const double lrd_query = count / std::max(reach_sum, kMinDensity);
  return (lrd_sum / count) / std::max(lrd_query, kMinDensity);
}

std::vector<double> LofModel::FitScores() const {
  const std::size_t n = index_.size();
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    double lrd_sum = 0.0;
    for (const Neighbor& o : neighbors_[i]) lrd_sum += lrd_[o.index];
    scores[i] = (lrd_sum / static_cast<double>(neighbors_[i].size())) /
                std::max(lrd_[i], kMinDensity);
  }
  return scores;
}

}  // namespace navarchos::neighbors
