// Average-linkage agglomerative hierarchical clustering.
//
// Reproduces the paper's §2 exploration: day-aggregated fleet data is
// clustered with average-linkage + Euclidean distance and the dendrogram is
// cut at 9 clusters. Implemented with the nearest-neighbour-chain algorithm
// (O(n^2) time after the O(n^2) distance matrix), which is exact for
// reducible linkages such as average linkage.
#ifndef NAVARCHOS_NEIGHBORS_AGGLOMERATIVE_H_
#define NAVARCHOS_NEIGHBORS_AGGLOMERATIVE_H_

#include <cstdint>
#include <vector>

namespace navarchos::neighbors {

/// The merge history of a hierarchical clustering.
struct Dendrogram {
  /// One agglomeration step: clusters `a` and `b` merge at linkage `distance`.
  struct Merge {
    std::int32_t a = 0;
    std::int32_t b = 0;
    double distance = 0.0;
  };
  int leaf_count = 0;
  /// Exactly leaf_count - 1 merges, ascending construction order. Cluster ids
  /// follow scipy convention: leaves are 0..n-1, merge i creates id n + i.
  std::vector<Merge> merges;
};

/// Builds the average-linkage dendrogram of `points` under Euclidean
/// distance. Requires at least two points; memory is O(n^2) floats, so
/// callers should subsample very large datasets.
Dendrogram AgglomerativeAverageLinkage(const std::vector<std::vector<double>>& points);

/// Cuts the dendrogram into exactly `k` clusters (1 <= k <= leaf_count) by
/// undoing the last k-1 merges. Returns a label in [0, k) per leaf; labels
/// are assigned in order of first appearance.
std::vector<int> CutToClusters(const Dendrogram& dendrogram, int k);

}  // namespace navarchos::neighbors

#endif  // NAVARCHOS_NEIGHBORS_AGGLOMERATIVE_H_
