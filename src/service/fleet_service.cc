#include "service/fleet_service.h"

#include <utility>

#include "transform/transformer.h"
#include "util/check.h"

namespace navarchos::service {

// ---------------------------------------------------------------- OrderedSink

void FleetService::OrderedSink::Complete(std::uint64_t global_seq,
                                         std::uint64_t vehicle_seq,
                                         std::int32_t vehicle_id,
                                         std::vector<core::Alarm> alarms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++frames_processed_;
  FrameCompletion completion;
  completion.global_seq = global_seq;
  completion.vehicle_seq = vehicle_seq;
  completion.vehicle_id = vehicle_id;
  completion.alarms = alarms.size();
  pending_.emplace(global_seq, completion);
  pending_alarms_.emplace(global_seq, std::move(alarms));

  // Release every completion that is now contiguous with the cursor. Worker
  // scheduling decides only when a completion *arrives*, never when it is
  // *released*: the release order is the admission order, always.
  auto it = pending_.find(next_release_);
  while (it != pending_.end()) {
    auto alarms_it = pending_alarms_.find(next_release_);
    for (core::Alarm& alarm : alarms_it->second) {
      if (alarm_callback) alarm_callback(alarm);
      alarms_.push_back(std::move(alarm));
    }
    if (completion_callback) completion_callback(it->second);
    pending_alarms_.erase(alarms_it);
    pending_.erase(it);
    ++next_release_;
    it = pending_.find(next_release_);
  }
}

void FleetService::OrderedSink::AppendUnsequenced(std::int32_t vehicle_id,
                                                  std::vector<core::Alarm> alarms) {
  (void)vehicle_id;
  std::lock_guard<std::mutex> lock(mu_);
  NAVARCHOS_CHECK(pending_.empty());  // only legal after the drain barrier
  for (core::Alarm& alarm : alarms) {
    if (alarm_callback) alarm_callback(alarm);
    alarms_.push_back(std::move(alarm));
  }
}

std::size_t FleetService::OrderedSink::frames_processed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_processed_;
}

std::size_t FleetService::OrderedSink::alarms_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alarms_.size();
}

// --------------------------------------------------------------- FleetService

FleetService::FleetService(const ServiceConfig& config)
    : config_(config), pool_(config.runtime.ResolveThreads()) {
  NAVARCHOS_CHECK(config_.queue_capacity >= 1);
  NAVARCHOS_CHECK(config_.pump_batch >= 1);
}

FleetService::~FleetService() { Drain(); }

FleetService::VehicleLane* FleetService::LaneOfLocked(std::int32_t vehicle_id) {
  const auto it = lane_index_.find(vehicle_id);
  if (it != lane_index_.end()) return lanes_[it->second].get();
  lanes_.push_back(std::make_unique<VehicleLane>(vehicle_id, config_.monitor,
                                                 config_.queue_capacity));
  lane_index_.emplace(vehicle_id, lanes_.size() - 1);
  return lanes_.back().get();
}

int FleetService::RegisterVehicle(std::int32_t vehicle_id) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  NAVARCHOS_CHECK(!draining_);
  LaneOfLocked(vehicle_id);
  return static_cast<int>(lane_index_.at(vehicle_id));
}

void FleetService::SchedulePumpLocked(VehicleLane* lane) {
  std::lock_guard<std::mutex> lock(lane->pump_mu);
  if (lane->pump_scheduled) return;  // a pump is already queued or running
  lane->pump_scheduled = true;
  pool_.Post([this, lane]() { PumpLane(lane); });
}

void FleetService::PumpLane(VehicleLane* lane) {
  // Step up to pump_batch frames, then yield the worker: a flooded vehicle
  // reschedules itself behind the other lanes' pumps instead of starving
  // them. Only one pump per lane is ever scheduled (pump_scheduled), so the
  // monitor is touched by one thread at a time and sees frames in exactly
  // the admitted FIFO order - the per-vehicle half of the determinism story.
  TaggedFrame tagged;
  for (std::size_t n = 0; n < config_.pump_batch && lane->queue.TryPop(&tagged); ++n) {
    std::vector<core::Alarm> alarms = lane->monitor.OnFrame(tagged.frame);
    sink_.Complete(tagged.global_seq, tagged.vehicle_seq, lane->vehicle_id,
                   std::move(alarms));
  }

  // Reschedule-or-park must see the producer's push: both sides order their
  // queue access before taking pump_mu, so either the producer observes
  // pump_scheduled == true or this pump observes the non-empty queue.
  std::lock_guard<std::mutex> lock(lane->pump_mu);
  if (!lane->queue.Empty()) {
    pool_.Post([this, lane]() { PumpLane(lane); });
  } else {
    lane->pump_scheduled = false;
  }
}

bool FleetService::Submit(const telemetry::SensorFrame& frame) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  ++frames_submitted_;
  if (draining_) {
    ++frames_rejected_;
    return false;
  }
  VehicleLane* lane = LaneOfLocked(frame.vehicle_id());

  TaggedFrame tagged;
  tagged.global_seq = next_global_seq_;
  tagged.vehicle_seq = lane->next_vehicle_seq;
  tagged.frame = frame;
  const bool admitted = config_.backpressure == BackpressurePolicy::kBlock
                            ? lane->queue.Push(std::move(tagged))
                            : lane->queue.TryPush(std::move(tagged));
  if (!admitted) {
    // Shed (kReject on a full lane). The sequence numbers were not
    // consumed, so the ordered sink's contiguous release is unaffected.
    ++frames_rejected_;
    return false;
  }
  ++next_global_seq_;
  ++lane->next_vehicle_seq;
  ++frames_accepted_;
  SchedulePumpLocked(lane);
  return true;
}

void FleetService::Drain() {
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    if (drained_) return;
    draining_ = true;
    // Closing refuses nothing already admitted: pumps keep TryPop-draining
    // the buffered frames; only new pushes fail.
    for (auto& lane : lanes_) lane->queue.Close();
  }

  // Barrier: a non-empty lane always has a pump queued or running (Submit
  // schedules one on every admission; a pump re-posts itself while its lane
  // is non-empty), so an idle pool means every admitted frame has been
  // processed and completed into the sink.
  pool_.WaitIdle();

  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    // End-of-stream flush of each monitor's reorder buffer, in lane order -
    // deterministic because the drain barrier already passed.
    for (auto& lane : lanes_)
      sink_.AppendUnsequenced(lane->vehicle_id, lane->monitor.Flush());
    drained_ = true;
  }
}

core::FleetRunResult FleetService::TakeResult() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  NAVARCHOS_CHECK(drained_);
  core::FleetRunResult result;
  const auto [pw, pm] = config_.monitor.threshold.ResolvePersistence(
      transform::EffectiveStride(config_.monitor.transform,
                                 config_.monitor.transform_options));
  result.persistence_window = pw;
  result.persistence_min = pm;
  result.threshold_kind = config_.monitor.threshold.kind;
  result.alarms = std::move(sink_.alarms());
  result.scored_samples.reserve(lanes_.size());
  result.calibrations.reserve(lanes_.size());
  result.quality.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    result.scored_samples.push_back(lane->monitor.scored_samples());
    result.calibrations.push_back(lane->monitor.calibrations());
    result.quality.push_back(lane->monitor.quality());
    if (result.channel_names.empty())
      result.channel_names = lane->monitor.channel_names();
  }
  return result;
}

ServiceStats FleetService::stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    stats.frames_submitted = frames_submitted_;
    stats.frames_accepted = frames_accepted_;
    stats.frames_rejected = frames_rejected_;
  }
  stats.frames_processed = sink_.frames_processed();
  stats.alarms_emitted = sink_.alarms_emitted();
  return stats;
}

void FleetService::set_alarm_callback(AlarmCallback callback) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  NAVARCHOS_CHECK(next_global_seq_ == 0);  // before the first admission
  sink_.alarm_callback = std::move(callback);
}

void FleetService::set_completion_callback(CompletionCallback callback) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  NAVARCHOS_CHECK(next_global_seq_ == 0);
  sink_.completion_callback = std::move(callback);
}

std::size_t FleetService::vehicle_count() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return lanes_.size();
}

// ------------------------------------------------------------------- helpers

core::FleetRunResult RunStream(const std::vector<telemetry::SensorFrame>& stream,
                               const std::vector<std::int32_t>& vehicle_ids,
                               const ServiceConfig& config) {
  FleetService service(config);
  for (const std::int32_t id : vehicle_ids) service.RegisterVehicle(id);
  for (const telemetry::SensorFrame& frame : stream) service.Submit(frame);
  service.Drain();
  return service.TakeResult();
}

std::vector<std::int32_t> VehicleIdsOf(const telemetry::FleetDataset& fleet) {
  std::vector<std::int32_t> ids;
  ids.reserve(fleet.vehicles.size());
  for (const telemetry::VehicleHistory& vehicle : fleet.vehicles)
    ids.push_back(vehicle.spec.id);
  return ids;
}

}  // namespace navarchos::service
