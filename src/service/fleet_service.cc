#include "service/fleet_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "transform/transformer.h"
#include "util/check.h"

namespace navarchos::service {

namespace {

/// Layout version of the service-level snapshot chunks ("service", "sink",
/// "lane.<i>"), carried in the "service" chunk and bumped whenever any of
/// their encodings changes incompatibly. Version 2 added the lane's
/// last_global_seq (history-record attribution of end-of-stream flushes).
constexpr std::uint32_t kServiceStateVersion = 2;

/// Minimum encoded size of one alarm (fixed fields + empty name), used to
/// bound the alarm count claimed by a snapshot before allocating.
constexpr std::size_t kMinAlarmBytes = 4 + 8 + 8 + 4 + 8 + 8;

void SaveAlarm(persist::Encoder& encoder, const core::Alarm& alarm) {
  encoder.PutI32(alarm.vehicle_id);
  encoder.PutI64(alarm.timestamp);
  encoder.PutU64(alarm.channel);
  encoder.PutString(alarm.channel_name);
  encoder.PutDouble(alarm.score);
  encoder.PutDouble(alarm.threshold);
}

bool RestoreAlarm(persist::Decoder& decoder, core::Alarm* alarm) {
  alarm->vehicle_id = decoder.GetI32();
  alarm->timestamp = decoder.GetI64();
  alarm->channel = static_cast<std::size_t>(decoder.GetU64());
  alarm->channel_name = decoder.GetString();
  alarm->score = decoder.GetDouble();
  alarm->threshold = decoder.GetDouble();
  return decoder.ok();
}

}  // namespace

// ---------------------------------------------------------------- OrderedSink

void FleetService::OrderedSink::Complete(
    std::uint64_t global_seq, std::uint64_t vehicle_seq,
    std::int32_t vehicle_id, std::uint64_t admit_us,
    std::vector<core::Alarm> alarms,
    std::vector<history::HistoryRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  ++frames_processed_;
  if (frames_processed_counter_ != nullptr)
    frames_processed_counter_->IncrementSingleWriter();
  FrameCompletion completion;
  completion.global_seq = global_seq;
  completion.vehicle_seq = vehicle_seq;
  completion.vehicle_id = vehicle_id;
  completion.alarms = alarms.size();
  completion.admit_us = admit_us;
  pending_.emplace(global_seq, completion);
  pending_alarms_.emplace(global_seq, std::move(alarms));
  pending_records_.emplace(global_seq, std::move(records));

  // Release every completion that is now contiguous with the cursor. Worker
  // scheduling decides only when a completion *arrives*, never when it is
  // *released*: the release order is the admission order, always.
  auto it = pending_.find(next_release_);
  while (it != pending_.end()) {
    auto alarms_it = pending_alarms_.find(next_release_);
    for (core::Alarm& alarm : alarms_it->second) {
      if (alarm_callback) alarm_callback(alarm);
      if (alarms_counter_ != nullptr) alarms_counter_->IncrementSingleWriter();
      alarms_.push_back(std::move(alarm));
    }
    auto records_it = pending_records_.find(next_release_);
    if (history_callback)
      for (const history::HistoryRecord& record : records_it->second)
        history_callback(record);
    if (completion_callback) completion_callback(it->second);
    // Only sampled frames carry an admission timestamp (0 = unsampled),
    // which keeps the clock reads off the common per-frame path.
    if (latency_us_ != nullptr && it->second.admit_us != 0)
      latency_us_->Record(obs::MonotonicMicros() - it->second.admit_us);
    pending_records_.erase(records_it);
    pending_alarms_.erase(alarms_it);
    pending_.erase(it);
    ++next_release_;
    it = pending_.find(next_release_);
  }
}

void FleetService::OrderedSink::AppendUnsequenced(
    std::int32_t vehicle_id, std::vector<core::Alarm> alarms,
    std::vector<history::HistoryRecord> records) {
  (void)vehicle_id;
  std::lock_guard<std::mutex> lock(mu_);
  NAVARCHOS_CHECK(pending_.empty());  // only legal after the drain barrier
  for (core::Alarm& alarm : alarms) {
    if (alarm_callback) alarm_callback(alarm);
    if (alarms_counter_ != nullptr) alarms_counter_->IncrementSingleWriter();
    alarms_.push_back(std::move(alarm));
  }
  if (history_callback)
    for (const history::HistoryRecord& record : records)
      history_callback(record);
}

std::size_t FleetService::OrderedSink::frames_processed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_processed_;
}

std::size_t FleetService::OrderedSink::alarms_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alarms_.size();
}

void FleetService::OrderedSink::Save(persist::Encoder& encoder) const {
  std::lock_guard<std::mutex> lock(mu_);
  NAVARCHOS_CHECK(pending_.empty());  // checkpoint barrier already passed
  encoder.PutU64(next_release_);
  encoder.PutU64(frames_processed_);
  encoder.PutU64(alarms_.size());
  for (const core::Alarm& alarm : alarms_) SaveAlarm(encoder, alarm);
}

bool FleetService::OrderedSink::Restore(persist::Decoder& decoder) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t next_release = decoder.GetU64();
  const std::uint64_t frames_processed = decoder.GetU64();
  const std::uint64_t alarm_count = decoder.GetU64();
  if (!decoder.ok()) return false;
  if (alarm_count > decoder.remaining() / kMinAlarmBytes) {
    decoder.Fail("sink alarm count exceeds payload size");
    return false;
  }
  next_release_ = next_release;
  frames_processed_ = static_cast<std::size_t>(frames_processed);
  if (frames_processed_counter_ != nullptr)
    frames_processed_counter_->Set(frames_processed);
  if (alarms_counter_ != nullptr) alarms_counter_->Set(alarm_count);
  alarms_.clear();
  alarms_.reserve(static_cast<std::size_t>(alarm_count));
  for (std::uint64_t i = 0; i < alarm_count; ++i) {
    core::Alarm alarm;
    if (!RestoreAlarm(decoder, &alarm)) return false;
    alarms_.push_back(std::move(alarm));
  }
  return decoder.ok();
}

std::vector<core::Alarm> FleetService::OrderedSink::released() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alarms_;
}

void FleetService::OrderedSink::AttachMetrics(
    obs::Counter* frames_processed, obs::Counter* alarms_emitted,
    obs::Histogram* admission_to_release_us) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_processed_counter_ = frames_processed;
  alarms_counter_ = alarms_emitted;
  latency_us_ = admission_to_release_us;
}

// --------------------------------------------------------------- FleetService

FleetService::FleetService(const ServiceConfig& config)
    : config_(config),
      owned_pool_(config.shared_pool == nullptr
                      ? std::make_unique<runtime::ThreadPool>(
                            config.runtime.ResolveThreads())
                      : nullptr),
      pool_(config.shared_pool != nullptr ? config.shared_pool
                                          : owned_pool_.get()) {
  NAVARCHOS_CHECK(config_.queue_capacity >= 1);
  NAVARCHOS_CHECK(config_.pump_batch >= 1);
  // Wire the registry before anything can count: ingest counters, the
  // sink's mirrors and latency histogram, the shared ensemble metrics and
  // - for an owned pool - the pool's task metrics. A borrowed pool is
  // attached by its owner (shard::ShardGroup), not by every sharing
  // service.
  frames_submitted_ = metrics_.counter("service.frames_submitted");
  frames_accepted_ = metrics_.counter("service.frames_accepted");
  frames_rejected_ = metrics_.counter("service.frames_rejected");
  retrains_started_ = metrics_.counter("ensemble.retrains_started");
  retrains_completed_ = metrics_.counter("ensemble.retrains_completed");
  retrains_failed_ = metrics_.counter("ensemble.retrains_failed");
  suppressed_alarms_ =
      metrics_.counter("ensemble.consensus_suppressed_alarms");
  retrain_us_ = metrics_.histogram("ensemble.retrain_us");
  sink_.AttachMetrics(metrics_.counter("service.frames_processed"),
                      metrics_.counter("service.alarms_emitted"),
                      metrics_.histogram("service.admission_to_release_us"));
  if (owned_pool_ != nullptr) owned_pool_->AttachMetrics(&metrics_);
}

FleetService::~FleetService() { Drain(); }

FleetService::VehicleLane* FleetService::LaneOfLocked(std::int32_t vehicle_id) {
  const auto it = lane_index_.find(vehicle_id);
  if (it != lane_index_.end()) return lanes_[it->second].get();
  lanes_.push_back(std::make_unique<VehicleLane>(vehicle_id, config_.monitor,
                                                 config_.queue_capacity));
  // Ensemble retrains run as background tasks on the service pool. Wired
  // before any frame (and before RestoreFrom re-posts a pending fit), so
  // every fit of this lane goes through the same pool.
  lanes_.back()->monitor.set_background_pool(pool_);
  lanes_.back()->monitor.set_retrain_histogram(retrain_us_);
  // Keyed by vehicle id, not lane index, so per-lane gauges stay unique
  // when shard snapshots merge into one fleet view.
  lanes_.back()->depth_peak = metrics_.gauge(
      "service.lane.v" + std::to_string(vehicle_id) + ".depth_peak");
  lane_index_.emplace(vehicle_id, lanes_.size() - 1);
  return lanes_.back().get();
}

int FleetService::RegisterVehicle(std::int32_t vehicle_id) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  NAVARCHOS_CHECK(!draining_);
  LaneOfLocked(vehicle_id);
  return static_cast<int>(lane_index_.at(vehicle_id));
}

util::Status FleetService::TryRegisterVehicle(std::int32_t vehicle_id,
                                              int* lane_out) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (draining_) return util::Status::Error("service is draining");
  LaneOfLocked(vehicle_id);
  if (lane_out != nullptr)
    *lane_out = static_cast<int>(lane_index_.at(vehicle_id));
  return util::Status();
}

void FleetService::SchedulePumpLocked(VehicleLane* lane) {
  std::lock_guard<std::mutex> lock(lane->pump_mu);
  if (lane->pump_scheduled) return;  // a pump is already queued or running
  lane->pump_scheduled = true;
  pool_->Post([this, lane]() { PumpLane(lane); });
}

void FleetService::PumpLane(VehicleLane* lane) {
  // Step up to pump_batch frames, then yield the worker: a flooded vehicle
  // reschedules itself behind the other lanes' pumps instead of starving
  // them. Only one pump per lane is ever scheduled (pump_scheduled), so the
  // monitor is touched by one thread at a time and sees frames in exactly
  // the admitted FIFO order - the per-vehicle half of the determinism story.
  TaggedFrame tagged;
  for (std::size_t n = 0; n < config_.pump_batch && lane->queue.TryPop(&tagged); ++n) {
    std::vector<core::Alarm> alarms = lane->monitor.OnFrame(tagged.frame);
    std::vector<history::HistoryRecord> records;
    if (history_enabled_)
      records = BuildHistoryRecords(lane, alarms, tagged.global_seq);
    lane->last_global_seq = tagged.global_seq;
    sink_.Complete(tagged.global_seq, tagged.vehicle_seq, lane->vehicle_id,
                   tagged.admit_us, std::move(alarms), std::move(records));
  }

  // Reschedule-or-park must see the producer's push: both sides order their
  // queue access before taking pump_mu, so either the producer observes
  // pump_scheduled == true or this pump observes the non-empty queue.
  std::lock_guard<std::mutex> lock(lane->pump_mu);
  if (!lane->queue.Empty()) {
    pool_->Post([this, lane]() { PumpLane(lane); });
  } else {
    lane->pump_scheduled = false;
  }
}

bool FleetService::Submit(const telemetry::SensorFrame& frame) {
  return Ingest(frame).accepted();
}

Admission FleetService::Ingest(const telemetry::SensorFrame& frame) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  ingest_started_ = true;
  frames_submitted_->IncrementSingleWriter();
  Admission admission;
  admission.vehicle_id = frame.vehicle_id();
  if (draining_) {
    frames_rejected_->IncrementSingleWriter();
    admission.code = AdmissionCode::kShedDraining;
    return admission;
  }
  VehicleLane* lane = LaneOfLocked(frame.vehicle_id());
  admission.lane = static_cast<int>(lane_index_.at(frame.vehicle_id()));
  admission.vehicle_seq = lane->next_vehicle_seq;

  TaggedFrame tagged;
  tagged.global_seq = next_global_seq_;
  tagged.vehicle_seq = lane->next_vehicle_seq;
  // Observability sampling: one frame in kLatencySamplePeriod (by global
  // sequence, so the sampled set is identical across runs) carries an
  // admission timestamp and probes the lane depth. Unsampled frames keep
  // admit_us = 0 and skip the probes entirely, which keeps the clock
  // read and the queue-mutex depth probe off the common per-frame path.
  const bool sampled = next_global_seq_ % kLatencySamplePeriod == 0;
  if (sampled) tagged.admit_us = obs::MonotonicMicros();
  tagged.frame = frame;
  const bool admitted = config_.backpressure == BackpressurePolicy::kBlock
                            ? lane->queue.Push(std::move(tagged))
                            : lane->queue.TryPush(std::move(tagged));
  if (!admitted) {
    // Shed (kReject on a full lane). The sequence numbers were not
    // consumed, so the ordered sink's contiguous release is unaffected.
    frames_rejected_->IncrementSingleWriter();
    admission.code = AdmissionCode::kShedQueueFull;
    return admission;
  }
  admission.code = AdmissionCode::kAccepted;
  admission.global_seq = next_global_seq_;
  ++next_global_seq_;
  ++lane->next_vehicle_seq;
  frames_accepted_->IncrementSingleWriter();
  // The pump may already have popped the frame, and only sampled frames
  // probe, so this is a lower bound on the instantaneous depth - which
  // only makes the recorded high-water mark conservative, never wrong.
  if (sampled) lane->depth_peak->UpdateMax(lane->queue.size());
  SchedulePumpLocked(lane);
  return admission;
}

void FleetService::Drain() {
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    if (drained_) return;
    draining_ = true;
    // Closing refuses nothing already admitted: pumps keep TryPop-draining
    // the buffered frames; only new pushes fail.
    for (auto& lane : lanes_) lane->queue.Close();
  }

  // Barrier: a non-empty lane always has a pump queued or running (Submit
  // schedules one on every admission; a pump re-posts itself while its lane
  // is non-empty), so an idle pool means every admitted frame has been
  // processed and completed into the sink.
  pool_->WaitIdle();

  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    // End-of-stream flush of each monitor's reorder buffer, in lane order -
    // deterministic because the drain barrier already passed. Flush records
    // are attributed to the lane's last pumped frame (its global seq never
    // decreases within a vehicle, so the log stays delta-encodable).
    for (auto& lane : lanes_) {
      std::vector<core::Alarm> alarms = lane->monitor.Flush();
      std::vector<history::HistoryRecord> records;
      if (history_enabled_)
        records =
            BuildHistoryRecords(lane.get(), alarms, lane->last_global_seq);
      sink_.AppendUnsequenced(lane->vehicle_id, std::move(alarms),
                              std::move(records));
    }
    drained_ = true;
  }
}

core::FleetRunResult FleetService::TakeResult() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  NAVARCHOS_CHECK(drained_);
  core::FleetRunResult result;
  const auto [pw, pm] = config_.monitor.threshold.ResolvePersistence(
      transform::EffectiveStride(config_.monitor.transform,
                                 config_.monitor.transform_options));
  result.persistence_window = pw;
  result.persistence_min = pm;
  result.threshold_kind = config_.monitor.threshold.kind;
  result.alarms = std::move(sink_.alarms());
  result.scored_samples.reserve(lanes_.size());
  result.calibrations.reserve(lanes_.size());
  result.quality.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    result.scored_samples.push_back(lane->monitor.scored_samples());
    result.calibrations.push_back(lane->monitor.calibrations());
    result.quality.push_back(lane->monitor.quality());
    result.ensemble_stats.push_back(lane->monitor.ensemble_stats());
    if (result.channel_names.empty())
      result.channel_names = lane->monitor.channel_names();
  }
  return result;
}

ServiceStats FleetService::stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    stats.frames_submitted =
        static_cast<std::size_t>(frames_submitted_->value());
    stats.frames_accepted =
        static_cast<std::size_t>(frames_accepted_->value());
    stats.frames_rejected =
        static_cast<std::size_t>(frames_rejected_->value());
    // The per-lane ensemble counters are relaxed atomics, so reading them
    // while pumps run is safe; the totals are exact after Drain().
    for (const auto& lane : lanes_) {
      const ensemble::EnsembleStats ensemble = lane->monitor.ensemble_stats();
      stats.retrains_started += ensemble.retrains_started;
      stats.retrains_completed += ensemble.retrains_completed;
      stats.retrains_failed += ensemble.retrains_failed;
      stats.consensus_suppressed_alarms +=
          ensemble.consensus_suppressed_alarms;
    }
  }
  stats.frames_processed = sink_.frames_processed();
  stats.alarms_emitted = sink_.alarms_emitted();
  return stats;
}

obs::StatsSnapshot FleetService::SnapshotStats() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  // The fleet-wide ensemble totals live in per-lane atomics (they travel
  // with each lane through checkpoints); mirror them into the registry's
  // derived counters right before snapshotting so the snapshot is
  // self-contained. Set, not Add: the lane atomics stay authoritative.
  std::uint64_t started = 0, completed = 0, failed = 0, suppressed = 0;
  for (const auto& lane : lanes_) {
    const ensemble::EnsembleStats ensemble = lane->monitor.ensemble_stats();
    started += ensemble.retrains_started;
    completed += ensemble.retrains_completed;
    failed += ensemble.retrains_failed;
    suppressed += ensemble.consensus_suppressed_alarms;
  }
  retrains_started_->Set(started);
  retrains_completed_->Set(completed);
  retrains_failed_->Set(failed);
  suppressed_alarms_->Set(suppressed);
  return metrics_.Snapshot();
}

void FleetService::set_alarm_callback(AlarmCallback callback) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  // Before the first Submit - but a restored service carries sequence
  // numbers from its previous life, so the guard is on local ingest, not on
  // next_global_seq_.
  NAVARCHOS_CHECK(!ingest_started_);
  sink_.alarm_callback = std::move(callback);
}

void FleetService::set_completion_callback(CompletionCallback callback) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  NAVARCHOS_CHECK(!ingest_started_);
  sink_.completion_callback = std::move(callback);
}

void FleetService::set_history_callback(HistoryCallback callback) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  NAVARCHOS_CHECK(!ingest_started_);
  // Pumps read the flag without ingest_mu_, but every pump task is posted
  // under it, so the pool's task handoff publishes the write.
  history_enabled_ = static_cast<bool>(callback);
  sink_.history_callback = std::move(callback);
}

void FleetService::set_checkpoint_barrier(
    std::function<util::Status()> barrier) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  NAVARCHOS_CHECK(!ingest_started_);
  checkpoint_barrier_ = std::move(barrier);
}

std::vector<history::HistoryRecord> FleetService::BuildHistoryRecords(
    VehicleLane* lane, const std::vector<core::Alarm>& alarms,
    std::uint64_t global_seq) {
  std::vector<history::HistoryRecord> records;
  const std::vector<core::ScoredSample>& samples =
      lane->monitor.scored_samples();
  const std::vector<core::CalibrationStats>& calibrations =
      lane->monitor.calibrations();
  for (std::size_t i = lane->history_cursor; i < samples.size(); ++i) {
    const core::ScoredSample& sample = samples[i];
    history::HistoryRecord record;
    record.vehicle_id = lane->vehicle_id;
    record.global_seq = global_seq;
    record.timestamp = sample.timestamp;
    record.votes = sample.votes;
    record.ensemble_live = sample.ensemble_live < 0
                               ? 0u
                               : static_cast<std::uint32_t>(sample.ensemble_live);

    // Mirror the monitor's own threshold computation (constant-threshold
    // detectors use the config's constant, self-tuning ones its factor) so
    // the logged threshold is bit-identical to the alarming one.
    const std::size_t channels = sample.scores.size();
    std::vector<double> thresholds(channels, 0.0);
    if (sample.calibration_index >= 0 &&
        static_cast<std::size_t>(sample.calibration_index) <
            calibrations.size()) {
      const core::CalibrationStats& stats =
          calibrations[static_cast<std::size_t>(sample.calibration_index)];
      const double factor_or_constant = stats.constant_threshold
                                            ? config_.monitor.threshold.constant
                                            : config_.monitor.threshold.factor;
      for (std::size_t c = 0; c < channels; ++c)
        thresholds[c] =
            stats.ThresholdOf(c, config_.monitor.threshold.kind,
                              factor_or_constant);
    }

    // Channels by severity (score relative to threshold) descending, ties
    // to the lower index; non-finite ratios sort last. Deterministic by
    // construction - no float accumulation across threads.
    const auto severity = [&](std::size_t c) {
      const double ratio = thresholds[c] > 0.0
                               ? sample.scores[c] / thresholds[c]
                               : sample.scores[c];
      return std::isnan(ratio) ? -std::numeric_limits<double>::infinity()
                               : ratio;
    };
    std::vector<std::size_t> order(channels);
    for (std::size_t c = 0; c < channels; ++c) order[c] = c;
    std::sort(order.begin(), order.end(),
              [&severity](std::size_t a, std::size_t b) {
                const double sa = severity(a);
                const double sb = severity(b);
                if (sa != sb) return sa > sb;
                return a < b;
              });
    if (!order.empty()) {
      record.score = sample.scores[order[0]];
      record.threshold = thresholds[order[0]];
    }
    const std::size_t top_k = std::min(
        {config_.history_top_k, channels, history::kMaxTopChannels});
    record.top_channels.reserve(top_k);
    for (std::size_t c = 0; c < top_k; ++c)
      record.top_channels.push_back(static_cast<std::uint32_t>(order[c]));

    for (const core::Alarm& alarm : alarms) {
      if (alarm.timestamp == sample.timestamp) {
        record.alarm = true;
        break;
      }
    }
    records.push_back(std::move(record));
  }
  lane->history_cursor = samples.size();
  return records;
}

std::size_t FleetService::vehicle_count() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return lanes_.size();
}

std::size_t FleetService::ensemble_state_bytes() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->monitor.ensemble_bytes();
  return total;
}

// --------------------------------------------------------- checkpoint/restore

void FleetService::SaveLocked(persist::Snapshot* snapshot) const {
  // "service" chunk: version, cursors and counters, lane count.
  persist::Encoder service_encoder;
  service_encoder.PutU32(kServiceStateVersion);
  service_encoder.PutU64(next_global_seq_);
  service_encoder.PutU64(frames_submitted_->value());
  service_encoder.PutU64(frames_accepted_->value());
  service_encoder.PutU64(frames_rejected_->value());
  service_encoder.PutU64(lanes_.size());
  snapshot->Add("service", std::move(service_encoder));

  // "sink" chunk: release cursor and the released alarms in total order.
  persist::Encoder sink_encoder;
  sink_.Save(sink_encoder);
  snapshot->Add("sink", std::move(sink_encoder));

  // One "lane.<i>" chunk per registered vehicle, in registration order, so a
  // restore recreates the same lane indices (TakeResult alignment).
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const VehicleLane& lane = *lanes_[i];
    persist::Encoder lane_encoder;
    lane_encoder.PutI32(lane.vehicle_id);
    lane_encoder.PutU64(lane.next_vehicle_seq);
    lane_encoder.PutU64(lane.last_global_seq);
    lane.monitor.Save(lane_encoder);
    snapshot->Add("lane." + std::to_string(i), std::move(lane_encoder));
  }
}

util::Status FleetService::Checkpoint(const std::string& path) {
  // Holding ingest_mu_ blocks new admissions; the pumps do not need it, so
  // they drain every already-admitted frame and the pool falls idle - at
  // which point the sink has released everything (no pending completions)
  // and every monitor is between frames. That is exactly the state a
  // restarted service must resume from.
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (draining_ || drained_)
    return util::Status::Error("checkpoint: service is draining or drained");
  pool_->WaitIdle();
  if (checkpoint_barrier_) {
    // Make dependent state (the history log) durable BEFORE the snapshot:
    // whichever of the two files a crash leaves behind, the log always
    // covers at least the surviving checkpoint, so a restore's replay can
    // re-emit the difference and never has to invent lost records.
    const util::Status status = checkpoint_barrier_();
    if (!status.ok())
      return util::Status::Error("checkpoint barrier failed: " +
                                 status.message());
  }
  persist::Snapshot snapshot;
  SaveLocked(&snapshot);
  return persist::WriteSnapshot(path, snapshot);
}

util::Status FleetService::RestoreFrom(const persist::Snapshot& snapshot) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (ingest_started_ || next_global_seq_ != 0 || !lanes_.empty() || draining_)
    return util::Status::Error("restore: service is not fresh");

  const persist::SnapshotChunk* service_chunk = snapshot.Find("service");
  if (service_chunk == nullptr)
    return util::Status::Error("restore: snapshot has no \"service\" chunk");
  persist::Decoder service_decoder(service_chunk->payload.data(),
                                   service_chunk->payload.size());
  const std::uint32_t version = service_decoder.GetU32();
  if (service_decoder.ok() && version != kServiceStateVersion) {
    return util::Status::Error(
        "restore: unsupported service state version " + std::to_string(version) +
        " (expected " + std::to_string(kServiceStateVersion) + ")");
  }
  const std::uint64_t next_global_seq = service_decoder.GetU64();
  const std::uint64_t frames_submitted = service_decoder.GetU64();
  const std::uint64_t frames_accepted = service_decoder.GetU64();
  const std::uint64_t frames_rejected = service_decoder.GetU64();
  const std::uint64_t lane_count = service_decoder.GetU64();
  util::Status status = service_decoder.ToStatus("service chunk");
  if (!status.ok()) return status;
  if (lane_count > snapshot.chunks().size())
    return util::Status::Error("restore: service chunk claims " +
                               std::to_string(lane_count) +
                               " lanes but the snapshot has only " +
                               std::to_string(snapshot.chunks().size()) +
                               " chunks");

  // Lanes in saved registration order, each with its monitor state.
  for (std::uint64_t i = 0; i < lane_count; ++i) {
    const std::string tag = "lane." + std::to_string(i);
    const persist::SnapshotChunk* chunk = snapshot.Find(tag);
    if (chunk == nullptr)
      return util::Status::Error("restore: snapshot has no \"" + tag + "\" chunk");
    persist::Decoder decoder(chunk->payload.data(), chunk->payload.size());
    const std::int32_t vehicle_id = decoder.GetI32();
    const std::uint64_t next_vehicle_seq = decoder.GetU64();
    const std::uint64_t last_global_seq = decoder.GetU64();
    if (decoder.ok() && lane_index_.count(vehicle_id) != 0)
      decoder.Fail("duplicate vehicle id " + std::to_string(vehicle_id));
    if (!decoder.ok()) return decoder.ToStatus(tag + " chunk");
    VehicleLane* lane = LaneOfLocked(vehicle_id);
    lane->next_vehicle_seq = next_vehicle_seq;
    lane->last_global_seq = last_global_seq;
    if (!lane->monitor.Restore(decoder)) return decoder.ToStatus(tag + " chunk");
    status = decoder.ToStatus(tag + " chunk");
    if (!status.ok()) return status;
    // Samples restored with the monitor were already released (and logged,
    // when a history writer was attached) before the checkpoint.
    lane->history_cursor = lane->monitor.scored_samples().size();
  }

  const persist::SnapshotChunk* sink_chunk = snapshot.Find("sink");
  if (sink_chunk == nullptr)
    return util::Status::Error("restore: snapshot has no \"sink\" chunk");
  persist::Decoder sink_decoder(sink_chunk->payload.data(),
                                sink_chunk->payload.size());
  if (!sink_.Restore(sink_decoder)) return sink_decoder.ToStatus("sink chunk");
  status = sink_decoder.ToStatus("sink chunk");
  if (!status.ok()) return status;

  // Quiescence invariants of a checkpoint: everything admitted was released.
  if (sink_.frames_processed() != frames_accepted)
    return util::Status::Error(
        "restore: snapshot inconsistent (processed " +
        std::to_string(sink_.frames_processed()) + " frames, accepted " +
        std::to_string(frames_accepted) + ")");

  next_global_seq_ = next_global_seq;
  frames_submitted_->Set(frames_submitted);
  frames_accepted_->Set(frames_accepted);
  frames_rejected_->Set(frames_rejected);
  return util::Status();
}

util::Status FleetService::RestoreFromFile(const std::string& path) {
  persist::Snapshot snapshot;
  util::Status status = persist::ReadSnapshot(path, &snapshot);
  if (!status.ok()) return status;
  return RestoreFrom(snapshot);
}

std::vector<core::Alarm> FleetService::released_alarms() const {
  return sink_.released();
}

// ------------------------------------------------------------------- helpers

core::FleetRunResult RunStream(const std::vector<telemetry::SensorFrame>& stream,
                               const std::vector<std::int32_t>& vehicle_ids,
                               const ServiceConfig& config) {
  FleetService service(config);
  for (const std::int32_t id : vehicle_ids) service.RegisterVehicle(id);
  for (const telemetry::SensorFrame& frame : stream) service.Submit(frame);
  service.Drain();
  return service.TakeResult();
}

std::vector<std::int32_t> VehicleIdsOf(const telemetry::FleetDataset& fleet) {
  std::vector<std::int32_t> ids;
  ids.reserve(fleet.vehicles.size());
  for (const telemetry::VehicleHistory& vehicle : fleet.vehicles)
    ids.push_back(vehicle.spec.id);
  return ids;
}

}  // namespace navarchos::service
