// Streaming fleet service: live, multiplexed monitoring of many vehicles.
//
// The batch runner (core::RunFleet) consumes pre-materialised per-vehicle
// histories; a deployed fleet platform instead sees one interleaved feed of
// SensorFrames from all vehicles at once. FleetService is that serving
// layer: each submitted frame is routed to a bounded per-vehicle ingest
// queue (backpressure instead of unbounded buffering), per-vehicle pump
// tasks on a shared runtime::ThreadPool step the vehicle's VehicleMonitor
// frame by frame, and alarms leave through an ordered sink that restores
// one deterministic total order.
//
// Determinism contract (the replay-equals-live invariant): for a given
// submission sequence, the service's complete output - alarms in order,
// scored samples, calibrations, DataQualityReports - is bit-identical at
// any worker thread count, and bit-identical between a live run and any
// later replay of the same recorded stream. Three conventions make this
// hold, mirroring the batch runtime:
//   * per-vehicle FIFO lanes: a vehicle's frames are processed in
//     submission order by exactly one pump at a time, so each monitor sees
//     the same sequence a serial run would feed it;
//   * index-aligned slots: per-vehicle results live in the lane's own
//     state and are collected in registration order after the drain
//     barrier, never in completion order;
//   * sequence numbers: every accepted frame takes a global ingest
//     sequence number (and a per-vehicle one), and the ordered sink
//     releases alarms in contiguous global-sequence order - a total-order
//     merge that no worker interleaving can perturb.
#ifndef NAVARCHOS_SERVICE_FLEET_SERVICE_H_
#define NAVARCHOS_SERVICE_FLEET_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/fleet_runner.h"
#include "core/monitor.h"
#include "history/history_log.h"
#include "obs/metrics.h"
#include "persist/snapshot.h"
#include "runtime/bounded_queue.h"
#include "runtime/runtime_config.h"
#include "runtime/thread_pool.h"
#include "telemetry/stream.h"
#include "util/status.h"

/// \file
/// \brief FleetService, the streaming serving layer: per-vehicle bounded
/// ingest queues, monitor pumps on a shared thread pool, and a
/// deterministic ordered alarm sink (replay equals live at any thread
/// count).

/// \namespace navarchos::service
/// \brief The streaming serving layer: FleetService and its stream-replay
/// helpers, turning the batch monitoring core into a live multi-vehicle
/// service with deterministic (replay-equals-live) output.

namespace navarchos::service {

/// What Submit does when a vehicle's ingest queue is full.
enum class BackpressurePolicy : int {
  /// Block the submitting thread until the pump frees space. Lossless:
  /// required for the replay-equals-live determinism guarantee.
  kBlock = 0,
  /// Refuse the frame immediately (Submit returns false and the frame is
  /// counted in ServiceStats::frames_rejected). Load-shedding mode for
  /// ingest paths that must never stall; which frames are shed depends on
  /// timing, so rejected runs are NOT replay-deterministic.
  kReject = 1,
};

/// Configuration of a streaming fleet service.
struct ServiceConfig {
  /// Monitor pipeline instantiated per vehicle (one VehicleMonitor each).
  core::MonitorConfig monitor;
  /// Worker threads of the shared monitor pool (0 = all hardware threads).
  /// Results are bit-identical at any value; only wall-clock changes.
  runtime::RuntimeConfig runtime;
  /// Frames buffered per vehicle before backpressure engages.
  std::size_t queue_capacity = 256;
  /// Full-queue behaviour; see BackpressurePolicy.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Frames a pump task processes before rescheduling itself, so one
  /// flooded vehicle cannot monopolise a worker while others wait.
  std::size_t pump_batch = 64;
  /// Borrowed worker pool. When non-null the service posts its pump tasks
  /// here instead of owning a pool, so N sharded services can share one
  /// pool (src/shard). The pool must outlive the service, and WaitIdle on
  /// it quiesces every sharing service at once - a coarser but still
  /// correct drain/checkpoint barrier. Null (the default) keeps the
  /// one-pool-per-service behaviour, sized by `runtime`.
  runtime::ThreadPool* shared_pool = nullptr;
  /// Contributing score channels recorded per history entry (worst first)
  /// when a history callback is installed; see set_history_callback.
  std::size_t history_top_k = 4;
};

/// Counters of one service run. Totals are exact after Drain().
///
/// Reset semantics: counters survive Drain() (a drained service still
/// reports its lifetime totals) and are zeroed only by constructing a
/// fresh service; RestoreFrom reinstates the checkpointed values. The
/// values are views over the service's obs::MetricsRegistry (see
/// FleetService::metrics()), which is the single source of truth.
struct ServiceStats {
  std::size_t frames_submitted = 0;  ///< All frames offered to Submit.
  std::size_t frames_accepted = 0;   ///< Admitted to an ingest queue.
  std::size_t frames_rejected = 0;   ///< Shed by the kReject policy.
  std::size_t frames_processed = 0;  ///< Stepped through a monitor.
  std::size_t alarms_emitted = 0;    ///< Released by the ordered sink.
  /// Ensemble member fits posted (or run inline), fleet-wide. All four
  /// ensemble counters stay zero while the ensemble is disabled.
  std::uint64_t retrains_started = 0;
  std::uint64_t retrains_completed = 0;  ///< Members swapped in successfully.
  std::uint64_t retrains_failed = 0;     ///< Fits that failed; member kept.
  /// Alarm candidates vetoed by the M-of-K consensus vote.
  std::uint64_t consensus_suppressed_alarms = 0;
};

/// One frame's completion notice, delivered in global-sequence order.
struct FrameCompletion {
  std::uint64_t global_seq = 0;   ///< Ingest sequence number of the frame.
  std::uint64_t vehicle_seq = 0;  ///< Per-vehicle sequence number.
  std::int32_t vehicle_id = 0;    ///< Vehicle the frame belonged to.
  std::size_t alarms = 0;         ///< Alarms this frame raised.
  /// Admission time (obs::MonotonicMicros) when the frame was sampled for
  /// the latency histogram, 0 otherwise. Observe-only.
  std::uint64_t admit_us = 0;
};

/// Outcome class of one frame's admission decision.
enum class AdmissionCode : int {
  kAccepted = 0,      ///< Admitted to its lane; sequence numbers assigned.
  kShedQueueFull = 1, ///< Shed: the lane was full under the kReject policy.
  kShedDraining = 2,  ///< Shed: the service was already draining/drained.
};

/// Per-frame admission result of Ingest: every shed frame is attributable
/// (which vehicle, which per-vehicle slot, why), and every accepted frame
/// carries the sequence numbers under which its completion and alarms will
/// later be released - the hook a network front end needs to ACK/NACK
/// frames by sequence number.
struct Admission {
  AdmissionCode code = AdmissionCode::kShedDraining;  ///< Decision.
  /// Global ingest sequence number (valid only when accepted).
  std::uint64_t global_seq = 0;
  /// Per-vehicle sequence number the frame took (accepted) or would have
  /// taken (shed): the lane-local slot the decision is attributable to.
  std::uint64_t vehicle_seq = 0;
  /// Vehicle the frame belonged to.
  std::int32_t vehicle_id = 0;
  /// Lane index of the vehicle (-1 when the frame was shed before routing,
  /// i.e. while draining).
  int lane = -1;

  /// True when the frame was admitted.
  bool accepted() const { return code == AdmissionCode::kAccepted; }
};

/// Observer of alarms as the ordered sink releases them (live consumers).
/// Invoked in the deterministic total order, possibly from worker threads
/// (never concurrently with itself).
using AlarmCallback = std::function<void(const core::Alarm&)>;

/// Observer of per-frame completions in global-sequence order; same
/// threading rules as AlarmCallback. Used by the throughput bench to
/// measure per-frame latency.
using CompletionCallback = std::function<void(const FrameCompletion&)>;

/// Observer of history records as the ordered sink releases them: one
/// record per scored sample, in the deterministic total order (same
/// threading rules as AlarmCallback - possibly from worker threads, never
/// concurrently with itself). The intended target is
/// history::HistoryService::Append, which makes the anomaly log's order
/// equal the sink's release order at any thread count.
using HistoryCallback = std::function<void(const history::HistoryRecord&)>;

/// The streaming fleet service. Typical lifecycle:
///
/// \code
///   FleetService svc(config);
///   for (auto id : vehicle_ids) svc.RegisterVehicle(id);
///   while (feed.Next(&frame)) svc.Submit(frame);   // live ingest
///   svc.Drain();                                   // graceful shutdown
///   core::FleetRunResult result = svc.TakeResult();
/// \endcode
///
/// Threading: Submit/RegisterVehicle are serialised internally and may be
/// called from any thread, but the deterministic-output guarantee is
/// defined over the admission order, so a replayable deployment uses one
/// ingest thread (multiplexing upstream), as real telemetry gateways do.
/// Drain() must be called by an ingest thread, never from a callback.
class FleetService {
 public:
  /// Builds the service and starts its worker pool.
  explicit FleetService(const ServiceConfig& config);

  /// Drains (if Drain was not called) and stops the workers.
  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  /// Creates the vehicle's monitor and ingest lane; returns the lane index
  /// (the vehicle's slot in TakeResult()'s index-aligned vectors).
  /// Registering an already-known vehicle returns its existing lane.
  /// Registering while draining is a programming error (CHECK); callers
  /// that cannot rule it out use TryRegisterVehicle.
  int RegisterVehicle(std::int32_t vehicle_id);

  /// RegisterVehicle for callers racing Drain(): refuses with an error
  /// status instead of aborting when the service is draining. On success
  /// writes the lane index to `lane_out` (when non-null). Network front
  /// ends use this so a client connecting during shutdown gets a clean
  /// protocol error, not a server crash.
  util::Status TryRegisterVehicle(std::int32_t vehicle_id,
                                  int* lane_out = nullptr);

  /// Submits one live frame, routing it to its vehicle's lane (unknown
  /// vehicles are auto-registered in first-seen order). Returns true when
  /// the frame was admitted; false when it was shed (kReject policy with a
  /// full lane) or the service is already draining. Under kBlock a full
  /// lane makes Submit wait for the pump - that stall is the backpressure.
  /// Equivalent to Ingest(frame).accepted().
  bool Submit(const telemetry::SensorFrame& frame);

  /// Submit with a full per-frame admission result: the decision, the
  /// sequence numbers an accepted frame was tagged with, and - for shed
  /// frames - which vehicle slot the shed is attributable to. Network
  /// front ends use this to ACK accepted frames and NACK sheds by
  /// sequence number instead of collapsing the outcome to a bool.
  Admission Ingest(const telemetry::SensorFrame& frame);

  /// Graceful shutdown: refuses further submissions, waits until every
  /// admitted frame has been processed and its alarms released, then
  /// flushes each monitor's reorder buffer (in lane order) through the
  /// sink. Idempotent. After Drain the service is quiescent: stats() are
  /// final and TakeResult() may be called.
  void Drain();

  /// Moves the accumulated run result out of the service: alarms in the
  /// deterministic total order, plus per-vehicle scored samples,
  /// calibrations and DataQualityReports index-aligned with lane
  /// registration order - the same shape core::RunFleet returns, so batch
  /// and streaming runs are directly comparable. Requires Drain() first.
  core::FleetRunResult TakeResult();

  /// Run counters; exact once Drain() returned.
  ServiceStats stats() const;

  /// Sampling period of the admission-to-release latency histogram: one
  /// frame in every kLatencySamplePeriod (by global ingest sequence) is
  /// timestamped at admission and recorded at release. Sampling keeps the
  /// two clock reads off the per-frame hot path; the sampled *set* is a
  /// pure function of the global sequence, so which frames carry a
  /// timestamp is deterministic even though the recorded durations are
  /// wall-clock. The histogram remains observe-only either way.
  static constexpr std::uint64_t kLatencySamplePeriod = 16;

  /// The service's metrics registry: every layer wired to this service
  /// (ingest, sink, pool, ensemble, server front end, history) registers
  /// its counters/gauges/histograms here. Observe-only by contract -
  /// nothing in the service reads a metric to make a decision, so
  /// enabling observability cannot perturb the deterministic output.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// Point-in-time snapshot of every registered metric. Refreshes the
  /// derived ensemble counters (summed from the per-lane atomics) first,
  /// then snapshots the registry. Callable any time; the numbers are a
  /// consistent final total once the service is quiescent (drained, or
  /// between Submit calls with the pool idle).
  obs::StatsSnapshot SnapshotStats();

  /// Installs a live alarm observer. Must be set before the first Submit.
  void set_alarm_callback(AlarmCallback callback);

  /// Installs a per-frame completion observer. Must be set before the
  /// first Submit.
  void set_completion_callback(CompletionCallback callback);

  /// Installs the anomaly-history observer: one history::HistoryRecord per
  /// scored sample (score/threshold of the worst channel, the alarm bit,
  /// and the config's history_top_k worst channel indices), delivered in
  /// the ordered sink's deterministic total order. Must be set before the
  /// first Submit. Record construction is skipped entirely when no
  /// callback is installed.
  void set_history_callback(HistoryCallback callback);

  /// Installs a barrier run inside every Checkpoint after the quiesce
  /// (WaitIdle) and before the snapshot is written - with ingest blocked
  /// and every released record already delivered to the callbacks. The
  /// intended use is flushing an attached history log so a checkpoint
  /// never claims coverage the log has not made durable: after a crash,
  /// the log provably holds every record below the checkpoint, and the
  /// restore's replay re-emits only what followed (duplicates are skipped
  /// by the writer's cursor). A failing barrier fails the Checkpoint
  /// without writing the snapshot. Must be set before the first Submit.
  void set_checkpoint_barrier(std::function<util::Status()> barrier);

  /// Number of registered vehicles (lanes).
  std::size_t vehicle_count() const;

  /// Total encoded bytes of every lane's rolling-ensemble state (the
  /// bytes/vehicle memory metric; 0 when the ensemble is disabled). Only
  /// valid while the service is quiescent - drained, or between Submit
  /// calls with the pool idle - because it serialises each lane's ensemble.
  std::size_t ensemble_state_bytes() const;

  /// Durable checkpoint: blocks new submissions, waits until every admitted
  /// frame has been processed and released (WaitIdle barrier), writes a
  /// snapshot of the complete service state to `path` atomically, then
  /// resumes ingest. The stream may continue afterwards - a later restore
  /// from this snapshot replays the remaining frames bit-identically to the
  /// uninterrupted run at any thread count. Fails while draining/drained.
  util::Status Checkpoint(const std::string& path);

  /// Restores a checkpoint into this service. Only legal on a fresh service
  /// (no registrations or submissions yet) built with the same monitor
  /// configuration as the checkpointing one; lanes are recreated in their
  /// registration order and every monitor, sequence counter and released
  /// alarm is reinstated. On error the service must be discarded.
  util::Status RestoreFrom(const persist::Snapshot& snapshot);

  /// Reads `path` and delegates to RestoreFrom.
  util::Status RestoreFromFile(const std::string& path);

  /// Copy of the alarms released by the ordered sink so far (total order).
  /// Stable only while quiescent (after Drain, after a restore, or inside
  /// no ingest); used to re-emit alarm logs after a restore.
  std::vector<core::Alarm> released_alarms() const;

 private:
  /// A frame admitted to a lane, tagged with its sequence numbers.
  struct TaggedFrame {
    std::uint64_t global_seq = 0;
    std::uint64_t vehicle_seq = 0;
    /// Admission time (obs::MonotonicMicros), consumed by the sink's
    /// admission-to-release latency histogram. Stamped only for sampled
    /// frames (global_seq % kLatencySamplePeriod == 0); 0 = unsampled.
    /// Observe-only.
    std::uint64_t admit_us = 0;
    telemetry::SensorFrame frame;
  };

  /// One vehicle's ingest lane: its queue, monitor and pump-schedule flag.
  struct VehicleLane {
    VehicleLane(std::int32_t id, const core::MonitorConfig& config,
                std::size_t capacity)
        : vehicle_id(id), monitor(id, config), queue(capacity) {}

    const std::int32_t vehicle_id;
    core::VehicleMonitor monitor;  ///< Touched only by the lane's active pump.
    runtime::BoundedQueue<TaggedFrame> queue;
    std::mutex pump_mu;            ///< Guards pump_scheduled.
    bool pump_scheduled = false;   ///< A pump task is queued or running.
    std::uint64_t next_vehicle_seq = 0;  ///< Producer side (under ingest_mu_).
    /// High-water mark of this lane's queue depth
    /// (`service.lane.v<id>.depth_peak`), probed on sampled admissions
    /// (1 in kLatencySamplePeriod), so the mark is conservative.
    obs::Gauge* depth_peak = nullptr;
    /// Scored samples already turned into history records (pump-owned).
    std::size_t history_cursor = 0;
    /// Global seq of the lane's last pumped frame: the seq end-of-stream
    /// flush records are attributed to. Persisted in checkpoints so a
    /// restored run attributes its flush records identically.
    std::uint64_t last_global_seq = 0;
  };

  /// Restores the deterministic total order: completions buffer until
  /// their global sequence number is next, then release contiguously.
  class OrderedSink {
   public:
    /// Records the completion of frame `global_seq` and releases every
    /// contiguous completion from the release cursor onwards. `records`
    /// are the frame's history records, released (history callback) in
    /// the same deterministic order as its alarms. `admit_us` is the
    /// frame's admission time for sampled frames (0 = unsampled), fed
    /// into the admission-to-release latency histogram when metrics are
    /// attached.
    void Complete(std::uint64_t global_seq, std::uint64_t vehicle_seq,
                  std::int32_t vehicle_id, std::uint64_t admit_us,
                  std::vector<core::Alarm> alarms,
                  std::vector<history::HistoryRecord> records);

    /// Appends alarms/history records that bypass sequencing (the
    /// end-of-stream monitor flushes, which run after the drain barrier
    /// in lane order).
    void AppendUnsequenced(std::int32_t vehicle_id,
                           std::vector<core::Alarm> alarms,
                           std::vector<history::HistoryRecord> records);

    /// Released alarms in total order; stable only once the service drained.
    std::vector<core::Alarm>& alarms() { return alarms_; }

    /// Frames completed / alarms released so far.
    std::size_t frames_processed() const;
    std::size_t alarms_emitted() const;

    /// Serialises the release cursor, counters and released alarms. Legal
    /// only while quiescent (nothing pending), which the checkpoint barrier
    /// guarantees.
    void Save(persist::Encoder& encoder) const;

    /// Restores state saved by Save(). Returns false on malformed input.
    bool Restore(persist::Decoder& decoder);

    /// Copy of the released alarms (quiescent callers only).
    std::vector<core::Alarm> released() const;

    /// Wires the sink's mirror counters and latency histogram (all may be
    /// null). Called once at service construction, before any Complete.
    /// The counters mirror frames_processed / released-alarm totals into
    /// the registry; Restore() re-Sets them to the checkpointed values.
    void AttachMetrics(obs::Counter* frames_processed,
                       obs::Counter* alarms_emitted,
                       obs::Histogram* admission_to_release_us);

    AlarmCallback alarm_callback;            ///< Optional observer.
    CompletionCallback completion_callback;  ///< Optional observer.
    HistoryCallback history_callback;        ///< Optional observer.

   private:
    mutable std::mutex mu_;
    std::uint64_t next_release_ = 0;  ///< First not-yet-released sequence.
    /// Out-of-order completions waiting for their turn, keyed by sequence.
    std::map<std::uint64_t, FrameCompletion> pending_;
    std::map<std::uint64_t, std::vector<core::Alarm>> pending_alarms_;
    std::map<std::uint64_t, std::vector<history::HistoryRecord>>
        pending_records_;
    std::vector<core::Alarm> alarms_;
    std::size_t frames_processed_ = 0;
    obs::Counter* frames_processed_counter_ = nullptr;  ///< Registry mirror.
    obs::Counter* alarms_counter_ = nullptr;            ///< Registry mirror.
    obs::Histogram* latency_us_ = nullptr;  ///< Admission-to-release latency.
  };

  /// Returns the lane of `vehicle_id`, creating it if needed. Caller must
  /// hold ingest_mu_.
  VehicleLane* LaneOfLocked(std::int32_t vehicle_id);

  /// Ensures a pump task is scheduled for `lane` (at most one at a time).
  void SchedulePumpLocked(VehicleLane* lane);

  /// Pump body: steps up to pump_batch frames of `lane` through its
  /// monitor, then reschedules itself if the lane is still non-empty.
  void PumpLane(VehicleLane* lane);

  /// Builds history records for the lane's scored samples beyond its
  /// history cursor (advancing it), attributing them to global sequence
  /// number `global_seq` and matching `alarms` to set the alarm bit.
  /// Called by the owning pump (or under the drain barrier), so the
  /// monitor state it reads is stable.
  std::vector<history::HistoryRecord> BuildHistoryRecords(
      VehicleLane* lane, const std::vector<core::Alarm>& alarms,
      std::uint64_t global_seq);

  /// Serialises the quiescent service into `snapshot`. Caller holds
  /// ingest_mu_ and has passed the WaitIdle barrier.
  void SaveLocked(persist::Snapshot* snapshot) const;

  const ServiceConfig config_;

  /// The unified metrics registry: single source of truth for every
  /// counter the service and its attached layers report. Declared before
  /// the lanes and the pool so metric pointers handed out to monitors and
  /// workers stay valid until after those are destroyed.
  obs::MetricsRegistry metrics_;

  mutable std::mutex ingest_mu_;  ///< Serialises Submit/Register/Drain.
  std::vector<std::unique_ptr<VehicleLane>> lanes_;  ///< Registration order.
  std::unordered_map<std::int32_t, std::size_t> lane_index_;
  std::uint64_t next_global_seq_ = 0;
  bool history_enabled_ = false;  ///< A history callback is installed.
  /// Run inside Checkpoint between the quiesce and the snapshot write.
  std::function<util::Status()> checkpoint_barrier_;
  bool ingest_started_ = false;  ///< A frame has been offered to Submit.
  bool draining_ = false;
  bool drained_ = false;

  /// Ingest counters, registry-backed (`service.frames_*`); incremented
  /// under ingest_mu_ at the same points the plain fields used to be, so
  /// checkpoint encodings are byte-identical.
  obs::Counter* frames_submitted_ = nullptr;
  obs::Counter* frames_accepted_ = nullptr;
  obs::Counter* frames_rejected_ = nullptr;
  /// Derived fleet-wide ensemble counters (`ensemble.*`), refreshed from
  /// the per-lane atomics by SnapshotStats()/stats().
  obs::Counter* retrains_started_ = nullptr;
  obs::Counter* retrains_completed_ = nullptr;
  obs::Counter* retrains_failed_ = nullptr;
  obs::Counter* suppressed_alarms_ = nullptr;
  /// Member-fit duration histogram shared by every lane's ensemble.
  obs::Histogram* retrain_us_ = nullptr;

  OrderedSink sink_;

  /// Declared last: destroyed first, so in-flight pump tasks finish while
  /// the lanes they reference are still alive. Null when the service runs
  /// on a borrowed pool (config_.shared_pool).
  std::unique_ptr<runtime::ThreadPool> owned_pool_;
  /// The pool pump tasks run on: owned_pool_.get() or config_.shared_pool.
  runtime::ThreadPool* pool_;
};

/// Replays a recorded interleaved stream through a fresh service:
/// registers `vehicle_ids` in order (so the result's per-vehicle vectors
/// are index-aligned with them), submits every frame in sequence, drains,
/// and returns the result. With the same stream and config this is
/// bit-identical at any thread count - the replay-equals-live invariant in
/// function form.
core::FleetRunResult RunStream(const std::vector<telemetry::SensorFrame>& stream,
                               const std::vector<std::int32_t>& vehicle_ids,
                               const ServiceConfig& config);

/// Vehicle ids of `fleet` in fleet order: the id list that makes
/// RunStream results index-aligned with core::RunFleet's.
std::vector<std::int32_t> VehicleIdsOf(const telemetry::FleetDataset& fleet);

}  // namespace navarchos::service

#endif  // NAVARCHOS_SERVICE_FLEET_SERVICE_H_
