// Experiment grid runner behind the paper's Figures 4-7 and Tables 1-3.
//
// For each (transformation, technique) cell the pipeline is executed once;
// the threshold factor (or Grand's constant) is then swept over the recorded
// score traces, and the best F0.5 per prediction horizon is reported - the
// paper's protocol of "using multiple factors regarding the thresholding
// technique" / "several constant values thresholds".
#ifndef NAVARCHOS_EVAL_EXPERIMENT_H_
#define NAVARCHOS_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/fleet_runner.h"
#include "eval/metrics.h"
#include "runtime/runtime_config.h"
#include "telemetry/fleet.h"

namespace navarchos::eval {

/// One grid cell's outcome for one prediction horizon.
struct CellResult {
  transform::TransformKind transform{};
  detect::DetectorKind detector{};
  int ph_days = 0;
  double best_threshold = 0.0;  ///< Factor (self-tuning) or constant (Grand).
  EvalResult metrics;           ///< At the best threshold.
  double runtime_seconds = 0.0; ///< Fit + score wall time (Table 1).
};

/// Sweep configuration.
struct SweepConfig {
  /// Self-tuning factors tried for the non-probability detectors.
  std::vector<double> factors = {3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 14.0, 20.0, 30.0, 45.0, 70.0};
  /// Constant thresholds tried for Grand.
  std::vector<double> constants = {0.6, 0.8, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9999};
  /// Prediction horizons in days (paper: 15 and 30).
  std::vector<int> ph_days = {15, 30};
};

/// Runs one (transform, detector) cell over `fleet`: executes the pipeline
/// once, then sweeps thresholds per horizon. Returns one CellResult per
/// horizon (same runtime for all, measured once).
std::vector<CellResult> RunCell(const telemetry::FleetDataset& fleet,
                                transform::TransformKind transform_kind,
                                detect::DetectorKind detector_kind,
                                const SweepConfig& sweep,
                                const core::MonitorConfig& base_config);

/// Runs the full grid of the paper's four transformations x four techniques.
/// Cells are ordered transformation-major (raw, delta, mean, correlation).
/// Cells are independent and dispatched as tasks on the runtime's workers
/// (results collected into index-aligned slots). Results are bit-identical
/// regardless of thread count, except CellResult::runtime_seconds, which is
/// wall-clock and therefore noisier when cells share cores.
std::vector<CellResult> RunGrid(const telemetry::FleetDataset& fleet,
                                const SweepConfig& sweep,
                                const core::MonitorConfig& base_config,
                                const runtime::RuntimeConfig& runtime =
                                    runtime::RuntimeConfig::Serial());

/// The four transformations of the paper's evaluation, in figure order.
const std::vector<transform::TransformKind>& PaperTransforms();

/// The four techniques of the paper's evaluation, in figure order.
const std::vector<detect::DetectorKind>& PaperDetectors();

}  // namespace navarchos::eval

#endif  // NAVARCHOS_EVAL_EXPERIMENT_H_
