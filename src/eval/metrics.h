// Event-level evaluation (paper §4): alarms are judged against recorded
// repair events through a prediction horizon (PH).
//
//   "one or more alarms that fall within PH are counted as one true positive
//    instance, while each alarm outside of PH is counted as a false positive"
//
// Alarms are deduplicated per vehicle-day before counting (the monitor can
// fire many times within one day; operationally that is a single
// notification). Recall is over the fleet's recorded repair events, and the
// headline metric is F0.5, weighting precision twice as much as recall.
#ifndef NAVARCHOS_EVAL_METRICS_H_
#define NAVARCHOS_EVAL_METRICS_H_

#include <vector>

#include "core/monitor.h"
#include "telemetry/fleet.h"

namespace navarchos::eval {

/// Outcome of evaluating one alarm set.
struct EvalResult {
  int detected_failures = 0;   ///< PH windows containing >= 1 alarm.
  int total_failures = 0;      ///< Recorded repair events in the fleet.
  int false_positive_episodes = 0;  ///< Alarm episodes outside every PH.
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double f05 = 0.0;
};

/// F-beta from precision and recall (0 when both are 0).
double FBeta(double precision, double recall, double beta);

/// Evaluates `alarms` against the recorded repairs of `fleet` with a
/// `ph_days`-day prediction horizon ending at each repair.
///
/// Alarms are first deduplicated to vehicle-days, then merged into episodes:
/// alarm days of one vehicle separated by at most `episode_gap_days` belong
/// to the same operational notification. A repair counts as detected when
/// any alarm day falls inside its PH; each episode with no day inside any PH
/// is one false positive.
EvalResult EvaluateAlarms(const std::vector<core::Alarm>& alarms,
                          const telemetry::FleetDataset& fleet, int ph_days,
                          int episode_gap_days = 3);

}  // namespace navarchos::eval

#endif  // NAVARCHOS_EVAL_METRICS_H_
