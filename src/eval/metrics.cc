#include "eval/metrics.h"

#include <map>
#include <set>

#include "util/check.h"

namespace navarchos::eval {

double FBeta(double precision, double recall, double beta) {
  const double b2 = beta * beta;
  const double denom = b2 * precision + recall;
  if (denom <= 0.0) return 0.0;
  return (1.0 + b2) * precision * recall / denom;
}

EvalResult EvaluateAlarms(const std::vector<core::Alarm>& alarms,
                          const telemetry::FleetDataset& fleet, int ph_days,
                          int episode_gap_days) {
  NAVARCHOS_CHECK(ph_days > 0);
  NAVARCHOS_CHECK(episode_gap_days >= 0);

  // Recorded repair times per vehicle id.
  std::map<std::int32_t, std::vector<telemetry::Minute>> repairs;
  EvalResult result;
  for (const auto& vehicle : fleet.vehicles) {
    for (telemetry::Minute t : vehicle.RecordedRepairTimes()) {
      repairs[vehicle.spec.id].push_back(t);
      ++result.total_failures;
    }
  }

  // Deduplicate alarms to vehicle-days (ordered by vehicle then day).
  std::set<std::pair<std::int32_t, std::int64_t>> alarm_days;
  for (const core::Alarm& alarm : alarms)
    alarm_days.emplace(alarm.vehicle_id, telemetry::DayOf(alarm.timestamp));

  std::set<std::pair<std::int32_t, telemetry::Minute>> detected;
  int false_positive_episodes = 0;
  std::int32_t episode_vehicle = -1;
  std::int64_t episode_last_day = 0;
  bool episode_hit = false;
  bool episode_open = false;
  auto close_episode = [&]() {
    if (episode_open && !episode_hit) ++false_positive_episodes;
    episode_open = false;
  };

  for (const auto& [vehicle_id, day] : alarm_days) {
    const bool same_episode = episode_open && vehicle_id == episode_vehicle &&
                              day - episode_last_day <= episode_gap_days;
    if (!same_episode) {
      close_episode();
      episode_open = true;
      episode_vehicle = vehicle_id;
      episode_hit = false;
    }
    episode_last_day = day;

    // Day-granular PH test, consistent with the dedup.
    const auto it = repairs.find(vehicle_id);
    if (it != repairs.end()) {
      for (telemetry::Minute repair : it->second) {
        const std::int64_t repair_day = telemetry::DayOf(repair);
        if (day <= repair_day && day >= repair_day - ph_days) {
          detected.emplace(vehicle_id, repair);
          episode_hit = true;
        }
      }
    }
  }
  close_episode();

  result.false_positive_episodes = false_positive_episodes;
  result.detected_failures = static_cast<int>(detected.size());
  const int tp = result.detected_failures;
  const int fp = result.false_positive_episodes;
  result.precision = (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  result.recall = result.total_failures > 0
                      ? static_cast<double>(tp) / result.total_failures
                      : 0.0;
  result.f1 = FBeta(result.precision, result.recall, 1.0);
  result.f05 = FBeta(result.precision, result.recall, 0.5);
  return result;
}

}  // namespace navarchos::eval
