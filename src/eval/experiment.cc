#include "eval/experiment.h"

#include "runtime/parallel.h"
#include "util/timer.h"

namespace navarchos::eval {

const std::vector<transform::TransformKind>& PaperTransforms() {
  static const std::vector<transform::TransformKind> kTransforms = {
      transform::TransformKind::kRaw,
      transform::TransformKind::kDelta,
      transform::TransformKind::kMeanAggregation,
      transform::TransformKind::kCorrelation,
  };
  return kTransforms;
}

const std::vector<detect::DetectorKind>& PaperDetectors() {
  static const std::vector<detect::DetectorKind> kDetectors = {
      detect::DetectorKind::kGrand,
      detect::DetectorKind::kClosestPair,
      detect::DetectorKind::kTranAd,
      detect::DetectorKind::kXgBoost,
  };
  return kDetectors;
}

std::vector<CellResult> RunCell(const telemetry::FleetDataset& fleet,
                                transform::TransformKind transform_kind,
                                detect::DetectorKind detector_kind,
                                const SweepConfig& sweep,
                                const core::MonitorConfig& base_config) {
  core::MonitorConfig config = base_config;
  config.transform = transform_kind;
  config.detector = detector_kind;

  util::Timer timer;
  const core::FleetRunResult run = core::RunFleet(fleet, config);
  const double runtime = timer.ElapsedSeconds();

  const bool probability_scores = detector_kind == detect::DetectorKind::kGrand;
  const std::vector<double>& thresholds =
      probability_scores ? sweep.constants : sweep.factors;

  std::vector<CellResult> results;
  for (int ph : sweep.ph_days) {
    CellResult best;
    best.transform = transform_kind;
    best.detector = detector_kind;
    best.ph_days = ph;
    best.runtime_seconds = runtime;
    for (double threshold : thresholds) {
      const auto alarms = run.AlarmsAt(threshold);
      const EvalResult metrics = EvaluateAlarms(alarms, fleet, ph);
      if (metrics.f05 > best.metrics.f05 ||
          (metrics.f05 == best.metrics.f05 && best.best_threshold == 0.0)) {
        best.metrics = metrics;
        best.best_threshold = threshold;
      }
    }
    results.push_back(best);
  }
  return results;
}

std::vector<CellResult> RunGrid(const telemetry::FleetDataset& fleet,
                                const SweepConfig& sweep,
                                const core::MonitorConfig& base_config,
                                const runtime::RuntimeConfig& runtime) {
  // Flatten the cell list so workers can claim cells as tasks; results land
  // in index-aligned slots, so cell order never depends on completion order.
  std::vector<std::pair<transform::TransformKind, detect::DetectorKind>> cells;
  for (transform::TransformKind transform_kind : PaperTransforms())
    for (detect::DetectorKind detector_kind : PaperDetectors())
      cells.emplace_back(transform_kind, detector_kind);

  const auto results =
      runtime::ParallelMap<std::vector<CellResult>>(
          runtime, cells.size(), [&](std::size_t index) {
            return RunCell(fleet, cells[index].first, cells[index].second,
                           sweep, base_config);
          });

  std::vector<CellResult> all;
  for (const auto& cell : results) all.insert(all.end(), cell.begin(), cell.end());
  return all;
}

}  // namespace navarchos::eval
