#include "history/query.h"

#include <algorithm>
#include <utility>

namespace navarchos::history {

double SeverityRatio(const HistoryRecord& record) {
  return record.threshold > 0.0 ? record.score / record.threshold
                                : record.score;
}

QueryEngine::QueryEngine(std::string dir) : dir_(std::move(dir)) {}

util::Status QueryEngine::Rank(const RankQuery& query, RankResult* out) const {
  out->entries.clear();
  std::vector<VehicleLogData> logs;
  util::Status status = HistoryReader::ReadDir(dir_, &logs);
  if (!status.ok()) return status;

  // Resolve the window end: the newest timestamp anywhere in the log when
  // the query leaves it open. Deterministic because the log itself is.
  std::int64_t end_ts = query.end_ts;
  if (end_ts == 0) {
    for (const VehicleLogData& log : logs)
      for (const HistoryRecord& record : log.records)
        end_ts = std::max(end_ts, record.timestamp);
  }

  for (const VehicleLogData& log : logs) {
    RankEntry entry;
    entry.vehicle_id = log.vehicle_id;
    double ratio_sum = 0.0;
    for (const HistoryRecord& record : log.records) {
      if (record.timestamp > end_ts) continue;
      if (query.window_minutes > 0 &&
          record.timestamp <= end_ts - query.window_minutes)
        continue;
      const double ratio = SeverityRatio(record);
      ++entry.records;
      if (record.alarm) ++entry.alarms;
      ratio_sum += ratio;
      entry.max_ratio = std::max(entry.max_ratio, ratio);
      entry.last_ts = std::max(entry.last_ts, record.timestamp);
    }
    if (entry.records == 0) continue;
    entry.mean_ratio = ratio_sum / static_cast<double>(entry.records);
    out->entries.push_back(entry);
  }

  std::sort(out->entries.begin(), out->entries.end(),
            [](const RankEntry& a, const RankEntry& b) {
              if (a.mean_ratio != b.mean_ratio)
                return a.mean_ratio > b.mean_ratio;
              if (a.max_ratio != b.max_ratio) return a.max_ratio > b.max_ratio;
              return a.vehicle_id < b.vehicle_id;
            });
  if (query.limit > 0 && out->entries.size() > query.limit)
    out->entries.resize(query.limit);
  return util::Status();
}

util::Status QueryEngine::Timeline(const TimelineQuery& query,
                                   TimelineResult* out) const {
  out->records.clear();
  std::vector<VehicleLogData> logs;
  util::Status status = HistoryReader::ReadDir(dir_, &logs);
  if (!status.ok()) return status;

  for (VehicleLogData& log : logs) {
    if (log.vehicle_id != query.vehicle_id) continue;
    for (HistoryRecord& record : log.records) {
      if (record.timestamp < query.start_ts) continue;
      if (query.end_ts != 0 && record.timestamp > query.end_ts) continue;
      out->records.push_back(std::move(record));
    }
  }
  // Keep the newest max_records: the recent tail is what triage reads.
  if (query.max_records > 0 && out->records.size() > query.max_records)
    out->records.erase(out->records.begin(),
                       out->records.end() - query.max_records);
  return util::Status();
}

util::Status QueryEngine::Comove(const ComoveQuery& query,
                                 ComoveResult* out) const {
  out->entries.clear();
  std::vector<VehicleLogData> logs;
  util::Status status = HistoryReader::ReadDir(dir_, &logs);
  if (!status.ok()) return status;

  // Locate the anchoring alarm: the first alarmed record carrying the
  // queried global sequence number, scanning vehicles in id order.
  const VehicleLogData* vehicle = nullptr;
  std::size_t anchor = 0;
  for (const VehicleLogData& log : logs) {
    for (std::size_t i = 0; i < log.records.size(); ++i) {
      if (log.records[i].global_seq == query.alarm_seq &&
          log.records[i].alarm) {
        vehicle = &log;
        anchor = i;
        break;
      }
    }
    if (vehicle != nullptr) break;
  }
  if (vehicle == nullptr)
    return util::Status::Error("comove: no alarmed record with global seq " +
                               std::to_string(query.alarm_seq));

  out->vehicle_id = vehicle->vehicle_id;
  out->alarm_ts = vehicle->records[anchor].timestamp;

  const std::size_t window = query.window;
  const std::size_t first = anchor > window ? anchor - window : 0;
  const std::size_t last =
      std::min(vehicle->records.size() - 1, anchor + window);

  // Rank-weighted co-occurrence of the worst channels across the window:
  // the channel at position p of a record's k worst contributes k - p.
  // All-integer accumulation, so the result is byte-identical everywhere.
  std::vector<ComoveEntry> entries;
  const auto entry_of = [&entries](std::uint32_t channel) -> ComoveEntry& {
    for (ComoveEntry& entry : entries)
      if (entry.channel == channel) return entry;
    entries.push_back(ComoveEntry{channel, 0, 0});
    return entries.back();
  };
  for (std::size_t i = first; i <= last; ++i) {
    const HistoryRecord& record = vehicle->records[i];
    const std::size_t k = record.top_channels.size();
    for (std::size_t p = 0; p < k; ++p) {
      ComoveEntry& entry = entry_of(record.top_channels[p]);
      ++entry.hits;
      entry.weight += static_cast<std::uint64_t>(k - p);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const ComoveEntry& a, const ComoveEntry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.hits != b.hits) return a.hits > b.hits;
              return a.channel < b.channel;
            });
  out->entries = std::move(entries);
  return util::Status();
}

}  // namespace navarchos::history
