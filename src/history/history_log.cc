#include "history/history_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <system_error>
#include <utility>

#include "persist/codec.h"
#include "util/check.h"

namespace navarchos::history {

namespace {

/// Minimum encoded size of one record (dseq, dts, score, threshold, flags;
/// k may be zero), used to bound the record count a block claims.
constexpr std::size_t kMinRecordBytes = 8 + 8 + 8 + 8 + 1;

std::string SegmentName(std::int32_t vehicle_id, std::uint32_t ordinal,
                        const char* extension) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "v%d_%06u%s", vehicle_id, ordinal,
                extension);
  return buffer;
}

/// One segment file found by a directory scan.
struct SegmentFile {
  std::uint32_t ordinal = 0;
  std::string path;
  bool sealed = false;  ///< .hseg (immutable) vs .part (active tail).
};

/// Scans `dir` for history segments, grouped per vehicle and sorted by
/// ordinal. When a sealed segment and a .part share an ordinal (a crash
/// between seal-rename and tail unlink), the sealed twin wins; the stale
/// .part path is reported through `stale_parts` so the writer can unlink
/// it (the read-only reader just ignores it).
util::Status ScanDir(const std::string& dir,
                     std::map<std::int32_t, std::vector<SegmentFile>>* out,
                     std::vector<std::string>* stale_parts) {
  out->clear();
  std::error_code ec;
  std::map<std::int32_t, std::map<std::uint32_t, SegmentFile>> by_ordinal;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    int vehicle = 0;
    unsigned ordinal = 0;
    char extension[8] = {0};
    if (std::sscanf(name.c_str(), "v%d_%6u.%6s", &vehicle, &ordinal,
                    extension) != 3)
      continue;
    const bool sealed = std::string(extension) == "hseg";
    if (!sealed && std::string(extension) != "part") continue;
    auto& slot = by_ordinal[vehicle];
    auto it = slot.find(ordinal);
    if (it == slot.end()) {
      slot[ordinal] = SegmentFile{ordinal, entry.path().string(), sealed};
      continue;
    }
    // Twin ordinals: keep the sealed one, report the other as stale.
    if (sealed) {
      if (stale_parts != nullptr) stale_parts->push_back(it->second.path);
      it->second = SegmentFile{ordinal, entry.path().string(), true};
    } else if (stale_parts != nullptr) {
      stale_parts->push_back(entry.path().string());
    }
  }
  if (ec)
    return util::Status::Error("history scan: cannot list " + dir + ": " +
                               ec.message());
  for (auto& [vehicle, segments] : by_ordinal) {
    auto& list = (*out)[vehicle];
    list.reserve(segments.size());
    for (auto& [ordinal, file] : segments) list.push_back(std::move(file));
  }
  return util::Status();
}

util::Status ReadFileBytes(const std::string& path,
                           std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Error("history read: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0)
    in.read(reinterpret_cast<char*>(out->data()), size);
  if (!in)
    return util::Status::Error("history read: short read from " + path);
  return util::Status();
}

/// Outcome of decoding one segment's bytes.
struct SegmentParse {
  bool header_ok = false;       ///< Magic/version/CRC of the header verify.
  std::uint32_t version = kSegmentVersion;  ///< Record layout of the segment.
  std::int32_t vehicle_id = 0;  ///< From the header.
  std::uint64_t prev_seq = 0;   ///< Delta cursor after the last good record.
  std::int64_t prev_ts = 0;
  std::size_t valid_bytes = 0;  ///< Prefix covered by verified blocks.
  std::vector<HistoryRecord> records;  ///< Decoded records in order.
  bool torn = false;            ///< Bytes beyond valid_bytes failed checks.
  std::string error;            ///< What the first failure was.
};

std::uint32_t ReadU32(const std::uint8_t* data) {
  return static_cast<std::uint32_t>(data[0]) |
         (static_cast<std::uint32_t>(data[1]) << 8) |
         (static_cast<std::uint32_t>(data[2]) << 16) |
         (static_cast<std::uint32_t>(data[3]) << 24);
}

/// Decodes a segment: verified header, then CRC'd blocks until the bytes
/// run out or a check fails. A failure never discards the verified prefix
/// - it sets `torn` and leaves `valid_bytes` at the last good block.
void ParseSegment(const std::vector<std::uint8_t>& bytes, SegmentParse* out) {
  *out = SegmentParse();
  if (bytes.size() < kSegmentHeaderBytes) {
    out->torn = true;
    out->error = "segment shorter than its header";
    return;
  }
  persist::Decoder header(bytes.data(), kSegmentHeaderBytes);
  const std::uint32_t magic = header.GetU32();
  const std::uint32_t version = header.GetU32();
  const std::int32_t vehicle_id = header.GetI32();
  const std::uint64_t base_seq = header.GetU64();
  const std::int64_t base_ts = header.GetI64();
  const std::uint32_t stored_crc = header.GetU32();
  const std::uint32_t actual_crc =
      persist::Crc32(bytes.data(), kSegmentHeaderBytes - 4);
  if (!header.ok() || magic != kSegmentMagic ||
      (version != kSegmentVersion && version != kSegmentVersionVotes) ||
      stored_crc != actual_crc) {
    out->torn = true;
    out->error = "segment header corrupt";
    return;
  }
  out->header_ok = true;
  out->version = version;
  out->vehicle_id = vehicle_id;
  out->prev_seq = base_seq;
  out->prev_ts = base_ts;
  out->valid_bytes = kSegmentHeaderBytes;

  std::size_t offset = kSegmentHeaderBytes;
  while (offset < bytes.size()) {
    const std::size_t remaining = bytes.size() - offset;
    if (remaining < 8) {
      out->torn = true;
      out->error = "torn block frame";
      return;
    }
    const std::uint32_t length = ReadU32(bytes.data() + offset);
    if (length > kMaxBlockBytes || remaining < 4 + std::size_t{length} + 4) {
      out->torn = true;
      out->error = "torn or oversized block length";
      return;
    }
    const std::uint8_t* payload = bytes.data() + offset + 4;
    const std::uint32_t stored = ReadU32(payload + length);
    if (persist::Crc32(payload, length) != stored) {
      out->torn = true;
      out->error = "block CRC mismatch";
      return;
    }
    // The block is CRC-verified; decode its records. Roll the delta cursor
    // back if the payload is malformed despite the CRC (disk-level
    // corruption that happened before the CRC was computed).
    const std::uint64_t saved_seq = out->prev_seq;
    const std::int64_t saved_ts = out->prev_ts;
    const std::size_t saved_count = out->records.size();
    persist::Decoder decoder(payload, length);
    const std::uint32_t count = decoder.GetU32();
    bool block_ok = decoder.ok();
    if (block_ok && count > decoder.remaining() / kMinRecordBytes)
      block_ok = false;
    for (std::uint32_t i = 0; block_ok && i < count; ++i) {
      HistoryRecord record;
      record.vehicle_id = vehicle_id;
      out->prev_seq += decoder.GetU64();
      out->prev_ts += decoder.GetI64();
      record.global_seq = out->prev_seq;
      record.timestamp = out->prev_ts;
      record.score = decoder.GetDouble();
      record.threshold = decoder.GetDouble();
      const std::uint8_t flags = decoder.GetU8();
      record.alarm = (flags & 1u) != 0;
      const std::size_t k = flags >> 1;
      if (k > decoder.remaining() / 4) {
        block_ok = false;
        break;
      }
      record.top_channels.reserve(k);
      for (std::size_t c = 0; c < k; ++c)
        record.top_channels.push_back(decoder.GetU32());
      if (version >= kSegmentVersionVotes) {
        const std::uint8_t votes_plus1 = decoder.GetU8();
        record.votes = votes_plus1 == 0
                           ? -1
                           : static_cast<std::int32_t>(votes_plus1) - 1;
        record.ensemble_live = decoder.GetU8();
      }
      if (!decoder.ok()) {
        block_ok = false;
        break;
      }
      out->records.push_back(std::move(record));
    }
    if (block_ok && (!decoder.ok() || decoder.remaining() != 0))
      block_ok = false;
    if (!block_ok) {
      out->prev_seq = saved_seq;
      out->prev_ts = saved_ts;
      out->records.resize(saved_count);
      out->torn = true;
      out->error = "block payload malformed";
      return;
    }
    offset += 4 + std::size_t{length} + 4;
    out->valid_bytes = offset;
  }
}

}  // namespace

// ------------------------------------------------------------- HistoryWriter

HistoryWriter::HistoryWriter(HistoryConfig config) : config_(config) {
  NAVARCHOS_CHECK(config_.segment_bytes >= kSegmentHeaderBytes + 16);
  NAVARCHOS_CHECK(config_.block_records >= 1);
}

HistoryWriter::~HistoryWriter() {
  for (auto& [vehicle_id, log] : vehicles_)
    if (log.fd >= 0) ::close(log.fd);
}

util::Status HistoryWriter::Open(const std::string& dir) {
  if (open_) return util::Status::Error("history open: writer already open");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    return util::Status::Error("history open: cannot create " + dir + ": " +
                               ec.message());

  std::map<std::int32_t, std::vector<SegmentFile>> segments;
  std::vector<std::string> stale_parts;
  util::Status status = ScanDir(dir, &segments, &stale_parts);
  if (!status.ok()) return status;
  // Stale .part twins of sealed segments: the seal completed (the rename
  // is the commit point) but the crash hit before the unlink. Finish it.
  for (const std::string& path : stale_parts)
    std::filesystem::remove(path, ec);

  for (auto& [vehicle_id, files] : segments) {
    VehicleLog& log = vehicles_[vehicle_id];
    for (std::size_t i = 0; i < files.size(); ++i) {
      const SegmentFile& file = files[i];
      const bool is_tail = i + 1 == files.size() && !file.sealed;
      if (!file.sealed && !is_tail)
        return util::Status::Error("history open: stale tail segment " +
                                   file.path + " is not the newest segment");
      std::vector<std::uint8_t> bytes;
      status = ReadFileBytes(file.path, &bytes);
      if (!status.ok()) return status;
      SegmentParse parse;
      ParseSegment(bytes, &parse);
      if (file.sealed && (parse.torn || !parse.header_ok))
        return util::Status::Error("history open: sealed segment " +
                                   file.path + " corrupt: " + parse.error);
      if (parse.header_ok && parse.vehicle_id != vehicle_id)
        return util::Status::Error("history open: segment " + file.path +
                                   " header names vehicle " +
                                   std::to_string(parse.vehicle_id));
      if (is_tail && !parse.header_ok) {
        // The crash tore the tail inside its header: nothing of the
        // segment is trustworthy. Drop it; the next append starts fresh.
        stats_.torn_bytes_truncated += bytes.size();
        std::filesystem::remove(file.path, ec);
        log.next_ordinal = std::max(log.next_ordinal, file.ordinal + 1);
        continue;
      }
      if (is_tail && parse.torn) {
        stats_.torn_bytes_truncated += bytes.size() - parse.valid_bytes;
        std::filesystem::resize_file(file.path, parse.valid_bytes, ec);
        if (ec)
          return util::Status::Error("history open: cannot truncate torn " +
                                     file.path + ": " + ec.message());
        bytes.resize(parse.valid_bytes);
      }
      // Advance the idempotence cursor over every recovered record.
      for (const HistoryRecord& record : parse.records) {
        if (log.has_logged && record.global_seq == log.last_seq) {
          ++log.last_sub;
        } else {
          log.has_logged = true;
          log.last_seq = record.global_seq;
          log.last_sub = 0;
        }
      }
      log.next_ordinal = std::max(log.next_ordinal, file.ordinal + 1);
      if (is_tail) {
        // Resume appending to the (now clean) tail in place.
        log.fd = ::open(file.path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
        if (log.fd < 0)
          return util::Status::Error("history open: cannot reopen tail " +
                                     file.path);
        log.part_path = file.path;
        log.has_active = true;
        log.segment_version = parse.version;
        log.mirror = std::move(bytes);
        log.prev_seq = parse.prev_seq;
        log.prev_ts = parse.prev_ts;
      }
    }
  }
  dir_ = dir;
  open_ = true;
  return util::Status();
}

util::Status HistoryWriter::Append(const HistoryRecord& record) {
  if (!open_) return util::Status::Error("history append: writer not open");
  VehicleLog& log = vehicles_[record.vehicle_id];

  // Sub-index of this record within its frame: several records can share
  // one admitting global_seq (reorder-buffer releases), and the incoming
  // stream presents them consecutively.
  if (!log.has_incoming || record.global_seq != log.in_seq) {
    log.has_incoming = true;
    log.in_seq = record.global_seq;
    log.in_sub = 0;
  } else {
    ++log.in_sub;
  }

  // Idempotent re-append: a restored service replays from its checkpoint
  // and regenerates records already on disk; skip everything at or below
  // the recovered cursor.
  if (log.has_logged &&
      (record.global_seq < log.last_seq ||
       (record.global_seq == log.last_seq && log.in_sub <= log.last_sub))) {
    ++stats_.records_skipped;
    return util::Status();
  }

  log.pending.push_back(record);
  if (log.pending.back().top_channels.size() > kMaxTopChannels)
    log.pending.back().top_channels.resize(kMaxTopChannels);
  log.has_logged = true;
  log.last_seq = record.global_seq;
  log.last_sub = log.in_sub;
  ++stats_.records_appended;
  if (log.pending.size() >= config_.block_records)
    return WriteBlock(record.vehicle_id, &log);
  return util::Status();
}

util::Status HistoryWriter::StartSegment(std::int32_t vehicle_id,
                                         VehicleLog* log,
                                         const HistoryRecord& first) {
  const std::uint32_t ordinal = log->next_ordinal++;
  log->part_path =
      (std::filesystem::path(dir_) / SegmentName(vehicle_id, ordinal, ".part"))
          .string();
  // A segment that will carry consensus votes uses the version-2 record
  // layout; vote-less streams keep writing version-1 segments, byte-
  // identical to what older builds produced.
  log->segment_version =
      first.votes >= 0 ? kSegmentVersionVotes : kSegmentVersion;
  persist::Encoder header;
  header.PutU32(kSegmentMagic);
  header.PutU32(log->segment_version);
  header.PutI32(vehicle_id);
  header.PutU64(first.global_seq);
  header.PutI64(first.timestamp);
  std::vector<std::uint8_t> bytes = header.TakeBytes();
  const std::uint32_t crc = persist::Crc32(bytes.data(), bytes.size());
  persist::Encoder tail;
  tail.PutU32(crc);
  const std::vector<std::uint8_t> crc_bytes = tail.TakeBytes();
  bytes.insert(bytes.end(), crc_bytes.begin(), crc_bytes.end());

  log->fd = ::open(log->part_path.c_str(),
                   O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (log->fd < 0)
    return util::Status::Error("history append: cannot create " +
                               log->part_path);
  if (::write(log->fd, bytes.data(), bytes.size()) !=
      static_cast<ssize_t>(bytes.size()))
    return util::Status::Error("history append: short write to " +
                               log->part_path);
  log->mirror = std::move(bytes);
  log->prev_seq = first.global_seq;
  log->prev_ts = first.timestamp;
  log->has_active = true;
  return util::Status();
}

util::Status HistoryWriter::WriteBlock(std::int32_t vehicle_id,
                                       VehicleLog* log) {
  if (log->pending.empty()) return util::Status();
  if (!log->has_active) {
    util::Status status = StartSegment(vehicle_id, log, log->pending.front());
    if (!status.ok()) return status;
  }

  persist::Encoder payload_encoder;
  payload_encoder.PutU32(static_cast<std::uint32_t>(log->pending.size()));
  for (const HistoryRecord& record : log->pending) {
    payload_encoder.PutU64(record.global_seq - log->prev_seq);
    payload_encoder.PutI64(record.timestamp - log->prev_ts);
    payload_encoder.PutDouble(record.score);
    payload_encoder.PutDouble(record.threshold);
    const std::uint8_t flags = static_cast<std::uint8_t>(
        (record.alarm ? 1u : 0u) | (record.top_channels.size() << 1));
    payload_encoder.PutU8(flags);
    for (const std::uint32_t channel : record.top_channels)
      payload_encoder.PutU32(channel);
    if (log->segment_version >= kSegmentVersionVotes) {
      const std::uint32_t votes_plus1 =
          record.votes < 0
              ? 0u
              : std::min<std::uint32_t>(
                    static_cast<std::uint32_t>(record.votes) + 1, 255u);
      payload_encoder.PutU8(static_cast<std::uint8_t>(votes_plus1));
      payload_encoder.PutU8(static_cast<std::uint8_t>(
          std::min<std::uint32_t>(record.ensemble_live, 255u)));
    }
    log->prev_seq = record.global_seq;
    log->prev_ts = record.timestamp;
  }
  const std::vector<std::uint8_t> payload = payload_encoder.TakeBytes();
  NAVARCHOS_CHECK(payload.size() <= kMaxBlockBytes);

  persist::Encoder frame;
  frame.PutU32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> block = frame.TakeBytes();
  block.insert(block.end(), payload.begin(), payload.end());
  persist::Encoder crc_encoder;
  crc_encoder.PutU32(persist::Crc32(payload.data(), payload.size()));
  const std::vector<std::uint8_t> crc_bytes = crc_encoder.TakeBytes();
  block.insert(block.end(), crc_bytes.begin(), crc_bytes.end());

  // One write() per block: a kill -9 can tear at most the final block of
  // the file, which the CRC catches and recovery truncates.
  if (::write(log->fd, block.data(), block.size()) !=
      static_cast<ssize_t>(block.size()))
    return util::Status::Error("history append: short write to " +
                               log->part_path);
  log->mirror.insert(log->mirror.end(), block.begin(), block.end());
  log->pending.clear();
  ++stats_.blocks_written;

  if (log->mirror.size() >= config_.segment_bytes)
    return SealSegment(vehicle_id, log);
  return util::Status();
}

util::Status HistoryWriter::SealSegment(std::int32_t vehicle_id,
                                        VehicleLog* log) {
  (void)vehicle_id;
  const std::string sealed_path =
      std::filesystem::path(log->part_path).replace_extension(".hseg").string();
  const std::string temp_path = sealed_path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out)
      return util::Status::Error("history seal: cannot open " + temp_path);
    out.write(reinterpret_cast<const char*>(log->mirror.data()),
              static_cast<std::streamsize>(log->mirror.size()));
    out.flush();
    if (!out)
      return util::Status::Error("history seal: short write to " + temp_path);
  }
  std::error_code ec;
  // The rename is the commit point; the stale .part is garbage-collected
  // here or - after a crash in between - by the next Open.
  std::filesystem::rename(temp_path, sealed_path, ec);
  if (ec) {
    std::filesystem::remove(temp_path, ec);
    return util::Status::Error("history seal: cannot publish " + sealed_path);
  }
  ::close(log->fd);
  log->fd = -1;
  std::filesystem::remove(log->part_path, ec);
  log->part_path.clear();
  log->has_active = false;
  log->mirror.clear();
  ++stats_.segments_sealed;
  return util::Status();
}

util::Status HistoryWriter::Flush() {
  if (!open_) return util::Status::Error("history flush: writer not open");
  for (auto& [vehicle_id, log] : vehicles_) {
    util::Status status = WriteBlock(vehicle_id, &log);
    if (!status.ok()) return status;
  }
  return util::Status();
}

util::Status HistoryWriter::Close() {
  if (!open_) return util::Status();
  util::Status status = Flush();
  for (auto& [vehicle_id, log] : vehicles_) {
    if (log.fd >= 0) ::close(log.fd);
    log.fd = -1;
    log.has_active = false;
  }
  open_ = false;
  return status;
}

// ------------------------------------------------------------- HistoryReader

util::Status HistoryReader::ReadDir(const std::string& dir,
                                    std::vector<VehicleLogData>* out,
                                    ReadStats* stats) {
  out->clear();
  if (stats != nullptr) *stats = ReadStats();
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return util::Status();

  // Read-only scan: stale .part twins of sealed segments are ignored (not
  // unlinked) and torn tails are skipped (not truncated), so queries can
  // run against a directory a live writer still owns.
  std::map<std::int32_t, std::vector<SegmentFile>> segments;
  util::Status status = ScanDir(dir, &segments, nullptr);
  if (!status.ok()) return status;

  for (auto& [vehicle_id, files] : segments) {
    VehicleLogData data;
    data.vehicle_id = vehicle_id;
    for (std::size_t i = 0; i < files.size(); ++i) {
      const SegmentFile& file = files[i];
      const bool is_tail = i + 1 == files.size() && !file.sealed;
      if (!file.sealed && !is_tail)
        return util::Status::Error("history read: stale tail segment " +
                                   file.path + " is not the newest segment");
      std::vector<std::uint8_t> bytes;
      status = ReadFileBytes(file.path, &bytes);
      if (!status.ok()) return status;
      SegmentParse parse;
      ParseSegment(bytes, &parse);
      if (!is_tail && (parse.torn || !parse.header_ok))
        return util::Status::Error("history read: sealed segment " +
                                   file.path + " corrupt: " + parse.error);
      if (parse.header_ok && parse.vehicle_id != vehicle_id)
        return util::Status::Error("history read: segment " + file.path +
                                   " header names vehicle " +
                                   std::to_string(parse.vehicle_id));
      if (stats != nullptr) {
        ++stats->segments;
        stats->records += parse.records.size();
        if (parse.torn)
          stats->torn_tail_bytes += bytes.size() - parse.valid_bytes;
      }
      data.records.insert(data.records.end(),
                          std::make_move_iterator(parse.records.begin()),
                          std::make_move_iterator(parse.records.end()));
    }
    out->push_back(std::move(data));
  }
  return util::Status();
}

}  // namespace navarchos::history
