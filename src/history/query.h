// Query engine over the anomaly history log: RANK / TIMELINE / COMOVE.
//
// The three queries are the fleet-triage primitives the history log
// exists for (the Anomaly-Advisor pattern): RANK orders the fleet's
// vehicles by anomaly severity over a time window, TIMELINE returns one
// vehicle's score/alarm series, and COMOVE reports which score channels
// co-moved around a given alarm. Every query re-scans the log directory,
// so results always reflect the latest flushed block; determinism is
// inherited from the log (records are in the OrderedSink total order) and
// from the engine's fixed iteration and tie-break rules - the same log
// yields byte-identical results wherever and whenever a query runs.
#ifndef NAVARCHOS_HISTORY_QUERY_H_
#define NAVARCHOS_HISTORY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "history/history_log.h"
#include "util/status.h"

/// \file
/// \brief QueryEngine answering RANK / TIMELINE / COMOVE over a history
/// log directory, with deterministic ordering and tie-break rules.

namespace navarchos::history {

/// Severity of one record: score relative to its threshold (score/threshold
/// when the threshold is positive, the raw score otherwise). Dimensionless,
/// so it compares across detectors and reference cycles.
double SeverityRatio(const HistoryRecord& record);

/// RANK parameters: order the fleet by severity over a trailing window.
struct RankQuery {
  /// Window length in stream minutes; 0 ranks over the whole log.
  std::int64_t window_minutes = 0;
  /// Window end (inclusive); 0 means the latest timestamp in the log.
  std::int64_t end_ts = 0;
  /// Most entries to return; 0 means all vehicles with in-window records.
  std::uint32_t limit = 0;
};

/// One vehicle's row in a RANK result.
struct RankEntry {
  std::int32_t vehicle_id = 0;  ///< The vehicle.
  std::uint64_t records = 0;    ///< Scored samples inside the window.
  std::uint64_t alarms = 0;     ///< How many of them raised alarms.
  double mean_ratio = 0.0;      ///< Mean severity ratio over the window.
  double max_ratio = 0.0;       ///< Worst single ratio in the window.
  std::int64_t last_ts = 0;     ///< Timestamp of the newest in-window record.
};

/// RANK result: entries sorted worst first (mean ratio descending, then
/// max ratio descending, then vehicle id ascending). Vehicles with no
/// in-window records are omitted.
struct RankResult {
  std::vector<RankEntry> entries;
};

/// TIMELINE parameters: one vehicle's score/alarm series.
struct TimelineQuery {
  std::int32_t vehicle_id = 0;  ///< Vehicle to read.
  std::int64_t start_ts = 0;    ///< Inclusive range start (0 = log start).
  std::int64_t end_ts = 0;      ///< Inclusive range end (0 = log end).
  /// Most records to return; 0 means all. When the range holds more, the
  /// NEWEST max_records are kept (a dashboard wants the recent tail).
  std::uint32_t max_records = 0;
};

/// TIMELINE result: the vehicle's records in log (stream) order.
struct TimelineResult {
  std::vector<HistoryRecord> records;
};

/// COMOVE parameters: channels that co-moved around one alarm, identified
/// by the admitting frame's global sequence number (as reported in RANK /
/// TIMELINE records and in the service's alarm stream).
struct ComoveQuery {
  std::uint64_t alarm_seq = 0;  ///< Global seq of an alarmed record.
  /// Records considered on each side of the alarm (the co-movement
  /// window is 2*window + 1 records of the same vehicle).
  std::uint32_t window = 16;
};

/// One channel's co-movement evidence around the alarm.
struct ComoveEntry {
  std::uint32_t channel = 0;  ///< Score channel index.
  std::uint64_t hits = 0;     ///< Windows records listing the channel.
  /// Rank-weighted evidence: a record contributes (k - position) for the
  /// channel at `position` of its k worst channels, so channels that were
  /// repeatedly among the worst dominate. Integer arithmetic, hence
  /// trivially byte-identical everywhere.
  std::uint64_t weight = 0;
};

/// COMOVE result: the anchoring alarm plus channels sorted by evidence
/// (weight descending, hits descending, channel ascending).
struct ComoveResult {
  std::int32_t vehicle_id = 0;  ///< Vehicle of the anchoring alarm.
  std::int64_t alarm_ts = 0;    ///< Its timestamp.
  std::vector<ComoveEntry> entries;
};

/// Answers RANK / TIMELINE / COMOVE over one history log directory. Each
/// call re-scans the directory (tolerating a torn tail segment), so a
/// single engine can serve queries while a writer keeps appending.
class QueryEngine {
 public:
  /// Builds an engine over `dir` (not opened until the first query).
  explicit QueryEngine(std::string dir);

  /// Ranks the fleet's vehicles by severity over the query window.
  util::Status Rank(const RankQuery& query, RankResult* out) const;

  /// Returns one vehicle's score/alarm series in the query range.
  util::Status Timeline(const TimelineQuery& query, TimelineResult* out) const;

  /// Reports the channels that co-moved around the given alarm. Fails
  /// when no alarmed record carries `alarm_seq`.
  util::Status Comove(const ComoveQuery& query, ComoveResult* out) const;

  /// The log directory this engine scans.
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace navarchos::history

#endif  // NAVARCHOS_HISTORY_QUERY_H_
