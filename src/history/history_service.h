// Thread-safe facade over one history log: appends from the service's
// ordered release path, queries from the network front end.
//
// The FleetService history callback runs on worker threads (serialised by
// the OrderedSink, but on whichever thread released the frame), while the
// IngestServer answers QUERY messages from its own poll thread. The
// HistoryService owns the writer and the query engine behind one mutex:
// Append is the callback target, and each query first flushes buffered
// blocks so a result always reflects every record released before it.
#ifndef NAVARCHOS_HISTORY_HISTORY_SERVICE_H_
#define NAVARCHOS_HISTORY_HISTORY_SERVICE_H_

#include <mutex>
#include <string>

#include "history/history_log.h"
#include "history/query.h"
#include "util/status.h"

/// \file
/// \brief HistoryService: the mutex-guarded writer + query engine pair
/// that lets ingest append and the network front end query one log.

namespace navarchos::history {

/// One history log served for both appends and queries. Thread-safe; the
/// first append error latches (later appends are dropped) and is surfaced
/// through first_error() and every subsequent query.
class HistoryService {
 public:
  /// Builds the service over `dir` with the given log tuning.
  explicit HistoryService(std::string dir,
                          HistoryConfig config = HistoryConfig());

  /// Opens (creating or recovering) the log directory.
  util::Status Open();

  /// Appends one record; the FleetService history-callback target.
  /// Errors latch into first_error() instead of throwing into the
  /// release path.
  void Append(const HistoryRecord& record);

  /// Flushes buffered blocks to disk.
  util::Status Flush();

  /// Flushes, then answers RANK over the log.
  util::Status Rank(const RankQuery& query, RankResult* out);

  /// Flushes, then answers TIMELINE over the log.
  util::Status Timeline(const TimelineQuery& query, TimelineResult* out);

  /// Flushes, then answers COMOVE over the log.
  util::Status Comove(const ComoveQuery& query, ComoveResult* out);

  /// First append/flush error, if any (OK otherwise).
  util::Status first_error() const;

  /// Writer counters (records appended/skipped, blocks, seals).
  WriterStats writer_stats() const;

  /// The log directory.
  const std::string& dir() const { return dir_; }

 private:
  /// Flush + latched-error check shared by the query entry points.
  util::Status PrepareQuery();

  const std::string dir_;
  mutable std::mutex mu_;
  HistoryWriter writer_;
  QueryEngine engine_;
  util::Status error_;
};

}  // namespace navarchos::history

#endif  // NAVARCHOS_HISTORY_HISTORY_SERVICE_H_
